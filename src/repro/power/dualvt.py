"""Dual-V_T assignment: high-V_T cells off the critical path.

Section 4 of the paper introduces multiple-threshold processes for
*standby* gating; the same process enables a static synthesis
optimization the paper's framework implies but does not spell out:
give every gate with timing slack the high threshold and keep low-V_T
devices only where speed is paid for.  Leakage falls by orders of
magnitude on the (usually large) off-critical fraction of the netlist
at zero — or bounded — performance cost.

:class:`DualVtOptimizer` implements the classic greedy: rank gates by
slack, tentatively move each to high V_T, keep the move if the
critical path still meets the delay budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional

from repro.circuits.netlist import Netlist
from repro.circuits.timing import StaticTimingAnalyzer
from repro.device.technology import Technology
from repro.errors import OptimizationError
from repro.tech.characterize import CellCharacterizer

__all__ = ["DualVtAssignment", "DualVtOptimizer"]


@dataclass(frozen=True)
class DualVtAssignment:
    """Result of one dual-V_T optimization run."""

    high_vt_gates: FrozenSet[str]
    total_gates: int
    delay_s: float
    leakage_a: float
    baseline_delay_s: float
    baseline_leakage_a: float

    @property
    def high_vt_fraction(self) -> float:
        """Fraction of gates moved to the high threshold."""
        return len(self.high_vt_gates) / self.total_gates

    @property
    def leakage_reduction(self) -> float:
        """baseline / optimized leakage (>= 1)."""
        if self.leakage_a <= 0.0:
            return float("inf")
        return self.baseline_leakage_a / self.leakage_a

    @property
    def delay_penalty(self) -> float:
        """Fractional critical-path growth vs the all-low-V_T design."""
        return self.delay_s / self.baseline_delay_s - 1.0


class DualVtOptimizer:
    """Greedy slack-driven dual-V_T assignment for one netlist.

    Parameters
    ----------
    netlist:
        The design (combinational or sequential).
    technology:
        Base process; its logic V_T is the *low* threshold.
    vdd:
        Operating supply [V].
    high_vt_shift:
        How far above the base threshold the high-V_T cells sit [V]
        (e.g. 0.264 V — the SOIAS standby/active gap, or an MTCMOS
        second implant).
    """

    def __init__(
        self,
        netlist: Netlist,
        technology: Technology,
        vdd: float,
        high_vt_shift: float = 0.264,
        wire_length_per_fanout_um: float = 5.0,
    ):
        if high_vt_shift <= 0.0:
            raise OptimizationError("high_vt_shift must be positive")
        if vdd <= 0.0:
            raise OptimizationError("vdd must be positive")
        netlist.validate()
        self.netlist = netlist
        self.technology = technology
        self.vdd = vdd
        self.high_vt_shift = high_vt_shift
        self._analyzer = StaticTimingAnalyzer(
            technology, wire_length_per_fanout_um
        )
        self._characterizer = CellCharacterizer(technology)
        self._leakage_cache: Dict = {}

    # ------------------------------------------------------------------
    def leakage(self, assignment: Optional[FrozenSet[str]] = None) -> float:
        """Netlist leakage current for a high-V_T gate set [A]."""
        assignment = assignment or frozenset()
        total = 0.0
        for name, instance in self.netlist.instances.items():
            shift = self.high_vt_shift if name in assignment else 0.0
            key = (instance.cell.name, shift)
            if key not in self._leakage_cache:
                self._leakage_cache[key] = (
                    self._characterizer.leakage_current(
                        instance.cell, self.vdd, vt_shift=shift
                    )
                )
            total += self._leakage_cache[key]
        return total

    def delay(self, assignment: Optional[FrozenSet[str]] = None) -> float:
        """Critical-path delay for a high-V_T gate set [s]."""
        shifts = {
            name: self.high_vt_shift for name in (assignment or frozenset())
        }
        return self._analyzer.analyze(
            self.netlist, self.vdd, per_instance_vt_shifts=shifts
        ).delay_s

    # ------------------------------------------------------------------
    def optimize(
        self, delay_budget: float = 1.0, max_passes: int = 2
    ) -> DualVtAssignment:
        """Greedy assignment under a delay budget.

        ``delay_budget`` is the allowed critical-path growth factor
        (1.0 = no slowdown).  Gates are visited most-slack-first;
        each accepted move keeps the timing check green.  A second
        pass picks up gates whose slack grew after others slowed.
        """
        if delay_budget < 1.0:
            raise OptimizationError("delay budget must be >= 1.0")
        if max_passes < 1:
            raise OptimizationError("max_passes must be >= 1")
        baseline_delay = self.delay()
        baseline_leakage = self.leakage()
        target = baseline_delay * delay_budget

        assignment: set = set()
        for _ in range(max_passes):
            shifts = {name: self.high_vt_shift for name in assignment}
            slacks = self._analyzer.slacks(
                self.netlist,
                self.vdd,
                per_instance_vt_shifts=shifts,
                required_time_s=target,
            )
            candidates = sorted(
                (
                    name
                    for name in self.netlist.instances
                    if name not in assignment
                ),
                key=lambda name: slacks[name],
                reverse=True,
            )
            accepted_this_pass = 0
            for name in candidates:
                if slacks[name] <= 0.0:
                    break  # all remaining gates are tighter still
                trial = frozenset(assignment | {name})
                if self.delay(trial) <= target:
                    assignment.add(name)
                    accepted_this_pass += 1
            if accepted_this_pass == 0:
                break

        final = frozenset(assignment)
        return DualVtAssignment(
            high_vt_gates=final,
            total_gates=len(self.netlist.instances),
            delay_s=self.delay(final),
            leakage_a=self.leakage(final),
            baseline_delay_s=baseline_delay,
            baseline_leakage_a=baseline_leakage,
        )
