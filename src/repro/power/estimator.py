"""Netlist-level power estimation.

Combines an :class:`~repro.switchsim.activity.ActivityReport` with the
technology models to produce the Section 2 power breakdown — including
the two effects the paper says contemporary tools missed: the
non-linear C(V_DD) (inherited from net extraction) and subthreshold
leakage (summed per cell with the stack effect).
"""

from __future__ import annotations

from typing import Optional

from repro.circuits.netlist import Netlist
from repro.device.technology import Technology
from repro.errors import AnalysisError
from repro.power.components import PowerBreakdown
from repro.switchsim.activity import ActivityReport
from repro.tech.characterize import CellCharacterizer

__all__ = ["PowerEstimator"]


class PowerEstimator:
    """Estimates the power of one netlist in one technology."""

    def __init__(
        self,
        netlist: Netlist,
        technology: Technology,
        wire_length_per_fanout_um: float = 5.0,
    ):
        netlist.validate()
        self.netlist = netlist
        self.technology = technology
        self.wire_length_per_fanout_um = wire_length_per_fanout_um
        self._characterizer = CellCharacterizer(technology)

    # ------------------------------------------------------------------
    # Components
    # ------------------------------------------------------------------
    def switching_power(
        self, report: ActivityReport, vdd: float, frequency_hz: float
    ) -> float:
        """Eq. 1 summed over nets, using simulated alphas [W]."""
        self._check(vdd, frequency_hz)
        energy = report.switching_energy_per_cycle(
            self.netlist, self.technology, vdd,
            self.wire_length_per_fanout_um,
        )
        return energy * frequency_hz

    def leakage_current(self, vdd: float, vt_shift: float = 0.0) -> float:
        """Total subthreshold leakage of the netlist [A]."""
        if vdd <= 0.0:
            raise AnalysisError("vdd must be positive")
        return sum(
            self._characterizer.leakage_current(
                instance.cell, vdd, vt_shift=vt_shift
            )
            for instance in self.netlist.instances.values()
        )

    def leakage_power(self, vdd: float, vt_shift: float = 0.0) -> float:
        """Static power of the netlist [W]."""
        return self.leakage_current(vdd, vt_shift) * vdd

    def short_circuit_power(
        self, report: ActivityReport, vdd: float, frequency_hz: float
    ) -> float:
        """Veendrick short-circuit power over all gates [W].

        Each gate's input transition time is approximated by its
        driver's propagation delay — the matched-edge-rate assumption
        under which the paper bounds this term below ~10 %.
        """
        self._check(vdd, frequency_hz)
        total_energy = 0.0
        for instance in self.netlist.instances.values():
            transitions = sum(
                report.rising.get(net, 0) + report.falling.get(net, 0)
                for net in instance.inputs
            ) / report.cycles
            if transitions == 0.0:
                continue
            driver_delay = self._input_transition_time(instance, vdd)
            energy = self._characterizer.short_circuit_energy(
                instance.cell, vdd, 0.0, driver_delay
            )
            total_energy += energy * transitions
        return total_energy * frequency_hz

    def breakdown(
        self,
        report: ActivityReport,
        vdd: float,
        frequency_hz: float,
        vt_shift: float = 0.0,
    ) -> PowerBreakdown:
        """Full Section 2 decomposition at an operating point."""
        return PowerBreakdown(
            switching_w=self.switching_power(report, vdd, frequency_hz),
            short_circuit_w=self.short_circuit_power(
                report, vdd, frequency_hz
            ),
            leakage_w=self.leakage_power(vdd, vt_shift),
        )

    # ------------------------------------------------------------------
    def _input_transition_time(self, instance, vdd: float) -> float:
        driver = self.netlist.driver(instance.inputs[0])
        if driver is None:
            # Primary input: assume an inverter-quality edge.
            from repro.tech.cells import standard_cells

            inverter = standard_cells()["INV"]
            return self._characterizer.propagation_delay(
                inverter, vdd, 10e-15
            )
        load = self.netlist.net_capacitance(
            driver.output, self.technology, vdd,
            self.wire_length_per_fanout_um,
        )
        return self._characterizer.propagation_delay(
            driver.cell, vdd, load
        )

    @staticmethod
    def _check(vdd: float, frequency_hz: float) -> None:
        if vdd <= 0.0 or frequency_hz <= 0.0:
            raise AnalysisError("vdd and frequency must be positive")
