"""Per-cycle module energy models (paper Eqs. 3-4 and Section 4).

The paper compares a fixed-low-V_T SOI module against burst-mode
alternatives under three activity variables: node activity ``alpha``,
block-enable activity ``fga``, and V_T-control activity ``bga``.

Eq. 3 (fixed low V_T)::

    E_SOI = fga * alpha * C_fg * V_DD^2 + I_leak(low) * V_DD * t_cyc

Eq. 4 (SOIAS, V_T switched per block)::

    E_SOIAS = fga * alpha * C_fg * V_DD^2
            + bga * C_bg * V_bg^2
            + fga * I_leak(low) * V_DD * t_cyc
            + (1 - fga) * I_leak(high) * V_DD * t_cyc

The MTCMOS and VTCMOS variants share the same algebra with different
control-overhead and standby-leakage terms.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.circuits.netlist import Netlist
from repro.device.technology import Technology
from repro.errors import AnalysisError
from repro.switchsim.activity import ActivityReport
from repro.tech.characterize import CellCharacterizer

__all__ = [
    "ModuleEnergyParameters",
    "e_soi",
    "e_soias",
    "e_mtcmos",
    "e_vtcmos",
    "energy_ratio_soias_vs_soi",
    "module_parameters_from_activity",
]


@dataclass(frozen=True)
class ModuleEnergyParameters:
    """Electrical summary of one functional module.

    Parameters
    ----------
    name:
        Module name ("adder", "multiplier", ...).
    switched_capacitance_f:
        ``alpha * C_fg`` — the activity-weighted front-gate switched
        capacitance per active cycle [F] (what an activity report
        measures directly).
    leakage_low_vt_a:
        Module leakage current with devices at the low (active)
        threshold [A].
    leakage_high_vt_a:
        Module leakage at the high (standby) threshold [A].
    back_gate_capacitance_f:
        Total back-gate (or sleep-control) capacitance C_bg [F].
    back_gate_swing_v:
        Voltage swing of the V_T control lines [V].
    """

    name: str
    switched_capacitance_f: float
    leakage_low_vt_a: float
    leakage_high_vt_a: float
    back_gate_capacitance_f: float
    back_gate_swing_v: float

    def __post_init__(self) -> None:
        for field_name in (
            "switched_capacitance_f",
            "leakage_low_vt_a",
            "leakage_high_vt_a",
            "back_gate_capacitance_f",
            "back_gate_swing_v",
        ):
            if getattr(self, field_name) < 0.0:
                raise AnalysisError(f"{field_name} must be >= 0")
        if self.leakage_high_vt_a > self.leakage_low_vt_a:
            raise AnalysisError(
                "high-V_T leakage cannot exceed low-V_T leakage"
            )

    def with_back_gate_swing(self, swing: float) -> "ModuleEnergyParameters":
        """Copy with a different control swing (for ablations)."""
        return replace(self, back_gate_swing_v=swing)


def _check_activities(fga: float, bga: float) -> None:
    if not 0.0 <= fga <= 1.0:
        raise AnalysisError(f"fga must be in [0, 1], got {fga}")
    if not 0.0 <= bga <= 1.0:
        raise AnalysisError(f"bga must be in [0, 1], got {bga}")
    if bga > fga + 1e-12:
        raise AnalysisError(
            f"bga ({bga}) cannot exceed fga ({fga}): a block cannot be "
            "powered up more often than it is used"
        )


def _check_operating_point(vdd: float, t_cycle_s: float) -> None:
    if vdd <= 0.0:
        raise AnalysisError("vdd must be positive")
    if t_cycle_s <= 0.0:
        raise AnalysisError("cycle time must be positive")


def e_soi(
    module: ModuleEnergyParameters,
    fga: float,
    vdd: float,
    t_cycle_s: float,
) -> float:
    """Eq. 3: average energy per cycle in fixed-low-V_T SOI [J].

    The module's clock is gated when unused (the ``fga`` factor on the
    switching term) but its devices leak continuously.
    """
    _check_activities(fga, 0.0)
    _check_operating_point(vdd, t_cycle_s)
    switching = fga * module.switched_capacitance_f * vdd * vdd
    leakage = module.leakage_low_vt_a * vdd * t_cycle_s
    return switching + leakage


def e_soias(
    module: ModuleEnergyParameters,
    fga: float,
    bga: float,
    vdd: float,
    t_cycle_s: float,
) -> float:
    """Eq. 4: average energy per cycle in back-gated SOIAS [J].

    The back gate charges ``bga`` of the time (overhead); in exchange
    the module leaks at the low threshold only while in use.
    """
    _check_activities(fga, bga)
    _check_operating_point(vdd, t_cycle_s)
    switching = fga * module.switched_capacitance_f * vdd * vdd
    back_gate = (
        bga
        * module.back_gate_capacitance_f
        * module.back_gate_swing_v**2
    )
    active_leak = fga * module.leakage_low_vt_a * vdd * t_cycle_s
    standby_leak = (1.0 - fga) * module.leakage_high_vt_a * vdd * t_cycle_s
    return switching + back_gate + active_leak + standby_leak


def e_mtcmos(
    module: ModuleEnergyParameters,
    fga: float,
    bga: float,
    vdd: float,
    t_cycle_s: float,
    sleep_control_capacitance_f: Optional[float] = None,
) -> float:
    """MTCMOS variant: high-V_T sleep devices gate low-V_T logic [J].

    Identical algebra to Eq. 4 except the control overhead charges the
    sleep-transistor gates to V_DD (not a separate back-gate rail), and
    standby leakage is the sleep device's high-V_T leakage.
    """
    _check_activities(fga, bga)
    _check_operating_point(vdd, t_cycle_s)
    control_cap = (
        module.back_gate_capacitance_f
        if sleep_control_capacitance_f is None
        else sleep_control_capacitance_f
    )
    if control_cap < 0.0:
        raise AnalysisError("sleep control capacitance must be >= 0")
    switching = fga * module.switched_capacitance_f * vdd * vdd
    control = bga * control_cap * vdd * vdd
    active_leak = fga * module.leakage_low_vt_a * vdd * t_cycle_s
    standby_leak = (1.0 - fga) * module.leakage_high_vt_a * vdd * t_cycle_s
    return switching + control + active_leak + standby_leak


def e_vtcmos(
    module: ModuleEnergyParameters,
    fga: float,
    bga: float,
    vdd: float,
    t_cycle_s: float,
    well_capacitance_f: float,
    body_bias_swing_v: float,
) -> float:
    """VTCMOS (substrate-bias) variant [J].

    The well/body node is a large capacitance and — because V_T moves
    only with the *square root* of body bias — the swing needed for a
    few hundred mV of threshold shift is volts, making the control
    term expensive.  That is the paper's stated caveat for this scheme.
    """
    _check_activities(fga, bga)
    _check_operating_point(vdd, t_cycle_s)
    if well_capacitance_f < 0.0 or body_bias_swing_v < 0.0:
        raise AnalysisError("well capacitance and swing must be >= 0")
    switching = fga * module.switched_capacitance_f * vdd * vdd
    control = bga * well_capacitance_f * body_bias_swing_v**2
    active_leak = fga * module.leakage_low_vt_a * vdd * t_cycle_s
    standby_leak = (1.0 - fga) * module.leakage_high_vt_a * vdd * t_cycle_s
    return switching + control + active_leak + standby_leak


def e_soias_gated(
    module: ModuleEnergyParameters,
    use_fraction: float,
    powered_fraction: float,
    bga: float,
    vdd: float,
    t_cycle_s: float,
) -> float:
    """Eq. 4 generalized for a hysteresis gating policy [J].

    A keep-alive policy separates the switching exposure
    (``use_fraction``) from the low-V_T leakage exposure
    (``powered_fraction`` >= use_fraction): the module burns low-V_T
    leakage through kept-alive idle gaps but pays fewer back-gate
    toggles.  With ``powered_fraction == use_fraction`` this is exactly
    :func:`e_soias`.
    """
    _check_activities(use_fraction, bga)
    _check_operating_point(vdd, t_cycle_s)
    if not use_fraction <= powered_fraction <= 1.0:
        raise AnalysisError(
            "powered_fraction must lie in [use_fraction, 1]"
        )
    switching = use_fraction * module.switched_capacitance_f * vdd * vdd
    back_gate = (
        bga * module.back_gate_capacitance_f * module.back_gate_swing_v**2
    )
    active_leak = powered_fraction * module.leakage_low_vt_a * vdd * t_cycle_s
    standby_leak = (
        (1.0 - powered_fraction)
        * module.leakage_high_vt_a
        * vdd
        * t_cycle_s
    )
    return switching + back_gate + active_leak + standby_leak


def energy_ratio_soias_vs_soi(
    module: ModuleEnergyParameters,
    fga: float,
    bga: float,
    vdd: float,
    t_cycle_s: float,
) -> float:
    """``E_SOIAS / E_SOI`` — below 1.0 means SOIAS wins (Fig. 10)."""
    soi = e_soi(module, fga, vdd, t_cycle_s)
    if soi <= 0.0:
        raise AnalysisError("E_SOI is zero; ratio undefined")
    return e_soias(module, fga, bga, vdd, t_cycle_s) / soi


def module_parameters_from_activity(
    netlist: Netlist,
    report: ActivityReport,
    technology: Technology,
    vdd: float,
    active_vt_shift: Optional[float] = None,
    standby_vt_shift: float = 0.0,
    wire_length_per_fanout_um: float = 5.0,
) -> ModuleEnergyParameters:
    """Extract Eq. 3/4 parameters from a simulated module.

    ``alpha * C_fg`` comes straight from the activity report; the two
    leakage corners are summed over cells at the active and standby
    threshold shifts.  For a back-gated technology the default shifts
    are full-forward-drive (active) and zero (standby), and C_bg is
    the buried-oxide capacitance under every device gate.
    """
    if technology.is_back_gated and active_vt_shift is None:
        back_gate = technology.back_gate
        active_vt_shift = back_gate.vt_shift_at(
            min(technology.back_gate_swing, back_gate.max_back_gate_bias)
        )
    active_vt_shift = 0.0 if active_vt_shift is None else active_vt_shift

    switched = report.switched_capacitance(
        netlist, technology, vdd, wire_length_per_fanout_um
    )
    characterizer = CellCharacterizer(technology)
    leak_low = 0.0
    leak_high = 0.0
    gate_area_um2 = 0.0
    for instance in netlist.instances.values():
        cell = instance.cell
        leak_low += characterizer.leakage_current(
            cell, vdd, vt_shift=active_vt_shift
        )
        leak_high += characterizer.leakage_current(
            cell, vdd, vt_shift=standby_vt_shift
        )
        device_width = (
            cell.nmos_count * cell.input_nmos_width_um
            + cell.pmos_count * cell.input_pmos_width_um
        )
        gate_area_um2 += device_width * technology.drawn_length_um
    back_gate_cap = gate_area_um2 * technology.back_gate_cap_f_per_um2
    return ModuleEnergyParameters(
        name=netlist.name,
        switched_capacitance_f=switched,
        leakage_low_vt_a=leak_low,
        leakage_high_vt_a=min(leak_high, leak_low),
        back_gate_capacitance_f=back_gate_cap,
        back_gate_swing_v=technology.back_gate_swing,
    )
