"""Fixed-throughput (V_DD, V_T) optimization (paper Figs. 3-4).

For a bounded-computation-rate application the delay is pinned and the
knobs are the supply and the threshold:

* :class:`RingOscillatorModel` — the experimental structure the paper
  measured: stage delay, supply-for-delay solving, and energy per
  cycle including leakage.
* :class:`FixedThroughputOptimizer` — sweeps V_T solving V_DD for the
  delay target at every point (Fig. 3) and finds the energy-optimal
  pair (Fig. 4).  Because lowering V_T lets V_DD drop (quadratic
  switching win) while raising leakage (exponential loss), the energy
  is U-shaped in V_T with an optimum typically well below 1 V.

Both optimizers also support a **statistical mode** driven by a
:class:`VariationSpec`: instead of the nominal corner, the V_DD solve
targets the p-th percentile of a Monte-Carlo delay distribution
(yield-constrained timing) and the energy model prices leakage at the
sampled mean — the lognormal mean-shift that makes real silicon leak
more than its nominal corner says.  With ``variation=None`` the
optimizers are bit-identical to the purely nominal behavior.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro import obs
from repro.device.technology import Technology
from repro.errors import OptimizationError
from repro.tech.cells import standard_cells
from repro.tech.characterize import CellCharacterizer

__all__ = [
    "OperatingPoint",
    "StatisticalOperatingPoint",
    "VariationSpec",
    "RingOscillatorModel",
    "FixedThroughputOptimizer",
    "ModuleThroughputOptimizer",
]

_BISECTION_STEPS = 70
#: Coarse-scan resolution used to bracket the global energy basin
#: before golden-section refinement.  Clamping at the low V_DD bound
#: splits the landscape into two regimes — a clamped boundary branch
#: (energy falling with V_T at fixed minimum supply) and the interior
#: fixed-delay locus (the Fig. 4 U) — so the energy is not globally
#: unimodal and an unbracketed golden-section can converge to the
#: wrong basin.
_SCAN_POINTS = 25
_GOLDEN = 0.6180339887498949


def _bracketed_golden_minimum(energy, low, high, tolerance):
    """V_T of the global energy minimum in [low, high].

    Scans ``_SCAN_POINTS`` evenly spaced probes to find the best
    basin, then golden-section refines inside the bracketing pair of
    neighbours.  ``energy`` returns +inf for infeasible V_T.
    """
    grid = [
        low + (high - low) * i / (_SCAN_POINTS - 1)
        for i in range(_SCAN_POINTS)
    ]
    coarse = [energy(vt) for vt in grid]
    if all(value == float("inf") for value in coarse):
        raise OptimizationError(
            "delay target infeasible across the whole V_T range"
        )
    best = min(range(len(coarse)), key=coarse.__getitem__)
    a = grid[max(best - 1, 0)]
    b = grid[min(best + 1, len(grid) - 1)]
    c = b - _GOLDEN * (b - a)
    d = a + _GOLDEN * (b - a)
    fc, fd = energy(c), energy(d)
    while b - a > tolerance:
        if fc <= fd:
            b, d, fd = d, c, fc
            c = b - _GOLDEN * (b - a)
            fc = energy(c)
        else:
            a, c, fc = c, d, fd
            d = a + _GOLDEN * (b - a)
            fd = energy(d)
    candidates = [(coarse[best], grid[best]), (fc, c), (fd, d)]
    # Ties (degenerate brackets, plateaus) break to the lowest V_T —
    # explicitly, rather than leaning on tuple comparison reaching the
    # V_T element.
    return min(candidates, key=lambda pair: (pair[0], pair[1]))[1]


def _percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile, p in [0, 100].

    Replicates :meth:`repro.analysis.variation.Distribution.percentile`
    exactly (same order statistics, same interpolation) so yield solves
    agree bit-for-bit with the Monte-Carlo analyzer's view of the same
    samples.
    """
    ordered = sorted(values)
    position = p / 100.0 * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


@dataclass(frozen=True)
class VariationSpec:
    """Statistical corner description for yield-constrained optimization.

    Parameters
    ----------
    percentile:
        Timing yield target: the V_DD solve constrains the p-th
        percentile of the Monte-Carlo delay distribution (99 = 99 % of
        sampled corners meet timing).
    vt_sigma:
        Gaussian V_T spread [V], applied as a common shift to both
        device polarities per sample (die-to-die variation).
    n_samples:
        Monte-Carlo samples per solve.  The shift vector is drawn once
        per solve and reused across every probed V_DD, which keeps the
        percentile delay monotone in V_DD (bisection stays valid).
    seed:
        Deterministic sampling seed; the draw matches
        :meth:`repro.analysis.variation.MonteCarloAnalyzer.
        sample_vt_shifts` for the same (sigma, samples, seed).
    """

    percentile: float = 99.0
    vt_sigma: float = 0.03
    n_samples: int = 300
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.percentile <= 100.0:
            raise OptimizationError("percentile must be in [0, 100]")
        if self.vt_sigma < 0.0:
            raise OptimizationError("vt_sigma must be >= 0")
        if self.n_samples < 2:
            raise OptimizationError("need at least two samples")

    def draw_shifts(self) -> List[float]:
        """The deterministic Gaussian V_T shift vector for this spec."""
        rng = random.Random(self.seed)
        return [
            rng.gauss(0.0, self.vt_sigma) for _ in range(self.n_samples)
        ]


@dataclass(frozen=True)
class OperatingPoint:
    """One point on a fixed-delay locus."""

    vt: float
    vdd: float
    stage_delay_s: float
    energy_per_cycle_j: float
    switching_energy_j: float
    leakage_energy_j: float

    @property
    def leakage_fraction(self) -> float:
        """Leakage share of the cycle energy."""
        if self.energy_per_cycle_j <= 0.0:
            return 0.0
        return self.leakage_energy_j / self.energy_per_cycle_j


@dataclass(frozen=True)
class StatisticalOperatingPoint(OperatingPoint):
    """A yield-constrained operating point (statistical mode).

    Extends the nominal :class:`OperatingPoint` with the Monte-Carlo
    quantities the solve was driven by: ``stage_delay_s`` remains the
    *nominal* delay at the solved supply, ``delay_percentile_s`` is
    the p-th percentile delay the yield constraint pinned to the
    target, and ``leakage_energy_j`` already prices the *mean* sampled
    leakage.  ``leakage_amplification`` (sampled mean over nominal) is
    cross-checkable against ``lognormal_amplification``, the
    closed-form :func:`repro.analysis.variation.
    lognormal_leakage_amplification` prediction for the same sigma.
    """

    percentile: float = 99.0
    delay_percentile_s: float = 0.0
    leakage_amplification: float = 1.0
    lognormal_amplification: float = 1.0


class RingOscillatorModel:
    """Analytical ring-oscillator: the paper's measurement structure.

    Parameters
    ----------
    technology:
        Base process; V_T is varied via ``with_vt``.
    stages:
        Inverters in the ring (odd; the paper used ~101-stage rings).
    activity:
        Average node transition activity of the *module* the ring
        stands in for (1.0 for the ring itself, lower for logic).
    max_corners:
        Bound on the per-corner characterizer LRU.  Golden-section
        probes visit a fresh V_T per step, and each corner carries its
        own (cell, vdd, load) memo — without a bound a long-lived
        model leaks memory across repeated ``optimum`` calls.  The
        default comfortably covers one sweep plus one golden-section
        search with no evictions.
    store:
        Optional :class:`repro.store.ResultStore`.  Each corner's
        characterizer loads previously flushed entries for its exact
        (technology, V_T) pair and :meth:`flush_store` persists them —
        a warm store turns repeat optimizations into pure lookups.
    """

    def __init__(
        self,
        technology: Technology,
        stages: int = 101,
        activity: float = 1.0,
        max_corners: int = 64,
        store=None,
    ):
        if stages < 3 or stages % 2 == 0:
            raise OptimizationError("stages must be odd and >= 3")
        if not 0.0 < activity <= 2.0:
            raise OptimizationError("activity must be in (0, 2]")
        if max_corners < 1:
            raise OptimizationError("max_corners must be >= 1")
        self.technology = technology
        self.stages = stages
        self.activity = activity
        self.max_corners = max_corners
        self.store = store
        self._inverter = standard_cells()["INV"]
        self._corners: "OrderedDict[float, CellCharacterizer]" = OrderedDict()
        self._corner_hits = 0
        self._corner_misses = 0
        # Most-recent corner, kept out of the OrderedDict lookup:
        # bisection probes the same V_T dozens of times consecutively,
        # so the common hit is a float compare, not an LRU reorder.
        self._last_vt: Optional[float] = None
        self._last_corner: Optional[CellCharacterizer] = None

    def _corner(self, vt: float) -> CellCharacterizer:
        """Memoized characterizer for the V_T corner (bounded LRU).

        Bisection revisits the same V_T dozens of times per
        ``solve_vdd_for_delay`` call; sharing one characterizer per
        corner lets its internal (cell, vdd, load) memo accumulate
        across the whole sweep instead of being rebuilt per query.
        The least-recently-used corner is evicted beyond
        ``max_corners``, bounding memory on long-lived models.
        """
        if vt == self._last_vt:
            self._corner_hits += 1
            if obs.ENABLED:
                obs.incr("ring.corner_hits")
            return self._last_corner
        corner = self._corners.get(vt)
        if corner is None:
            self._corner_misses += 1
            if obs.ENABLED:
                obs.incr("ring.corner_misses")
            corner = CellCharacterizer(
                self.technology.with_vt(vt), store=self.store
            )
            self._corners[vt] = corner
            if len(self._corners) > self.max_corners:
                evicted_vt, _ = self._corners.popitem(last=False)
                if evicted_vt == self._last_vt:
                    self._last_vt = None
                    self._last_corner = None
                if obs.ENABLED:
                    obs.incr("ring.corner_evictions")
        else:
            self._corner_hits += 1
            if obs.ENABLED:
                obs.incr("ring.corner_hits")
            self._corners.move_to_end(vt)
        self._last_vt = vt
        self._last_corner = corner
        return corner

    def cache_info(self) -> obs.CacheInfo:
        """``lru_cache``-style statistics for the corner LRU."""
        return obs.CacheInfo(
            hits=self._corner_hits,
            misses=self._corner_misses,
            currsize=len(self._corners),
            maxsize=self.max_corners,
        )

    def clear_corners(self) -> None:
        """Drop every cached corner and zero the LRU statistics."""
        self._corners.clear()
        self._last_vt = None
        self._last_corner = None
        self._corner_hits = 0
        self._corner_misses = 0

    def flush_store(self) -> int:
        """Persist every live corner's characterization memo.

        Returns the total number of entries written (0 without a
        store).  Corners already evicted from the LRU are not
        re-flushed — call this at natural boundaries (end of a sweep
        or ``optimum``) rather than once per probe.
        """
        if self.store is None:
            return 0
        return sum(
            corner.flush_store() for corner in self._corners.values()
        )

    def stage_delay(self, vdd: float, vt: float) -> float:
        """Fanout-1 inverter delay at a corner [s].

        Every call is exactly one characterizer fanout-delay query
        (served through the corner's decoded
        :class:`~repro.tech.opplan.OperatingPlan` — same memo family,
        same floats), and ``optimizer.delay_probes`` counts it here —
        at the query site — so the counter matches the actual
        characterizer traffic even for probes issued outside a solve
        (``energy_per_cycle``'s re-probe, ``locus_point``, direct
        calls).
        """
        if vdd <= 0.0:
            raise OptimizationError("vdd must be positive")
        if obs.ENABLED:
            obs.incr("optimizer.delay_probes")
        return self._corner(vt).planned_fanout_delay(
            self._inverter, vdd, fanout=1
        )

    def oscillation_period(self, vdd: float, vt: float) -> float:
        """Ring period: two traversals of the chain [s]."""
        return 2.0 * self.stages * self.stage_delay(vdd, vt)

    def solve_vdd_for_delay(
        self,
        target_stage_delay_s: float,
        vt: float,
        vdd_bounds: Optional[Sequence[float]] = None,
    ) -> float:
        """Supply voltage giving the target stage delay (Fig. 3).

        Delay decreases monotonically with V_DD, so bisection applies.
        If the ring already meets the target at the *low* V_DD bound,
        the solve clamps and returns ``low`` — the structure simply
        runs faster than required at the minimum supply (the same
        semantics as
        :meth:`ModuleThroughputOptimizer.solve_vdd_for_delay`; energy
        accounting still integrates leakage over the target period).

        Raises
        ------
        OptimizationError
            If the target is unreachable inside the bounds (too slow
            even at max V_DD).
        """
        if target_stage_delay_s <= 0.0:
            raise OptimizationError("target delay must be positive")
        if vdd_bounds is None:
            vdd_bounds = (self.technology.min_vdd, self.technology.max_vdd)
        low, high = float(vdd_bounds[0]), float(vdd_bounds[1])
        if not 0.0 < low < high:
            raise OptimizationError(f"bad vdd bounds [{low}, {high}]")
        if obs.ENABLED:
            obs.incr("optimizer.vdd_solves")
        # One decoded plan serves the bracket checks and every
        # bisection step: the V_DD-invariant drive constants and
        # capacitance geometry are resolved once per solve instead of
        # once per probe, and each probe is bit-identical to a
        # stage_delay call at the same corner.
        plan = self._corner(vt).plan_operating(self._inverter, fanout=1)
        delay_at = plan.delay
        if delay_at(high) > target_stage_delay_s:
            raise OptimizationError(
                f"target {target_stage_delay_s:.3e} s unreachable: still "
                f"slower at V_DD = {high} V (V_T = {vt} V)"
            )
        if delay_at(low) < target_stage_delay_s:
            if obs.ENABLED:
                obs.incr("optimizer.low_bound_clamps")
            return low
        for _ in range(_BISECTION_STEPS):
            mid = 0.5 * (low + high)
            if delay_at(mid) > target_stage_delay_s:
                low = mid
            else:
                high = mid
        # Plan-kernel probes bypass the characterizer memo, so
        # ``optimizer.delay_probes`` keeps matching the characterizer's
        # fanout-family traffic: both drop the solve's internal probes
        # together.
        return 0.5 * (low + high)

    def energy_per_cycle(
        self, vdd: float, vt: float, cycle_time_s: float
    ) -> OperatingPoint:
        """Switching + leakage energy of the ring per clock cycle [J].

        Switching: every stage's load charges ``activity`` times per
        cycle.  Leakage: every stage leaks for the whole cycle — this
        is the term that turns the energy-vs-V_T curve back up at low
        V_T (Fig. 4).
        """
        if cycle_time_s <= 0.0:
            raise OptimizationError("cycle time must be positive")
        # The plan's energies kernel returns the raw (E_transition,
        # I_leak) pair — the same floats the scalar input_capacitance /
        # energy_per_transition / leakage_current chain produced — so
        # the stages/activity/cycle association below is unchanged.
        plan = self._corner(vt).plan_operating(self._inverter, fanout=1)
        switching_per_stage, leak_per_stage = plan.energies((vdd,))[0]
        switching = self.stages * self.activity * switching_per_stage
        leakage_current = self.stages * leak_per_stage
        leakage = leakage_current * vdd * cycle_time_s
        return OperatingPoint(
            vt=vt,
            vdd=vdd,
            stage_delay_s=self.stage_delay(vdd, vt),
            energy_per_cycle_j=switching + leakage,
            switching_energy_j=switching,
            leakage_energy_j=leakage,
        )

    # ------------------------------------------------------------------
    # Statistical (yield-constrained) mode
    # ------------------------------------------------------------------
    def _stage_delay_percentile(
        self, vdd: float, vt: float, shifts: Sequence[float],
        percentile: float,
    ) -> float:
        """p-th percentile of the batched stage-delay distribution [s].

        One :class:`~repro.tech.batch.VariationPlan` per probed
        (V_T, V_DD) corner; the whole shift vector is evaluated through
        its tight loop per probe.  A plan delay at shift 0 is
        bit-identical to :meth:`stage_delay` at the same corner.
        """
        corner = self._corner(vt)
        load = corner._input_capacitance(self._inverter, vdd)
        plan = corner.plan_variation(self._inverter, vdd, load)
        if obs.ENABLED:
            obs.incr("optimizer.mc_probes")
        return _percentile(plan.delays(shifts), percentile)

    def solve_vdd_for_yield(
        self,
        target_stage_delay_s: float,
        vt: float,
        percentile: float = 99.0,
        vt_sigma: float = 0.03,
        n_samples: int = 300,
        seed: int = 0,
        vdd_bounds: Optional[Sequence[float]] = None,
    ) -> float:
        """Supply at which the p-th percentile delay meets the target.

        The yield-constrained twin of :meth:`solve_vdd_for_delay`: the
        shift vector is drawn **once per solve** and reused across
        every probed V_DD, so each sample's delay — and therefore every
        order statistic of the distribution — decreases monotonically
        with V_DD and bisection applies.  Clamping at the low bound
        keeps the nominal solve's semantics: the p-th percentile corner
        is already fast enough at the minimum supply.

        Raises
        ------
        OptimizationError
            If the p-th percentile corner still misses the target at
            the high V_DD bound.
        """
        if target_stage_delay_s <= 0.0:
            raise OptimizationError("target delay must be positive")
        spec = VariationSpec(
            percentile=percentile, vt_sigma=vt_sigma,
            n_samples=n_samples, seed=seed,
        )
        if vdd_bounds is None:
            vdd_bounds = (self.technology.min_vdd, self.technology.max_vdd)
        low, high = float(vdd_bounds[0]), float(vdd_bounds[1])
        if not 0.0 < low < high:
            raise OptimizationError(f"bad vdd bounds [{low}, {high}]")
        if obs.ENABLED:
            obs.incr("optimizer.yield_solves")
        shifts = spec.draw_shifts()
        if (
            self._stage_delay_percentile(high, vt, shifts, percentile)
            > target_stage_delay_s
        ):
            raise OptimizationError(
                f"p{percentile:g} target {target_stage_delay_s:.3e} s "
                f"unreachable: still slower at V_DD = {high} V "
                f"(V_T = {vt} V, sigma = {vt_sigma} V)"
            )
        if (
            self._stage_delay_percentile(low, vt, shifts, percentile)
            < target_stage_delay_s
        ):
            if obs.ENABLED:
                obs.incr("optimizer.low_bound_clamps")
            return low
        for _ in range(_BISECTION_STEPS):
            mid = 0.5 * (low + high)
            if (
                self._stage_delay_percentile(mid, vt, shifts, percentile)
                > target_stage_delay_s
            ):
                low = mid
            else:
                high = mid
        return 0.5 * (low + high)

    def statistical_energy_per_cycle(
        self,
        vdd: float,
        vt: float,
        cycle_time_s: float,
        variation: VariationSpec,
    ) -> StatisticalOperatingPoint:
        """Cycle energy with leakage priced at the Monte-Carlo mean [J].

        Switching energy is shift-independent (C and V_DD do not vary
        here), but leakage is exponential in V_T, so the sampled mean
        exceeds the nominal corner's leakage — the lognormal mean
        amplification.  The measured amplification is reported next to
        the closed-form :func:`repro.analysis.variation.
        lognormal_leakage_amplification` prediction as a cross-check
        (they agree up to stack-effect and sampling corrections).
        """
        from repro.analysis.variation import lognormal_leakage_amplification

        if cycle_time_s <= 0.0:
            raise OptimizationError("cycle time must be positive")
        shifts = variation.draw_shifts()
        corner = self._corner(vt)
        load = self._inverter.input_capacitance(corner.technology, vdd)
        switching_per_stage = corner.energy_per_transition(
            self._inverter, vdd, load
        )
        switching = self.stages * self.activity * switching_per_stage
        leakage_plan = corner.plan_variation(self._inverter, vdd, 0.0)
        if obs.ENABLED:
            obs.incr("optimizer.mc_probes")
        leakages = leakage_plan.leakages(shifts)
        mean_leakage = sum(leakages) / len(leakages)
        nominal_leakage = corner.leakage_current(self._inverter, vdd)
        amplification = (
            mean_leakage / nominal_leakage if nominal_leakage > 0.0 else 1.0
        )
        predicted = lognormal_leakage_amplification(
            variation.vt_sigma,
            self.technology.transistors.nmos.subthreshold_swing,
        )
        if obs.ENABLED:
            obs.gauge("optimizer.leakage_amplification", amplification)
            obs.gauge("optimizer.leakage_amplification_lognormal", predicted)
        leakage = self.stages * mean_leakage * vdd * cycle_time_s
        delay_percentile = self._stage_delay_percentile(
            vdd, vt, shifts, variation.percentile
        )
        return StatisticalOperatingPoint(
            vt=vt,
            vdd=vdd,
            stage_delay_s=self.stage_delay(vdd, vt),
            energy_per_cycle_j=switching + leakage,
            switching_energy_j=switching,
            leakage_energy_j=leakage,
            percentile=variation.percentile,
            delay_percentile_s=delay_percentile,
            leakage_amplification=amplification,
            lognormal_amplification=predicted,
        )


class FixedThroughputOptimizer:
    """Finds energy-optimal (V_DD, V_T) at a fixed performance.

    The performance constraint is a stage-delay target (equivalently a
    ring-oscillator frequency, the paper's two "MHz" curve families in
    Fig. 4); the cycle time against which leakage integrates is the
    operation period ``cycle_stages * stage_delay``.

    With a :class:`VariationSpec` the whole locus turns statistical:
    each V_DD is solved so the p-th percentile Monte-Carlo delay meets
    the target (:meth:`RingOscillatorModel.solve_vdd_for_yield`) and
    the energy prices leakage at the sampled mean.  ``variation=None``
    (the default) reproduces the nominal optimizer bit-for-bit.
    """

    def __init__(
        self,
        ring: RingOscillatorModel,
        cycle_stages: int = 20,
        variation: Optional[VariationSpec] = None,
    ):
        if cycle_stages < 1:
            raise OptimizationError("cycle_stages must be >= 1")
        if variation is not None and not isinstance(variation, VariationSpec):
            raise OptimizationError(
                "variation must be a VariationSpec or None"
            )
        self.ring = ring
        self.cycle_stages = cycle_stages
        self.variation = variation

    def locus_point(
        self, vt: float, target_stage_delay_s: float
    ) -> OperatingPoint:
        """The fixed-delay operating point at one V_T.

        Statistical mode (``variation`` set on the optimizer) returns a
        :class:`StatisticalOperatingPoint` at the yield-constrained
        supply instead of the nominal one.
        """
        spec = self.variation
        if spec is None:
            vdd = self.ring.solve_vdd_for_delay(target_stage_delay_s, vt)
            cycle = self.cycle_stages * target_stage_delay_s
            return self.ring.energy_per_cycle(vdd, vt, cycle)
        vdd = self.ring.solve_vdd_for_yield(
            target_stage_delay_s,
            vt,
            percentile=spec.percentile,
            vt_sigma=spec.vt_sigma,
            n_samples=spec.n_samples,
            seed=spec.seed,
        )
        cycle = self.cycle_stages * target_stage_delay_s
        return self.ring.statistical_energy_per_cycle(vdd, vt, cycle, spec)

    def sweep(
        self,
        vts: Sequence[float],
        target_stage_delay_s: float,
        skip_infeasible: bool = True,
    ) -> List[OperatingPoint]:
        """Fig. 3/4 data: the fixed-delay locus over a V_T list.

        Each V_T's solve and energy evaluation run through that
        corner's decoded :class:`~repro.tech.opplan.OperatingPlan`
        (built once per corner, reused by the bracket checks, all
        bisection steps and the energy query), so the whole axis is
        evaluated through batched kernels while staying bit-identical
        to the scalar per-probe chain.
        """
        if not vts:
            raise OptimizationError("empty V_T sweep")
        points: List[OperatingPoint] = []
        with obs.span("optimizer.sweep"):
            for vt in vts:
                try:
                    points.append(
                        self.locus_point(vt, target_stage_delay_s)
                    )
                except OptimizationError:
                    if not skip_infeasible:
                        raise
        if not points:
            raise OptimizationError(
                "no feasible V_T in the sweep for this delay target"
            )
        return points

    def optimum(
        self,
        target_stage_delay_s: float,
        vt_bounds: Sequence[float] = (0.01, 0.6),
        tolerance: float = 1e-3,
    ) -> OperatingPoint:
        """Minimum-energy V_T (Fig. 4): coarse scan + golden section.

        The coarse scan brackets the global basin first because the
        low-V_DD clamp (see :meth:`RingOscillatorModel.
        solve_vdd_for_delay`) makes the energy landscape bimodal for
        targets the ring already meets at the minimum supply.
        """
        low, high = float(vt_bounds[0]), float(vt_bounds[1])
        if not low < high:
            raise OptimizationError(f"bad vt bounds [{low}, {high}]")

        def energy(vt: float) -> float:
            if obs.ENABLED:
                obs.incr("optimizer.golden_probes")
            try:
                return self.locus_point(vt, target_stage_delay_s).energy_per_cycle_j
            except OptimizationError:
                return float("inf")

        with obs.span("optimizer.optimum"):
            best_vt = _bracketed_golden_minimum(
                energy, low, high, tolerance
            )
            return self.locus_point(best_vt, target_stage_delay_s)


class ModuleThroughputOptimizer:
    """Fixed-throughput (V_DD, V_T) optimization for a real netlist.

    The ring-oscillator version above mirrors the paper's measurement
    structure; this one runs the same optimization on an arbitrary
    module: delay from register-aware static timing, switching energy
    from a simulated activity report (re-priced at each supply through
    the non-linear C(V)), leakage from the cell models at each
    (V_DD, V_T) corner.

    Parameters
    ----------
    netlist:
        The module under optimization.
    technology:
        Base process; ``vt`` below is an *absolute* logic threshold,
        applied as a shift from the base V_T0.
    activity_report:
        Simulated activity at a representative stimulus (the alpha
        values are treated as voltage-independent; the capacitances
        are not).
    variation:
        Optional :class:`VariationSpec` switching the optimizer into
        statistical mode (yield-constrained V_DD solves, mean-leakage
        energy pricing); ``None`` keeps the nominal behavior exactly.
    """

    def __init__(
        self,
        netlist,
        technology: Technology,
        activity_report,
        wire_length_per_fanout_um: float = 5.0,
        variation: Optional[VariationSpec] = None,
    ):
        from repro.circuits.timing import StaticTimingAnalyzer
        from repro.power.estimator import PowerEstimator

        if variation is not None and not isinstance(variation, VariationSpec):
            raise OptimizationError(
                "variation must be a VariationSpec or None"
            )
        self.netlist = netlist
        self.technology = technology
        self.report = activity_report
        self.variation = variation
        self._analyzer = StaticTimingAnalyzer(
            technology, wire_length_per_fanout_um
        )
        self._estimator = PowerEstimator(
            netlist, technology, wire_length_per_fanout_um
        )
        self._base_vt = technology.transistors.nmos.vt0
        self._wire = wire_length_per_fanout_um

    def _shift(self, vt: float) -> float:
        return vt - self._base_vt

    def delay(self, vdd: float, vt: float) -> float:
        """Critical-path delay at an absolute-V_T corner [s]."""
        return self._delay_at_shift(vdd, self._shift(vt))

    def _delay_at_shift(self, vdd: float, vt_shift: float) -> float:
        """STA delay at an explicit global shift (probe-counted)."""
        if obs.ENABLED:
            obs.incr("optimizer.delay_probes")
        return self._analyzer.analyze(
            self.netlist, vdd, vt_shift=vt_shift
        ).delay_s

    def solve_vdd_for_delay(
        self,
        target_delay_s: float,
        vt: float,
        vdd_bounds: Optional[Sequence[float]] = None,
    ) -> float:
        """Supply meeting the delay target at one V_T (Fig. 3).

        Clamps to the low V_DD bound when the module is already faster
        than the target there (the shared low-bound semantics — see
        :meth:`RingOscillatorModel.solve_vdd_for_delay`); raises only
        when the target is unreachable at the *high* bound.
        """
        if target_delay_s <= 0.0:
            raise OptimizationError("target delay must be positive")
        if vdd_bounds is None:
            vdd_bounds = (self.technology.min_vdd, self.technology.max_vdd)
        low, high = float(vdd_bounds[0]), float(vdd_bounds[1])
        if not 0.0 < low < high:
            raise OptimizationError(f"bad vdd bounds [{low}, {high}]")
        if obs.ENABLED:
            obs.incr("optimizer.vdd_solves")
        if self.delay(high, vt) > target_delay_s:
            raise OptimizationError(
                f"target {target_delay_s:.3e} s unreachable at "
                f"V_DD = {high} V (V_T = {vt} V)"
            )
        if self.delay(low, vt) < target_delay_s:
            if obs.ENABLED:
                obs.incr("optimizer.low_bound_clamps")
            return low
        for _ in range(_BISECTION_STEPS):
            mid = 0.5 * (low + high)
            if self.delay(mid, vt) > target_delay_s:
                low = mid
            else:
                high = mid
        return 0.5 * (low + high)

    def _delay_percentile(
        self,
        vdd: float,
        vt: float,
        ordered_shifts: Sequence[float],
        percentile: float,
    ) -> float:
        """p-th percentile of the sampled critical-path delay [s].

        The STA delay is a max over per-path delays, each monotone
        nondecreasing in the global V_T shift, so the sorted delay
        vector equals the delay evaluated at the *sorted shift vector*.
        The percentile therefore needs only the two bracketing shift
        order statistics — two STA runs per probe instead of
        ``n_samples`` — and is exactly equal to the full-vector
        percentile it shortcuts.
        """
        if obs.ENABLED:
            obs.incr("optimizer.mc_probes")
        position = percentile / 100.0 * (len(ordered_shifts) - 1)
        low = int(position)
        high = min(low + 1, len(ordered_shifts) - 1)
        fraction = position - low
        base = self._shift(vt)
        delay_low = self._delay_at_shift(vdd, base + ordered_shifts[low])
        if high == low or fraction == 0.0:
            return delay_low
        delay_high = self._delay_at_shift(vdd, base + ordered_shifts[high])
        return delay_low * (1.0 - fraction) + delay_high * fraction

    def solve_vdd_for_yield(
        self,
        target_delay_s: float,
        vt: float,
        percentile: float = 99.0,
        vt_sigma: float = 0.03,
        n_samples: int = 300,
        seed: int = 0,
        vdd_bounds: Optional[Sequence[float]] = None,
    ) -> float:
        """Supply at which the p-th percentile delay meets the target.

        The module-level twin of
        :meth:`RingOscillatorModel.solve_vdd_for_yield`: one shift
        vector per solve, reused across probed supplies, so every order
        statistic of the delay distribution is monotone decreasing in
        V_DD and bisection applies.  Low-bound clamp and unreachable
        semantics mirror :meth:`solve_vdd_for_delay`.
        """
        if target_delay_s <= 0.0:
            raise OptimizationError("target delay must be positive")
        spec = VariationSpec(
            percentile=percentile, vt_sigma=vt_sigma,
            n_samples=n_samples, seed=seed,
        )
        if vdd_bounds is None:
            vdd_bounds = (self.technology.min_vdd, self.technology.max_vdd)
        low, high = float(vdd_bounds[0]), float(vdd_bounds[1])
        if not 0.0 < low < high:
            raise OptimizationError(f"bad vdd bounds [{low}, {high}]")
        if obs.ENABLED:
            obs.incr("optimizer.yield_solves")
        ordered = sorted(spec.draw_shifts())
        if (
            self._delay_percentile(high, vt, ordered, percentile)
            > target_delay_s
        ):
            raise OptimizationError(
                f"p{percentile:g} target {target_delay_s:.3e} s "
                f"unreachable: still slower at V_DD = {high} V "
                f"(V_T = {vt} V, sigma = {vt_sigma} V)"
            )
        if (
            self._delay_percentile(low, vt, ordered, percentile)
            < target_delay_s
        ):
            if obs.ENABLED:
                obs.incr("optimizer.low_bound_clamps")
            return low
        for _ in range(_BISECTION_STEPS):
            mid = 0.5 * (low + high)
            if (
                self._delay_percentile(mid, vt, ordered, percentile)
                > target_delay_s
            ):
                low = mid
            else:
                high = mid
        return 0.5 * (low + high)

    def energy_per_operation(
        self, vdd: float, vt: float, operation_time_s: float
    ) -> OperatingPoint:
        """Switching + leakage energy for one operation period [J]."""
        if operation_time_s <= 0.0:
            raise OptimizationError("operation time must be positive")
        switching = self.report.switching_energy_per_cycle(
            self.netlist, self.technology, vdd, self._wire
        )
        leakage = (
            self._estimator.leakage_current(vdd, self._shift(vt))
            * vdd
            * operation_time_s
        )
        return OperatingPoint(
            vt=vt,
            vdd=vdd,
            stage_delay_s=self.delay(vdd, vt),
            energy_per_cycle_j=switching + leakage,
            switching_energy_j=switching,
            leakage_energy_j=leakage,
        )

    def statistical_energy_per_operation(
        self,
        vdd: float,
        vt: float,
        operation_time_s: float,
        variation: VariationSpec,
    ) -> StatisticalOperatingPoint:
        """Operation energy with leakage priced at the sampled mean [J].

        Leakage current is averaged over the full shift vector (the
        lognormal amplification the paper's subthreshold model implies)
        and cross-checked against the closed-form
        ``lognormal_leakage_amplification`` prediction; both ratios are
        reported on the returned point and as obs gauges.
        """
        from repro.analysis.variation import (
            lognormal_leakage_amplification,
        )

        if operation_time_s <= 0.0:
            raise OptimizationError("operation time must be positive")
        shifts = variation.draw_shifts()
        base = self._shift(vt)
        switching = self.report.switching_energy_per_cycle(
            self.netlist, self.technology, vdd, self._wire
        )
        currents = [
            self._estimator.leakage_current(vdd, base + s) for s in shifts
        ]
        mean_leakage = sum(currents) / len(currents)
        nominal_leakage = self._estimator.leakage_current(vdd, base)
        amplification = (
            mean_leakage / nominal_leakage if nominal_leakage > 0.0 else 1.0
        )
        predicted = lognormal_leakage_amplification(
            variation.vt_sigma,
            self.technology.transistors.nmos.subthreshold_swing,
        )
        if obs.ENABLED:
            obs.gauge("optimizer.leakage_amplification", amplification)
            obs.gauge(
                "optimizer.leakage_amplification_lognormal", predicted
            )
        leakage = mean_leakage * vdd * operation_time_s
        delay_percentile = self._delay_percentile(
            vdd, vt, sorted(shifts), variation.percentile
        )
        return StatisticalOperatingPoint(
            vt=vt,
            vdd=vdd,
            stage_delay_s=self.delay(vdd, vt),
            energy_per_cycle_j=switching + leakage,
            switching_energy_j=switching,
            leakage_energy_j=leakage,
            percentile=variation.percentile,
            delay_percentile_s=delay_percentile,
            leakage_amplification=amplification,
            lognormal_amplification=predicted,
        )

    def locus_point(
        self, vt: float, target_delay_s: float, utilization: float = 1.0
    ) -> OperatingPoint:
        """Fixed-throughput point: V_DD solved, leakage over the period.

        ``utilization`` < 1 means the module is clocked slower than its
        critical path allows (operation period = delay / utilization),
        lengthening the leakage integration window.  With a
        ``variation`` spec the supply is solved for the p-th percentile
        corner and the energy uses the statistical leakage mean.
        """
        if not 0.0 < utilization <= 1.0:
            raise OptimizationError("utilization must be in (0, 1]")
        spec = self.variation
        if spec is None:
            vdd = self.solve_vdd_for_delay(target_delay_s, vt)
            return self.energy_per_operation(
                vdd, vt, target_delay_s / utilization
            )
        vdd = self.solve_vdd_for_yield(
            target_delay_s,
            vt,
            percentile=spec.percentile,
            vt_sigma=spec.vt_sigma,
            n_samples=spec.n_samples,
            seed=spec.seed,
        )
        return self.statistical_energy_per_operation(
            vdd, vt, target_delay_s / utilization, spec
        )

    def sweep(
        self,
        vts: Sequence[float],
        target_delay_s: float,
        utilization: float = 1.0,
        skip_infeasible: bool = True,
    ) -> List[OperatingPoint]:
        """Fixed-throughput locus over a V_T list (Figs. 3-4 shape).

        ``skip_infeasible`` mirrors
        :meth:`FixedThroughputOptimizer.sweep`: by default infeasible
        V_T corners are dropped from the locus, but passing ``False``
        lets configuration errors (bad utilization, unreachable
        targets) surface instead of being silently swallowed.
        """
        if not vts:
            raise OptimizationError("empty V_T sweep")
        points = []
        with obs.span("optimizer.module_sweep"):
            for vt in vts:
                try:
                    points.append(
                        self.locus_point(vt, target_delay_s, utilization)
                    )
                except OptimizationError:
                    if not skip_infeasible:
                        raise
        if not points:
            raise OptimizationError(
                "no feasible V_T in the sweep for this delay target"
            )
        return points

    def optimum(
        self,
        target_delay_s: float,
        vt_bounds: Sequence[float] = (0.02, 0.5),
        utilization: float = 1.0,
        tolerance: float = 2e-3,
    ) -> OperatingPoint:
        """Minimum-energy V_T at fixed throughput (scan + golden section).

        Uses the same bracketed search as
        :meth:`FixedThroughputOptimizer.optimum` — the shared low-bound
        clamp makes the landscape bimodal for relaxed targets here too.
        """
        low, high = float(vt_bounds[0]), float(vt_bounds[1])
        if not low < high:
            raise OptimizationError(f"bad vt bounds [{low}, {high}]")

        def energy(vt: float) -> float:
            if obs.ENABLED:
                obs.incr("optimizer.golden_probes")
            try:
                return self.locus_point(
                    vt, target_delay_s, utilization
                ).energy_per_cycle_j
            except OptimizationError:
                return float("inf")

        with obs.span("optimizer.module_optimum"):
            best_vt = _bracketed_golden_minimum(
                energy, low, high, tolerance
            )
            return self.locus_point(best_vt, target_delay_s, utilization)
