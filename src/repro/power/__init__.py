"""Power and energy models: the paper's core quantitative machinery.

* :mod:`~repro.power.components` — the three power components of
  Section 2 (switching Eq. 1, short-circuit, leakage).
* :mod:`~repro.power.energy` — the per-cycle module energy models:
  ``E_SOI`` (Eq. 3), ``E_SOIAS`` (Eq. 4), and the MTCMOS / VTCMOS
  burst-mode variants of Section 4.
* :mod:`~repro.power.estimator` — netlist + activity + technology ->
  full power breakdown.
* :mod:`~repro.power.optimizer` — fixed-throughput (V_DD, V_T)
  optimization: the machinery behind Figs. 3-4.
"""

from repro.power.components import (
    PowerBreakdown,
    switching_power,
    leakage_power,
    short_circuit_power_veendrick,
)
from repro.power.energy import (
    ModuleEnergyParameters,
    e_soi,
    e_soias,
    e_soias_gated,
    e_mtcmos,
    e_vtcmos,
    energy_ratio_soias_vs_soi,
    module_parameters_from_activity,
)
from repro.power.estimator import PowerEstimator
from repro.power.dualvt import DualVtAssignment, DualVtOptimizer
from repro.power.sizing import GateSizingOptimizer, SizingSolution
from repro.power.mtcmos import (
    MtcmosSizing,
    SleepTransistorSizer,
    estimate_peak_current,
)
from repro.power.optimizer import (
    RingOscillatorModel,
    FixedThroughputOptimizer,
    ModuleThroughputOptimizer,
    OperatingPoint,
    StatisticalOperatingPoint,
    VariationSpec,
)

__all__ = [
    "PowerBreakdown",
    "switching_power",
    "leakage_power",
    "short_circuit_power_veendrick",
    "ModuleEnergyParameters",
    "e_soi",
    "e_soias",
    "e_soias_gated",
    "e_mtcmos",
    "e_vtcmos",
    "energy_ratio_soias_vs_soi",
    "module_parameters_from_activity",
    "PowerEstimator",
    "DualVtAssignment",
    "DualVtOptimizer",
    "GateSizingOptimizer",
    "SizingSolution",
    "MtcmosSizing",
    "SleepTransistorSizer",
    "estimate_peak_current",
    "RingOscillatorModel",
    "FixedThroughputOptimizer",
    "ModuleThroughputOptimizer",
    "OperatingPoint",
    "StatisticalOperatingPoint",
    "VariationSpec",
]
