"""MTCMOS sleep-transistor sizing (extension of Section 4).

The paper describes multiple-threshold gating — low-V_T logic in
series with high-V_T sleep switches — but leaves sizing implicit
("assuming proper device sizing").  This module makes the trade
explicit:

* a wider sleep device drops less virtual-rail voltage under the
  module's peak current (smaller speed penalty) but leaks more in
  standby and costs more area and sleep-signal capacitance;
* :class:`SleepTransistorSizer` solves the width for a target speed
  penalty and reports the standby leakage / control-energy / area
  consequences, which feed :func:`repro.power.energy.e_mtcmos`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.netlist import Netlist
from repro.device.mosfet import Mosfet
from repro.device.technology import Technology
from repro.errors import OptimizationError
from repro.tech.characterize import CellCharacterizer

__all__ = ["MtcmosSizing", "SleepTransistorSizer", "estimate_peak_current"]

_BISECTION_STEPS = 60
_PROBE_VDS = 0.05


def estimate_peak_current(
    netlist: Netlist,
    technology: Technology,
    vdd: float,
    simultaneity: float = 0.2,
) -> float:
    """Peak discharge current the sleep device must carry [A].

    ``simultaneity`` is the fraction of gates switching in the same
    evaluation window (0.2 is a common planning figure); each
    switching gate draws its worst-case pull-down current.
    """
    if not 0.0 < simultaneity <= 1.0:
        raise OptimizationError("simultaneity must be in (0, 1]")
    characterizer = CellCharacterizer(technology)
    total = sum(
        characterizer.pull_down_current(instance.cell, vdd)
        for instance in netlist.instances.values()
    )
    return simultaneity * total


@dataclass(frozen=True)
class MtcmosSizing:
    """One sizing solution and its consequences."""

    sleep_width_um: float
    virtual_rail_droop_v: float
    delay_penalty: float
    standby_leakage_a: float
    sleep_gate_capacitance_f: float
    area_overhead_fraction: float


class SleepTransistorSizer:
    """Sizes the high-V_T sleep NMOS of one gated module.

    Parameters
    ----------
    technology:
        An MTCMOS technology (``is_mtcmos`` true).
    peak_current_a:
        Worst-case simultaneous discharge current through the virtual
        ground (see :func:`estimate_peak_current`).
    vdd:
        Operating supply [V].
    logic_width_um:
        Total logic transistor width, for the area-overhead metric.
    """

    def __init__(
        self,
        technology: Technology,
        peak_current_a: float,
        vdd: float,
        logic_width_um: float = 0.0,
    ):
        if not technology.is_mtcmos:
            raise OptimizationError(
                f"technology {technology.name!r} has no sleep devices"
            )
        if peak_current_a <= 0.0:
            raise OptimizationError("peak current must be positive")
        if vdd <= 0.0:
            raise OptimizationError("vdd must be positive")
        self.technology = technology
        self.peak_current_a = peak_current_a
        self.vdd = vdd
        self.logic_width_um = logic_width_um
        self._sleep_params = technology.sleep_transistors.nmos

    # ------------------------------------------------------------------
    # Electrical pieces
    # ------------------------------------------------------------------
    def on_conductance_per_um(self) -> float:
        """Linear-region conductance of the sleep device [S/um]."""
        probe = Mosfet(self._sleep_params, width_um=1.0)
        return probe.drain_current(self.vdd, _PROBE_VDS) / _PROBE_VDS

    def virtual_rail_droop(self, sleep_width_um: float) -> float:
        """Virtual-ground bounce at peak current [V]."""
        if sleep_width_um <= 0.0:
            raise OptimizationError("sleep width must be positive")
        conductance = self.on_conductance_per_um() * sleep_width_um
        return self.peak_current_a / conductance

    def delay_penalty(self, sleep_width_um: float) -> float:
        """Fractional slowdown from the rail droop.

        The droop subtracts from the gate overdrive; with the
        alpha-power law the drive loss is
        ``1 - ((V_ov - droop) / V_ov)^alpha`` and the delay penalty is
        its reciprocal minus one.
        """
        droop = self.virtual_rail_droop(sleep_width_um)
        logic = self.technology.transistors.nmos
        overdrive = self.vdd - logic.vt0
        if overdrive <= 0.0:
            raise OptimizationError(
                "logic devices have no overdrive at this supply"
            )
        if droop >= overdrive:
            return float("inf")
        drive_ratio = ((overdrive - droop) / overdrive) ** logic.alpha
        return 1.0 / drive_ratio - 1.0

    def standby_leakage(self, sleep_width_um: float) -> float:
        """Off current of the sleep device (the module's standby floor)."""
        device = Mosfet(self._sleep_params, width_um=sleep_width_um)
        return device.off_current(self.vdd)

    def sleep_gate_capacitance(self, sleep_width_um: float) -> float:
        """Sleep-signal gate capacitance (the bga control load) [F]."""
        return self.technology.gate_cap.gate_capacitance(
            sleep_width_um, self.technology.drawn_length_um, self.vdd
        )

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------
    def solution(self, sleep_width_um: float) -> MtcmosSizing:
        """Full consequence record for a chosen width."""
        area = (
            sleep_width_um / self.logic_width_um
            if self.logic_width_um > 0.0
            else 0.0
        )
        return MtcmosSizing(
            sleep_width_um=sleep_width_um,
            virtual_rail_droop_v=self.virtual_rail_droop(sleep_width_um),
            delay_penalty=self.delay_penalty(sleep_width_um),
            standby_leakage_a=self.standby_leakage(sleep_width_um),
            sleep_gate_capacitance_f=self.sleep_gate_capacitance(
                sleep_width_um
            ),
            area_overhead_fraction=area,
        )

    def size_for_penalty(
        self,
        max_delay_penalty: float = 0.05,
        width_bounds_um=(0.5, 10000.0),
    ) -> MtcmosSizing:
        """Smallest sleep width meeting a delay-penalty budget.

        Penalty decreases monotonically with width, so bisection
        applies.

        Raises
        ------
        OptimizationError
            If even the widest allowed device misses the budget.
        """
        if max_delay_penalty <= 0.0:
            raise OptimizationError("penalty budget must be positive")
        low, high = float(width_bounds_um[0]), float(width_bounds_um[1])
        if not 0.0 < low < high:
            raise OptimizationError(f"bad width bounds [{low}, {high}]")
        if self.delay_penalty(high) > max_delay_penalty:
            raise OptimizationError(
                f"even W = {high} um exceeds the {max_delay_penalty:.1%} "
                "penalty budget; raise the bound or the budget"
            )
        if self.delay_penalty(low) <= max_delay_penalty:
            return self.solution(low)
        for _ in range(_BISECTION_STEPS):
            mid = 0.5 * (low + high)
            if self.delay_penalty(mid) > max_delay_penalty:
                low = mid
            else:
                high = mid
        return self.solution(high)
