"""Slack-driven gate downsizing (extension).

The complement of dual-V_T assignment: gates with timing slack shrink.
A size factor ``k < 1`` scales every device width in the cell, cutting
its input capacitance (less switching energy for *upstream* drivers),
its leakage, and its area — at the cost of drive strength, so the
critical path must be re-checked.  Combined with dual-V_T this is the
classic post-synthesis leakage/power recovery pair.

:class:`GateSizingOptimizer` runs the greedy: visit gates
most-slack-first, try the smallest allowed size, keep the largest
downsizing that still meets the delay budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from repro.circuits.netlist import Netlist
from repro.circuits.timing import StaticTimingAnalyzer
from repro.device.technology import Technology
from repro.errors import OptimizationError
from repro.tech.characterize import CellCharacterizer

__all__ = ["SizingSolution", "GateSizingOptimizer"]


@dataclass(frozen=True)
class SizingSolution:
    """Result of one sizing run."""

    size_factors: Mapping[str, float]
    delay_s: float
    baseline_delay_s: float
    input_capacitance_f: float
    baseline_input_capacitance_f: float
    leakage_a: float
    baseline_leakage_a: float

    @property
    def downsized_gates(self) -> int:
        """Gates assigned a factor below 1."""
        return sum(1 for k in self.size_factors.values() if k < 1.0)

    @property
    def capacitance_reduction(self) -> float:
        """baseline / optimized total input capacitance (>= 1)."""
        return (
            self.baseline_input_capacitance_f / self.input_capacitance_f
        )

    @property
    def leakage_reduction(self) -> float:
        """baseline / optimized leakage (>= 1)."""
        return self.baseline_leakage_a / self.leakage_a

    @property
    def delay_penalty(self) -> float:
        """Fractional critical-path growth."""
        return self.delay_s / self.baseline_delay_s - 1.0


class GateSizingOptimizer:
    """Greedy slack-driven downsizing for one netlist."""

    def __init__(
        self,
        netlist: Netlist,
        technology: Technology,
        vdd: float,
        allowed_factors: Sequence[float] = (0.35, 0.5, 0.7),
        wire_length_per_fanout_um: float = 5.0,
    ):
        if vdd <= 0.0:
            raise OptimizationError("vdd must be positive")
        if not allowed_factors:
            raise OptimizationError("need at least one allowed factor")
        if any(not 0.0 < k < 1.0 for k in allowed_factors):
            raise OptimizationError(
                "allowed factors must lie strictly in (0, 1)"
            )
        netlist.validate()
        self.netlist = netlist
        self.technology = technology
        self.vdd = vdd
        self.allowed_factors = tuple(sorted(allowed_factors))
        self._analyzer = StaticTimingAnalyzer(
            technology, wire_length_per_fanout_um
        )
        self._characterizer = CellCharacterizer(technology)

    # ------------------------------------------------------------------
    def delay(self, sizes: Optional[Mapping[str, float]] = None) -> float:
        """Critical path under a sizing [s]."""
        return self._analyzer.analyze(
            self.netlist, self.vdd, per_instance_size_factors=sizes or {}
        ).delay_s

    def total_input_capacitance(
        self, sizes: Optional[Mapping[str, float]] = None
    ) -> float:
        """Sum of (sized) input capacitances — the switching-cost proxy."""
        sizes = sizes or {}
        return sum(
            instance.cell.input_capacitance(self.technology, self.vdd)
            * instance.cell.n_inputs
            * sizes.get(name, 1.0)
            for name, instance in self.netlist.instances.items()
        )

    def leakage(self, sizes: Optional[Mapping[str, float]] = None) -> float:
        """Netlist leakage under a sizing [A] (linear in width)."""
        sizes = sizes or {}
        return sum(
            self._characterizer.leakage_current(instance.cell, self.vdd)
            * sizes.get(name, 1.0)
            for name, instance in self.netlist.instances.items()
        )

    # ------------------------------------------------------------------
    def optimize(self, delay_budget: float = 1.0) -> SizingSolution:
        """Greedy downsizing under a delay budget (growth factor)."""
        if delay_budget < 1.0:
            raise OptimizationError("delay budget must be >= 1.0")
        baseline_delay = self.delay()
        target = baseline_delay * delay_budget
        sizes: Dict[str, float] = {}

        slacks = self._analyzer.slacks(
            self.netlist, self.vdd, required_time_s=target
        )
        candidates = sorted(
            self.netlist.instances, key=lambda n: slacks[n], reverse=True
        )
        for name in candidates:
            if slacks[name] <= 0.0:
                break
            for factor in self.allowed_factors:  # smallest first
                trial = dict(sizes)
                trial[name] = factor
                if self.delay(trial) <= target:
                    sizes[name] = factor
                    break

        return SizingSolution(
            size_factors=dict(sizes),
            delay_s=self.delay(sizes),
            baseline_delay_s=baseline_delay,
            input_capacitance_f=self.total_input_capacitance(sizes),
            baseline_input_capacitance_f=self.total_input_capacitance(),
            leakage_a=self.leakage(sizes),
            baseline_leakage_a=self.leakage(),
        )
