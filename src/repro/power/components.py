"""The three CMOS power components (paper Section 2).

* switching: ``P = alpha_0->1 * C_L * V_DD^2 * f_clk`` (Eq. 1),
* short-circuit: Veendrick's crowbar estimate, kept below ~10 % by
  matched edge rates (and identically zero once
  ``V_DD < V_Tn + |V_Tp|``),
* leakage: ``P = I_leak * V_DD`` with the subthreshold current of
  Eq. 2 supplied by the device layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError

__all__ = [
    "switching_power",
    "leakage_power",
    "short_circuit_power_veendrick",
    "PowerBreakdown",
]


def switching_power(
    alpha: float, capacitance_f: float, vdd: float, frequency_hz: float
) -> float:
    """Eq. 1: dynamic power of a node or module [W].

    ``alpha`` is the 0->1 transition activity per clock; glitchy nodes
    may exceed 1.0, so only negativity is rejected.
    """
    if alpha < 0.0:
        raise AnalysisError(f"alpha must be >= 0, got {alpha}")
    if capacitance_f < 0.0:
        raise AnalysisError("capacitance must be >= 0")
    if vdd <= 0.0 or frequency_hz <= 0.0:
        raise AnalysisError("vdd and frequency must be positive")
    return alpha * capacitance_f * vdd * vdd * frequency_hz


def leakage_power(leakage_current_a: float, vdd: float) -> float:
    """Static power: ``I_leak * V_DD`` [W]."""
    if leakage_current_a < 0.0:
        raise AnalysisError("leakage current must be >= 0")
    if vdd <= 0.0:
        raise AnalysisError("vdd must be positive")
    return leakage_current_a * vdd


def short_circuit_power_veendrick(
    k_drive_a_per_v: float,
    vdd: float,
    vt_nmos: float,
    vt_pmos: float,
    transition_time_s: float,
    frequency_hz: float,
    transitions_per_cycle: float = 1.0,
) -> float:
    """Veendrick short-circuit power of one switching node [W].

    ``P_sc = (k/12) * (V_DD - V_Tn - |V_Tp|)^3 * (tau/V_DD) * f * n``

    Zero when the rails cannot overlap — scaled supplies kill this
    component entirely, one of the paper's low-voltage wins.
    """
    if transition_time_s < 0.0:
        raise AnalysisError("transition time must be >= 0")
    if vdd <= 0.0 or frequency_hz <= 0.0:
        raise AnalysisError("vdd and frequency must be positive")
    if transitions_per_cycle < 0.0:
        raise AnalysisError("transitions_per_cycle must be >= 0")
    overlap = vdd - vt_nmos - abs(vt_pmos)
    if overlap <= 0.0:
        return 0.0
    energy = (
        k_drive_a_per_v / 12.0 * overlap**3 * transition_time_s / vdd
    )
    return energy * frequency_hz * transitions_per_cycle


@dataclass(frozen=True)
class PowerBreakdown:
    """Power split into the paper's three components [W]."""

    switching_w: float
    short_circuit_w: float
    leakage_w: float

    def __post_init__(self) -> None:
        for name in ("switching_w", "short_circuit_w", "leakage_w"):
            if getattr(self, name) < 0.0:
                raise AnalysisError(f"{name} must be >= 0")

    @property
    def total_w(self) -> float:
        """Sum of the three components [W]."""
        return self.switching_w + self.short_circuit_w + self.leakage_w

    def fraction(self, component: str) -> float:
        """Share of one component ("switching", "short_circuit",
        "leakage") in the total."""
        value = {
            "switching": self.switching_w,
            "short_circuit": self.short_circuit_w,
            "leakage": self.leakage_w,
        }.get(component)
        if value is None:
            raise AnalysisError(f"unknown component {component!r}")
        total = self.total_w
        return value / total if total > 0.0 else 0.0

    def scaled(self, factor: float) -> "PowerBreakdown":
        """All components scaled (e.g. module duplication)."""
        if factor < 0.0:
            raise AnalysisError("scale factor must be >= 0")
        return PowerBreakdown(
            switching_w=self.switching_w * factor,
            short_circuit_w=self.short_circuit_w * factor,
            leakage_w=self.leakage_w * factor,
        )

    def __add__(self, other: "PowerBreakdown") -> "PowerBreakdown":
        return PowerBreakdown(
            switching_w=self.switching_w + other.switching_w,
            short_circuit_w=self.short_circuit_w + other.short_circuit_w,
            leakage_w=self.leakage_w + other.leakage_w,
        )
