"""Command-line interface to the toolkit.

Five subcommands mirror the paper's tool chain, three more cover the
extensions::

    python -m repro profile --workload idea            # Tables 1-3
    python -m repro activity --circuit adder --width 8 # Figs. 8-9
    python -m repro optimize --delay-factor 4          # Figs. 3-4
    python -m repro compare --duty 0.2                 # Fig. 10
    python -m repro contour --grid 24 --workers 4      # Fig. 10 surface
    python -m repro characterize --vdd 0.8 1.0 1.2     # liberty-lite
    python -m repro margins --floor 0.3                # V_DD floor
    python -m repro shutdown                           # policies
    python -m repro recover --circuit adder            # dual-V_T+sizing

Every subcommand prints an ASCII table; ``characterize`` can also
write a JSON library.
"""

from __future__ import annotations

import argparse
import functools
import sys
from typing import List, Optional, Sequence

from repro import obs
from repro.analysis.tables import format_table
from repro.circuits.builders import (
    array_multiplier,
    barrel_shifter,
    ripple_carry_adder,
)
from repro.core.flow import LowVoltageDesignFlow
from repro.core.scenarios import standard_datapath
from repro.device.technology import (
    bulk_cmos_06um,
    mtcmos_technology,
    soi_low_vt,
    soias_technology,
)
from repro.errors import ReproError
from repro.isa.profiler import profile_program
from repro.isa.workloads import crc, espresso_like, fir, idea, li_like, matmul, sort
from repro.power.optimizer import FixedThroughputOptimizer, RingOscillatorModel
from repro.switchsim.simulator import SwitchLevelSimulator
from repro.switchsim.stimulus import counting_bus_vectors, random_bus_vectors
from repro.tech.library import CellLibrary

__all__ = ["main", "build_parser"]

_TECHNOLOGIES = {
    "soi": soi_low_vt,
    "soias": soias_technology,
    "mtcmos": mtcmos_technology,
    "bulk": bulk_cmos_06um,
}

_UNITS = ("adder", "shifter", "multiplier", "logic", "memory", "control")


def _build_workload(name: str, scale: int):
    if name == "idea":
        return idea.build_program(idea.random_blocks(max(scale // 8, 1)))
    if name == "espresso":
        return espresso_like.build_program(
            n_cubes=max(scale, 8), n_vars=10
        )
    if name == "li":
        return li_like.build_program(n=max(scale, 4), n_lookups=max(scale // 2, 2))
    if name == "fir":
        return fir.build_program(n_samples=max(scale, 8))[0]
    if name == "crc":
        return crc.build_program(n_words=max(scale // 2, 4))
    if name == "sort":
        return sort.build_program(count=max(scale, 8))
    if name == "matmul":
        return matmul.build_program(n=max(4 * (scale // 8), 4))
    raise ReproError(f"unknown workload {name!r}")


def _cmd_profile(args: argparse.Namespace) -> int:
    programs = [
        _build_workload(name, args.scale) for name in args.workload
    ]
    profiles = [profile_program(p) for p in programs]
    profile = functools.reduce(lambda a, b: a.merged_with(b), profiles)
    if args.duty != 1.0:
        profile = profile.scaled_by_duty_cycle(args.duty)
    rows = []
    for unit in _UNITS:
        stats = profile.stats(unit)
        rows.append(
            [unit, stats.uses, stats.runs, stats.fga, stats.bga,
             stats.mean_run_length]
        )
    print(
        format_table(
            ["unit", "uses", "runs", "fga", "bga", "mean run"],
            rows,
            title=(
                f"Profile of {'+'.join(args.workload)} "
                f"({profile.total_instructions} instruction slots, "
                f"duty {args.duty:g})"
            ),
        )
    )
    return 0


def _build_circuit(name: str, width: int):
    if name == "adder":
        return ripple_carry_adder(width), {"a": width, "b": width}
    if name == "multiplier":
        return array_multiplier(width), {"a": width, "b": width}
    if name == "shifter":
        if width < 1:
            raise ReproError(f"circuit width must be >= 1, got {width}")
        # The barrel shifter needs a power-of-two width of at least 2;
        # width 1 would round to 1 and be rejected by the builder.
        rounded = max(2, 1 << (width - 1).bit_length())
        return barrel_shifter(rounded), {
            "a": rounded,
            "s": rounded.bit_length() - 1,
        }
    raise ReproError(f"unknown circuit {name!r}")


def _cmd_activity(args: argparse.Namespace) -> int:
    netlist, buses = _build_circuit(args.circuit, args.width)
    technology = _TECHNOLOGIES[args.technology]()
    if args.stimulus == "random":
        vectors = random_bus_vectors(buses, args.vectors, seed=args.seed)
    else:
        counting = sorted(buses)[1] if len(buses) > 1 else next(iter(buses))
        fixed = {
            name: (args.seed * 37) % (2 ** buses[name])
            for name in buses
            if name != counting
        }
        vectors = counting_bus_vectors(
            counting,
            buses[counting],
            args.vectors,
            fixed_buses=fixed,
            fixed_widths={n: buses[n] for n in fixed},
        )
    simulator = SwitchLevelSimulator(netlist, technology, args.vdd)
    report = simulator.run_vectors_fast(vectors)
    edges, counts = report.histogram(bins=args.bins)
    rows = [
        [f"{edges[i]:.3f}-{edges[i + 1]:.3f}", counts[i]]
        for i in range(args.bins)
    ]
    energy = report.switching_energy_per_cycle(
        netlist, technology, args.vdd
    )
    print(
        format_table(
            ["transition probability", "nodes"],
            rows,
            title=(
                f"{args.circuit} x{args.width}, {args.stimulus} stimulus: "
                f"mean activity {report.mean_activity():.3f}, "
                f"E_sw {energy:.3e} J/cycle at {args.vdd} V"
            ),
        )
    )
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    technology = _TECHNOLOGIES[args.technology]()
    ring = RingOscillatorModel(
        technology, stages=args.stages, activity=args.activity
    )
    optimizer = FixedThroughputOptimizer(
        ring, cycle_stages=2 * args.stages
    )
    target = args.delay_factor * ring.stage_delay(1.0, 0.2)
    vts = [0.04 + 0.02 * i for i in range(20)]
    points = optimizer.sweep(vts, target)
    rows = [
        [p.vt, p.vdd, p.energy_per_cycle_j, p.leakage_fraction]
        for p in points
    ]
    best = optimizer.optimum(target, vt_bounds=(0.02, 0.45))
    print(
        format_table(
            ["V_T [V]", "V_DD [V]", "E/cycle [J]", "leak frac"],
            rows,
            title=(
                f"Fixed-delay locus, target {target:.3e} s/stage "
                f"(activity {args.activity:g})"
            ),
        )
    )
    print(
        f"\nOptimum: V_T = {best.vt:.3f} V, V_DD = {best.vdd:.3f} V, "
        f"E = {best.energy_per_cycle_j:.3e} J/cycle"
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    flow = LowVoltageDesignFlow(vdd=args.vdd, clock_hz=args.clock)
    datapath = standard_datapath(
        width=args.width, stimulus_vectors=args.vectors
    )
    programs = [
        _build_workload(name, args.scale) for name in args.workload
    ]
    session = functools.reduce(
        lambda a, b: a.merged_with(b),
        [profile_program(p) for p in programs],
    ).scaled_by_duty_cycle(args.duty)
    rows = []
    for name, unit in datapath.items():
        report = flow.unit_activity(unit.netlist, unit.vectors)
        module = flow.module_parameters(unit.netlist, report)
        verdicts = flow.comparator(module).all_verdicts(
            session.fga(name), session.bga(name)
        )
        rows.append(
            [
                name,
                session.fga(name),
                session.bga(name),
                verdicts["soias"].saving_percent,
                verdicts["mtcmos"].saving_percent,
                verdicts["vtcmos"].saving_percent,
            ]
        )
    print(
        format_table(
            ["unit", "fga", "bga", "SOIAS %", "MTCMOS %", "VTCMOS %"],
            rows,
            title=(
                f"Burst-mode savings vs fixed-low-V_T SOI "
                f"(duty {args.duty:g}, {args.clock:g} Hz, {args.vdd} V)"
            ),
        )
    )
    return 0


def _cmd_contour(args: argparse.Namespace) -> int:
    flow = LowVoltageDesignFlow(vdd=args.vdd, clock_hz=args.clock)
    datapath = standard_datapath(
        width=args.width, stimulus_vectors=args.vectors
    )
    unit = datapath[args.unit]
    report = flow.unit_activity(unit.netlist, unit.vectors)
    module = flow.module_parameters(unit.netlist, report)
    grid = [i / args.grid for i in range(1, args.grid + 1)]
    progress_cb = None
    if args.progress:

        def progress_cb(done: int, total: int) -> None:
            print(
                f"\r  {done}/{total} cells", end="",
                file=sys.stderr, flush=True,
            )
            if done == total:
                print(file=sys.stderr)

    surface = flow.ratio_surface(
        module, grid, grid, workers=args.workers, progress=progress_cb
    )
    defined = [
        (fga, bga, value)
        for i, fga in enumerate(surface.grid.xs)
        for j, bga in enumerate(surface.grid.ys)
        if (value := surface.grid.at(i, j)) is not None
    ]
    if not defined:
        raise ReproError("contour grid has no defined cells")
    best = min(defined, key=lambda cell: cell[2])
    worst = max(defined, key=lambda cell: cell[2])
    rows = [
        ["grid", f"{args.grid} x {args.grid}", "", ""],
        ["defined cells", surface.grid.defined_cells(), "", ""],
        ["best log10 ratio", f"{best[2]:+.3f}", best[0], best[1]],
        ["worst log10 ratio", f"{worst[2]:+.3f}", worst[0], worst[1]],
    ]
    print(
        format_table(
            ["quantity", "value", "fga", "bga"],
            rows,
            title=(
                f"{args.unit} x{args.width} SOIAS/SOI surface at "
                f"{args.vdd} V, {args.clock:g} Hz "
                f"(workers {args.workers})"
            ),
        )
    )
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    technology = _TECHNOLOGIES[args.technology]()
    library = CellLibrary.characterized(
        technology,
        vdd_grid=args.vdd,
        vt_shift_grid=args.vt_shift,
        load_f=args.load_ff * 1e-15,
    )
    rows = []
    for cell_name in sorted(library.cells):
        corner = library.lookup(cell_name, args.vdd[0], args.vt_shift[0])
        rows.append(
            [
                cell_name,
                corner.delay_s,
                corner.energy_per_transition_j,
                corner.leakage_current_a,
                corner.input_capacitance_f,
            ]
        )
    print(
        format_table(
            ["cell", "delay [s]", "E/tr [J]", "leak [A]", "C_in [F]"],
            rows,
            title=(
                f"{technology.name} @ {args.vdd[0]} V, shift "
                f"{args.vt_shift[0]} V, load {args.load_ff} fF"
            ),
        )
    )
    if args.output:
        library.save(args.output)
        print(f"\nLibrary written to {args.output}")
    return 0


def _cmd_margins(args: argparse.Namespace) -> int:
    from repro.circuits.dc import InverterDcAnalysis

    technology = _TECHNOLOGIES[args.technology]()
    dc = InverterDcAnalysis(technology)
    rows = []
    for vdd in args.vdd:
        margins = dc.noise_margins(vdd)
        rows.append(
            [
                vdd,
                dc.switching_threshold(vdd),
                dc.peak_gain(vdd),
                margins.low,
                margins.high,
                margins.worst / vdd,
            ]
        )
    print(
        format_table(
            ["V_DD [V]", "V_M [V]", "peak gain", "NM_L [V]", "NM_H [V]",
             "worst/V_DD"],
            rows,
            title=f"Inverter noise margins, {technology.name}",
        )
    )
    if args.floor:
        floor = dc.minimum_supply(margin_fraction=args.floor)
        print(
            f"\nMinimum supply for a {args.floor:.0%} worst-margin "
            f"budget: {floor * 1e3:.0f} mV"
        )
    return 0


def _cmd_shutdown(args: argparse.Namespace) -> int:
    from repro.core.shutdown import (
        OraclePolicy,
        PredictivePolicy,
        ShutdownCosts,
        TimeoutPolicy,
        evaluate_policy,
        synthetic_session_trace,
    )

    costs = ShutdownCosts(
        active_power_w=args.active_mw * 1e-3,
        idle_power_w=args.idle_mw * 1e-3,
        off_power_w=args.off_uw * 1e-6,
        wakeup_energy_j=args.wakeup_uj * 1e-6,
        wakeup_latency_cycles=args.wakeup_latency,
        cycle_time_s=1.0 / args.clock,
    )
    trace = synthetic_session_trace(
        n_periods=args.periods,
        mean_busy_cycles=args.mean_busy,
        mean_idle_cycles=args.mean_idle,
        seed=args.seed,
    )
    breakeven = costs.breakeven_cycles
    policies = [
        ("always-on", TimeoutPolicy(10**12)),
        ("timeout@break-even", TimeoutPolicy(max(int(breakeven), 1))),
        ("predictive", PredictivePolicy(breakeven)),
        ("oracle", OraclePolicy(breakeven)),
    ]
    rows = []
    for name, policy in policies:
        report = evaluate_policy(trace, policy, costs, name)
        rows.append(
            [
                name,
                report.energy_j,
                100.0 * report.saving_vs_always_on,
                report.off_fraction,
                report.wakeups,
            ]
        )
    print(
        format_table(
            ["policy", "energy [J]", "saving %", "off fraction", "wakeups"],
            rows,
            title=(
                f"Shutdown policies (break-even idle = {breakeven:.0f} "
                "cycles)"
            ),
        )
    )
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.power.dualvt import DualVtOptimizer
    from repro.power.sizing import GateSizingOptimizer

    technology = _TECHNOLOGIES[args.technology]()
    netlist, _ = _build_circuit(args.circuit, args.width)
    rows = []
    sizer = GateSizingOptimizer(netlist, technology, vdd=args.vdd)
    sized = sizer.optimize(delay_budget=args.budget)
    rows.append(
        [
            "downsizing",
            sized.downsized_gates,
            sized.capacitance_reduction,
            sized.leakage_reduction,
            sized.delay_penalty,
        ]
    )
    dualvt = DualVtOptimizer(netlist, technology, vdd=args.vdd).optimize(
        delay_budget=args.budget
    )
    rows.append(
        [
            "dual-V_T",
            len(dualvt.high_vt_gates),
            1.0,
            dualvt.leakage_reduction,
            dualvt.delay_penalty,
        ]
    )
    print(
        format_table(
            ["pass", "gates touched", "cap reduction", "leak reduction",
             "delay penalty"],
            rows,
            title=(
                f"Power recovery, {args.circuit} x{args.width} at "
                f"{args.vdd} V (delay budget {args.budget:g})"
            ),
        )
    )
    return 0


def _add_metrics_arguments(parser: argparse.ArgumentParser) -> None:
    """--metrics / --metrics-json for the instrumented subcommands."""
    parser.add_argument(
        "--metrics", action="store_true",
        help="print instrumentation counters and timers after the run",
    )
    parser.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="write the metrics snapshot to PATH (implies --metrics)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Low-voltage design toolkit (DAC 1996 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    profile = sub.add_parser("profile", help="fga/bga workload profiling")
    profile.add_argument(
        "--workload", nargs="+",
        choices=["idea", "espresso", "li", "fir", "crc", "sort", "matmul"],
        default=["idea"],
    )
    profile.add_argument("--scale", type=int, default=48)
    profile.add_argument("--duty", type=float, default=1.0)
    profile.set_defaults(handler=_cmd_profile)

    activity = sub.add_parser(
        "activity", help="switch-level activity histograms"
    )
    activity.add_argument(
        "--circuit", choices=["adder", "shifter", "multiplier"],
        default="adder",
    )
    activity.add_argument("--width", type=int, default=8)
    activity.add_argument(
        "--stimulus", choices=["random", "counting"], default="random"
    )
    activity.add_argument("--vectors", type=int, default=300)
    activity.add_argument("--bins", type=int, default=10)
    activity.add_argument("--vdd", type=float, default=1.0)
    activity.add_argument("--seed", type=int, default=0)
    activity.add_argument(
        "--technology", choices=sorted(_TECHNOLOGIES), default="soi"
    )
    activity.set_defaults(handler=_cmd_activity)

    optimize = sub.add_parser(
        "optimize", help="fixed-throughput (V_DD, V_T) optimization"
    )
    optimize.add_argument("--delay-factor", type=float, default=4.0)
    optimize.add_argument("--stages", type=int, default=101)
    optimize.add_argument("--activity", type=float, default=1.0)
    optimize.add_argument(
        "--technology", choices=sorted(_TECHNOLOGIES), default="soi"
    )
    _add_metrics_arguments(optimize)
    optimize.set_defaults(handler=_cmd_optimize)

    compare = sub.add_parser(
        "compare", help="burst-mode technology comparison (Fig. 10)"
    )
    compare.add_argument(
        "--workload", nargs="+",
        choices=["idea", "espresso", "li", "fir", "crc", "sort", "matmul"],
        default=["espresso", "li", "idea"],
    )
    compare.add_argument("--scale", type=int, default=48)
    compare.add_argument("--duty", type=float, default=0.2)
    compare.add_argument("--width", type=int, default=8)
    compare.add_argument("--vectors", type=int, default=80)
    compare.add_argument("--vdd", type=float, default=1.0)
    compare.add_argument("--clock", type=float, default=1e6)
    _add_metrics_arguments(compare)
    compare.set_defaults(handler=_cmd_compare)

    contour = sub.add_parser(
        "contour", help="Fig. 10 energy-ratio surface over a (fga, bga) grid"
    )
    contour.add_argument(
        "--unit", choices=["adder", "shifter", "multiplier"],
        default="adder",
    )
    contour.add_argument("--width", type=int, default=8)
    contour.add_argument("--vectors", type=int, default=80)
    contour.add_argument("--vdd", type=float, default=1.0)
    contour.add_argument("--clock", type=float, default=1e6)
    contour.add_argument("--grid", type=int, default=24)
    contour.add_argument(
        "--workers", type=int, default=0,
        help="worker processes for the grid (0 = serial)",
    )
    contour.add_argument(
        "--progress", action="store_true",
        help="report grid completion on stderr as chunks finish",
    )
    _add_metrics_arguments(contour)
    contour.set_defaults(handler=_cmd_contour)

    characterize = sub.add_parser(
        "characterize", help="cell-library characterization"
    )
    characterize.add_argument(
        "--technology", choices=sorted(_TECHNOLOGIES), default="soias"
    )
    characterize.add_argument(
        "--vdd", nargs="+", type=float, default=[1.0]
    )
    characterize.add_argument(
        "--vt-shift", nargs="+", type=float, default=[0.0]
    )
    characterize.add_argument("--load-ff", type=float, default=10.0)
    characterize.add_argument("--output", default=None)
    characterize.set_defaults(handler=_cmd_characterize)

    margins = sub.add_parser(
        "margins", help="inverter noise margins and the V_DD floor"
    )
    margins.add_argument(
        "--technology", choices=sorted(_TECHNOLOGIES), default="soi"
    )
    margins.add_argument(
        "--vdd", nargs="+", type=float,
        default=[1.0, 0.5, 0.3, 0.2, 0.12],
    )
    margins.add_argument(
        "--floor", type=float, default=0.3,
        help="worst-margin budget (fraction of V_DD); 0 disables",
    )
    margins.set_defaults(handler=_cmd_margins)

    shutdown = sub.add_parser(
        "shutdown", help="system shutdown-policy comparison"
    )
    shutdown.add_argument("--active-mw", type=float, default=10.0)
    shutdown.add_argument("--idle-mw", type=float, default=2.0)
    shutdown.add_argument("--off-uw", type=float, default=0.01)
    shutdown.add_argument("--wakeup-uj", type=float, default=0.1)
    shutdown.add_argument("--wakeup-latency", type=int, default=50)
    shutdown.add_argument("--clock", type=float, default=1e6)
    shutdown.add_argument("--periods", type=int, default=400)
    shutdown.add_argument("--mean-busy", type=int, default=50)
    shutdown.add_argument("--mean-idle", type=int, default=800)
    shutdown.add_argument("--seed", type=int, default=0)
    shutdown.set_defaults(handler=_cmd_shutdown)

    recover = sub.add_parser(
        "recover", help="dual-V_T + gate-sizing power recovery"
    )
    recover.add_argument(
        "--circuit", choices=["adder", "shifter", "multiplier"],
        default="adder",
    )
    recover.add_argument("--width", type=int, default=12)
    recover.add_argument("--vdd", type=float, default=1.0)
    recover.add_argument("--budget", type=float, default=1.0)
    recover.add_argument(
        "--technology", choices=sorted(_TECHNOLOGIES), default="soi"
    )
    recover.set_defaults(handler=_cmd_recover)

    return parser


def _emit_metrics(args: argparse.Namespace) -> None:
    """Print (and optionally persist) the metrics collected for a run."""
    hits = obs.counter_value("characterizer.hits")
    misses = obs.counter_value("characterizer.misses")
    if hits + misses:
        obs.gauge("characterizer.hit_rate", hits / (hits + misses))
    print()
    print(obs.format_summary(title=f"Metrics: {args.command}"))
    path = getattr(args, "metrics_json", None)
    if path:
        obs.dump_json(path, extra={"command": args.command})
        print(f"Metrics JSON written to {path}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    wants_metrics = bool(
        getattr(args, "metrics", False)
        or getattr(args, "metrics_json", None)
    )
    if wants_metrics:
        obs.reset()
        obs.enable()
    try:
        code = args.handler(args)
        if wants_metrics:
            _emit_metrics(args)
        return code
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a pager/head that exited early.
        try:
            sys.stdout.close()
        except OSError:  # pragma: no cover
            pass
        return 0
    finally:
        if wants_metrics:
            obs.disable()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
