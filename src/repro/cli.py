"""Command-line interface to the toolkit.

Five subcommands mirror the paper's tool chain, seven more cover the
extensions::

    python -m repro profile --workload idea            # Tables 1-3
    python -m repro activity --circuit adder --width 8 # Figs. 8-9
    python -m repro optimize --delay-factor 4          # Figs. 3-4
    python -m repro compare --duty 0.2                 # Fig. 10
    python -m repro contour --grid 24 --refine 2       # Fig. 10 surface
    python -m repro surface --grid 12 --refine 2       # Fig. 3/4 plane
    python -m repro variation --cell INV --vdd 0.5     # V_T Monte-Carlo
    python -m repro characterize --vdd 0.8 1.0 1.2     # liberty-lite
    python -m repro margins --floor 0.3                # V_DD floor
    python -m repro shutdown                           # policies
    python -m repro recover --circuit adder            # dual-V_T+sizing
    python -m repro runs list                          # run manifests
    python -m repro cache stats                        # result store

Every subcommand prints an ASCII table; ``characterize`` can also
write a JSON library.  ``optimize``, ``compare``, and ``contour``
accept ``--record`` (write a run manifest under ``.repro/runs/``) and
``optimize``/``contour`` accept ``--store PATH`` (persist results for
reuse and resumption — see ``docs/store.md``).
"""

from __future__ import annotations

import argparse
import functools
import json
import os
import sys
import time
from typing import List, Optional, Sequence

from repro import obs
from repro.analysis.tables import format_profile, format_table
from repro.circuits.builders import (
    array_multiplier,
    barrel_shifter,
    ripple_carry_adder,
)
from repro.core.flow import LowVoltageDesignFlow
from repro.core.scenarios import standard_datapath
from repro.device.technology import (
    bulk_cmos_06um,
    mtcmos_technology,
    soi_low_vt,
    soias_technology,
)
from repro.errors import ReproError
from repro.isa.profiler import profile_program
from repro.isa.workloads import WORKLOAD_NAMES, build as build_workload
from repro.power.optimizer import FixedThroughputOptimizer, RingOscillatorModel
from repro.switchsim.simulator import SwitchLevelSimulator
from repro.switchsim.stimulus import counting_bus_vectors, random_bus_vectors
from repro.tech.library import CellLibrary

__all__ = ["main", "build_parser"]

_TECHNOLOGIES = {
    "soi": soi_low_vt,
    "soias": soias_technology,
    "mtcmos": mtcmos_technology,
    "bulk": bulk_cmos_06um,
}

_UNITS = ("adder", "shifter", "multiplier", "logic", "memory", "control")

_DEFAULT_STORE_ROOT = os.path.join(".repro", "cache")


def _stderr_progress(enabled: bool, noun: str = "cells"):
    """A ``progress(done, total)`` callback printing to stderr, or None."""
    if not enabled:
        return None

    def progress_cb(done: int, total: int) -> None:
        print(
            f"\r  {done}/{total} {noun}", end="",
            file=sys.stderr, flush=True,
        )
        if done == total:
            print(file=sys.stderr)

    return progress_cb


def _open_store(args: argparse.Namespace):
    """The ResultStore named by ``--store``, or None when not requested."""
    path = getattr(args, "store", None)
    if not path:
        return None
    from repro.store import ResultStore

    return ResultStore.at(path)


def _record_run(
    args: argparse.Namespace, inputs: dict, result, wall_time_s: float
) -> None:
    """Persist a run manifest when ``--record`` was passed."""
    if not getattr(args, "record", False):
        return
    from repro.store import RunRegistry

    manifest = RunRegistry(args.runs_root).record(
        args.command,
        inputs,
        result,
        wall_time_s,
        metrics=dict(obs.snapshot()["counters"]),
    )
    print(
        f"\nRun recorded: {manifest.run_id} "
        f"(inputs {manifest.inputs_digest[:12]}, "
        f"result {manifest.result_digest[:12]})"
    )


#: Per-process ring-model cache for the parallel optimize path — a
#: worker re-solving V_DD at many V_T corners reuses one model (and
#: its corner characterizer memos) across its whole chunk.
_WORKER_RINGS: dict = {}
_MAX_WORKER_RINGS = 4


def _locus_task(task):
    """One fixed-delay locus point; module-level so workers can pickle it.

    Returns None for infeasible V_T (the serial sweep's
    ``skip_infeasible`` semantics).  ``variation`` (a frozen, picklable
    :class:`~repro.power.optimizer.VariationSpec` or None) switches the
    worker's solve to the yield-constrained corner.
    """
    from repro.errors import OptimizationError

    technology, stages, activity, cycle_stages, vt, target, variation = task
    key = (technology, stages, activity)
    ring = _WORKER_RINGS.get(key)
    if ring is None:
        while len(_WORKER_RINGS) >= _MAX_WORKER_RINGS:
            _WORKER_RINGS.pop(next(iter(_WORKER_RINGS)))
        ring = RingOscillatorModel(
            technology, stages=stages, activity=activity
        )
        _WORKER_RINGS[key] = ring
    optimizer = FixedThroughputOptimizer(
        ring, cycle_stages=cycle_stages, variation=variation
    )
    try:
        return optimizer.locus_point(vt, target)
    except OptimizationError:
        return None


def _compare_unit_row(task):
    """One unit's comparison row; module-level for the worker fan-out."""
    name, unit, fga, bga, vdd, clock, variation = task
    flow = LowVoltageDesignFlow(vdd=vdd, clock_hz=clock, variation=variation)
    report = flow.unit_activity(unit.netlist, unit.vectors)
    module = flow.module_parameters(unit.netlist, report)
    verdicts = flow.comparator(module).all_verdicts(fga, bga)
    return [
        name,
        fga,
        bga,
        verdicts["soias"].saving_percent,
        verdicts["mtcmos"].saving_percent,
        verdicts["vtcmos"].saving_percent,
    ]


def _profile_engine(args: argparse.Namespace) -> str:
    return "reference" if getattr(args, "reference", False) else "fast"


def _variation_spec(args: argparse.Namespace):
    """VariationSpec from the --yield-* flags, or None when unset."""
    if getattr(args, "yield_percentile", None) is None:
        return None
    from repro.power.optimizer import VariationSpec

    return VariationSpec(
        percentile=args.yield_percentile,
        vt_sigma=args.sigma,
        n_samples=args.samples,
        seed=args.seed,
    )


def _cmd_profile(args: argparse.Namespace) -> int:
    engine = _profile_engine(args)
    programs = [
        build_workload(name, args.scale) for name in args.workload
    ]
    profiles = [profile_program(p, engine=engine) for p in programs]
    profile = functools.reduce(lambda a, b: a.merged_with(b), profiles)
    if args.duty != 1.0:
        profile = profile.scaled_by_duty_cycle(args.duty)
    print(
        format_profile(
            profile,
            _UNITS,
            title=(
                f"Profile of {'+'.join(args.workload)} "
                f"({profile.total_instructions} instruction slots, "
                f"duty {args.duty:g})"
            ),
        )
    )
    return 0


def _build_circuit(name: str, width: int):
    if name == "adder":
        return ripple_carry_adder(width), {"a": width, "b": width}
    if name == "multiplier":
        return array_multiplier(width), {"a": width, "b": width}
    if name == "shifter":
        if width < 1:
            raise ReproError(f"circuit width must be >= 1, got {width}")
        # The barrel shifter needs a power-of-two width of at least 2;
        # width 1 would round to 1 and be rejected by the builder.
        rounded = max(2, 1 << (width - 1).bit_length())
        return barrel_shifter(rounded), {
            "a": rounded,
            "s": rounded.bit_length() - 1,
        }
    raise ReproError(f"unknown circuit {name!r}")


def _cmd_activity(args: argparse.Namespace) -> int:
    netlist, buses = _build_circuit(args.circuit, args.width)
    technology = _TECHNOLOGIES[args.technology]()
    if args.stimulus == "random":
        vectors = random_bus_vectors(buses, args.vectors, seed=args.seed)
    else:
        counting = sorted(buses)[1] if len(buses) > 1 else next(iter(buses))
        fixed = {
            name: (args.seed * 37) % (2 ** buses[name])
            for name in buses
            if name != counting
        }
        vectors = counting_bus_vectors(
            counting,
            buses[counting],
            args.vectors,
            fixed_buses=fixed,
            fixed_widths={n: buses[n] for n in fixed},
        )
    simulator = SwitchLevelSimulator(netlist, technology, args.vdd)
    report = simulator.run_vectors_fast(vectors)
    edges, counts = report.histogram(bins=args.bins)
    rows = [
        [f"{edges[i]:.3f}-{edges[i + 1]:.3f}", counts[i]]
        for i in range(args.bins)
    ]
    energy = report.switching_energy_per_cycle(
        netlist, technology, args.vdd
    )
    print(
        format_table(
            ["transition probability", "nodes"],
            rows,
            title=(
                f"{args.circuit} x{args.width}, {args.stimulus} stimulus: "
                f"mean activity {report.mean_activity():.3f}, "
                f"E_sw {energy:.3e} J/cycle at {args.vdd} V"
            ),
        )
    )
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    started = time.perf_counter()
    technology = _TECHNOLOGIES[args.technology]()
    store = _open_store(args)
    spec = _variation_spec(args)
    flow = LowVoltageDesignFlow(technology=technology, variation=spec)
    optimizer = flow.throughput_optimizer(
        stages=args.stages, activity=args.activity, store=store
    )
    ring = optimizer.ring
    target = args.delay_factor * ring.stage_delay(1.0, 0.2)
    vts = [0.04 + 0.02 * i for i in range(20)]
    if args.workers == 0:
        points = optimizer.sweep(vts, target)
    else:
        from repro.analysis.parallel import map_items
        from repro.errors import OptimizationError

        tasks = [
            (technology, args.stages, args.activity, 2 * args.stages,
             vt, target, spec)
            for vt in vts
        ]
        points = [
            point
            for point in map_items(
                _locus_task, tasks, workers=args.workers,
                progress=_stderr_progress(args.progress, noun="corners"),
            )
            if point is not None
        ]
        if not points:
            raise OptimizationError(
                "no feasible V_T in the sweep for this delay target"
            )
    rows = [
        [p.vt, p.vdd, p.energy_per_cycle_j, p.leakage_fraction]
        for p in points
    ]
    best = optimizer.optimum(target, vt_bounds=(0.02, 0.45))
    if store is not None:
        ring.flush_store()
    print(
        format_table(
            ["V_T [V]", "V_DD [V]", "E/cycle [J]", "leak frac"],
            rows,
            title=(
                f"Fixed-delay locus, target {target:.3e} s/stage "
                f"(activity {args.activity:g})"
            ),
        )
    )
    print(
        f"\nOptimum: V_T = {best.vt:.3f} V, V_DD = {best.vdd:.3f} V, "
        f"E = {best.energy_per_cycle_j:.3e} J/cycle"
    )
    if spec is not None:
        print(
            f"Yield: p{spec.percentile:g} delay = "
            f"{best.delay_percentile_s:.3e} s "
            f"(sigma {spec.vt_sigma:g} V, {spec.n_samples} samples, "
            f"seed {spec.seed}), leakage amplification "
            f"{best.leakage_amplification:.2f}x measured / "
            f"{best.lognormal_amplification:.2f}x lognormal"
        )
    inputs = {
        "technology": args.technology,
        "delay_factor": args.delay_factor,
        "stages": args.stages,
        "activity": args.activity,
        "workers": args.workers,
    }
    result = {
        "target_stage_delay_s": target,
        "locus": [[p.vt, p.vdd, p.energy_per_cycle_j] for p in points],
        "optimum": {
            "vt": best.vt,
            "vdd": best.vdd,
            "energy_per_cycle_j": best.energy_per_cycle_j,
        },
    }
    # Yield keys are added only in statistical mode so nominal runs
    # keep their manifest digests from before this feature existed.
    if spec is not None:
        inputs["yield"] = {
            "percentile": spec.percentile,
            "vt_sigma": spec.vt_sigma,
            "n_samples": spec.n_samples,
            "seed": spec.seed,
        }
        result["optimum"]["delay_percentile_s"] = best.delay_percentile_s
        result["optimum"]["leakage_amplification"] = (
            best.leakage_amplification
        )
        result["optimum"]["lognormal_amplification"] = (
            best.lognormal_amplification
        )
    _record_run(
        args,
        inputs=inputs,
        result=result,
        wall_time_s=time.perf_counter() - started,
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    started = time.perf_counter()
    datapath = standard_datapath(
        width=args.width, stimulus_vectors=args.vectors
    )
    engine = _profile_engine(args)
    programs = [
        build_workload(name, args.scale) for name in args.workload
    ]
    session = functools.reduce(
        lambda a, b: a.merged_with(b),
        [profile_program(p, engine=engine) for p in programs],
    ).scaled_by_duty_cycle(args.duty)
    spec = _variation_spec(args)
    tasks = [
        (name, unit, session.fga(name), session.bga(name),
         args.vdd, args.clock, spec)
        for name, unit in datapath.items()
    ]
    from repro.analysis.parallel import map_items

    rows = map_items(
        _compare_unit_row,
        tasks,
        workers=args.workers,
        progress=_stderr_progress(args.progress, noun="units"),
    )
    print(
        format_table(
            ["unit", "fga", "bga", "SOIAS %", "MTCMOS %", "VTCMOS %"],
            rows,
            title=(
                f"Burst-mode savings vs fixed-low-V_T SOI "
                f"(duty {args.duty:g}, {args.clock:g} Hz, {args.vdd} V)"
            ),
        )
    )
    compare_inputs = {
        "workload": list(args.workload),
        "engine": engine,
        "scale": args.scale,
        "duty": args.duty,
        "width": args.width,
        "vectors": args.vectors,
        "vdd": args.vdd,
        "clock": args.clock,
        "workers": args.workers,
    }
    if spec is not None:
        compare_inputs["yield"] = {
            "percentile": spec.percentile,
            "vt_sigma": spec.vt_sigma,
            "n_samples": spec.n_samples,
            "seed": spec.seed,
        }
    _record_run(
        args,
        inputs=compare_inputs,
        result={
            row[0]: {
                "fga": row[1],
                "bga": row[2],
                "soias_percent": row[3],
                "mtcmos_percent": row[4],
                "vtcmos_percent": row[5],
            }
            for row in rows
        },
        wall_time_s=time.perf_counter() - started,
    )
    return 0


def _cmd_contour(args: argparse.Namespace) -> int:
    started = time.perf_counter()
    flow = LowVoltageDesignFlow(vdd=args.vdd, clock_hz=args.clock)
    datapath = standard_datapath(
        width=args.width, stimulus_vectors=args.vectors
    )
    unit = datapath[args.unit]
    report = flow.unit_activity(unit.netlist, unit.vectors)
    module = flow.module_parameters(unit.netlist, report)
    grid = [i / args.grid for i in range(1, args.grid + 1)]
    scheduler = _open_scheduler(args)
    try:
        surface = flow.ratio_surface(
            module, grid, grid, workers=args.workers,
            progress=_stderr_progress(args.progress),
            store=_open_store(args),
            refine_levels=args.refine,
            refine_band=args.refine_band,
            scheduler=scheduler,
        )
    finally:
        if scheduler is not None:
            scheduler.close()
    defined = [
        (fga, bga, value)
        for i, fga in enumerate(surface.grid.xs)
        for j, bga in enumerate(surface.grid.ys)
        if (value := surface.grid.at(i, j)) is not None
    ]
    if not defined:
        raise ReproError("contour grid has no defined cells")
    best = min(defined, key=lambda cell: cell[2])
    worst = max(defined, key=lambda cell: cell[2])
    rows = [
        ["grid", f"{args.grid} x {args.grid}", "", ""],
        ["defined cells", surface.grid.defined_cells(), "", ""],
        ["best log10 ratio", f"{best[2]:+.3f}", best[0], best[1]],
        ["worst log10 ratio", f"{worst[2]:+.3f}", worst[0], worst[1]],
    ]
    refined = surface.refined
    if refined is not None:
        rows.extend(
            [
                [
                    "refined grid",
                    f"{len(refined.xs)} x {len(refined.ys)}",
                    "",
                    "",
                ],
                [
                    "points evaluated",
                    f"{refined.evaluated}/{refined.total_points} "
                    f"({100.0 * refined.coverage:.1f}%)",
                    "",
                    "",
                ],
                [
                    "cells refined/skipped",
                    f"{refined.cells_refined}/{refined.cells_skipped}",
                    "",
                    "",
                ],
                ["contour cells", len(refined.zero_cells()), "", ""],
            ]
        )
    print(
        format_table(
            ["quantity", "value", "fga", "bga"],
            rows,
            title=(
                f"{args.unit} x{args.width} SOIAS/SOI surface at "
                f"{args.vdd} V, {args.clock:g} Hz "
                f"(workers {args.workers})"
            ),
        )
    )
    inputs = {
        "unit": args.unit,
        "width": args.width,
        "vectors": args.vectors,
        "vdd": args.vdd,
        "clock": args.clock,
        "grid": args.grid,
        "workers": args.workers,
    }
    if scheduler is not None:
        # Conditional key so nominal (pool/serial) manifests keep
        # their input digests from earlier releases.
        inputs["scheduler"] = {"local_workers": args.workers}
    _record_run(
        args,
        inputs=inputs,
        result={
            "defined_cells": surface.grid.defined_cells(),
            "zs": [list(row) for row in surface.grid.zs],
            "refined": None
            if refined is None
            else {
                "levels": refined.levels,
                "band": refined.band,
                "evaluated": refined.evaluated,
                "total_points": refined.total_points,
                "zero_cells": [list(cell) for cell in refined.zero_cells()],
            },
        },
        wall_time_s=time.perf_counter() - started,
    )
    return 0


def _cmd_surface(args: argparse.Namespace) -> int:
    started = time.perf_counter()
    if args.grid < 2:
        raise ReproError("surface grid must be at least 2 x 2")
    if not args.vt_min < args.vt_max:
        raise ReproError("--vt-min must be below --vt-max")
    if not 0.0 < args.vdd_min < args.vdd_max:
        raise ReproError("need 0 < --vdd-min < --vdd-max")
    flow = LowVoltageDesignFlow(
        technology=_TECHNOLOGIES[args.technology](), clock_hz=args.clock
    )
    steps = args.grid - 1
    vt_values = [
        args.vt_min + (args.vt_max - args.vt_min) * i / steps
        for i in range(args.grid)
    ]
    vdd_values = [
        args.vdd_min + (args.vdd_max - args.vdd_min) * j / steps
        for j in range(args.grid)
    ]
    scheduler = _open_scheduler(args)
    try:
        surface = flow.energy_surface(
            vt_values,
            vdd_values,
            stages=args.stages,
            activity=args.activity,
            workers=args.workers,
            progress=_stderr_progress(args.progress),
            store=_open_store(args),
            refine_levels=args.refine,
            refine_band=args.refine_band,
            scheduler=scheduler,
        )
    finally:
        if scheduler is not None:
            scheduler.close()
    locus = surface.optimum_locus()
    if not locus:
        raise ReproError(
            "no feasible (V_DD, V_T) cell at this clock; widen the "
            "V_DD range or slow the clock"
        )
    vdd_best, vt_best, energy_best = surface.optimum()
    rows = [
        ["grid", f"{args.grid} x {args.grid}", "", ""],
        ["feasible cells", surface.grid.defined_cells(), "", ""],
        [
            "stage-delay budget",
            f"{surface.target_stage_delay_s:.3e} s",
            "",
            "",
        ],
        ["optimum energy", f"{energy_best:.3e} J", vdd_best, vt_best],
    ]
    for vt, vdd, energy in locus:
        rows.append(["locus", f"{energy:.3e} J", f"{vdd:.3f}", f"{vt:.3f}"])
    refined = surface.refined
    if refined is not None:
        rows.extend(
            [
                [
                    "refined grid",
                    f"{len(refined.xs)} x {len(refined.ys)}",
                    "",
                    "",
                ],
                [
                    "points evaluated",
                    f"{refined.evaluated}/{refined.total_points} "
                    f"({100.0 * refined.coverage:.1f}%)",
                    "",
                    "",
                ],
                [
                    "cells refined/skipped",
                    f"{refined.cells_refined}/{refined.cells_skipped}",
                    "",
                    "",
                ],
            ]
        )
    print(
        format_table(
            ["quantity", "value", "vdd", "vt"],
            rows,
            title=(
                f"{args.technology} energy surface at {args.clock:g} Hz, "
                f"{args.stages} stages (workers {args.workers})"
            ),
        )
    )
    inputs = {
        "technology": args.technology,
        "clock": args.clock,
        "stages": args.stages,
        "activity": args.activity,
        "grid": args.grid,
        "vt_range": [args.vt_min, args.vt_max],
        "vdd_range": [args.vdd_min, args.vdd_max],
        "workers": args.workers,
    }
    if scheduler is not None:
        inputs["scheduler"] = {"local_workers": args.workers}
    _record_run(
        args,
        inputs=inputs,
        result={
            "feasible_cells": surface.grid.defined_cells(),
            "optimum": [vdd_best, vt_best, energy_best],
            "locus": [list(row) for row in locus],
            "zs": [list(row) for row in surface.grid.zs],
            "refined": None
            if refined is None
            else {
                "levels": refined.levels,
                "band": refined.band,
                "evaluated": refined.evaluated,
                "total_points": refined.total_points,
            },
        },
        wall_time_s=time.perf_counter() - started,
    )
    return 0


def _cmd_variation(args: argparse.Namespace) -> int:
    started = time.perf_counter()
    from repro.analysis.variation import (
        MonteCarloAnalyzer,
        lognormal_leakage_amplification,
    )
    from repro.tech.cells import standard_cells

    technology = _TECHNOLOGIES[args.technology]()
    cells = standard_cells()
    if args.cell not in cells:
        raise ReproError(
            f"unknown cell {args.cell!r}; available: "
            f"{', '.join(sorted(cells))}"
        )
    cell = cells[args.cell]
    scheduler = _open_scheduler(args)
    analyzer = MonteCarloAnalyzer(
        technology,
        vt_sigma=args.sigma,
        n_samples=args.samples,
        seed=args.seed,
        workers=args.workers,
        store=_open_store(args),
        progress=_stderr_progress(args.progress, noun="samples"),
        scheduler=scheduler,
    )
    load_f = args.load_ff * 1e-15
    try:
        delay = analyzer.delay_distribution(cell, args.vdd, load_f)
        leakage = analyzer.leakage_distribution(cell, args.vdd)
        amplification = analyzer.leakage_amplification(cell, args.vdd)
    finally:
        if scheduler is not None:
            scheduler.close()
    predicted = lognormal_leakage_amplification(
        args.sigma, technology.transistors.nmos.subthreshold_swing
    )
    label = f"p{args.percentile:g}"
    rows = [
        [
            "delay [s]",
            delay.mean,
            delay.std,
            delay.coefficient_of_variation,
            delay.percentile(args.percentile),
        ],
        [
            "leakage [A]",
            leakage.mean,
            leakage.std,
            leakage.coefficient_of_variation,
            leakage.percentile(args.percentile),
        ],
    ]
    print(
        format_table(
            ["quantity", "mean", "std", "CV", label],
            rows,
            title=(
                f"{args.cell} V_T variation on {technology.name} at "
                f"{args.vdd} V (sigma {args.sigma} V, {args.samples} "
                f"samples, workers {args.workers})"
            ),
        )
    )
    print(
        f"\nLeakage amplification: measured {amplification:.3f}x, "
        f"lognormal closed form {predicted:.3f}x"
    )
    inputs = {
        "cell": args.cell,
        "technology": args.technology,
        "vdd": args.vdd,
        "sigma": args.sigma,
        "samples": args.samples,
        "seed": args.seed,
        "load_ff": args.load_ff,
        "workers": args.workers,
    }
    if scheduler is not None:
        inputs["scheduler"] = {"local_workers": args.workers}
    _record_run(
        args,
        inputs=inputs,
        result={
            "delay_samples": list(delay.samples),
            "leakage_samples": list(leakage.samples),
            "amplification": amplification,
        },
        wall_time_s=time.perf_counter() - started,
    )
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    technology = _TECHNOLOGIES[args.technology]()
    library = CellLibrary.characterized(
        technology,
        vdd_grid=args.vdd,
        vt_shift_grid=args.vt_shift,
        load_f=args.load_ff * 1e-15,
    )
    rows = []
    for cell_name in sorted(library.cells):
        corner = library.lookup(cell_name, args.vdd[0], args.vt_shift[0])
        rows.append(
            [
                cell_name,
                corner.delay_s,
                corner.energy_per_transition_j,
                corner.leakage_current_a,
                corner.input_capacitance_f,
            ]
        )
    print(
        format_table(
            ["cell", "delay [s]", "E/tr [J]", "leak [A]", "C_in [F]"],
            rows,
            title=(
                f"{technology.name} @ {args.vdd[0]} V, shift "
                f"{args.vt_shift[0]} V, load {args.load_ff} fF"
            ),
        )
    )
    if args.output:
        library.save(args.output)
        print(f"\nLibrary written to {args.output}")
    return 0


def _cmd_margins(args: argparse.Namespace) -> int:
    from repro.circuits.dc import InverterDcAnalysis

    technology = _TECHNOLOGIES[args.technology]()
    dc = InverterDcAnalysis(technology)
    rows = []
    for vdd in args.vdd:
        margins = dc.noise_margins(vdd)
        rows.append(
            [
                vdd,
                dc.switching_threshold(vdd),
                dc.peak_gain(vdd),
                margins.low,
                margins.high,
                margins.worst / vdd,
            ]
        )
    print(
        format_table(
            ["V_DD [V]", "V_M [V]", "peak gain", "NM_L [V]", "NM_H [V]",
             "worst/V_DD"],
            rows,
            title=f"Inverter noise margins, {technology.name}",
        )
    )
    if args.floor:
        floor = dc.minimum_supply(margin_fraction=args.floor)
        print(
            f"\nMinimum supply for a {args.floor:.0%} worst-margin "
            f"budget: {floor * 1e3:.0f} mV"
        )
    return 0


def _cmd_shutdown(args: argparse.Namespace) -> int:
    from repro.core.shutdown import (
        OraclePolicy,
        PredictivePolicy,
        ShutdownCosts,
        TimeoutPolicy,
        evaluate_policy,
        synthetic_session_trace,
    )

    costs = ShutdownCosts(
        active_power_w=args.active_mw * 1e-3,
        idle_power_w=args.idle_mw * 1e-3,
        off_power_w=args.off_uw * 1e-6,
        wakeup_energy_j=args.wakeup_uj * 1e-6,
        wakeup_latency_cycles=args.wakeup_latency,
        cycle_time_s=1.0 / args.clock,
    )
    trace = synthetic_session_trace(
        n_periods=args.periods,
        mean_busy_cycles=args.mean_busy,
        mean_idle_cycles=args.mean_idle,
        seed=args.seed,
    )
    breakeven = costs.breakeven_cycles
    policies = [
        ("always-on", TimeoutPolicy(10**12)),
        ("timeout@break-even", TimeoutPolicy(max(int(breakeven), 1))),
        ("predictive", PredictivePolicy(breakeven)),
        ("oracle", OraclePolicy(breakeven)),
    ]
    rows = []
    for name, policy in policies:
        report = evaluate_policy(trace, policy, costs, name)
        rows.append(
            [
                name,
                report.energy_j,
                100.0 * report.saving_vs_always_on,
                report.off_fraction,
                report.wakeups,
            ]
        )
    print(
        format_table(
            ["policy", "energy [J]", "saving %", "off fraction", "wakeups"],
            rows,
            title=(
                f"Shutdown policies (break-even idle = {breakeven:.0f} "
                "cycles)"
            ),
        )
    )
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.power.dualvt import DualVtOptimizer
    from repro.power.sizing import GateSizingOptimizer

    technology = _TECHNOLOGIES[args.technology]()
    netlist, _ = _build_circuit(args.circuit, args.width)
    rows = []
    sizer = GateSizingOptimizer(netlist, technology, vdd=args.vdd)
    sized = sizer.optimize(delay_budget=args.budget)
    rows.append(
        [
            "downsizing",
            sized.downsized_gates,
            sized.capacitance_reduction,
            sized.leakage_reduction,
            sized.delay_penalty,
        ]
    )
    dualvt = DualVtOptimizer(netlist, technology, vdd=args.vdd).optimize(
        delay_budget=args.budget
    )
    rows.append(
        [
            "dual-V_T",
            len(dualvt.high_vt_gates),
            1.0,
            dualvt.leakage_reduction,
            dualvt.delay_penalty,
        ]
    )
    print(
        format_table(
            ["pass", "gates touched", "cap reduction", "leak reduction",
             "delay penalty"],
            rows,
            title=(
                f"Power recovery, {args.circuit} x{args.width} at "
                f"{args.vdd} V (delay budget {args.budget:g})"
            ),
        )
    )
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    from repro.store import RunRegistry

    registry = RunRegistry(args.runs_root)
    if args.action == "list":
        manifests = registry.list_manifests()
        if not manifests:
            print(f"No runs recorded under {registry.root}")
            return 0
        rows = [
            [
                manifest.run_id,
                manifest.command,
                manifest.created_utc,
                f"{manifest.wall_time_s:.3f}",
                manifest.result_digest[:12],
            ]
            for manifest in manifests
        ]
        print(
            format_table(
                ["run", "command", "created (UTC)", "wall [s]", "result"],
                rows,
                title=f"Recorded runs in {registry.root}",
            )
        )
        return 0
    if args.action == "show":
        if len(args.run_ids) != 1:
            raise ReproError("runs show needs exactly one run id")
        manifest = registry.load(args.run_ids[0])
        print(json.dumps(manifest.to_dict(), indent=2, sort_keys=True))
        return 0
    # diff
    if len(args.run_ids) != 2:
        raise ReproError("runs diff needs exactly two run ids")
    differences = registry.diff(args.run_ids[0], args.run_ids[1])
    if not differences:
        print("Runs are identical (apart from identity).")
        return 0
    rows = [
        [name, str(pair[0]), str(pair[1])]
        for name, pair in sorted(differences.items())
    ]
    print(
        format_table(
            ["field", args.run_ids[0], args.run_ids[1]],
            rows,
            title="Run differences",
        )
    )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.store import ResultStore

    store = ResultStore.at(args.store)
    if args.action == "stats":
        stats = store.stats()
        rows = [[name, str(stats[name])] for name in sorted(stats)]
        print(
            format_table(
                ["statistic", "value"],
                rows,
                title=f"Result store at {args.store}",
            )
        )
        return 0
    # gc
    removed, freed = store.gc(max_bytes=int(args.max_mb * 1_000_000))
    print(
        f"Removed {removed} entries ({freed} bytes) from {args.store}; "
        f"{store.stats()['backend_entries']} entries remain."
    )
    return 0


def _cmd_sched_worker(args: argparse.Namespace) -> int:
    from repro.sched.worker import worker_main

    committed = worker_main(
        args.queue,
        lease_s=args.lease_s,
        poll_s=args.poll_s,
        max_idle_s=args.max_idle_s,
        once=args.once,
        job_id=args.job,
    )
    print(f"worker drained {committed} chunk(s) from {args.queue}")
    return 0


def _cmd_sched_submit(args: argparse.Namespace) -> int:
    from repro.sched import Scheduler
    from repro.sched.workloads import (
        ContourCellTask,
        contour_grid,
        contour_pairs,
        demo_module,
    )

    task = ContourCellTask(
        demo_module(), args.vdd, 1.0 / args.clock, repeat=args.repeat
    )
    pairs = contour_pairs(contour_grid(args.grid))
    scheduler = Scheduler(root=args.queue, plan_workers=args.plan_workers)
    record = scheduler.submit(
        task, pairs,
        note=args.note or f"contour {args.grid}x{args.grid}",
    )
    print(
        f"Job submitted: {record.job_id} ({record.n_items} items in "
        f"{record.n_chunks} chunks of {record.chunksize})"
    )
    return 0


def _cmd_sched_status(args: argparse.Namespace) -> int:
    from repro.sched import JobQueue

    queue = JobQueue(args.queue)
    job_ids = [args.job] if args.job else queue.list_jobs()
    rows = []
    for job_id in job_ids:
        status = queue.status(job_id)
        state = "cancelled" if status.cancelled else (
            "finished" if status.finished else "running"
        )
        rows.append(
            [
                status.job_id,
                state,
                f"{status.done}/{status.n_chunks}",
                status.leased,
                status.queued,
                status.n_items,
                status.note,
            ]
        )
    if rows:
        print(
            format_table(
                ["job", "state", "done", "leased", "queued", "items",
                 "note"],
                rows,
                title=f"Scheduler queue {args.queue}",
            )
        )
    else:
        print(f"Scheduler queue {args.queue}: no jobs")
    print(f"queue depth: {queue.queue_depth()} claimable chunk(s)")
    return 0


def _cmd_sched_cancel(args: argparse.Namespace) -> int:
    from repro.sched import JobQueue

    JobQueue(args.queue).cancel(args.job)
    print(f"Job cancelled: {args.job}")
    return 0


def _add_record_arguments(parser: argparse.ArgumentParser) -> None:
    """--record / --runs-root for the manifest-recording subcommands."""
    from repro.store.registry import DEFAULT_RUNS_ROOT

    parser.add_argument(
        "--record", action="store_true",
        help="write a run manifest (inputs digest, wall time, metrics, "
        "result digest) under the runs root",
    )
    parser.add_argument(
        "--runs-root", default=DEFAULT_RUNS_ROOT, metavar="PATH",
        help=f"run-manifest directory (default: {DEFAULT_RUNS_ROOT})",
    )


def _add_store_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store", default=None, metavar="PATH",
        help="persist results under PATH for reuse and resumption "
        f"(e.g. {_DEFAULT_STORE_ROOT})",
    )


def _add_scheduler_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scheduler", default=None, metavar="DIR",
        help="evaluate the fan-out through the durable work queue at "
        "DIR instead of an in-process pool (workers started here "
        "and/or externally with 'repro sched worker DIR' drain it; "
        "--workers then means local scheduler workers to spawn)",
    )


def _open_scheduler(args: argparse.Namespace):
    """The Scheduler named by ``--scheduler``, or None when absent."""
    path = getattr(args, "scheduler", None)
    if not path:
        return None
    from repro.sched import Scheduler

    return Scheduler(root=path, local_workers=args.workers)


def _add_parallel_arguments(
    parser: argparse.ArgumentParser, noun: str
) -> None:
    """--workers / --progress, shared by the fan-out subcommands."""
    parser.add_argument(
        "--workers", type=int, default=0,
        help=f"worker processes for the {noun} (0 = serial)",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="report completion on stderr as chunks finish",
    )


def _add_engine_argument(parser: argparse.ArgumentParser) -> None:
    """--reference escape hatch for the profiling subcommands."""
    parser.add_argument(
        "--reference", action="store_true",
        help=(
            "profile through the hook-instrumented reference "
            "interpreter instead of the decoded fast engine "
            "(identical numbers, much slower)"
        ),
    )


def _add_yield_arguments(parser: argparse.ArgumentParser) -> None:
    """--yield-percentile / --sigma / --samples / --seed knobs."""
    parser.add_argument(
        "--yield-percentile", type=float, default=None, metavar="P",
        help="solve V_DD for the P-th percentile Monte-Carlo delay "
        "corner instead of the nominal corner (default: off — "
        "bit-identical nominal optimization)",
    )
    parser.add_argument(
        "--sigma", type=float, default=0.03, metavar="V",
        help="V_T standard deviation for the yield solve (default 0.03)",
    )
    parser.add_argument(
        "--samples", type=int, default=300,
        help="Monte-Carlo samples per yield solve (default 300)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="shift-vector seed for the yield solve (default 0)",
    )


def _add_metrics_arguments(parser: argparse.ArgumentParser) -> None:
    """--metrics / --metrics-json for the instrumented subcommands."""
    parser.add_argument(
        "--metrics", action="store_true",
        help="print instrumentation counters and timers after the run",
    )
    parser.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="write the metrics snapshot to PATH (implies --metrics)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Low-voltage design toolkit (DAC 1996 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    profile = sub.add_parser("profile", help="fga/bga workload profiling")
    profile.add_argument(
        "--workload", nargs="+",
        choices=list(WORKLOAD_NAMES),
        default=["idea"],
    )
    profile.add_argument("--scale", type=int, default=48)
    profile.add_argument("--duty", type=float, default=1.0)
    _add_engine_argument(profile)
    _add_metrics_arguments(profile)
    profile.set_defaults(handler=_cmd_profile)

    activity = sub.add_parser(
        "activity", help="switch-level activity histograms"
    )
    activity.add_argument(
        "--circuit", choices=["adder", "shifter", "multiplier"],
        default="adder",
    )
    activity.add_argument("--width", type=int, default=8)
    activity.add_argument(
        "--stimulus", choices=["random", "counting"], default="random"
    )
    activity.add_argument("--vectors", type=int, default=300)
    activity.add_argument("--bins", type=int, default=10)
    activity.add_argument("--vdd", type=float, default=1.0)
    activity.add_argument("--seed", type=int, default=0)
    activity.add_argument(
        "--technology", choices=sorted(_TECHNOLOGIES), default="soi"
    )
    activity.set_defaults(handler=_cmd_activity)

    optimize = sub.add_parser(
        "optimize", help="fixed-throughput (V_DD, V_T) optimization"
    )
    optimize.add_argument("--delay-factor", type=float, default=4.0)
    optimize.add_argument("--stages", type=int, default=101)
    optimize.add_argument("--activity", type=float, default=1.0)
    optimize.add_argument(
        "--technology", choices=sorted(_TECHNOLOGIES), default="soi"
    )
    _add_yield_arguments(optimize)
    _add_parallel_arguments(optimize, "V_T locus")
    _add_store_argument(optimize)
    _add_record_arguments(optimize)
    _add_metrics_arguments(optimize)
    optimize.set_defaults(handler=_cmd_optimize)

    compare = sub.add_parser(
        "compare", help="burst-mode technology comparison (Fig. 10)"
    )
    compare.add_argument(
        "--workload", nargs="+",
        choices=list(WORKLOAD_NAMES),
        default=["espresso", "li", "idea"],
    )
    _add_engine_argument(compare)
    compare.add_argument("--scale", type=int, default=48)
    compare.add_argument("--duty", type=float, default=0.2)
    compare.add_argument("--width", type=int, default=8)
    compare.add_argument("--vectors", type=int, default=80)
    compare.add_argument("--vdd", type=float, default=1.0)
    compare.add_argument("--clock", type=float, default=1e6)
    _add_yield_arguments(compare)
    _add_parallel_arguments(compare, "unit evaluations")
    _add_record_arguments(compare)
    _add_metrics_arguments(compare)
    compare.set_defaults(handler=_cmd_compare)

    contour = sub.add_parser(
        "contour", help="Fig. 10 energy-ratio surface over a (fga, bga) grid"
    )
    contour.add_argument(
        "--unit", choices=["adder", "shifter", "multiplier"],
        default="adder",
    )
    contour.add_argument("--width", type=int, default=8)
    contour.add_argument("--vectors", type=int, default=80)
    contour.add_argument("--vdd", type=float, default=1.0)
    contour.add_argument("--clock", type=float, default=1e6)
    contour.add_argument("--grid", type=int, default=24)
    contour.add_argument(
        "--refine", type=int, default=0, metavar="N",
        help="adaptive subdivision levels around the break-even "
        "contour (0 = uniform grid only)",
    )
    contour.add_argument(
        "--refine-band", type=float, default=0.15, metavar="B",
        help="|log10 ratio| band that marks a cell for refinement "
        "(default: 0.15)",
    )
    _add_parallel_arguments(contour, "grid")
    _add_scheduler_argument(contour)
    _add_store_argument(contour)
    _add_record_arguments(contour)
    _add_metrics_arguments(contour)
    contour.set_defaults(handler=_cmd_contour)

    surface = sub.add_parser(
        "surface",
        help="Fig. 3/4 energy surface over a (V_T, V_DD) grid",
    )
    surface.add_argument(
        "--technology", choices=sorted(_TECHNOLOGIES), default="soi"
    )
    surface.add_argument("--clock", type=float, default=1e6)
    surface.add_argument("--stages", type=int, default=101)
    surface.add_argument("--activity", type=float, default=1.0)
    surface.add_argument("--grid", type=int, default=12)
    surface.add_argument("--vt-min", type=float, default=0.1)
    surface.add_argument("--vt-max", type=float, default=0.5)
    surface.add_argument("--vdd-min", type=float, default=0.2)
    surface.add_argument("--vdd-max", type=float, default=1.5)
    surface.add_argument(
        "--refine", type=int, default=0, metavar="N",
        help="adaptive subdivision levels around the optimum-energy "
        "locus (0 = uniform grid only)",
    )
    surface.add_argument(
        "--refine-band", type=float, default=0.2, metavar="B",
        help="relative distance from the per-V_T energy minimum that "
        "marks a cell for refinement (default: 0.2)",
    )
    _add_parallel_arguments(surface, "grid")
    _add_scheduler_argument(surface)
    _add_store_argument(surface)
    _add_record_arguments(surface)
    _add_metrics_arguments(surface)
    surface.set_defaults(handler=_cmd_surface)

    variation = sub.add_parser(
        "variation",
        help="Monte-Carlo V_T variation analysis (batched plan engine)",
    )
    variation.add_argument("--cell", default="INV", metavar="NAME")
    variation.add_argument(
        "--technology", choices=sorted(_TECHNOLOGIES), default="soi"
    )
    variation.add_argument("--vdd", type=float, default=1.0)
    variation.add_argument("--sigma", type=float, default=0.03)
    variation.add_argument("--samples", type=int, default=300)
    variation.add_argument("--seed", type=int, default=0)
    variation.add_argument("--load-ff", type=float, default=10.0)
    variation.add_argument("--percentile", type=float, default=99.0)
    _add_parallel_arguments(variation, "sample chunks")
    _add_scheduler_argument(variation)
    _add_store_argument(variation)
    _add_record_arguments(variation)
    _add_metrics_arguments(variation)
    variation.set_defaults(handler=_cmd_variation)

    characterize = sub.add_parser(
        "characterize", help="cell-library characterization"
    )
    characterize.add_argument(
        "--technology", choices=sorted(_TECHNOLOGIES), default="soias"
    )
    characterize.add_argument(
        "--vdd", nargs="+", type=float, default=[1.0]
    )
    characterize.add_argument(
        "--vt-shift", nargs="+", type=float, default=[0.0]
    )
    characterize.add_argument("--load-ff", type=float, default=10.0)
    characterize.add_argument("--output", default=None)
    characterize.set_defaults(handler=_cmd_characterize)

    margins = sub.add_parser(
        "margins", help="inverter noise margins and the V_DD floor"
    )
    margins.add_argument(
        "--technology", choices=sorted(_TECHNOLOGIES), default="soi"
    )
    margins.add_argument(
        "--vdd", nargs="+", type=float,
        default=[1.0, 0.5, 0.3, 0.2, 0.12],
    )
    margins.add_argument(
        "--floor", type=float, default=0.3,
        help="worst-margin budget (fraction of V_DD); 0 disables",
    )
    margins.set_defaults(handler=_cmd_margins)

    shutdown = sub.add_parser(
        "shutdown", help="system shutdown-policy comparison"
    )
    shutdown.add_argument("--active-mw", type=float, default=10.0)
    shutdown.add_argument("--idle-mw", type=float, default=2.0)
    shutdown.add_argument("--off-uw", type=float, default=0.01)
    shutdown.add_argument("--wakeup-uj", type=float, default=0.1)
    shutdown.add_argument("--wakeup-latency", type=int, default=50)
    shutdown.add_argument("--clock", type=float, default=1e6)
    shutdown.add_argument("--periods", type=int, default=400)
    shutdown.add_argument("--mean-busy", type=int, default=50)
    shutdown.add_argument("--mean-idle", type=int, default=800)
    shutdown.add_argument("--seed", type=int, default=0)
    shutdown.set_defaults(handler=_cmd_shutdown)

    recover = sub.add_parser(
        "recover", help="dual-V_T + gate-sizing power recovery"
    )
    recover.add_argument(
        "--circuit", choices=["adder", "shifter", "multiplier"],
        default="adder",
    )
    recover.add_argument("--width", type=int, default=12)
    recover.add_argument("--vdd", type=float, default=1.0)
    recover.add_argument("--budget", type=float, default=1.0)
    recover.add_argument(
        "--technology", choices=sorted(_TECHNOLOGIES), default="soi"
    )
    recover.set_defaults(handler=_cmd_recover)

    from repro.store.registry import DEFAULT_RUNS_ROOT

    runs = sub.add_parser(
        "runs", help="inspect recorded run manifests"
    )
    runs.add_argument("action", choices=["list", "show", "diff"])
    runs.add_argument(
        "run_ids", nargs="*", metavar="RUN_ID",
        help="one id for show, two for diff",
    )
    runs.add_argument(
        "--runs-root", default=DEFAULT_RUNS_ROOT, metavar="PATH",
        help=f"run-manifest directory (default: {DEFAULT_RUNS_ROOT})",
    )
    runs.set_defaults(handler=_cmd_runs)

    cache = sub.add_parser(
        "cache", help="result-store statistics and garbage collection"
    )
    cache.add_argument("action", choices=["stats", "gc"])
    cache.add_argument(
        "--store", default=_DEFAULT_STORE_ROOT, metavar="PATH",
        help=f"result-store directory (default: {_DEFAULT_STORE_ROOT})",
    )
    cache.add_argument(
        "--max-mb", type=float, default=0.0,
        help="gc target size in MB (0 = remove everything)",
    )
    cache.set_defaults(handler=_cmd_cache)

    sched = sub.add_parser(
        "sched",
        help="durable distributed sweep scheduler (queue of leased "
        "chunks drained by worker processes)",
    )
    sched_sub = sched.add_subparsers(dest="sched_command", required=True)

    sched_worker = sched_sub.add_parser(
        "worker",
        help="run a claim/evaluate/heartbeat/commit worker loop",
    )
    sched_worker.add_argument("queue", metavar="DIR")
    sched_worker.add_argument(
        "--lease-s", type=float, default=30.0,
        help="lease duration granted per claimed chunk (default 30)",
    )
    sched_worker.add_argument(
        "--poll-s", type=float, default=0.5,
        help="sleep between claim attempts when idle (default 0.5)",
    )
    sched_worker.add_argument(
        "--max-idle-s", type=float, default=None,
        help="exit after this long with nothing claimable "
        "(default: run forever)",
    )
    sched_worker.add_argument(
        "--once", action="store_true",
        help="process at most one chunk, then exit",
    )
    sched_worker.add_argument(
        "--job", default=None, metavar="JOB_ID",
        help="only claim chunks of this job",
    )
    sched_worker.set_defaults(handler=_cmd_sched_worker)

    sched_submit = sched_sub.add_parser(
        "submit", help="enqueue a demo contour job (idempotent)"
    )
    sched_submit.add_argument("queue", metavar="DIR")
    sched_submit.add_argument(
        "--kind", choices=["contour"], default="contour",
        help="workload family (currently the Fig. 10 contour demo)",
    )
    sched_submit.add_argument("--grid", type=int, default=12)
    sched_submit.add_argument("--vdd", type=float, default=1.0)
    sched_submit.add_argument("--clock", type=float, default=1e6)
    sched_submit.add_argument(
        "--repeat", type=int, default=1,
        help="re-evaluations per cell (tunable per-chunk cost)",
    )
    sched_submit.add_argument(
        "--plan-workers", type=int, default=2,
        help="planned fan-out for chunk sizing — part of the job id, "
        "keep fixed across resumes (default 2)",
    )
    sched_submit.add_argument("--note", default="", metavar="TEXT")
    sched_submit.set_defaults(handler=_cmd_sched_submit)

    sched_status = sched_sub.add_parser(
        "status", help="per-job chunk accounting and queue depth"
    )
    sched_status.add_argument("queue", metavar="DIR")
    sched_status.add_argument(
        "--job", default=None, metavar="JOB_ID",
        help="show only this job",
    )
    sched_status.set_defaults(handler=_cmd_sched_status)

    sched_cancel = sched_sub.add_parser(
        "cancel", help="mark a job cancelled; workers stop claiming it"
    )
    sched_cancel.add_argument("queue", metavar="DIR")
    sched_cancel.add_argument("job", metavar="JOB_ID")
    sched_cancel.set_defaults(handler=_cmd_sched_cancel)

    return parser


def _emit_metrics(args: argparse.Namespace) -> None:
    """Print (and optionally persist) the metrics collected for a run."""
    hits = obs.counter_value("characterizer.hits")
    misses = obs.counter_value("characterizer.misses")
    if hits + misses:
        obs.gauge("characterizer.hit_rate", hits / (hits + misses))
    print()
    print(obs.format_summary(title=f"Metrics: {args.command}"))
    path = getattr(args, "metrics_json", None)
    if path:
        obs.dump_json(path, extra={"command": args.command})
        print(f"Metrics JSON written to {path}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    wants_metrics = bool(
        getattr(args, "metrics", False)
        or getattr(args, "metrics_json", None)
    )
    # --record implies instrumentation so the manifest's metrics
    # snapshot is populated (the table still prints only on --metrics).
    wants_obs = wants_metrics or bool(getattr(args, "record", False))
    if wants_obs:
        obs.reset()
        obs.enable()
    try:
        code = args.handler(args)
        if wants_metrics:
            _emit_metrics(args)
        return code
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a pager/head that exited early.
        try:
            sys.stdout.close()
        except OSError:  # pragma: no cover
            pass
        return 0
    finally:
        if wants_obs:
            obs.disable()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
