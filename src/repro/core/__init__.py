"""The paper's methodology, packaged as one flow.

:class:`~repro.core.flow.LowVoltageDesignFlow` chains the tools the
paper calls for: instruction-level profiling (fga/bga), switch-level
activity estimation (alpha), module energy extraction, and technology
comparison — one call per paper experiment.  Canned scenarios (the
X server, continuous DSP) live in :mod:`~repro.core.scenarios`.
"""

from repro.core.flow import (
    LowVoltageDesignFlow,
    UnitEvaluation,
    ApplicationEvaluation,
)
from repro.core.scenarios import (
    DatapathUnit,
    standard_datapath,
    xserver_scenario,
    continuous_scenario,
    Scenario,
)
from repro.core.shutdown import (
    ActivityPeriod,
    GracefulShutdown,
    OraclePolicy,
    PredictivePolicy,
    ShutdownCosts,
    ShutdownReport,
    TimeoutPolicy,
    evaluate_policy,
    synthetic_session_trace,
)

__all__ = [
    "ActivityPeriod",
    "ShutdownCosts",
    "ShutdownReport",
    "TimeoutPolicy",
    "PredictivePolicy",
    "OraclePolicy",
    "evaluate_policy",
    "synthetic_session_trace",
    "GracefulShutdown",
    "LowVoltageDesignFlow",
    "UnitEvaluation",
    "ApplicationEvaluation",
    "DatapathUnit",
    "standard_datapath",
    "xserver_scenario",
    "continuous_scenario",
    "Scenario",
]
