"""System-level shutdown policies for event-driven computation.

Section 4 of the paper motivates burst-mode technologies with X-server
traces: "the processor spends more than 95 % of its time in the off
state suggesting large energy reductions under ideal shutdown
conditions" (citing Srivastava, Chandrakasan & Brodersen's predictive
shutdown work).  This module supplies that system layer:

* :func:`synthetic_session_trace` — an X-session-like alternating
  busy/idle trace with heavy-tailed idle periods,
* three policies — fixed timeout, predictive (exponential-average
  idle-length prediction, per the cited paper), and the ideal oracle,
* :func:`evaluate_policy` — energy/latency accounting against
  always-on operation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Protocol

from repro.errors import AnalysisError

__all__ = [
    "ActivityPeriod",
    "ShutdownCosts",
    "ShutdownReport",
    "TimeoutPolicy",
    "PredictivePolicy",
    "OraclePolicy",
    "synthetic_session_trace",
    "evaluate_policy",
    "GracefulShutdown",
]


@dataclass(frozen=True)
class ActivityPeriod:
    """One busy or idle stretch, in clock cycles."""

    busy: bool
    duration_cycles: int

    def __post_init__(self) -> None:
        if self.duration_cycles < 1:
            raise AnalysisError("period duration must be >= 1 cycle")


@dataclass(frozen=True)
class ShutdownCosts:
    """Per-state power and transition costs of the system.

    ``idle_power_w`` is the powered-but-idle state (clock gated, low
    V_T leaking — exactly the E_SOI idle term); ``off_power_w`` is the
    shutdown state (high V_T / power gated).
    """

    active_power_w: float
    idle_power_w: float
    off_power_w: float
    wakeup_energy_j: float
    wakeup_latency_cycles: int
    cycle_time_s: float

    def __post_init__(self) -> None:
        for name in (
            "active_power_w", "idle_power_w", "off_power_w",
            "wakeup_energy_j",
        ):
            if getattr(self, name) < 0.0:
                raise AnalysisError(f"{name} must be >= 0")
        if self.wakeup_latency_cycles < 0:
            raise AnalysisError("wakeup latency must be >= 0")
        if self.cycle_time_s <= 0.0:
            raise AnalysisError("cycle time must be positive")
        if not self.off_power_w <= self.idle_power_w <= self.active_power_w:
            raise AnalysisError(
                "powers must satisfy off <= idle <= active"
            )

    @property
    def breakeven_cycles(self) -> float:
        """Idle length above which shutting down saves energy."""
        saved_per_cycle = (
            (self.idle_power_w - self.off_power_w) * self.cycle_time_s
        )
        if saved_per_cycle <= 0.0:
            return float("inf")
        return self.wakeup_energy_j / saved_per_cycle


class ShutdownPolicy(Protocol):
    """Decides, at the start of each idle period, when to power off."""

    def shutdown_delay(
        self, idle_history: List[int], true_duration: int
    ) -> Optional[int]:
        """Cycles to stay powered before shutting down.

        Return None to stay powered through the whole period.  Honest
        policies must ignore ``true_duration`` (only the oracle looks).
        """
        ...  # pragma: no cover


@dataclass(frozen=True)
class TimeoutPolicy:
    """Classic fixed-timeout shutdown: power off after N idle cycles."""

    timeout_cycles: int

    def __post_init__(self) -> None:
        if self.timeout_cycles < 0:
            raise AnalysisError("timeout must be >= 0")

    def shutdown_delay(
        self, idle_history: List[int], true_duration: int
    ) -> Optional[int]:
        return self.timeout_cycles


@dataclass
class PredictivePolicy:
    """Predictive shutdown (paper reference [4]).

    Predicts the upcoming idle duration as an exponential average of
    past idle durations; shuts down *immediately* when the prediction
    exceeds the break-even length, otherwise stays powered (avoiding
    the wake penalty on short gaps).
    """

    breakeven_cycles: float
    smoothing: float = 0.5
    initial_prediction: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.smoothing <= 1.0:
            raise AnalysisError("smoothing must be in (0, 1]")
        if self.breakeven_cycles < 0.0:
            raise AnalysisError("breakeven must be >= 0")

    def shutdown_delay(
        self, idle_history: List[int], true_duration: int
    ) -> Optional[int]:
        prediction = self.initial_prediction
        for duration in idle_history:
            prediction = (
                self.smoothing * duration
                + (1.0 - self.smoothing) * prediction
            )
        if prediction > self.breakeven_cycles:
            return 0
        return None


@dataclass(frozen=True)
class OraclePolicy:
    """Ideal shutdown: powers off exactly when it pays to."""

    breakeven_cycles: float

    def shutdown_delay(
        self, idle_history: List[int], true_duration: int
    ) -> Optional[int]:
        if true_duration > self.breakeven_cycles:
            return 0
        return None


@dataclass(frozen=True)
class ShutdownReport:
    """Energy/latency accounting of one policy over one trace."""

    policy_name: str
    total_cycles: int
    busy_cycles: int
    energy_j: float
    always_on_energy_j: float
    oracle_energy_j: float
    off_cycles: int
    wakeups: int
    latency_penalty_cycles: int

    @property
    def saving_vs_always_on(self) -> float:
        """Fraction of always-on energy saved."""
        if self.always_on_energy_j <= 0.0:
            return 0.0
        return 1.0 - self.energy_j / self.always_on_energy_j

    @property
    def efficiency_vs_oracle(self) -> float:
        """oracle energy / policy energy (1.0 = ideal)."""
        if self.energy_j <= 0.0:
            return 0.0
        return self.oracle_energy_j / self.energy_j

    @property
    def off_fraction(self) -> float:
        """Fraction of all cycles spent powered off."""
        return self.off_cycles / self.total_cycles


def synthetic_session_trace(
    n_periods: int = 200,
    mean_busy_cycles: int = 50,
    mean_idle_cycles: int = 800,
    heavy_tail: float = 1.5,
    seed: int = 0,
) -> List[ActivityPeriod]:
    """An X-session-like trace: short busy bursts, heavy-tailed idles.

    Idle durations are Pareto-distributed (shape ``heavy_tail``): many
    short gaps between keystrokes plus occasional long think-time
    idles — the structure that makes prediction worthwhile.
    """
    if n_periods < 2:
        raise AnalysisError("need at least two periods")
    if heavy_tail <= 1.0:
        raise AnalysisError("heavy_tail must exceed 1 (finite mean)")
    rng = random.Random(seed)
    pareto_scale = mean_idle_cycles * (heavy_tail - 1.0) / heavy_tail
    trace: List[ActivityPeriod] = []
    for index in range(n_periods):
        if index % 2 == 0:
            duration = max(int(rng.expovariate(1.0 / mean_busy_cycles)), 1)
            trace.append(ActivityPeriod(busy=True, duration_cycles=duration))
        else:
            duration = max(int(pareto_scale * rng.paretovariate(heavy_tail)), 1)
            trace.append(ActivityPeriod(busy=False, duration_cycles=duration))
    return trace


def _policy_energy(
    trace: List[ActivityPeriod],
    policy: ShutdownPolicy,
    costs: ShutdownCosts,
) -> tuple:
    energy = 0.0
    off_cycles = 0
    wakeups = 0
    latency = 0
    idle_history: List[int] = []
    t = costs.cycle_time_s
    for period in trace:
        if period.busy:
            energy += period.duration_cycles * costs.active_power_w * t
            continue
        delay = policy.shutdown_delay(idle_history, period.duration_cycles)
        idle_history.append(period.duration_cycles)
        if delay is None or delay >= period.duration_cycles:
            energy += period.duration_cycles * costs.idle_power_w * t
            continue
        powered = delay
        off = period.duration_cycles - delay
        energy += powered * costs.idle_power_w * t
        energy += off * costs.off_power_w * t
        energy += costs.wakeup_energy_j
        off_cycles += off
        wakeups += 1
        latency += costs.wakeup_latency_cycles
    return energy, off_cycles, wakeups, latency


def evaluate_policy(
    trace: List[ActivityPeriod],
    policy: ShutdownPolicy,
    costs: ShutdownCosts,
    policy_name: str = "policy",
) -> ShutdownReport:
    """Account one policy's energy against always-on and the oracle."""
    if not trace:
        raise AnalysisError("empty trace")
    total = sum(p.duration_cycles for p in trace)
    busy = sum(p.duration_cycles for p in trace if p.busy)
    t = costs.cycle_time_s
    always_on = (
        busy * costs.active_power_w + (total - busy) * costs.idle_power_w
    ) * t
    energy, off_cycles, wakeups, latency = _policy_energy(
        trace, policy, costs
    )
    oracle_energy, _, _, _ = _policy_energy(
        trace, OraclePolicy(costs.breakeven_cycles), costs
    )
    return ShutdownReport(
        policy_name=policy_name,
        total_cycles=total,
        busy_cycles=busy,
        energy_j=energy,
        always_on_energy_j=always_on,
        oracle_energy_j=oracle_energy,
        off_cycles=off_cycles,
        wakeups=wakeups,
        latency_penalty_cycles=latency,
    )


class GracefulShutdown:
    """Cooperative SIGTERM/SIGINT handling for long-running processes.

    The scheduler's worker loop (:mod:`repro.sched.worker`) must stop
    cleanly between work items: a chunk whose lease is abandoned
    mid-evaluation is simply re-dispatched, but a chunk killed *during*
    a commit would rely entirely on the store's atomic writes.  This
    context manager converts the first SIGTERM/SIGINT into a
    ``requested`` flag the loop polls, so the process finishes (or
    abandons) the current item and exits by choice.  Handlers are
    restored on exit; a second signal therefore behaves normally.

    Only usable from the main thread (CPython restricts
    :func:`signal.signal` to it); elsewhere, construct it with
    ``install=False`` and call :meth:`request` manually.
    """

    def __init__(self, signals: Optional[tuple] = None, install: bool = True):
        import signal as _signal

        self._signal = _signal
        self.signals = tuple(
            signals if signals is not None
            else (_signal.SIGTERM, _signal.SIGINT)
        )
        self.install = install
        self.requested = False
        self._previous: dict = {}

    def request(self, signum: Optional[int] = None, frame: object = None) -> None:
        """Mark shutdown as requested (also the installed signal handler)."""
        self.requested = True

    def __enter__(self) -> "GracefulShutdown":
        if self.install:
            for sig in self.signals:
                self._previous[sig] = self._signal.signal(sig, self.request)
        return self

    def __exit__(self, *exc_info: object) -> None:
        for sig, handler in self._previous.items():
            self._signal.signal(sig, handler)
        self._previous.clear()
