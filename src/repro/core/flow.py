"""End-to-end low-voltage design flow (Section 5 of the paper).

The flow evaluates, for each functional unit of a processor datapath:

1. **fga / bga** — from an instruction-level profile of the target
   workload (the ATOM substitute),
2. **alpha * C_fg** — from switch-level simulation of the unit's
   gate-level netlist under representative stimulus (the IRSIM
   substitute),
3. **leakage corners and back-gate overhead** — from the device and
   cell models, and
4. **the verdict** — Eq. 3 vs Eq. 4 (and the MTCMOS/VTCMOS variants),
   optionally under a system duty cycle (the X-server analysis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Sequence

from repro import obs
from repro.analysis.comparator import TechnologyComparator, TechnologyVerdict
from repro.analysis.contour import ApplicationPoint, RatioSurface, energy_ratio_surface
from repro.circuits.netlist import Netlist
from repro.device.technology import Technology, soias_technology
from repro.errors import AnalysisError
from repro.isa.assembler import Program
from repro.isa.profiler import FunctionalUnitProfile, profile_program
from repro.power.energy import (
    ModuleEnergyParameters,
    module_parameters_from_activity,
)
from repro.switchsim.activity import ActivityReport
from repro.switchsim.simulator import SwitchLevelSimulator

__all__ = [
    "LowVoltageDesignFlow",
    "UnitEvaluation",
    "ApplicationEvaluation",
]


@dataclass(frozen=True)
class UnitEvaluation:
    """Everything the flow learned about one functional unit."""

    unit: str
    fga: float
    bga: float
    module: ModuleEnergyParameters
    verdicts: Dict[str, TechnologyVerdict]
    point: ApplicationPoint

    @property
    def soias_saving_percent(self) -> float:
        """Headline number: SOIAS energy saving vs fixed-low-V_T SOI."""
        return self.verdicts["soias"].saving_percent


@dataclass(frozen=True)
class ApplicationEvaluation:
    """Flow output for one workload on one datapath."""

    workload: str
    duty_cycle: float
    profile: FunctionalUnitProfile
    units: Dict[str, UnitEvaluation]

    def unit(self, name: str) -> UnitEvaluation:
        """Evaluation of one functional unit."""
        try:
            return self.units[name]
        except KeyError:
            raise AnalysisError(
                f"unit {name!r} not evaluated; have {sorted(self.units)}"
            ) from None

    def savings_table(self) -> Dict[str, float]:
        """Unit -> SOIAS saving percent (the Fig. 10 annotations)."""
        return {
            name: evaluation.soias_saving_percent
            for name, evaluation in self.units.items()
        }


class LowVoltageDesignFlow:
    """One configured instance of the paper's tool chain.

    Parameters
    ----------
    technology:
        A back-gated (or MTCMOS) technology; defaults to SOIAS.
    vdd:
        Operating supply [V].
    clock_hz:
        System clock; sets the cycle time leakage integrates over.
    profile_engine:
        ``"fast"`` (default) profiles workloads through the decoded
        counter engine; ``"reference"`` steps the hook-instrumented
        interpreter.  Both produce identical profiles.
    variation:
        Optional :class:`repro.power.optimizer.VariationSpec`; when
        set, throughput optimizers built by this flow solve supplies
        for the p-th percentile Monte-Carlo delay corner instead of
        the nominal corner.  ``None`` (default) keeps every optimizer
        bit-identical to the nominal flow.
    """

    def __init__(
        self,
        technology: Optional[Technology] = None,
        vdd: float = 1.0,
        clock_hz: float = 1e6,
        profile_engine: str = "fast",
        variation: Optional["VariationSpec"] = None,
    ):
        from repro.power.optimizer import VariationSpec

        if vdd <= 0.0 or clock_hz <= 0.0:
            raise AnalysisError("vdd and clock must be positive")
        if profile_engine not in ("fast", "reference"):
            raise AnalysisError(
                f"unknown profile engine {profile_engine!r}; "
                "use 'fast' or 'reference'"
            )
        if variation is not None and not isinstance(variation, VariationSpec):
            raise AnalysisError(
                "variation must be a VariationSpec or None"
            )
        self.technology = (
            soias_technology() if technology is None else technology
        )
        self.vdd = vdd
        self.clock_hz = clock_hz
        self.profile_engine = profile_engine
        self.variation = variation

    @property
    def t_cycle_s(self) -> float:
        """Clock period [s]."""
        return 1.0 / self.clock_hz

    # ------------------------------------------------------------------
    # Stage 1: architectural profiling
    # ------------------------------------------------------------------
    def profile(
        self, program: Program, max_instructions: int = 50_000_000
    ) -> FunctionalUnitProfile:
        """Run the workload and extract per-unit fga/bga."""
        with obs.span("flow.profile"):
            return profile_program(
                program,
                max_instructions=max_instructions,
                engine=self.profile_engine,
            )

    # ------------------------------------------------------------------
    # Stage 2: node activity
    # ------------------------------------------------------------------
    def unit_activity(
        self,
        netlist: Netlist,
        vectors: Sequence[Mapping[str, int]],
    ) -> ActivityReport:
        """Switch-level simulation of a unit under stimulus."""
        active_shift = 0.0
        if self.technology.is_back_gated:
            active_shift = self.technology.back_gate.vt_shift_at(
                min(
                    self.technology.back_gate_swing,
                    self.technology.back_gate.max_back_gate_bias,
                )
            )
        simulator = SwitchLevelSimulator(
            netlist, self.technology, self.vdd, vt_shift=active_shift
        )
        with obs.span("flow.unit_activity"):
            return simulator.run_vectors(vectors)

    # ------------------------------------------------------------------
    # Stage 3: module electrical parameters
    # ------------------------------------------------------------------
    def module_parameters(
        self, netlist: Netlist, report: ActivityReport
    ) -> ModuleEnergyParameters:
        """Eq. 3/4 parameters from simulated activity."""
        with obs.span("flow.module_parameters"):
            return module_parameters_from_activity(
                netlist, report, self.technology, self.vdd
            )

    # ------------------------------------------------------------------
    # Stage 4: comparison
    # ------------------------------------------------------------------
    def comparator(
        self, module: ModuleEnergyParameters
    ) -> TechnologyComparator:
        """Technology comparator at this flow's operating point."""
        return TechnologyComparator(module, self.vdd, self.t_cycle_s)

    def ratio_surface(
        self,
        module: ModuleEnergyParameters,
        fga_values: Sequence[float],
        bga_values: Sequence[float],
        workers: int = 0,
        progress: Optional[Callable[[int, int], None]] = None,
        store=None,
        refine_levels: int = 0,
        refine_band: float = 0.15,
        scheduler=None,
    ) -> RatioSurface:
        """Fig. 10 surface for one module (``workers`` fans out the grid).

        ``progress(done_cells, total_cells)`` is forwarded to the grid
        sweep so long surfaces can report completion; ``store`` (a
        :class:`repro.store.ResultStore`) makes the grid checkpointed
        and resumable; ``refine_levels``/``refine_band`` enable
        adaptive subdivision of the cells around the break-even
        contour; ``scheduler`` (a :class:`repro.sched.Scheduler`)
        evaluates the grid through the durable work queue instead of
        the in-process pool — see :func:`repro.analysis.contour.
        energy_ratio_surface`.
        """
        with obs.span("flow.ratio_surface"):
            return energy_ratio_surface(
                module,
                self.vdd,
                self.t_cycle_s,
                fga_values,
                bga_values,
                workers=workers,
                progress=progress,
                store=store,
                refine_levels=refine_levels,
                refine_band=refine_band,
                scheduler=scheduler,
            )

    def energy_surface(
        self,
        vt_values: Sequence[float],
        vdd_values: Sequence[float],
        stages: int = 101,
        activity: float = 1.0,
        cycle_stages: Optional[int] = None,
        workers: int = 0,
        progress: Optional[Callable[[int, int], None]] = None,
        store=None,
        refine_levels: int = 0,
        refine_band: float = 0.2,
        scheduler=None,
    ) -> "EnergySurface":
        """Fig. 3/4 energy plane at this flow's clock rate.

        The ring-oscillator cycle energy over a (V_T, V_DD) grid, with
        cells that miss the per-stage delay budget (``t_cycle_s /
        cycle_stages``, ``cycle_stages`` defaulting to ``2 * stages``
        like :meth:`throughput_optimizer`) marked infeasible.
        ``workers``/``progress``/``store``/``refine_levels``/
        ``refine_band``/``scheduler`` follow the :meth:`ratio_surface`
        contract — refinement here sharpens the optimum-energy locus
        instead of a zero contour; see
        :func:`repro.analysis.surface.energy_surface`.
        """
        from repro.analysis.surface import energy_surface

        with obs.span("flow.energy_surface"):
            return energy_surface(
                self.technology,
                vt_values,
                vdd_values,
                self.t_cycle_s,
                stages=stages,
                activity=activity,
                cycle_stages=cycle_stages,
                workers=workers,
                progress=progress,
                store=store,
                refine_levels=refine_levels,
                refine_band=refine_band,
                scheduler=scheduler,
            )

    # ------------------------------------------------------------------
    # Fixed-throughput (V_DD, V_T) optimization
    # ------------------------------------------------------------------
    def throughput_optimizer(
        self,
        stages: int = 101,
        activity: float = 1.0,
        cycle_stages: Optional[int] = None,
        store=None,
    ) -> "FixedThroughputOptimizer":
        """Figs. 3-4 optimizer on this flow's technology and variation.

        The returned optimizer carries the flow's ``variation`` spec:
        with one configured, ``locus_point``/``sweep``/``optimum``
        solve yield-constrained supplies; without, they reproduce the
        nominal optimizer bit-for-bit.  ``cycle_stages`` defaults to
        ``2 * stages`` (one ring period per cycle).
        """
        from repro.power.optimizer import (
            FixedThroughputOptimizer,
            RingOscillatorModel,
        )

        ring = RingOscillatorModel(
            self.technology, stages=stages, activity=activity, store=store
        )
        return FixedThroughputOptimizer(
            ring,
            cycle_stages=2 * stages if cycle_stages is None else cycle_stages,
            variation=self.variation,
        )

    def optimize_throughput(
        self,
        target_stage_delay_s: float,
        stages: int = 101,
        activity: float = 1.0,
        cycle_stages: Optional[int] = None,
        vt_bounds: Sequence[float] = (0.01, 0.6),
        store=None,
    ) -> "OperatingPoint":
        """Minimum-energy (V_DD, V_T) point at a fixed stage delay."""
        optimizer = self.throughput_optimizer(
            stages=stages,
            activity=activity,
            cycle_stages=cycle_stages,
            store=store,
        )
        with obs.span("flow.optimize"):
            return optimizer.optimum(
                target_stage_delay_s, vt_bounds=vt_bounds
            )

    # ------------------------------------------------------------------
    # The one-call experiment
    # ------------------------------------------------------------------
    def evaluate(
        self,
        program: Program,
        units: Mapping[str, "DatapathUnitLike"],
        duty_cycle: float = 1.0,
    ) -> ApplicationEvaluation:
        """Full Section 5 evaluation of one workload on a datapath.

        Parameters
        ----------
        program:
            The assembled workload to profile.
        units:
            Unit name -> an object with ``netlist`` and ``vectors``
            attributes (see :class:`repro.core.scenarios.DatapathUnit`).
            Unit names must match profiler functional units.
        duty_cycle:
            System-level active fraction (1.0 = continuously active,
            0.2 = the paper's X server).
        """
        profile = self.profile(program).scaled_by_duty_cycle(duty_cycle)
        evaluations: Dict[str, UnitEvaluation] = {}
        for name, unit in units.items():
            fga = profile.fga(name)
            bga = profile.bga(name)
            report = self.unit_activity(unit.netlist, unit.vectors)
            module = self.module_parameters(unit.netlist, report)
            comparator = self.comparator(module)
            verdicts = comparator.all_verdicts(fga, bga)
            surface = self.ratio_surface(
                module, (max(fga, 1e-9),), (max(bga, 1e-12),)
            )
            point = surface.application_point(
                f"{program.name}:{name}", max(fga, 1e-9), min(max(bga, 1e-12), max(fga, 1e-9))
            )
            evaluations[name] = UnitEvaluation(
                unit=name,
                fga=fga,
                bga=bga,
                module=module,
                verdicts=verdicts,
                point=point,
            )
        return ApplicationEvaluation(
            workload=program.name,
            duty_cycle=duty_cycle,
            profile=profile,
            units=evaluations,
        )
