"""Canned datapaths and application scenarios.

The paper's Fig. 10 places three datapath units (adder, shifter,
multiplier) on the energy-ratio plane for two operating regimes:

* a continuously active processor with per-module clock gating, and
* an X server that is active ~20 % of the time (per real X-session
  traces showing >95 % idle in the ideal-shutdown limit; the paper's
  conservative analysis uses 20 %).

:func:`standard_datapath` builds the three units with representative
stimulus; :func:`xserver_scenario` and :func:`continuous_scenario`
wrap them with the right duty cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.circuits.builders import (
    array_multiplier,
    barrel_shifter,
    ripple_carry_adder,
)
from repro.circuits.netlist import Netlist
from repro.errors import AnalysisError
from repro.switchsim.stimulus import random_bus_vectors

__all__ = [
    "DatapathUnit",
    "Scenario",
    "standard_datapath",
    "xserver_scenario",
    "continuous_scenario",
]


@dataclass(frozen=True)
class DatapathUnit:
    """One functional unit: its netlist plus representative stimulus."""

    name: str
    netlist: Netlist
    vectors: Tuple[Mapping[str, int], ...]

    def __post_init__(self) -> None:
        if len(self.vectors) < 2:
            raise AnalysisError(
                f"unit {self.name}: need at least two stimulus vectors"
            )


@dataclass(frozen=True)
class Scenario:
    """An application regime: a duty cycle plus a descriptive name."""

    name: str
    duty_cycle: float
    description: str

    def __post_init__(self) -> None:
        if not 0.0 < self.duty_cycle <= 1.0:
            raise AnalysisError("duty cycle must be in (0, 1]")


def standard_datapath(
    width: int = 8,
    stimulus_vectors: int = 150,
    seed: int = 0,
) -> Dict[str, DatapathUnit]:
    """The paper's three profiled units with random data stimulus.

    Unit names match the profiler's functional units, so a
    :class:`~repro.isa.profiler.FunctionalUnitProfile` plugs straight
    into :meth:`~repro.core.flow.LowVoltageDesignFlow.evaluate`.
    """
    if width < 2:
        raise AnalysisError("datapath width must be >= 2")
    shift_bits = max((width - 1).bit_length(), 1)
    units: List[DatapathUnit] = [
        DatapathUnit(
            name="adder",
            netlist=ripple_carry_adder(width),
            vectors=tuple(
                random_bus_vectors(
                    {"a": width, "b": width}, stimulus_vectors, seed=seed
                )
            ),
        ),
        DatapathUnit(
            name="shifter",
            netlist=barrel_shifter(
                1 << (width - 1).bit_length()
                if width & (width - 1)
                else width
            ),
            vectors=tuple(
                random_bus_vectors(
                    {
                        "a": 1 << (width - 1).bit_length()
                        if width & (width - 1)
                        else width,
                        "s": shift_bits,
                    },
                    stimulus_vectors,
                    seed=seed + 1,
                )
            ),
        ),
        DatapathUnit(
            name="multiplier",
            netlist=array_multiplier(width),
            vectors=tuple(
                random_bus_vectors(
                    {"a": width, "b": width}, stimulus_vectors, seed=seed + 2
                )
            ),
        ),
    ]
    return {unit.name: unit for unit in units}


def xserver_scenario() -> Scenario:
    """The paper's event-driven case: an X server active 20 % of the time."""
    return Scenario(
        name="x-server",
        duty_cycle=0.2,
        description=(
            "Event-driven computation awaiting I/O; real X-session "
            "traces show the processor >95% idle, the paper's analysis "
            "uses a conservative 20% active fraction"
        ),
    )


def continuous_scenario() -> Scenario:
    """The continuously-operational case with per-module clock gating."""
    return Scenario(
        name="continuous",
        duty_cycle=1.0,
        description=(
            "Continuously active processor; modules still clock-gate "
            "when unused but the system never idles"
        ),
    )
