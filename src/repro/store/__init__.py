"""Durable results: content-addressed store, checkpoints, run registry.

The analysis layers (PRs 1-2) made single evaluations fast and sweeps
parallel and fault-tolerant — but every cache died with the process.
This package adds the persistence tier:

* :mod:`repro.store.hashing` — canonical SHA-256 addressing of
  technologies, cells, modules, and sweep requests;
* :mod:`repro.store.backend` — :class:`ResultStore`: an atomic
  (tmp + ``os.replace``) disk backend with a bounded in-memory LRU
  front and obs-instrumented hit/miss/evict accounting;
* :mod:`repro.store.checkpoint` — :class:`SweepCheckpoint`: chunk-
  grained persistence that makes ``sweep_2d`` /
  ``energy_ratio_surface`` / ``MonteCarloAnalyzer`` resumable after a
  kill, bit-identical to a cold serial run;
* :mod:`repro.store.registry` — :class:`RunRegistry`: one manifest
  per recorded CLI invocation (inputs digest, config, wall time,
  metrics snapshot, result digest) behind ``repro runs list|show|diff``.

See ``docs/store.md`` for the on-disk layout and resume semantics.
"""

from repro.store.backend import DiskBackend, MemoryBackend, ResultStore
from repro.store.checkpoint import SweepCheckpoint
from repro.store.hashing import (
    canonical_json,
    cell_digest,
    digest,
    module_digest,
    request_digest,
    technology_digest,
)
from repro.store.registry import DEFAULT_RUNS_ROOT, RunManifest, RunRegistry

__all__ = [
    "ResultStore",
    "DiskBackend",
    "MemoryBackend",
    "SweepCheckpoint",
    "RunManifest",
    "RunRegistry",
    "DEFAULT_RUNS_ROOT",
    "canonical_json",
    "digest",
    "technology_digest",
    "cell_digest",
    "module_digest",
    "request_digest",
]
