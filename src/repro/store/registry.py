"""Run registry: durable manifests for every recorded invocation.

A :class:`RunManifest` captures what one optimize/compare/contour run
*was*: the command, a canonical digest of its inputs, the config the
user passed, wall time, an :mod:`repro.obs` metrics snapshot, and a
digest of the result it printed.  :class:`RunRegistry` persists
manifests as one JSON file per run under ``.repro/runs/`` (atomic
write, same discipline as the result store) and answers the CLI verbs
``repro runs list | show | diff``.

Two runs with equal ``inputs_digest`` and different ``result_digest``
mean non-determinism or a model change — exactly the regression signal
the registry exists to surface.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import StoreError
from repro.store.hashing import digest

__all__ = ["RunManifest", "RunRegistry", "DEFAULT_RUNS_ROOT"]

MANIFEST_FORMAT = "repro-run-manifest-v1"

#: Default registry location, relative to the working directory.
DEFAULT_RUNS_ROOT = os.path.join(".repro", "runs")


@dataclass(frozen=True)
class RunManifest:
    """Everything durable about one recorded invocation."""

    run_id: str
    command: str
    created_utc: str
    wall_time_s: float
    inputs: Dict[str, object]
    inputs_digest: str
    result_digest: str
    metrics: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["format"] = MANIFEST_FORMAT
        return payload

    @classmethod
    def from_dict(cls, payload: dict, source: str = "") -> "RunManifest":
        where = f" in {source!r}" if source else ""
        if not isinstance(payload, dict):
            raise StoreError(f"run manifest{where} is not a JSON object")
        if payload.get("format") != MANIFEST_FORMAT:
            raise StoreError(
                f"unsupported run-manifest format "
                f"{payload.get('format')!r}{where}"
            )
        try:
            return cls(
                run_id=payload["run_id"],
                command=payload["command"],
                created_utc=payload["created_utc"],
                wall_time_s=float(payload["wall_time_s"]),
                inputs=dict(payload["inputs"]),
                inputs_digest=payload["inputs_digest"],
                result_digest=payload["result_digest"],
                metrics=dict(payload.get("metrics") or {}),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise StoreError(
                f"malformed run manifest{where}: {error!r}"
            ) from error


class RunRegistry:
    """One directory of run manifests, newest-last."""

    def __init__(self, root: str = DEFAULT_RUNS_ROOT):
        self.root = os.path.abspath(root)

    # ------------------------------------------------------------------
    # Write
    # ------------------------------------------------------------------
    def record(
        self,
        command: str,
        inputs: Dict[str, object],
        result,
        wall_time_s: float,
        metrics: Optional[Dict[str, object]] = None,
        now: Optional[time.struct_time] = None,
    ) -> RunManifest:
        """Digest the inputs and result, persist, return the manifest."""
        os.makedirs(self.root, exist_ok=True)
        inputs_digest = digest(inputs)
        stamp = time.strftime(
            "%Y%m%dT%H%M%S", now if now is not None else time.gmtime()
        )
        base_id = f"{stamp}-{inputs_digest[:8]}"
        run_id = base_id
        suffix = 1
        while os.path.exists(self._path(run_id)):
            run_id = f"{base_id}.{suffix}"
            suffix += 1
        manifest = RunManifest(
            run_id=run_id,
            command=command,
            created_utc=time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", now if now is not None else time.gmtime()
            ),
            wall_time_s=float(wall_time_s),
            inputs=dict(inputs),
            inputs_digest=inputs_digest,
            result_digest=digest(result),
            metrics=dict(metrics or {}),
        )
        path = self._path(run_id)
        fd, tmp_path = tempfile.mkstemp(
            prefix=".tmp-", suffix=".json", dir=self.root
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(manifest.to_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return manifest

    def _path(self, run_id: str) -> str:
        if (
            not run_id
            or "/" in run_id
            or os.sep in run_id
            or run_id.startswith(".")
        ):
            raise StoreError(f"bad run id {run_id!r}")
        return os.path.join(self.root, f"{run_id}.json")

    # ------------------------------------------------------------------
    # Read
    # ------------------------------------------------------------------
    def run_ids(self) -> List[str]:
        """Every recorded run id, oldest first."""
        try:
            names = os.listdir(self.root)
        except FileNotFoundError:
            return []
        return sorted(
            name[: -len(".json")]
            for name in names
            if name.endswith(".json") and not name.startswith(".")
        )

    def load(self, run_id: str) -> RunManifest:
        """Read one manifest back; typed errors on damage."""
        path = self._path(run_id)
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            raise StoreError(
                f"no run {run_id!r} under {self.root!r}; "
                f"have {self.run_ids()[-5:]}"
            ) from None
        except json.JSONDecodeError as error:
            raise StoreError(
                f"malformed run manifest in {path!r}: {error}"
            ) from error
        return RunManifest.from_dict(payload, source=path)

    def list_manifests(self) -> List[RunManifest]:
        """Every readable manifest, oldest first (damaged ones raise)."""
        return [self.load(run_id) for run_id in self.run_ids()]

    # ------------------------------------------------------------------
    # Diff
    # ------------------------------------------------------------------
    def diff(
        self, run_a: str, run_b: str
    ) -> Dict[str, Tuple[object, object]]:
        """Field-by-field differences between two runs.

        Inputs and metrics are compared key-wise (``inputs.grid`` style
        names); identical fields are omitted.  An empty dict means the
        runs were equivalent in everything but identity.
        """
        a = self.load(run_a)
        b = self.load(run_b)
        differences: Dict[str, Tuple[object, object]] = {}
        for field_name in ("command", "wall_time_s", "inputs_digest",
                           "result_digest"):
            va, vb = getattr(a, field_name), getattr(b, field_name)
            if va != vb:
                differences[field_name] = (va, vb)
        for group_name, ga, gb in (
            ("inputs", a.inputs, b.inputs),
            ("metrics", a.metrics, b.metrics),
        ):
            for key in sorted(set(ga) | set(gb)):
                va, vb = ga.get(key), gb.get(key)
                if va != vb:
                    differences[f"{group_name}.{key}"] = (va, vb)
        return differences
