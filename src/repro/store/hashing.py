"""Canonical hashing of toolkit inputs.

Every durable artifact in :mod:`repro.store` is addressed by the
SHA-256 digest of a *canonical JSON* rendering of its inputs: keys
sorted, separators fixed, tuples flattened to lists, floats rendered
with Python's shortest round-trip ``repr`` (the :mod:`json` default,
deterministic across runs and platforms for IEEE-754 doubles).

Two consequences matter:

* equal inputs always produce equal keys, so a re-run of the same
  sweep finds its own checkpoints; and
* *any* change to the hashed fields — a new model parameter, a
  renamed key, a format bump — changes every key, which safely
  invalidates stored results instead of silently serving stale ones.

Because of the second property the digest of the default technology is
pinned by a regression test: accidental drift of the hash inputs
(which would invalidate every stored result) fails CI loudly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Mapping, Sequence

from repro.errors import StoreError

__all__ = [
    "canonical_json",
    "digest",
    "technology_digest",
    "cell_digest",
    "module_digest",
    "request_digest",
]

#: Version stamp folded into every request digest.  Bump it when the
#: *meaning* of stored payloads changes (not just their inputs) so old
#: entries are never misread as current ones.
STORE_HASH_VERSION = "repro-store-hash-v1"


def _jsonable(value):
    """Recursively coerce ``value`` into a canonical JSON-safe form."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, Mapping):
        coerced = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise StoreError(
                    f"canonical JSON keys must be strings, got {key!r}"
                )
            coerced[key] = _jsonable(item)
        return coerced
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    raise StoreError(
        f"value of type {type(value).__name__} is not canonically hashable"
    )


def canonical_json(value) -> str:
    """Deterministic JSON text for ``value`` (sorted keys, no spaces)."""
    return json.dumps(
        _jsonable(value),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
    )


def digest(value) -> str:
    """SHA-256 hex digest of :func:`canonical_json`."""
    text = canonical_json(value)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def technology_digest(technology) -> str:
    """Stable digest of a :class:`~repro.device.technology.Technology`.

    Built on :func:`repro.device.serialize.technology_to_dict`, so the
    hash covers every model parameter that can change a characterized
    number — including the serialization format version.
    """
    from repro.device.serialize import technology_to_dict

    return digest(technology_to_dict(technology))


def cell_digest(cell) -> str:
    """Stable digest of a :class:`~repro.tech.cells.Cell`."""
    return digest(dataclasses.asdict(cell))


def module_digest(module) -> str:
    """Stable digest of module energy parameters (Eq. 3/4 inputs)."""
    return digest(dataclasses.asdict(module))


def request_digest(kind: str, *parts) -> str:
    """Digest of one store request: a kind tag plus its input parts.

    ``kind`` namespaces the request ("ratio-surface", "mc-delay", ...)
    so two different computations over identical numbers can never
    collide.
    """
    if not kind:
        raise StoreError("request kind must be non-empty")
    payload: Sequence = [STORE_HASH_VERSION, kind, [_jsonable(p) for p in parts]]
    return digest(payload)
