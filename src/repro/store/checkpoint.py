"""Chunk-grained sweep checkpoints over a :class:`ResultStore`.

A checkpointed sweep persists its completed cells as **part entries**
under ``sweep/<key>/part-N`` while it runs; a re-run — after SIGKILL,
``KeyboardInterrupt``, or in a fresh process — restores every part and
recomputes only the missing cells.  When the sweep completes, the
parts are consolidated into one ``sweep/<key>/final`` entry (and
deleted), so resuming a finished sweep is a single read.

Cell indices are flat integers (callers flatten ``(i, j)`` grids
row-major); values are floats or ``None`` (an undefined cell).  JSON
round-trips IEEE-754 doubles exactly via shortest-repr, so restored
cells are bit-identical to freshly computed ones — the property the
resume tests assert.

Durability granularity: :meth:`record` buffers and flushes every
``flush_every`` cells (the serial path), :meth:`record_many` flushes
immediately when handed more than one cell (a completed parallel
chunk).  A crash therefore loses at most the current buffer, never a
flushed part.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import StoreError

__all__ = ["SweepCheckpoint"]


class SweepCheckpoint:
    """Persists one sweep's cells incrementally under ``sweep/<key>/``."""

    def __init__(
        self,
        store,
        key: str,
        total_cells: int,
        flush_every: int = 32,
    ):
        if total_cells < 1:
            raise StoreError(f"total_cells must be >= 1, got {total_cells}")
        if flush_every < 1:
            raise StoreError(f"flush_every must be >= 1, got {flush_every}")
        self.store = store
        self.key = key
        self.total_cells = total_cells
        self.flush_every = flush_every
        self.namespace = f"sweep/{key}"
        self._pending: Dict[int, Optional[float]] = {}
        self._seen: Dict[int, Optional[float]] = {}
        self._next_part = 0

    # ------------------------------------------------------------------
    # Restore
    # ------------------------------------------------------------------
    def restored(self) -> Dict[int, Optional[float]]:
        """All cells already on disk for this sweep key.

        Reads the consolidated ``final`` entry when present, otherwise
        merges every ``part-N``.  Restored cells are counted under the
        ``store.sweep_cells_restored`` obs counter.
        """
        cells: Dict[int, Optional[float]] = {}
        final = self.store.get(f"{self.namespace}/final")
        if final is not None:
            cells.update(self._decode(final))
        else:
            part_keys = self.store.keys(prefix=f"{self.namespace}/part-")
            for part_key in part_keys:
                payload = self.store.get(part_key)
                if payload is not None:
                    cells.update(self._decode(payload))
                index = self._part_index(part_key)
                if index is not None:
                    self._next_part = max(self._next_part, index + 1)
        self._seen = dict(cells)
        if obs.ENABLED and cells:
            obs.incr("store.sweep_cells_restored", len(cells))
        return dict(cells)

    @staticmethod
    def _part_index(part_key: str) -> Optional[int]:
        suffix = part_key.rsplit("part-", 1)[-1]
        try:
            return int(suffix)
        except ValueError:
            return None

    def _decode(self, payload) -> Dict[int, Optional[float]]:
        if not isinstance(payload, dict) or "cells" not in payload:
            return {}
        if payload.get("total") != self.total_cells:
            # A key collision with a different grid shape would corrupt
            # results silently; refuse the entry instead.
            raise StoreError(
                f"checkpoint {self.namespace!r} was written for "
                f"{payload.get('total')} cells, this sweep has "
                f"{self.total_cells}"
            )
        cells: Dict[int, Optional[float]] = {}
        for index_text, value in payload["cells"].items():
            index = int(index_text)
            if not 0 <= index < self.total_cells:
                raise StoreError(
                    f"checkpoint {self.namespace!r} holds out-of-range "
                    f"cell {index}"
                )
            cells[index] = None if value is None else float(value)
        return cells

    # ------------------------------------------------------------------
    # Record
    # ------------------------------------------------------------------
    def record(self, index: int, value: Optional[float]) -> None:
        """Buffer one completed cell; auto-flush every ``flush_every``."""
        self._pending[index] = value
        if len(self._pending) >= self.flush_every:
            self.flush()

    def record_many(
        self, cells: Sequence[Tuple[int, Optional[float]]]
    ) -> None:
        """Record a completed chunk; flushes immediately for chunks > 1.

        This is the parallel-path entry point: a chunk that completed
        in a worker becomes durable the moment the parent drains it.
        """
        for index, value in cells:
            self._pending[index] = value
        if len(cells) > 1 or len(self._pending) >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Write buffered cells as a new immutable part entry."""
        if not self._pending:
            return
        payload = {
            "total": self.total_cells,
            "cells": {str(i): v for i, v in self._pending.items()},
        }
        self.store.put(f"{self.namespace}/part-{self._next_part}", payload)
        self._next_part += 1
        self._seen.update(self._pending)
        self._pending.clear()

    def finalize(self) -> None:
        """Flush, consolidate every part into ``final``, drop the parts.

        Idempotent; safe to call on a sweep that restored everything.
        """
        self.flush()
        if len(self._seen) < self.total_cells:
            raise StoreError(
                f"finalize with {len(self._seen)}/{self.total_cells} "
                f"cells recorded for {self.namespace!r}"
            )
        payload = {
            "total": self.total_cells,
            "cells": {str(i): v for i, v in self._seen.items()},
        }
        self.store.put(f"{self.namespace}/final", payload)
        for part_key in self.store.keys(prefix=f"{self.namespace}/part-"):
            self.store.delete(part_key)
