"""Result-store backends: an atomic disk store with an in-memory front.

The store maps **string keys** (usually digests from
:mod:`repro.store.hashing`, optionally namespaced with ``/``) to
**JSON-safe payloads**.  Two backends implement the same small
protocol:

* :class:`MemoryBackend` — a dict; for tests and ephemeral runs.
* :class:`DiskBackend` — one JSON file per key under a root directory.
  Writes are **atomic**: the payload lands in a same-directory temp
  file first and is moved into place with :func:`os.replace`, so a
  SIGKILL at any instant leaves either the old entry, the new entry,
  or no entry — never a torn one.  Every file carries a versioned
  envelope (``repro-store-v1``) with the key it serves; entries whose
  envelope does not parse or does not match are treated as absent and
  dropped (counted under ``store.corrupt_dropped``), so a damaged
  cache degrades to recomputation, never to wrong answers.

:class:`ResultStore` composes a backend with a bounded in-memory LRU
front and hit/miss/eviction accounting (mirrored into :mod:`repro.obs`
as ``store.hits`` / ``store.misses`` / ``store.evictions`` /
``store.writes`` when enabled).
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

from repro import obs
from repro.errors import StoreError

__all__ = ["MemoryBackend", "DiskBackend", "ResultStore"]

#: Envelope format version written to every disk entry.
STORE_FORMAT = "repro-store-v1"

#: Keys are path-like: digest hex, dotted names, ``/`` namespaces.
_KEY_PATTERN = re.compile(r"^[A-Za-z0-9._-]+(?:/[A-Za-z0-9._-]+)*$")


def _check_key(key: str) -> str:
    if not isinstance(key, str) or not _KEY_PATTERN.match(key):
        raise StoreError(
            f"bad store key {key!r}: keys are /-separated segments of "
            "[A-Za-z0-9._-]"
        )
    if any(segment in (".", "..") for segment in key.split("/")):
        raise StoreError(f"bad store key {key!r}: relative path segments")
    return key


class MemoryBackend:
    """Process-local backend: a plain dict, no durability."""

    def __init__(self) -> None:
        self._entries: Dict[str, object] = {}

    def get(self, key: str):
        return self._entries.get(_check_key(key))

    def put(self, key: str, payload) -> None:
        self._entries[_check_key(key)] = payload

    def put_new(self, key: str, payload) -> bool:
        if _check_key(key) in self._entries:
            return False
        self._entries[key] = payload
        return True

    def delete(self, key: str) -> bool:
        return self._entries.pop(_check_key(key), None) is not None

    def keys(self, prefix: str = "") -> List[str]:
        return sorted(k for k in self._entries if k.startswith(prefix))

    def entry_count(self) -> int:
        return len(self._entries)

    def total_bytes(self) -> int:
        return 0


class DiskBackend:
    """One JSON file per key under ``root``; atomic replace on write.

    The key maps directly onto the directory layout
    (``sweep/abc/part-0`` → ``<root>/sweep/abc/part-0.json``), which
    keeps the store human-inspectable and makes prefix listing and
    garbage collection plain directory walks.
    """

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.corrupt_dropped = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.root, *_check_key(key).split("/")) + ".json"

    def get(self, key: str):
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as handle:
                envelope = json.load(handle)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError, UnicodeDecodeError):
            self._drop_corrupt(path)
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("format") != STORE_FORMAT
            or envelope.get("key") != key
            or "payload" not in envelope
        ):
            self._drop_corrupt(path)
            return None
        return envelope["payload"]

    def _drop_corrupt(self, path: str) -> None:
        self.corrupt_dropped += 1
        if obs.ENABLED:
            obs.incr("store.corrupt_dropped")
        try:
            os.unlink(path)
        except OSError:
            pass

    def put(self, key: str, payload) -> None:
        path = self._path(key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        envelope = {"format": STORE_FORMAT, "key": key, "payload": payload}
        # Same-directory temp file so os.replace stays a single-volume
        # atomic rename.
        fd, tmp_path = tempfile.mkstemp(
            prefix=".tmp-", suffix=".json", dir=directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(envelope, handle, separators=(",", ":"))
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def put_new(self, key: str, payload) -> bool:
        """Create ``key`` only if absent; return whether this call won.

        Unlike :meth:`put` (atomic last-writer-wins replace), this uses
        an exclusive ``O_CREAT | O_EXCL`` create, so exactly one of any
        number of concurrent callers — including callers in other
        processes or on other hosts sharing the filesystem — succeeds.
        The scheduler builds chunk leases on this primitive.
        """
        path = self._path(key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        envelope = {"format": STORE_FORMAT, "key": key, "payload": payload}
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(envelope, handle, separators=(",", ":"))
        return True

    def delete(self, key: str) -> bool:
        try:
            os.unlink(self._path(key))
            return True
        except FileNotFoundError:
            return False

    def _walk(self) -> Iterator[Tuple[str, os.DirEntry]]:
        stack = [self.root]
        while stack:
            directory = stack.pop()
            try:
                entries = list(os.scandir(directory))
            except FileNotFoundError:
                continue
            for entry in entries:
                if entry.is_dir(follow_symlinks=False):
                    stack.append(entry.path)
                elif entry.name.endswith(".json") and not entry.name.startswith(
                    ".tmp-"
                ):
                    relative = os.path.relpath(entry.path, self.root)
                    key = relative[: -len(".json")].replace(os.sep, "/")
                    yield key, entry

    def keys(self, prefix: str = "") -> List[str]:
        return sorted(
            key for key, _ in self._walk() if key.startswith(prefix)
        )

    def entry_count(self) -> int:
        return sum(1 for _ in self._walk())

    def total_bytes(self) -> int:
        return sum(entry.stat().st_size for _, entry in self._walk())

    def gc(self, max_bytes: int) -> Tuple[int, int]:
        """Delete oldest entries until the store fits ``max_bytes``.

        Returns ``(entries_removed, bytes_freed)``.  Age is mtime-based
        (eviction order = least recently *written*); empty directories
        left behind are pruned.
        """
        if max_bytes < 0:
            raise StoreError(f"max_bytes must be >= 0, got {max_bytes}")
        entries = [
            (entry.stat().st_mtime, entry.stat().st_size, entry.path)
            for _, entry in self._walk()
        ]
        total = sum(size for _, size, _ in entries)
        removed = 0
        freed = 0
        for _, size, path in sorted(entries):
            if total <= max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            freed += size
            removed += 1
            if obs.ENABLED:
                obs.incr("store.gc_removed")
        self._prune_empty_dirs()
        return removed, freed

    def _prune_empty_dirs(self) -> None:
        # ``topdown=False`` lists subdirs from scan time, so a parent
        # whose children were just pruned still appears non-empty;
        # attempt the rmdir unconditionally and let it fail on content.
        for directory, _, _ in os.walk(self.root, topdown=False):
            if directory != self.root:
                try:
                    os.rmdir(directory)
                except OSError:
                    pass


class ResultStore:
    """A content-addressed result store: backend + in-memory LRU front.

    Parameters
    ----------
    backend:
        A :class:`DiskBackend` or :class:`MemoryBackend` (anything with
        the same protocol).
    max_front:
        Bound on the in-memory front; the least recently used entry is
        evicted beyond it.  ``0`` disables the front entirely (every
        get goes to the backend).
    """

    def __init__(self, backend, max_front: int = 1024):
        if max_front < 0:
            raise StoreError(f"max_front must be >= 0, got {max_front}")
        self.backend = backend
        self.max_front = max_front
        self._front: "OrderedDict[str, object]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._writes = 0

    @classmethod
    def at(cls, root: str, max_front: int = 1024) -> "ResultStore":
        """Disk-backed store rooted at ``root`` (created if missing)."""
        return cls(DiskBackend(root), max_front=max_front)

    @classmethod
    def in_memory(cls, max_front: int = 1024) -> "ResultStore":
        """Ephemeral store for tests and single-process runs."""
        return cls(MemoryBackend(), max_front=max_front)

    def _remember(self, key: str, payload) -> None:
        if self.max_front == 0:
            return
        self._front[key] = payload
        self._front.move_to_end(key)
        while len(self._front) > self.max_front:
            self._front.popitem(last=False)
            self._evictions += 1
            if obs.ENABLED:
                obs.incr("store.evictions")

    def get(self, key: str):
        """Payload for ``key`` or ``None``; front hit avoids the disk."""
        if key in self._front:
            self._front.move_to_end(key)
            self._hits += 1
            if obs.ENABLED:
                obs.incr("store.hits")
            return self._front[key]
        payload = self.backend.get(key)
        if payload is None:
            self._misses += 1
            if obs.ENABLED:
                obs.incr("store.misses")
            return None
        self._hits += 1
        if obs.ENABLED:
            obs.incr("store.hits")
        self._remember(key, payload)
        return payload

    def put(self, key: str, payload) -> None:
        """Durably store ``payload`` under ``key`` (atomic on disk)."""
        self.backend.put(key, payload)
        self._writes += 1
        if obs.ENABLED:
            obs.incr("store.writes")
        self._remember(key, payload)

    def put_new(self, key: str, payload) -> bool:
        """Exclusive create (see :meth:`DiskBackend.put_new`).

        Note the LRU front is process-local: a *lost* race still leaves
        the winner's payload on the backend, and this store's front is
        only updated when this call wins.  Cross-process coordination
        (leases) should use a backend directly.
        """
        created = self.backend.put_new(key, payload)
        if created:
            self._writes += 1
            if obs.ENABLED:
                obs.incr("store.writes")
            self._remember(key, payload)
        return created

    def delete(self, key: str) -> bool:
        """Remove one entry from the backend and the front."""
        self._front.pop(key, None)
        return self.backend.delete(key)

    def keys(self, prefix: str = "") -> List[str]:
        """Backend keys starting with ``prefix``, sorted."""
        return self.backend.keys(prefix)

    def cache_info(self) -> obs.CacheInfo:
        """Front statistics in the shared ``lru_cache`` shape."""
        return obs.CacheInfo(
            hits=self._hits,
            misses=self._misses,
            currsize=len(self._front),
            maxsize=self.max_front,
        )

    def stats(self) -> Dict[str, object]:
        """One JSON-safe dict of store health numbers."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "writes": self._writes,
            "front_entries": len(self._front),
            "front_max": self.max_front,
            "backend_entries": self.backend.entry_count(),
            "backend_bytes": self.backend.total_bytes(),
            "corrupt_dropped": getattr(self.backend, "corrupt_dropped", 0),
        }

    def gc(self, max_bytes: int) -> Tuple[int, int]:
        """Shrink the backend to ``max_bytes`` (disk backends only)."""
        gc = getattr(self.backend, "gc", None)
        if gc is None:
            return (0, 0)
        removed, freed = gc(max_bytes)
        if removed:
            # Entries may have vanished under the front; drop it rather
            # than serve payloads the backend no longer holds as "durable".
            self._front.clear()
        return removed, freed
