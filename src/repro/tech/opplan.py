"""Decoded batch evaluation of V_DD operating sweeps.

The Fig. 3/4 experiments ask the mirror image of the variation
question answered by :mod:`repro.tech.batch`: *the same cell, under
the same load, at many supply voltages*.  Every optimizer probe —
bisection steps in ``solve_vdd_for_delay``, energy evaluations along
the optimum locus, whole (V_DD, V_T) surface grids — walks the scalar
``fanout_delay`` / ``propagation_delay`` / ``leakage_current`` chain,
re-resolving attribute chains, capacitance views, thermal voltage and
Mosfet constructions although none of them depend on V_DD.

:class:`OperatingPlan` is the decode/run split applied along the
supply axis: :meth:`CellCharacterizer.plan_operating
<repro.tech.characterize.CellCharacterizer.plan_operating>` resolves
every V_DD-invariant quantity once (gate/junction geometry products,
per-flavour drive prefactors, the leakage stack constants), and
:meth:`OperatingPlan.delays` / :meth:`OperatingPlan.leakages` /
:meth:`OperatingPlan.energies` then evaluate a whole vector of
supplies in a tight loop that recomputes only the V_DD-dependent
terms (the non-linear C(V) views and the drive exponentials).

The batched results are **bit-identical** to the per-point chain:
every precomputed partial product preserves the reference float-op
association order (``a*b*c*d`` folds left, so hoisting ``a*b`` is
exact), the non-linear ``switched_capacitance`` views are evaluated
once per point through the *same* model methods the per-point path
calls, the inlined ``_bounded_exp`` clamps reproduce
``max(-60, min(60, x))`` on the reachable side, and the leakage path
*shares* the characterizer's
:class:`~repro.device.leakage.StackLeakageModel` memo dicts — key
construction included — so the rounded-key reuse semantics of the
per-point path are replicated exactly.  The differential tests in
``tests/property/test_opplan_differential.py`` assert equality corner
for corner.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro import obs as _obs
from repro.device.leakage import stack_leakage_current
from repro.device.mosfet import Mosfet, MosfetParameters
from repro.errors import CharacterizationError, DeviceModelError
from repro.tech.characterize import _DELAY_CONSTANT

__all__ = ["OperatingPlan"]

#: Mirrors ``repro.device.mosfet._MAX_EXP_ARG``; the inlined loops only
#: ever clamp from below (their exponent arguments are always <= 0).
_MAX_EXP_ARG = 60.0


def _drive_constants(parameters: MosfetParameters, width_um: float) -> tuple:
    """V_DD-invariant on-current constants for one flavour.

    Constructing the :class:`Mosfet` first keeps the validation (and
    its error) identical to the per-point path.
    """
    device = Mosfet(parameters, width_um=width_um)
    phi_t = parameters.thermal_voltage
    return (
        parameters.vt0,
        parameters.dibl,
        parameters.ideality * phi_t,
        phi_t,
        parameters.i_spec * device.width_um,
        parameters.k_drive * device.width_um,
        parameters.alpha,
        parameters.alpha / 2.0,
        parameters.vdsat_coeff,
        parameters.channel_length_modulation,
    )


class _StackPlan:
    """Decoded leakage-stack evaluator for one polarity of one cell.

    Unlike its fixed-V_DD twin in :mod:`repro.tech.batch`, this plan is
    *parameterized* by V_DD: single-device stacks (every inverter, and
    therefore every ring-oscillator probe) evaluate the inlined
    ``off_current`` with per-point DIBL and drain-factor terms, while
    multi-device stacks fall through to the reference
    :func:`~repro.device.leakage.stack_leakage_current` bisection —
    both share the owning characterizer's ``StackLeakageModel._cache``
    with the same rounded keys as the per-point path.
    """

    __slots__ = (
        "parameters",
        "cache",
        "widths",
        "widths_key",
        "single",
        "vt0",
        "dibl",
        "n_phi",
        "phi_t",
        "iw",
        "kw",
        "alpha",
        "half_alpha",
        "vdsat_coeff",
        "clm",
    )

    def __init__(
        self,
        parameters: MosfetParameters,
        widths_um: Sequence[float],
        cache: dict,
    ):
        if not widths_um:
            # Same guard (and error) as stack_leakage_current, hoisted
            # to decode time.
            raise DeviceModelError("stack must contain at least one device")
        # Same construction (and validation) as stack_leakage_current.
        devices = [Mosfet(parameters, width_um=w) for w in widths_um]
        self.parameters = parameters
        self.cache = cache
        self.widths = tuple(widths_um)
        self.widths_key = tuple(round(w, 6) for w in widths_um)
        self.single = len(devices) == 1
        phi_t = parameters.thermal_voltage
        self.vt0 = parameters.vt0
        self.dibl = parameters.dibl
        self.n_phi = parameters.ideality * phi_t
        self.phi_t = phi_t
        self.iw = parameters.i_spec * devices[0].width_um
        self.kw = parameters.k_drive * devices[0].width_um
        self.alpha = parameters.alpha
        self.half_alpha = parameters.alpha / 2.0
        self.vdsat_coeff = parameters.vdsat_coeff
        self.clm = parameters.channel_length_modulation

    def _off_current(self, vdd: float, vt_shift: float) -> float:
        """``Mosfet.off_current(vdd, vt_shift)`` with hoisted constants.

        See :mod:`repro.device.mosfet` for the reference float-op
        sequence this replicates verbatim (V_gs = 0, V_ds = V_DD).
        """
        exp = math.exp
        vt = (self.vt0 + vt_shift) - self.dibl * vdd
        gate_drive = 0.0 - vt
        overdrive = gate_drive
        if gate_drive > 0.0:
            gate_drive = 0.0
        exponent = gate_drive / self.n_phi
        if exponent < -_MAX_EXP_ARG:
            exponent = -_MAX_EXP_ARG
        drain_arg = -vdd / self.phi_t
        if drain_arg < -_MAX_EXP_ARG:
            drain_arg = -_MAX_EXP_ARG
        current = self.iw * exp(exponent) * (1.0 - exp(drain_arg))
        if overdrive > 0.0:
            i_dsat = self.kw * overdrive**self.alpha
            vdsat = self.vdsat_coeff * overdrive**self.half_alpha
            if vdd >= vdsat:
                current += i_dsat * (1.0 + self.clm * (vdd - vdsat))
            else:
                ratio = vdd / vdsat
                current += i_dsat * ratio * (2.0 - ratio)
        return current

    def lookup(self, vdd: float, vt_shift: float, shift_key: float) -> float:
        """``StackLeakageModel.current`` with the shift key precomputed.

        Consults (and fills) the shared memo with the same rounded key
        the per-point path builds.
        """
        key = (self.widths_key, round(vdd, 6), shift_key)
        value = self.cache.get(key)
        if value is None:
            if self.single:
                value = self._off_current(vdd, vt_shift)
            else:
                value = stack_leakage_current(
                    self.parameters, self.widths, vdd, vt_shift
                )
            self.cache[key] = value
        return value


class OperatingPlan:
    """A (cell, load) pair decoded for vectorized V_DD sweeps.

    Produced by :meth:`CellCharacterizer.plan_operating
    <repro.tech.characterize.CellCharacterizer.plan_operating>`; holds
    only plain floats, the two capacitance models (their non-linear
    ``switched_capacitance`` views are the only model calls left in the
    kernels) and the shared stack memo dicts.

    The load is specified either as a fixed external ``load_f`` [F]
    (mirroring :meth:`~repro.tech.characterize.CellCharacterizer.
    propagation_delay`) or as a ``fanout`` multiple of the cell's own
    V_DD-dependent input capacitance (mirroring
    :meth:`~repro.tech.characterize.CellCharacterizer.fanout_delay` —
    the ring-oscillator configuration).
    """

    __slots__ = (
        "cell_name",
        "load_f",
        "fanout",
        "output_high_probability",
        "_gate_cap",
        "_junction_cap",
        "_gate_area_n",
        "_gate_area_p",
        "_drain_area_n",
        "_drain_area_p",
        "_nmos_drive",
        "_pmos_drive",
        "_nmos_stack",
        "_pmos_stack",
    )

    def __init__(
        self,
        cell_name: str,
        load_f: float,
        fanout: Optional[int],
        output_high_probability: float,
        gate_cap,
        junction_cap,
        gate_area_n: float,
        gate_area_p: float,
        drain_area_n: float,
        drain_area_p: float,
        nmos_drive: tuple,
        pmos_drive: tuple,
        nmos_stack: _StackPlan,
        pmos_stack: _StackPlan,
    ):
        self.cell_name = cell_name
        self.load_f = load_f
        self.fanout = fanout
        self.output_high_probability = output_high_probability
        self._gate_cap = gate_cap
        self._junction_cap = junction_cap
        self._gate_area_n = gate_area_n
        self._gate_area_p = gate_area_p
        self._drain_area_n = drain_area_n
        self._drain_area_p = drain_area_p
        self._nmos_drive = nmos_drive
        self._pmos_drive = pmos_drive
        self._nmos_stack = nmos_stack
        self._pmos_stack = pmos_stack

    @classmethod
    def build(
        cls,
        characterizer,
        cell,
        load_f: float = 0.0,
        fanout: Optional[int] = None,
        output_high_probability: float = 0.5,
    ) -> "OperatingPlan":
        """Decode one (cell, load) pair of ``characterizer``'s technology.

        Called through :meth:`CellCharacterizer.plan_operating`, which
        validates the arguments and memoizes the plan.
        """
        technology = characterizer.technology
        length = technology.drawn_length_um
        extent = technology.drain_extent_um
        # Same dimension guard (and error) the capacitance models apply
        # on every per-point call, hoisted to decode time.
        widths = (
            cell.input_nmos_width_um,
            cell.input_pmos_width_um,
            cell.input_nmos_width_um * cell.nmos_drains_on_output,
            cell.input_pmos_width_um * cell.pmos_drains_on_output,
        )
        if length <= 0.0 or extent <= 0.0 or any(w <= 0.0 for w in widths):
            raise DeviceModelError("device dimensions must be positive")
        nmos = technology.transistors.nmos
        pmos = technology.transistors.pmos
        return cls(
            cell_name=cell.name,
            load_f=load_f,
            fanout=fanout,
            output_high_probability=output_high_probability,
            gate_cap=technology.gate_cap,
            junction_cap=technology.junction_cap,
            # gate_capacitance folds (w * l) * C_sw(V_DD); hoist (w * l).
            gate_area_n=cell.input_nmos_width_um * length,
            gate_area_p=cell.input_pmos_width_um * length,
            # drain_capacitance folds ((w * drains) * extent) * C_sw.
            drain_area_n=(
                cell.input_nmos_width_um * cell.nmos_drains_on_output
            )
            * extent,
            drain_area_p=(
                cell.input_pmos_width_um * cell.pmos_drains_on_output
            )
            * extent,
            nmos_drive=_drive_constants(
                nmos,
                cell.series_equivalent_width(cell.nmos_path_widths_um),
            ),
            pmos_drive=_drive_constants(
                pmos,
                cell.series_equivalent_width(cell.pmos_path_widths_um),
            ),
            nmos_stack=_StackPlan(
                nmos,
                cell.nmos_path_widths_um,
                characterizer._nmos_stacks._cache,
            ),
            pmos_stack=_StackPlan(
                pmos,
                cell.pmos_path_widths_um,
                characterizer._pmos_stacks._cache,
            ),
        )

    # ------------------------------------------------------------------
    # Per-point loads (the only V_DD-dependent model calls left)
    # ------------------------------------------------------------------
    def _load_and_cout(self, vdd: float) -> Tuple[float, float]:
        """(external load, output capacitance) at one supply [F].

        Fanout mode touches the gate C(V) view *first*, so an invalid
        supply raises the same ``DeviceModelError`` as the per-point
        ``fanout_delay`` chain; fixed-load mode raises the
        characterizer's ``CharacterizationError`` instead, exactly as
        ``propagation_delay`` would.
        """
        fanout = self.fanout
        if fanout is not None:
            gate_sw = self._gate_cap.switched_capacitance(vdd)
            cin = self._gate_area_n * gate_sw + self._gate_area_p * gate_sw
            load = fanout * cin
        else:
            if vdd <= 0.0:
                raise CharacterizationError(
                    f"vdd must be positive, got {vdd}"
                )
            load = self.load_f
        junction_sw = self._junction_cap.switched_capacitance(vdd)
        cout = (
            self._drain_area_n * junction_sw
            + self._drain_area_p * junction_sw
        )
        return load, cout

    # ------------------------------------------------------------------
    # Batched evaluation
    # ------------------------------------------------------------------
    def delays(
        self, vdds: Sequence[float], vt_shift: float = 0.0
    ) -> List[float]:
        """The per-point delay chain at every supply, bit-identically.

        Fanout mode mirrors ``fanout_delay``; fixed-load mode mirrors
        ``propagation_delay`` — see :mod:`repro.device.mosfet` for the
        reference float-op sequences the drive loop replicates.
        """
        exp = math.exp
        load_and_cout = self._load_and_cout
        n_vt0, n_dibl, n_phi_n, n_phi_t, n_iw, n_kw, n_alpha, \
            n_half_alpha, n_vdsat_c, n_clm = self._nmos_drive
        p_vt0, p_dibl, n_phi_p, p_phi_t, p_iw, p_kw, p_alpha, \
            p_half_alpha, p_vdsat_c, p_clm = self._pmos_drive
        n_vt0s = n_vt0 + vt_shift
        p_vt0s = p_vt0 + vt_shift
        out: List[float] = []
        append = out.append
        for vdd in vdds:
            load, cout = load_and_cout(vdd)
            total_load = load + cout
            numerator = _DELAY_CONSTANT * total_load * vdd
            # Pull-down (NMOS) on-current.
            vt = n_vt0s - n_dibl * vdd
            drive = vdd - vt
            gate_drive = drive
            if gate_drive > 0.0:
                gate_drive = 0.0
            exponent = gate_drive / n_phi_n
            if exponent < -_MAX_EXP_ARG:
                exponent = -_MAX_EXP_ARG
            drain_arg = -vdd / n_phi_t
            if drain_arg < -_MAX_EXP_ARG:
                drain_arg = -_MAX_EXP_ARG
            pull_down = n_iw * exp(exponent) * (1.0 - exp(drain_arg))
            if drive > 0.0:
                i_dsat = n_kw * drive**n_alpha
                vdsat = n_vdsat_c * drive**n_half_alpha
                if vdd >= vdsat:
                    pull_down += i_dsat * (1.0 + n_clm * (vdd - vdsat))
                else:
                    ratio = vdd / vdsat
                    pull_down += i_dsat * ratio * (2.0 - ratio)
            # Pull-up (PMOS) on-current.
            vt = p_vt0s - p_dibl * vdd
            drive = vdd - vt
            gate_drive = drive
            if gate_drive > 0.0:
                gate_drive = 0.0
            exponent = gate_drive / n_phi_p
            if exponent < -_MAX_EXP_ARG:
                exponent = -_MAX_EXP_ARG
            drain_arg = -vdd / p_phi_t
            if drain_arg < -_MAX_EXP_ARG:
                drain_arg = -_MAX_EXP_ARG
            pull_up = p_iw * exp(exponent) * (1.0 - exp(drain_arg))
            if drive > 0.0:
                i_dsat = p_kw * drive**p_alpha
                vdsat = p_vdsat_c * drive**p_half_alpha
                if vdd >= vdsat:
                    pull_up += i_dsat * (1.0 + p_clm * (vdd - vdsat))
                else:
                    ratio = vdd / vdsat
                    pull_up += i_dsat * ratio * (2.0 - ratio)
            weakest = pull_down if pull_down <= pull_up else pull_up
            if weakest <= 0.0:
                raise CharacterizationError(
                    f"cell {self.cell_name} has no drive at "
                    f"V_DD = {vdd} V"
                )
            append(numerator / weakest)
        if _obs.ENABLED and out:
            _obs.incr("opplan.points_batched", len(out))
        return out

    def leakages(
        self, vdds: Sequence[float], vt_shift: float = 0.0
    ) -> List[float]:
        """``leakage_current`` at every supply, bit-identically.

        Consults (and fills) the shared stack memos with the same
        rounded keys and in the same order as the per-point path.
        """
        p_high = self.output_high_probability
        p_low = 1.0 - p_high
        nmos = self._nmos_stack
        pmos = self._pmos_stack
        shift_key = round(vt_shift, 6)
        out: List[float] = []
        append = out.append
        for vdd in vdds:
            if vdd <= 0.0:
                raise CharacterizationError(
                    f"vdd must be positive, got {vdd}"
                )
            nmos_leak = nmos.lookup(vdd, vt_shift, shift_key)
            pmos_leak = pmos.lookup(vdd, vt_shift, shift_key)
            append(p_high * nmos_leak + p_low * pmos_leak)
        if _obs.ENABLED and out:
            _obs.incr("opplan.points_batched", len(out))
        return out

    def energies(
        self, vdds: Sequence[float], vt_shift: float = 0.0
    ) -> List[Tuple[float, float]]:
        """Raw ``(E_transition, I_leak)`` pairs at every supply.

        ``E_transition`` is ``energy_per_transition`` at this plan's
        load [J] and ``I_leak`` is ``leakage_current`` [A] — the two
        numbers the ring oscillator's ``energy_per_cycle`` chain
        combines with its stage count, activity and cycle time
        (``E = stages * activity * E_tr + (stages * I_leak) * V * T``).
        Returning the raw pair keeps every downstream association order
        in the caller, bit-identical to the per-point chain.
        """
        p_high = self.output_high_probability
        p_low = 1.0 - p_high
        nmos = self._nmos_stack
        pmos = self._pmos_stack
        shift_key = round(vt_shift, 6)
        load_and_cout = self._load_and_cout
        out: List[Tuple[float, float]] = []
        append = out.append
        for vdd in vdds:
            load, cout = load_and_cout(vdd)
            total = load + cout
            transition = total * vdd * vdd
            nmos_leak = nmos.lookup(vdd, vt_shift, shift_key)
            pmos_leak = pmos.lookup(vdd, vt_shift, shift_key)
            leak = p_high * nmos_leak + p_low * pmos_leak
            append((transition, leak))
        if _obs.ENABLED and out:
            _obs.incr("opplan.points_batched", len(out))
        return out

    def operating_points(
        self,
        vdds: Sequence[float],
        vt_shift: float = 0.0,
        max_delay_s: Optional[float] = None,
    ) -> List[Tuple[float, Optional[float], Optional[float]]]:
        """Fused ``(delay, E_transition, I_leak)`` triples per supply.

        Evaluates :meth:`delays` and :meth:`energies` in one pass,
        computing the V_DD-dependent load exactly once per point — the
        capacitance views are pure functions of V_DD, so sharing the
        ``load + cout`` floats between the delay numerator and the
        ``C * V^2`` transition energy reproduces both per-point chains
        bit-identically.

        When ``max_delay_s`` is given, points whose delay exceeds it
        return ``(delay, None, None)`` and skip the leakage-stack
        lookups entirely — the surface engine's infeasible cells never
        consume their energies, so eliding the work changes nothing.
        """
        exp = math.exp
        load_and_cout = self._load_and_cout
        n_vt0, n_dibl, n_phi_n, n_phi_t, n_iw, n_kw, n_alpha, \
            n_half_alpha, n_vdsat_c, n_clm = self._nmos_drive
        p_vt0, p_dibl, n_phi_p, p_phi_t, p_iw, p_kw, p_alpha, \
            p_half_alpha, p_vdsat_c, p_clm = self._pmos_drive
        n_vt0s = n_vt0 + vt_shift
        p_vt0s = p_vt0 + vt_shift
        p_high = self.output_high_probability
        p_low = 1.0 - p_high
        nmos = self._nmos_stack
        pmos = self._pmos_stack
        shift_key = round(vt_shift, 6)
        out: List[Tuple[float, Optional[float], Optional[float]]] = []
        append = out.append
        for vdd in vdds:
            load, cout = load_and_cout(vdd)
            total_load = load + cout
            numerator = _DELAY_CONSTANT * total_load * vdd
            # Pull-down (NMOS) on-current.
            vt = n_vt0s - n_dibl * vdd
            drive = vdd - vt
            gate_drive = drive
            if gate_drive > 0.0:
                gate_drive = 0.0
            exponent = gate_drive / n_phi_n
            if exponent < -_MAX_EXP_ARG:
                exponent = -_MAX_EXP_ARG
            drain_arg = -vdd / n_phi_t
            if drain_arg < -_MAX_EXP_ARG:
                drain_arg = -_MAX_EXP_ARG
            pull_down = n_iw * exp(exponent) * (1.0 - exp(drain_arg))
            if drive > 0.0:
                i_dsat = n_kw * drive**n_alpha
                vdsat = n_vdsat_c * drive**n_half_alpha
                if vdd >= vdsat:
                    pull_down += i_dsat * (1.0 + n_clm * (vdd - vdsat))
                else:
                    ratio = vdd / vdsat
                    pull_down += i_dsat * ratio * (2.0 - ratio)
            # Pull-up (PMOS) on-current.
            vt = p_vt0s - p_dibl * vdd
            drive = vdd - vt
            gate_drive = drive
            if gate_drive > 0.0:
                gate_drive = 0.0
            exponent = gate_drive / n_phi_p
            if exponent < -_MAX_EXP_ARG:
                exponent = -_MAX_EXP_ARG
            drain_arg = -vdd / p_phi_t
            if drain_arg < -_MAX_EXP_ARG:
                drain_arg = -_MAX_EXP_ARG
            pull_up = p_iw * exp(exponent) * (1.0 - exp(drain_arg))
            if drive > 0.0:
                i_dsat = p_kw * drive**p_alpha
                vdsat = p_vdsat_c * drive**p_half_alpha
                if vdd >= vdsat:
                    pull_up += i_dsat * (1.0 + p_clm * (vdd - vdsat))
                else:
                    ratio = vdd / vdsat
                    pull_up += i_dsat * ratio * (2.0 - ratio)
            weakest = pull_down if pull_down <= pull_up else pull_up
            if weakest <= 0.0:
                raise CharacterizationError(
                    f"cell {self.cell_name} has no drive at "
                    f"V_DD = {vdd} V"
                )
            delay = numerator / weakest
            if max_delay_s is not None and delay > max_delay_s:
                append((delay, None, None))
                continue
            transition = total_load * vdd * vdd
            nmos_leak = nmos.lookup(vdd, vt_shift, shift_key)
            pmos_leak = pmos.lookup(vdd, vt_shift, shift_key)
            leak = p_high * nmos_leak + p_low * pmos_leak
            append((delay, transition, leak))
        if _obs.ENABLED and out:
            _obs.incr("opplan.points_batched", len(out))
        return out

    # Single-point conveniences (tests and spot checks).
    def delay(self, vdd: float, vt_shift: float = 0.0) -> float:
        """One delay sample through the plan."""
        return self.delays((vdd,), vt_shift)[0]

    def leakage(self, vdd: float, vt_shift: float = 0.0) -> float:
        """One ``leakage_current`` sample through the plan."""
        return self.leakages((vdd,), vt_shift)[0]
