"""Cell characterization: the library's stand-in for SPICE.

Given a :class:`~repro.device.technology.Technology` and a
:class:`~repro.tech.cells.Cell`, the characterizer produces the four
numbers the circuit and power layers consume at any supply/threshold
corner:

* propagation delay under a load,
* switching energy per output charging event,
* state-averaged leakage current,
* input capacitance.

The delay model is the classic ``t = k * C * V / I_drive`` with the
alpha-power-law drive current, which is what makes the fixed-delay
V_DD-vs-V_T trade-off of the paper's Figs. 3-4 emerge.  Because the
drive current includes the subthreshold floor, delays stay finite even
for V_DD below V_T (sub-threshold operation), just exponentially slow.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Dict

from repro import obs as _obs
from repro.device.leakage import StackLeakageModel
from repro.device.mosfet import Mosfet
from repro.device.technology import Technology
from repro.errors import CharacterizationError
from repro.tech.cells import Cell

__all__ = ["CellTimings", "CellCharacterizer"]

#: Effective-current delay constant: the switching transistor spends the
#: transition between its saturation and linear currents; 0.7 matches
#: the usual 50 %-swing convention.
_DELAY_CONSTANT = 0.7

#: Cache-miss sentinel (``None``/0.0 are legal cached values).
_MISS = object()


@dataclass(frozen=True)
class CellTimings:
    """Characterized numbers for one cell at one corner.

    All values are SI: seconds, joules, amperes, farads.
    """

    cell_name: str
    vdd: float
    vt_shift: float
    load_f: float
    delay_s: float
    energy_per_transition_j: float
    leakage_current_a: float
    input_capacitance_f: float
    output_capacitance_f: float

    @property
    def leakage_power_w(self) -> float:
        """Static power at this corner [W]."""
        return self.leakage_current_a * self.vdd


class CellCharacterizer:
    """Characterizes cells of one technology.

    All corner queries (drive currents, delay, switching and
    short-circuit energy, leakage) are memoized on the exact argument
    tuple ``(cell, vdd, vt_shift, load, ...)``: the model functions are
    pure, so a cache hit returns the very same float the first call
    computed — results are bit-identical with caching on or off.  The
    stack-leakage bisection is additionally memoized per polarity inside
    :class:`~repro.device.leakage.StackLeakageModel`.  Pass
    ``cache=False`` to benchmark the uncached evaluation cost.

    ``Cell`` is a frozen dataclass, so cells key the cache by *value*:
    equal cells from different ``standard_cells()`` catalogs share
    entries.

    With a ``store`` (a :class:`repro.store.ResultStore`) the memo
    becomes **persistent**: construction loads the entries previously
    flushed for this exact technology (keyed by its canonical digest,
    so any model-parameter change starts a fresh namespace), they are
    adopted into the memo as their cells are first interned — the hot
    lookup path is unchanged — and :meth:`flush_store` writes the
    merged memo back durably.  Restored values are bit-identical to
    recomputed ones (JSON round-trips doubles exactly).
    """

    def __init__(
        self, technology: Technology, cache: bool = True, store=None
    ):
        self.technology = technology
        self.cache_enabled = bool(cache)
        self._memo: dict = {}
        # Frozen-dataclass hashing re-walks every Cell field on each
        # lookup; interning cells to small ints keeps keys cheap while
        # preserving value semantics (equal cells share a token).  The
        # id-keyed front map skips even the one Cell hash per query —
        # entries hold a strong reference to the cell so ids can never
        # be recycled.
        self._cell_tokens: dict = {}
        self._id_tokens: dict = {}
        self._hits = 0
        self._misses = 0
        self._nmos_stacks = StackLeakageModel(technology.transistors.nmos)
        self._pmos_stacks = StackLeakageModel(technology.transistors.pmos)
        # Decoded variation and operating plans (repro.tech.batch,
        # repro.tech.opplan); they share the stack models above, so
        # both caches are dropped together.
        self._plans: dict = {}
        # Persistence: stored entries wait in _pending_store keyed by
        # cell digest until their cell is interned, then move into the
        # memo under that cell's token.
        self._store = store if self.cache_enabled else None
        self._tech_store_key = ""
        self._pending_store: dict = {}
        self._token_digests: dict = {}
        self._store_restored = 0
        if self._store is not None:
            self._load_store()

    # ------------------------------------------------------------------
    # Persistence (repro.store)
    # ------------------------------------------------------------------
    def _store_key(self) -> str:
        if not self._tech_store_key:
            from repro.store.hashing import technology_digest

            self._tech_store_key = f"char/{technology_digest(self.technology)}"
        return self._tech_store_key

    def _load_store(self) -> None:
        payload = self._store.get(self._store_key())
        if not isinstance(payload, dict):
            return
        for entry in payload.get("entries", ()):
            family, digest, args, value = entry
            per_cell = self._pending_store.setdefault(digest, {})
            per_cell[(family, tuple(args))] = value

    def _adopt_stored(self, cell: Cell, token: int) -> None:
        """Move a newly interned cell's stored entries into the memo."""
        from repro.store.hashing import cell_digest

        digest = cell_digest(cell)
        self._token_digests[token] = digest
        entries = self._pending_store.pop(digest, None)
        if not entries:
            return
        for (family, args), value in entries.items():
            self._memo[(family, token) + args] = value
        self._store_restored += len(entries)
        if _obs.ENABLED:
            _obs.incr("characterizer.store_restored", len(entries))

    def flush_store(self) -> int:
        """Durably persist the memo (merged with unseen stored cells).

        Returns the number of entries written; no-op without a store.
        Safe to call repeatedly — the write is atomic and idempotent.
        """
        if self._store is None:
            return 0
        entries = []
        for digest, per_cell in self._pending_store.items():
            for (family, args), value in per_cell.items():
                entries.append([family, digest, list(args), value])
        for key, value in self._memo.items():
            digest = self._token_digests.get(key[1])
            if digest is None:  # pragma: no cover - tokens precede store
                continue
            entries.append([key[0], digest, list(key[2:]), value])
        entries.sort(key=lambda entry: (entry[0], entry[1], repr(entry[2])))
        self._store.put(self._store_key(), {"entries": entries})
        if _obs.ENABLED:
            _obs.incr("characterizer.store_flushes")
        return len(entries)

    @property
    def store_restored(self) -> int:
        """Memo entries served from the persistent store this session."""
        return self._store_restored

    def _note(self, family: str, hit: bool) -> None:
        """Per-family obs counters (called only while obs is enabled)."""
        kind = "hits" if hit else "misses"
        _obs.incr(f"characterizer.{kind}")
        _obs.incr(f"characterizer.{kind}.{family}")

    def _token(self, cell: Cell) -> int:
        entry = self._id_tokens.get(id(cell))
        if entry is not None:
            return entry[1]
        token = self._cell_tokens.get(cell)
        if token is None:
            token = len(self._cell_tokens)
            self._cell_tokens[cell] = token
            if self._store is not None:
                self._adopt_stored(cell, token)
        self._id_tokens[id(cell)] = (cell, token)
        return token

    def clear_cache(self) -> None:
        """Drop every memoized corner result (stack memo included) and
        zero the hit/miss statistics.  With a store attached, unflushed
        entries are discarded and the persisted ones re-staged."""
        self._memo.clear()
        self._cell_tokens.clear()
        self._id_tokens.clear()
        self._token_digests.clear()
        self._hits = 0
        self._misses = 0
        self._nmos_stacks = StackLeakageModel(self.technology.transistors.nmos)
        self._pmos_stacks = StackLeakageModel(self.technology.transistors.pmos)
        # Plans hold references to the replaced stack memos; drop them
        # so stale caches cannot be revived.
        self._plans.clear()
        if self._store is not None:
            self._pending_store = {}
            self._load_store()

    @property
    def cache_size(self) -> int:
        """Number of memoized corner results."""
        return len(self._memo)

    def cache_info(self) -> "_obs.CacheInfo":
        """``lru_cache``-style statistics for the corner memo.

        Hits/misses count cached-mode lookups only (``cache=False``
        instances never consult the memo, so they report zeros); the
        memo itself is unbounded — ``maxsize`` is ``None``.
        """
        return _obs.CacheInfo(
            hits=self._hits,
            misses=self._misses,
            currsize=len(self._memo),
            maxsize=None,
        )

    def family_sizes(self) -> Dict[str, int]:
        """Memo entries per family (``delay``, ``energy``, ``leak``...)."""
        sizes: Dict[str, int] = {}
        for key in self._memo:
            family = key[0]
            sizes[family] = sizes.get(family, 0) + 1
        return sizes

    # ------------------------------------------------------------------
    # Drive
    # ------------------------------------------------------------------
    def pull_down_current(
        self, cell: Cell, vdd: float, vt_shift: float = 0.0
    ) -> float:
        """Worst-case pull-down drive current [A]."""
        if not self.cache_enabled:
            width = cell.series_equivalent_width(cell.nmos_path_widths_um)
            device = Mosfet(self.technology.transistors.nmos, width_um=width)
            return device.on_current(vdd, vt_shift)
        key = ("pd", self._token(cell), vdd, vt_shift)
        result = self._memo.get(key, _MISS)
        if result is _MISS:
            self._misses += 1
            if _obs.ENABLED:
                self._note("pd", False)
            width = cell.series_equivalent_width(cell.nmos_path_widths_um)
            device = Mosfet(self.technology.transistors.nmos, width_um=width)
            result = device.on_current(vdd, vt_shift)
            self._memo[key] = result
        else:
            self._hits += 1
            if _obs.ENABLED:
                self._note("pd", True)
        return result

    def pull_up_current(
        self, cell: Cell, vdd: float, vt_shift: float = 0.0
    ) -> float:
        """Worst-case pull-up drive current [A]."""
        if not self.cache_enabled:
            width = cell.series_equivalent_width(cell.pmos_path_widths_um)
            device = Mosfet(self.technology.transistors.pmos, width_um=width)
            return device.on_current(vdd, vt_shift)
        key = ("pu", self._token(cell), vdd, vt_shift)
        result = self._memo.get(key, _MISS)
        if result is _MISS:
            self._misses += 1
            if _obs.ENABLED:
                self._note("pu", False)
            width = cell.series_equivalent_width(cell.pmos_path_widths_um)
            device = Mosfet(self.technology.transistors.pmos, width_um=width)
            result = device.on_current(vdd, vt_shift)
            self._memo[key] = result
        else:
            self._hits += 1
            if _obs.ENABLED:
                self._note("pu", True)
        return result

    # ------------------------------------------------------------------
    # Cached C(V) views
    # ------------------------------------------------------------------
    def _input_capacitance(self, cell: Cell, vdd: float) -> float:
        if not self.cache_enabled:
            return cell.input_capacitance(self.technology, vdd)
        key = ("cin", self._token(cell), vdd)
        result = self._memo.get(key, _MISS)
        if result is _MISS:
            self._misses += 1
            if _obs.ENABLED:
                self._note("cin", False)
            result = cell.input_capacitance(self.technology, vdd)
            self._memo[key] = result
        else:
            self._hits += 1
            if _obs.ENABLED:
                self._note("cin", True)
        return result

    def _output_capacitance(self, cell: Cell, vdd: float) -> float:
        if not self.cache_enabled:
            return cell.output_capacitance(self.technology, vdd)
        key = ("cout", self._token(cell), vdd)
        result = self._memo.get(key, _MISS)
        if result is _MISS:
            self._misses += 1
            if _obs.ENABLED:
                self._note("cout", False)
            result = cell.output_capacitance(self.technology, vdd)
            self._memo[key] = result
        else:
            self._hits += 1
            if _obs.ENABLED:
                self._note("cout", True)
        return result

    # ------------------------------------------------------------------
    # Timing / energy / leakage
    # ------------------------------------------------------------------
    def propagation_delay(
        self,
        cell: Cell,
        vdd: float,
        load_f: float,
        vt_shift: float = 0.0,
    ) -> float:
        """Worst-edge propagation delay driving ``load_f`` [s]."""
        self._check_vdd(vdd)
        if load_f < 0.0:
            raise CharacterizationError("load must be >= 0")
        if self.cache_enabled:
            key = ("delay", self._token(cell), vdd, load_f, vt_shift)
            result = self._memo.get(key, _MISS)
            if result is not _MISS:
                self._hits += 1
                if _obs.ENABLED:
                    self._note("delay", True)
                return result
            self._misses += 1
            if _obs.ENABLED:
                self._note("delay", False)
        total_load = load_f + self._output_capacitance(cell, vdd)
        weakest = min(
            self.pull_down_current(cell, vdd, vt_shift),
            self.pull_up_current(cell, vdd, vt_shift),
        )
        if weakest <= 0.0:
            raise CharacterizationError(
                f"cell {cell.name} has no drive at V_DD = {vdd} V"
            )
        result = _DELAY_CONSTANT * total_load * vdd / weakest
        if self.cache_enabled:
            self._memo[key] = result
        return result

    def energy_per_transition(
        self, cell: Cell, vdd: float, load_f: float
    ) -> float:
        """Supply energy drawn per output charging event [J].

        Charging a node to V_DD draws ``C V^2`` from the supply (half
        stored, half dissipated; the stored half is dissipated on the
        subsequent discharge).  Counting ``C V^2`` per 0->1 transition
        matches the paper's Eq. 1 convention with alpha_0->1.
        """
        self._check_vdd(vdd)
        if load_f < 0.0:
            raise CharacterizationError("load must be >= 0")
        if self.cache_enabled:
            key = ("energy", self._token(cell), vdd, load_f)
            result = self._memo.get(key, _MISS)
            if result is not _MISS:
                self._hits += 1
                if _obs.ENABLED:
                    self._note("energy", True)
                return result
            self._misses += 1
            if _obs.ENABLED:
                self._note("energy", False)
        total = load_f + self._output_capacitance(cell, vdd)
        result = total * vdd * vdd
        if self.cache_enabled:
            self._memo[key] = result
        return result

    def short_circuit_energy(
        self,
        cell: Cell,
        vdd: float,
        load_f: float,
        input_transition_time_s: float,
    ) -> float:
        """Short-circuit energy per input edge (Veendrick-style) [J].

        Zero when the supply cannot turn both networks on at once
        (V_DD < V_Tn + |V_Tp|) — the classic result that slow rails
        remove short-circuit power entirely.
        """
        self._check_vdd(vdd)
        if self.cache_enabled:
            key = ("sc", self._token(cell), vdd, load_f, input_transition_time_s)
            cached = self._memo.get(key, _MISS)
            if cached is not _MISS:
                self._hits += 1
                if _obs.ENABLED:
                    self._note("sc", True)
                return cached
            self._misses += 1
            if _obs.ENABLED:
                self._note("sc", False)
        nmos = self.technology.transistors.nmos
        pmos = self.technology.transistors.pmos
        overlap = vdd - nmos.vt0 - pmos.vt0
        if overlap <= 0.0:
            result = 0.0
        else:
            # Veendrick: E_sc ~ (k/12) * (V_DD - V_Tn - V_Tp)^3 * tau / V_DD
            # with k the drive factor of the weaker device.
            k_eff = min(
                nmos.k_drive
                * cell.series_equivalent_width(cell.nmos_path_widths_um),
                pmos.k_drive
                * cell.series_equivalent_width(cell.pmos_path_widths_um),
            )
            result = (
                k_eff
                / 12.0
                * overlap**3
                * input_transition_time_s
                / vdd
            )
        if self.cache_enabled:
            self._memo[key] = result
        return result

    def leakage_current(
        self,
        cell: Cell,
        vdd: float,
        vt_shift: float = 0.0,
        output_high_probability: float = 0.5,
    ) -> float:
        """State-averaged cell leakage with stack effect [A]."""
        self._check_vdd(vdd)
        if not 0.0 <= output_high_probability <= 1.0:
            raise CharacterizationError(
                "output_high_probability must be in [0, 1]"
            )
        if self.cache_enabled:
            key = ("leak", self._token(cell), vdd, vt_shift, output_high_probability)
            cached = self._memo.get(key, _MISS)
            if cached is not _MISS:
                self._hits += 1
                if _obs.ENABLED:
                    self._note("leak", True)
                return cached
            self._misses += 1
            if _obs.ENABLED:
                self._note("leak", False)
        nmos_leak = self._nmos_stacks.current(
            cell.nmos_path_widths_um, vdd, vt_shift
        )
        pmos_leak = self._pmos_stacks.current(
            cell.pmos_path_widths_um, vdd, vt_shift
        )
        p_high = output_high_probability
        result = p_high * nmos_leak + (1.0 - p_high) * pmos_leak
        if self.cache_enabled:
            self._memo[key] = result
        return result

    # ------------------------------------------------------------------
    # Batched variation evaluation
    # ------------------------------------------------------------------
    def plan_variation(
        self,
        cell: Cell,
        vdd: float,
        load_f: float = 0.0,
        output_high_probability: float = 0.5,
    ):
        """Decode a (cell, V_DD, load) corner for vectorized V_T sweeps.

        Returns a :class:`repro.tech.batch.VariationPlan` whose
        ``delays``/``leakages`` evaluate whole shift vectors
        bit-identically to :meth:`propagation_delay` /
        :meth:`leakage_current` called per sample.  Plans are memoized
        per corner (when caching is on) and share this characterizer's
        stack-leakage memos, so plan and per-sample evaluations feed
        the same caches.
        """
        self._check_vdd(vdd)
        if load_f < 0.0:
            raise CharacterizationError("load must be >= 0")
        if not 0.0 <= output_high_probability <= 1.0:
            raise CharacterizationError(
                "output_high_probability must be in [0, 1]"
            )
        from repro.tech.batch import VariationPlan

        if not self.cache_enabled:
            if _obs.ENABLED:
                _obs.incr("variation.plan_builds")
            return VariationPlan.build(
                self, cell, vdd, load_f, output_high_probability
            )
        key = (
            "vplan",
            self._token(cell),
            vdd,
            load_f,
            output_high_probability,
        )
        plan = self._plans.get(key)
        if plan is None:
            plan = VariationPlan.build(
                self, cell, vdd, load_f, output_high_probability
            )
            self._plans[key] = plan
            if _obs.ENABLED:
                _obs.incr("variation.plan_builds")
        return plan

    # ------------------------------------------------------------------
    # Batched operating (V_DD) evaluation
    # ------------------------------------------------------------------
    def plan_operating(
        self,
        cell: Cell,
        load_f: float = 0.0,
        fanout=None,
        output_high_probability: float = 0.5,
    ):
        """Decode a (cell, load) pair for vectorized V_DD sweeps.

        Returns a :class:`repro.tech.opplan.OperatingPlan` whose
        ``delays``/``leakages``/``energies`` kernels evaluate whole
        supply vectors bit-identically to the per-point
        :meth:`propagation_delay` / :meth:`fanout_delay` /
        :meth:`leakage_current` / :meth:`energy_per_transition` chain.
        With ``fanout`` set (an integer >= 1), the plan drives
        ``fanout`` copies of the cell's own V_DD-dependent input
        capacitance, exactly as :meth:`fanout_delay` does; otherwise it
        drives the fixed external ``load_f``.  Plans are memoized per
        (cell, load) pair (when caching is on) and share this
        characterizer's stack-leakage memos, so plan and per-point
        evaluations feed the same caches.
        """
        if load_f < 0.0:
            raise CharacterizationError("load must be >= 0")
        if fanout is not None and fanout < 1:
            raise CharacterizationError("fanout must be >= 1")
        if not 0.0 <= output_high_probability <= 1.0:
            raise CharacterizationError(
                "output_high_probability must be in [0, 1]"
            )
        from repro.tech.opplan import OperatingPlan

        if not self.cache_enabled:
            if _obs.ENABLED:
                _obs.incr("optimizer.plan_builds")
            return OperatingPlan.build(
                self, cell, load_f, fanout, output_high_probability
            )
        key = (
            "oplan",
            self._token(cell),
            load_f,
            fanout,
            output_high_probability,
        )
        plan = self._plans.get(key)
        if plan is None:
            plan = OperatingPlan.build(
                self, cell, load_f, fanout, output_high_probability
            )
            self._plans[key] = plan
            if _obs.ENABLED:
                _obs.incr("optimizer.plan_builds")
        return plan

    def planned_fanout_delay(
        self,
        cell: Cell,
        vdd: float,
        fanout: int = 1,
        vt_shift: float = 0.0,
    ) -> float:
        """:meth:`fanout_delay` evaluated through an operating plan.

        Same memo family, keys and hit/miss accounting as
        :meth:`fanout_delay` — the two entry points are interchangeable
        and bit-identical — but a miss is served by the decoded
        :class:`~repro.tech.opplan.OperatingPlan` kernel instead of the
        scalar capacitance/drive chain, which is what makes optimizer
        probe loops cheap.
        """
        if fanout < 1:
            raise CharacterizationError("fanout must be >= 1")
        if not self.cache_enabled:
            plan = self.plan_operating(cell, fanout=fanout)
            return plan.delays((vdd,), vt_shift)[0]
        key = ("fanout", self._token(cell), vdd, fanout, vt_shift)
        result = self._memo.get(key, _MISS)
        if result is not _MISS:
            self._hits += 1
            if _obs.ENABLED:
                self._note("fanout", True)
            return result
        self._misses += 1
        if _obs.ENABLED:
            self._note("fanout", False)
        plan = self.plan_operating(cell, fanout=fanout)
        result = plan.delays((vdd,), vt_shift)[0]
        self._memo[key] = result
        return result

    # ------------------------------------------------------------------
    # One-call corner characterization
    # ------------------------------------------------------------------
    def characterize(
        self,
        cell: Cell,
        vdd: float,
        load_f: float = 0.0,
        vt_shift: float = 0.0,
    ) -> CellTimings:
        """Produce a full :class:`CellTimings` record for a corner."""
        return CellTimings(
            cell_name=cell.name,
            vdd=vdd,
            vt_shift=vt_shift,
            load_f=load_f,
            delay_s=self.propagation_delay(cell, vdd, load_f, vt_shift),
            energy_per_transition_j=self.energy_per_transition(
                cell, vdd, load_f
            ),
            leakage_current_a=self.leakage_current(cell, vdd, vt_shift),
            input_capacitance_f=self._input_capacitance(cell, vdd),
            output_capacitance_f=self._output_capacitance(cell, vdd),
        )

    def fanout_delay(
        self,
        cell: Cell,
        vdd: float,
        fanout: int = 1,
        vt_shift: float = 0.0,
    ) -> float:
        """Delay driving ``fanout`` copies of the cell's own input [s].

        Fanout-of-1 inverter delay is the ring-oscillator stage delay
        used throughout the Fig. 3-4 experiments.
        """
        if fanout < 1:
            raise CharacterizationError("fanout must be >= 1")
        if self.cache_enabled:
            key = ("fanout", self._token(cell), vdd, fanout, vt_shift)
            result = self._memo.get(key, _MISS)
            if result is not _MISS:
                self._hits += 1
                if _obs.ENABLED:
                    self._note("fanout", True)
                return result
            self._misses += 1
            if _obs.ENABLED:
                self._note("fanout", False)
        load = fanout * self._input_capacitance(cell, vdd)
        result = self.propagation_delay(cell, vdd, load, vt_shift)
        if self.cache_enabled:
            self._memo[key] = result
        return result

    def _check_vdd(self, vdd: float) -> None:
        if vdd <= 0.0:
            raise CharacterizationError(f"vdd must be positive, got {vdd}")
