"""Characterized cell library with liberty-style JSON serialization.

A :class:`CellLibrary` owns a cell catalog plus a characterized corner
table over a (V_DD, V_T-shift) grid.  Lookups bilinearly interpolate
the table — in log space for leakage, which is exponential in both
axes — exactly the way a downstream power tool would consume a
``.lib`` file instead of re-running SPICE.
"""

from __future__ import annotations

import bisect
import json
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import LibraryError
from repro.tech.cells import Cell, standard_cells
from repro.tech.characterize import CellCharacterizer, CellTimings
from repro.device.technology import Technology

__all__ = ["CellLibrary"]

_TABLE_FIELDS = (
    "delay_s",
    "energy_per_transition_j",
    "leakage_current_a",
    "input_capacitance_f",
    "output_capacitance_f",
)
_LOG_FIELDS = frozenset({"leakage_current_a"})


class CellLibrary:
    """Cell catalog + characterized corner tables.

    Two construction paths:

    * :meth:`characterized` — from a live :class:`Technology`; can both
      look up table corners and re-characterize exactly.
    * :meth:`from_json` — from a serialized library; lookup only, the
      way third-party tools consume a liberty file.
    """

    def __init__(
        self,
        technology: Optional[Technology],
        cells: Optional[Dict[str, Cell]] = None,
        name: str = "",
    ):
        self.technology = technology
        self.cells = dict(standard_cells() if cells is None else cells)
        self.name = name or (technology.name if technology else "detached")
        self._vdd_grid: List[float] = []
        self._vt_shift_grid: List[float] = []
        self._load_f: float = 0.0
        # tables[cell][field][i_vdd][i_vt]
        self._tables: Dict[str, Dict[str, List[List[float]]]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def characterized(
        cls,
        technology: Technology,
        vdd_grid: Sequence[float],
        vt_shift_grid: Sequence[float] = (0.0,),
        load_f: float = 0.0,
        cells: Optional[Dict[str, Cell]] = None,
    ) -> "CellLibrary":
        """Build and fill a library over a corner grid."""
        library = cls(technology, cells=cells)
        library.build_corner_table(vdd_grid, vt_shift_grid, load_f)
        return library

    def cell(self, name: str) -> Cell:
        """Catalog lookup by name."""
        try:
            return self.cells[name]
        except KeyError:
            raise LibraryError(
                f"no cell {name!r} in library {self.name!r}; available: "
                f"{sorted(self.cells)}"
            ) from None

    @property
    def characterizer(self) -> CellCharacterizer:
        """Live characterizer (requires an attached technology)."""
        if self.technology is None:
            raise LibraryError(
                "this library was loaded from JSON and has no technology "
                "attached; only lookup() is available"
            )
        return CellCharacterizer(self.technology)

    # ------------------------------------------------------------------
    # Corner table
    # ------------------------------------------------------------------
    def build_corner_table(
        self,
        vdd_grid: Sequence[float],
        vt_shift_grid: Sequence[float] = (0.0,),
        load_f: float = 0.0,
    ) -> None:
        """(Re)characterize every cell over the grid."""
        vdds = sorted(set(float(v) for v in vdd_grid))
        shifts = sorted(set(float(v) for v in vt_shift_grid))
        if len(vdds) < 1 or len(shifts) < 1:
            raise LibraryError("corner grids must be non-empty")
        characterizer = self.characterizer
        tables: Dict[str, Dict[str, List[List[float]]]] = {}
        for cell_name, cell in self.cells.items():
            per_field: Dict[str, List[List[float]]] = {
                field: [] for field in _TABLE_FIELDS
            }
            for vdd in vdds:
                rows: Dict[str, List[float]] = {
                    field: [] for field in _TABLE_FIELDS
                }
                for shift in shifts:
                    timing = characterizer.characterize(
                        cell, vdd, load_f=load_f, vt_shift=shift
                    )
                    for field in _TABLE_FIELDS:
                        rows[field].append(getattr(timing, field))
                for field in _TABLE_FIELDS:
                    per_field[field].append(rows[field])
            tables[cell_name] = per_field
        self._vdd_grid = vdds
        self._vt_shift_grid = shifts
        self._load_f = load_f
        self._tables = tables

    def lookup(
        self, cell_name: str, vdd: float, vt_shift: float = 0.0
    ) -> CellTimings:
        """Bilinear table interpolation at an arbitrary corner."""
        if not self._tables:
            raise LibraryError(
                "no corner table built; call build_corner_table() first"
            )
        if cell_name not in self._tables:
            raise LibraryError(f"cell {cell_name!r} not in corner table")
        values = {
            field: self._interpolate(
                self._tables[cell_name][field],
                vdd,
                vt_shift,
                log_space=field in _LOG_FIELDS,
            )
            for field in _TABLE_FIELDS
        }
        return CellTimings(
            cell_name=cell_name,
            vdd=vdd,
            vt_shift=vt_shift,
            load_f=self._load_f,
            delay_s=values["delay_s"],
            energy_per_transition_j=values["energy_per_transition_j"],
            leakage_current_a=values["leakage_current_a"],
            input_capacitance_f=values["input_capacitance_f"],
            output_capacitance_f=values["output_capacitance_f"],
        )

    def _axis_bracket(
        self, grid: List[float], value: float, axis_name: str
    ) -> Tuple[int, int, float]:
        if not grid:
            raise LibraryError("empty grid")
        if len(grid) == 1:
            if not math.isclose(value, grid[0], rel_tol=1e-9):
                raise LibraryError(
                    f"{axis_name} = {value} outside single-point grid "
                    f"[{grid[0]}]"
                )
            return 0, 0, 0.0
        if value < grid[0] - 1e-12 or value > grid[-1] + 1e-12:
            raise LibraryError(
                f"{axis_name} = {value} outside table range "
                f"[{grid[0]}, {grid[-1]}]; extrapolation refused"
            )
        hi = min(max(bisect.bisect_left(grid, value), 1), len(grid) - 1)
        lo = hi - 1
        span = grid[hi] - grid[lo]
        fraction = 0.0 if span == 0.0 else (value - grid[lo]) / span
        return lo, hi, min(max(fraction, 0.0), 1.0)

    def _interpolate(
        self,
        table: List[List[float]],
        vdd: float,
        vt_shift: float,
        log_space: bool,
    ) -> float:
        i0, i1, fv = self._axis_bracket(self._vdd_grid, vdd, "vdd")
        j0, j1, fs = self._axis_bracket(
            self._vt_shift_grid, vt_shift, "vt_shift"
        )
        corners = [table[i0][j0], table[i0][j1], table[i1][j0], table[i1][j1]]
        if log_space:
            if any(c <= 0.0 for c in corners):
                log_space = False  # degenerate corner; fall back to linear
            else:
                corners = [math.log(c) for c in corners]
        c00, c01, c10, c11 = corners
        low = c00 * (1.0 - fs) + c01 * fs
        high = c10 * (1.0 - fs) + c11 * fs
        value = low * (1.0 - fv) + high * fv
        return math.exp(value) if log_space else value

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize catalog + corner tables to a JSON document."""
        if not self._tables:
            raise LibraryError("build a corner table before serializing")
        payload = {
            "format": "repro-liberty-lite-v1",
            "name": self.name,
            "vdd_grid": self._vdd_grid,
            "vt_shift_grid": self._vt_shift_grid,
            "load_f": self._load_f,
            "cells": {
                name: {
                    "n_inputs": cell.n_inputs,
                    "truth_table": list(cell.truth_table),
                    "nmos_path_widths_um": list(cell.nmos_path_widths_um),
                    "pmos_path_widths_um": list(cell.pmos_path_widths_um),
                    "nmos_count": cell.nmos_count,
                    "pmos_count": cell.pmos_count,
                    "nmos_drains_on_output": cell.nmos_drains_on_output,
                    "pmos_drains_on_output": cell.pmos_drains_on_output,
                    "input_nmos_width_um": cell.input_nmos_width_um,
                    "input_pmos_width_um": cell.input_pmos_width_um,
                    "tables": self._tables[name],
                }
                for name, cell in self.cells.items()
            },
        }
        return json.dumps(payload, indent=2)

    def save(self, path: str) -> None:
        """Write :meth:`to_json` output to a file."""
        with open(path, "w") as handle:
            handle.write(self.to_json())

    @classmethod
    def from_json(cls, document: str) -> "CellLibrary":
        """Load a lookup-only library from a JSON document."""
        try:
            payload = json.loads(document)
        except json.JSONDecodeError as error:
            raise LibraryError(f"malformed library JSON: {error}") from error
        if payload.get("format") != "repro-liberty-lite-v1":
            raise LibraryError(
                f"unsupported library format {payload.get('format')!r}"
            )
        cells: Dict[str, Cell] = {}
        tables: Dict[str, Dict[str, List[List[float]]]] = {}
        for name, record in payload["cells"].items():
            cells[name] = Cell(
                name=name,
                n_inputs=record["n_inputs"],
                truth_table=tuple(record["truth_table"]),
                nmos_path_widths_um=tuple(record["nmos_path_widths_um"]),
                pmos_path_widths_um=tuple(record["pmos_path_widths_um"]),
                nmos_count=record["nmos_count"],
                pmos_count=record["pmos_count"],
                nmos_drains_on_output=record["nmos_drains_on_output"],
                pmos_drains_on_output=record["pmos_drains_on_output"],
                input_nmos_width_um=record["input_nmos_width_um"],
                input_pmos_width_um=record["input_pmos_width_um"],
            )
            tables[name] = {
                field: record["tables"][field] for field in _TABLE_FIELDS
            }
        library = cls(None, cells=cells, name=payload["name"])
        library._vdd_grid = [float(v) for v in payload["vdd_grid"]]
        library._vt_shift_grid = [float(v) for v in payload["vt_shift_grid"]]
        library._load_f = float(payload["load_f"])
        library._tables = tables
        return library

    @classmethod
    def load(cls, path: str) -> "CellLibrary":
        """Read a library previously written by :meth:`save`."""
        with open(path) as handle:
            return cls.from_json(handle.read())
