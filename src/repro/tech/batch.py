"""Decoded batch evaluation of V_T-variation sweeps.

Monte-Carlo variation analysis asks one question thousands of times:
*the same cell, at the same (V_DD, load) corner, under a different
``vt_shift``*.  The per-sample path re-resolves everything on every
call — attribute chains, capacitance views, thermal voltage, the
stack-leakage closures — even though only the shift changes.

:class:`VariationPlan` is the decode/run split of the ISA engine
applied to characterization: :meth:`CellCharacterizer.plan_variation
<repro.tech.characterize.CellCharacterizer.plan_variation>` resolves
every V_T-invariant quantity once (output capacitance, the
``0.7 * C * V`` delay numerator, per-flavour drive prefactors, the
leakage stack constants), and :meth:`VariationPlan.delays` /
:meth:`VariationPlan.leakages` then evaluate a whole vector of shifts
in a tight loop that recomputes only the shift-dependent terms.

The batched results are **bit-identical** to the per-sample
``propagation_delay`` / ``leakage_current`` chain: every precomputed
partial product preserves the reference float-op association order
(``a*b*c*d`` folds left, so hoisting ``a*b`` is exact), the inlined
``_bounded_exp`` clamps reproduce ``max(-60, min(60, x))`` on the
reachable side, and the leakage path *shares* the characterizer's
:class:`~repro.device.leakage.StackLeakageModel` memo dicts — key
construction included — so the rounded-key reuse semantics of the
per-sample path are replicated exactly.  The differential tests in
``tests/property/test_variation_differential.py`` assert equality
sample for sample.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro import obs as _obs
from repro.device.leakage import _BISECTION_STEPS
from repro.device.mosfet import Mosfet, MosfetParameters
from repro.errors import CharacterizationError
from repro.tech.characterize import _DELAY_CONSTANT

__all__ = ["VariationPlan"]

#: Mirrors ``repro.device.mosfet._MAX_EXP_ARG``; the inlined loops only
#: ever clamp from below (their exponent arguments are always <= 0).
_MAX_EXP_ARG = 60.0


def _drive_constants(
    parameters: MosfetParameters, width_um: float, vdd: float
) -> tuple:
    """V_T-invariant on-current constants for one flavour at one V_DD.

    Constructing the :class:`Mosfet` first keeps the validation (and
    its error) identical to the per-sample path.
    """
    device = Mosfet(parameters, width_um=width_um)
    phi_t = parameters.thermal_voltage
    exp_arg = -vdd / phi_t
    if exp_arg < -_MAX_EXP_ARG:
        exp_arg = -_MAX_EXP_ARG
    return (
        parameters.vt0,
        parameters.dibl * vdd,
        parameters.ideality * phi_t,
        1.0 - math.exp(exp_arg),
        parameters.i_spec * device.width_um,
        parameters.k_drive * device.width_um,
        parameters.alpha,
        parameters.alpha / 2.0,
        parameters.vdsat_coeff,
        parameters.channel_length_modulation,
    )


class _StackPlan:
    """Decoded leakage-stack evaluator for one polarity of one cell.

    Shares the owning characterizer's ``StackLeakageModel._cache`` so
    the rounded-key memo behaves exactly as on the per-sample path:
    a shift that rounds onto an already-cached key is served the cached
    value, in the same evaluation order.
    """

    __slots__ = (
        "cache",
        "widths_key",
        "vdd",
        "vdd_key",
        "devices",
        "vt0",
        "dibl",
        "dibl_vdd",
        "n_phi",
        "phi_t",
        "drain_factor_vdd",
        "alpha",
        "half_alpha",
        "vdsat_coeff",
        "clm",
    )

    def __init__(
        self,
        parameters: MosfetParameters,
        widths_um: Sequence[float],
        vdd: float,
        cache: dict,
    ):
        # Same construction (and validation) as stack_leakage_current.
        devices = [Mosfet(parameters, width_um=w) for w in widths_um]
        self.cache = cache
        self.widths_key = tuple(round(w, 6) for w in widths_um)
        self.vdd = vdd
        self.vdd_key = round(vdd, 6)
        self.devices = [
            (parameters.i_spec * d.width_um, parameters.k_drive * d.width_um)
            for d in devices
        ]
        phi_t = parameters.thermal_voltage
        self.vt0 = parameters.vt0
        self.dibl = parameters.dibl
        self.dibl_vdd = parameters.dibl * vdd
        self.n_phi = parameters.ideality * phi_t
        self.phi_t = phi_t
        exp_arg = -vdd / phi_t
        if exp_arg < -_MAX_EXP_ARG:
            exp_arg = -_MAX_EXP_ARG
        self.drain_factor_vdd = 1.0 - math.exp(exp_arg)
        self.alpha = parameters.alpha
        self.half_alpha = parameters.alpha / 2.0
        self.vdsat_coeff = parameters.vdsat_coeff
        self.clm = parameters.channel_length_modulation

    # ------------------------------------------------------------------
    # Inlined device evaluations (see repro.device.mosfet for the
    # reference float-op sequences these replicate verbatim)
    # ------------------------------------------------------------------
    def _off_current(self, iw: float, kw: float, vt_shift: float) -> float:
        """``Mosfet.off_current(vdd, vt_shift)`` with hoisted constants."""
        exp = math.exp
        vt = (self.vt0 + vt_shift) - self.dibl_vdd
        gate_drive = 0.0 - vt
        overdrive = gate_drive
        if gate_drive > 0.0:
            gate_drive = 0.0
        exponent = gate_drive / self.n_phi
        if exponent < -_MAX_EXP_ARG:
            exponent = -_MAX_EXP_ARG
        current = iw * exp(exponent) * self.drain_factor_vdd
        if overdrive > 0.0:
            i_dsat = kw * overdrive**self.alpha
            vdsat = self.vdsat_coeff * overdrive**self.half_alpha
            if self.vdd >= vdsat:
                current += i_dsat * (1.0 + self.clm * (self.vdd - vdsat))
            else:
                ratio = self.vdd / vdsat
                current += i_dsat * ratio * (2.0 - ratio)
        return current

    def _vds_for_current(
        self,
        iw: float,
        kw: float,
        source_voltage: float,
        target_current: float,
        vt0s: float,
    ) -> float:
        """Inlined twin of ``repro.device.leakage._vds_for_current``.

        ``vt0s`` is the precomputed ``vt0 + vt_shift``; the drain
        current at each trial V_ds is evaluated inline (zero function
        calls in the 80-step bisection).
        """
        exp = math.exp
        vgs = -source_voltage
        dibl = self.dibl
        n_phi = self.n_phi
        phi_t = self.phi_t
        alpha = self.alpha
        half_alpha = self.half_alpha
        vdsat_coeff = self.vdsat_coeff
        clm = self.clm
        vdd = self.vdd

        # Probe vds == vdd first: a device that cannot carry the target
        # even fully open drops the whole supply.
        vds = vdd
        low = high = 0.0
        probing = True
        for _ in range(_BISECTION_STEPS + 1):
            vt = vt0s - dibl * vds
            gate_drive = vgs - vt
            overdrive = gate_drive
            if gate_drive > 0.0:
                gate_drive = 0.0
            exponent = gate_drive / n_phi
            if exponent < -_MAX_EXP_ARG:
                exponent = -_MAX_EXP_ARG
            drain_arg = -vds / phi_t
            if drain_arg < -_MAX_EXP_ARG:
                drain_arg = -_MAX_EXP_ARG
            current = iw * exp(exponent) * (1.0 - exp(drain_arg))
            if overdrive > 0.0:
                i_dsat = kw * overdrive**alpha
                vdsat = vdsat_coeff * overdrive**half_alpha
                if vds >= vdsat:
                    current += i_dsat * (1.0 + clm * (vds - vdsat))
                else:
                    ratio = vds / vdsat
                    current += i_dsat * ratio * (2.0 - ratio)

            if probing:
                if current <= target_current:
                    return vdd
                probing = False
                low, high = 0.0, vdd
            elif current < target_current:
                low = vds
            else:
                high = vds
            vds = 0.5 * (low + high)
        return 0.5 * (low + high)

    def current(self, vt_shift: float) -> float:
        """``stack_leakage_current`` for this stack, decoded."""
        devices = self.devices
        if len(devices) == 1:
            iw, kw = devices[0]
            return self._off_current(iw, kw, vt_shift)
        upper = min(
            self._off_current(iw, kw, vt_shift) for iw, kw in devices
        )
        if upper <= 0.0:
            return 0.0
        lower = upper * 1e-12
        vdd = self.vdd
        vt0s = self.vt0 + vt_shift
        vds_for_current = self._vds_for_current
        log = math.log
        exp = math.exp
        log_low, log_high = log(lower), log(upper)
        for _ in range(_BISECTION_STEPS):
            log_mid = 0.5 * (log_low + log_high)
            trial = exp(log_mid)
            source = 0.0
            for iw, kw in devices:
                source += vds_for_current(iw, kw, source, trial, vt0s)
                if source >= vdd:
                    break
            if source < vdd:
                log_low = log_mid
            else:
                log_high = log_mid
        return exp(0.5 * (log_low + log_high))


class VariationPlan:
    """A (cell, V_DD, load) corner decoded for vectorized V_T sweeps.

    Produced by :meth:`CellCharacterizer.plan_variation
    <repro.tech.characterize.CellCharacterizer.plan_variation>`; holds
    only plain floats (plus the shared stack memo dicts), so evaluating
    a shift vector touches no model objects at all.
    """

    __slots__ = (
        "cell_name",
        "vdd",
        "load_f",
        "output_high_probability",
        "_numerator",
        "_nmos_drive",
        "_pmos_drive",
        "_nmos_stack",
        "_pmos_stack",
    )

    def __init__(
        self,
        cell_name: str,
        vdd: float,
        load_f: float,
        output_high_probability: float,
        numerator: float,
        nmos_drive: tuple,
        pmos_drive: tuple,
        nmos_stack: _StackPlan,
        pmos_stack: _StackPlan,
    ):
        self.cell_name = cell_name
        self.vdd = vdd
        self.load_f = load_f
        self.output_high_probability = output_high_probability
        self._numerator = numerator
        self._nmos_drive = nmos_drive
        self._pmos_drive = pmos_drive
        self._nmos_stack = nmos_stack
        self._pmos_stack = pmos_stack

    @classmethod
    def build(
        cls,
        characterizer,
        cell,
        vdd: float,
        load_f: float,
        output_high_probability: float = 0.5,
    ) -> "VariationPlan":
        """Decode one corner of ``characterizer``'s technology.

        Called through :meth:`CellCharacterizer.plan_variation`, which
        validates the arguments and memoizes the plan.
        """
        technology = characterizer.technology
        total_load = load_f + characterizer._output_capacitance(cell, vdd)
        numerator = _DELAY_CONSTANT * total_load * vdd
        nmos = technology.transistors.nmos
        pmos = technology.transistors.pmos
        return cls(
            cell_name=cell.name,
            vdd=vdd,
            load_f=load_f,
            output_high_probability=output_high_probability,
            numerator=numerator,
            nmos_drive=_drive_constants(
                nmos,
                cell.series_equivalent_width(cell.nmos_path_widths_um),
                vdd,
            ),
            pmos_drive=_drive_constants(
                pmos,
                cell.series_equivalent_width(cell.pmos_path_widths_um),
                vdd,
            ),
            nmos_stack=_StackPlan(
                nmos,
                cell.nmos_path_widths_um,
                vdd,
                characterizer._nmos_stacks._cache,
            ),
            pmos_stack=_StackPlan(
                pmos,
                cell.pmos_path_widths_um,
                vdd,
                characterizer._pmos_stacks._cache,
            ),
        )

    # ------------------------------------------------------------------
    # Batched evaluation
    # ------------------------------------------------------------------
    def delays(self, vt_shifts: Sequence[float]) -> List[float]:
        """``propagation_delay`` at every shift, bit-identically."""
        exp = math.exp
        vdd = self.vdd
        numerator = self._numerator
        n_vt0, n_dibl_vdd, n_phi_n, n_df, n_iw, n_kw, n_alpha, \
            n_half_alpha, n_vdsat_c, n_clm = self._nmos_drive
        p_vt0, p_dibl_vdd, n_phi_p, p_df, p_iw, p_kw, p_alpha, \
            p_half_alpha, p_vdsat_c, p_clm = self._pmos_drive
        out: List[float] = []
        append = out.append
        for shift in vt_shifts:
            # Pull-down (NMOS) on-current.
            vt = (n_vt0 + shift) - n_dibl_vdd
            drive = vdd - vt
            gate_drive = drive
            if gate_drive > 0.0:
                gate_drive = 0.0
            exponent = gate_drive / n_phi_n
            if exponent < -_MAX_EXP_ARG:
                exponent = -_MAX_EXP_ARG
            pull_down = n_iw * exp(exponent) * n_df
            if drive > 0.0:
                i_dsat = n_kw * drive**n_alpha
                vdsat = n_vdsat_c * drive**n_half_alpha
                if vdd >= vdsat:
                    pull_down += i_dsat * (1.0 + n_clm * (vdd - vdsat))
                else:
                    ratio = vdd / vdsat
                    pull_down += i_dsat * ratio * (2.0 - ratio)
            # Pull-up (PMOS) on-current.
            vt = (p_vt0 + shift) - p_dibl_vdd
            drive = vdd - vt
            gate_drive = drive
            if gate_drive > 0.0:
                gate_drive = 0.0
            exponent = gate_drive / n_phi_p
            if exponent < -_MAX_EXP_ARG:
                exponent = -_MAX_EXP_ARG
            pull_up = p_iw * exp(exponent) * p_df
            if drive > 0.0:
                i_dsat = p_kw * drive**p_alpha
                vdsat = p_vdsat_c * drive**p_half_alpha
                if vdd >= vdsat:
                    pull_up += i_dsat * (1.0 + p_clm * (vdd - vdsat))
                else:
                    ratio = vdd / vdsat
                    pull_up += i_dsat * ratio * (2.0 - ratio)
            weakest = pull_down if pull_down <= pull_up else pull_up
            if weakest <= 0.0:
                raise CharacterizationError(
                    f"cell {self.cell_name} has no drive at "
                    f"V_DD = {vdd} V"
                )
            append(numerator / weakest)
        if _obs.ENABLED and out:
            _obs.incr("variation.samples_batched", len(out))
        return out

    def leakages(self, vt_shifts: Sequence[float]) -> List[float]:
        """``leakage_current`` at every shift, bit-identically.

        Consults (and fills) the shared stack memos with the same
        rounded keys and in the same order as the per-sample path.
        """
        p_high = self.output_high_probability
        p_low = 1.0 - p_high
        nmos = self._nmos_stack
        pmos = self._pmos_stack
        n_cache = nmos.cache
        p_cache = pmos.cache
        n_key = (nmos.widths_key, nmos.vdd_key)
        p_key = (pmos.widths_key, pmos.vdd_key)
        out: List[float] = []
        append = out.append
        for shift in vt_shifts:
            shift_key = round(shift, 6)
            key = n_key + (shift_key,)
            nmos_leak = n_cache.get(key)
            if nmos_leak is None:
                nmos_leak = nmos.current(shift)
                n_cache[key] = nmos_leak
            key = p_key + (shift_key,)
            pmos_leak = p_cache.get(key)
            if pmos_leak is None:
                pmos_leak = pmos.current(shift)
                p_cache[key] = pmos_leak
            append(p_high * nmos_leak + p_low * pmos_leak)
        if _obs.ENABLED and out:
            _obs.incr("variation.samples_batched", len(out))
        return out

    # Single-sample conveniences (tests and spot checks).
    def delay(self, vt_shift: float = 0.0) -> float:
        """One ``propagation_delay`` sample through the plan."""
        return self.delays((vt_shift,))[0]

    def leakage(self, vt_shift: float = 0.0) -> float:
        """One ``leakage_current`` sample through the plan."""
        return self.leakages((vt_shift,))[0]
