"""Static CMOS cell templates and register styles.

A :class:`Cell` is a *structural* description: a truth table plus the
transistor topology facts the characterizer needs (worst-case series
path widths, device counts, drains on the output node).  It knows
nothing about voltage — that is the characterizer's job — so one cell
catalog serves every technology corner.

:class:`RegisterStyle` describes the three register circuits whose
switched capacitance the paper compares in Fig. 1 (C2MOS, TSPC and a
low-clock-load register, "LCLR").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.device.technology import Technology
from repro.errors import NetlistError

__all__ = [
    "Cell",
    "RegisterStyle",
    "standard_cells",
    "register_styles",
    "UNKNOWN",
]

#: Three-valued logic "unknown" marker used before nodes settle.
UNKNOWN: Optional[int] = None


@dataclass(frozen=True)
class Cell:
    """A combinational static CMOS cell.

    Parameters
    ----------
    name:
        Catalog name, e.g. ``"NAND2"``.
    n_inputs:
        Number of logic inputs.
    truth_table:
        Output for every input combination; index is the binary value
        of the inputs with input 0 as the least-significant bit.
    nmos_path_widths_um:
        Widths of the devices along the worst-case (deepest) series
        pull-down path, source-side first [um].
    pmos_path_widths_um:
        Same for the pull-up network [um].
    nmos_count, pmos_count:
        Total device counts (for capacitance bookkeeping).
    nmos_drains_on_output, pmos_drains_on_output:
        How many drains of each polarity touch the output node.
    input_nmos_width_um, input_pmos_width_um:
        Gate widths seen by each input (one N and one P per input in
        fully complementary CMOS).
    """

    name: str
    n_inputs: int
    truth_table: Tuple[int, ...]
    nmos_path_widths_um: Tuple[float, ...]
    pmos_path_widths_um: Tuple[float, ...]
    nmos_count: int
    pmos_count: int
    nmos_drains_on_output: int
    pmos_drains_on_output: int
    input_nmos_width_um: float
    input_pmos_width_um: float

    def __post_init__(self) -> None:
        if self.n_inputs < 1:
            raise NetlistError(f"cell {self.name}: needs at least one input")
        if len(self.truth_table) != 2**self.n_inputs:
            raise NetlistError(
                f"cell {self.name}: truth table must have "
                f"{2 ** self.n_inputs} entries, got {len(self.truth_table)}"
            )
        if any(v not in (0, 1) for v in self.truth_table):
            raise NetlistError(f"cell {self.name}: truth table must be 0/1")
        if not self.nmos_path_widths_um or not self.pmos_path_widths_um:
            raise NetlistError(
                f"cell {self.name}: both networks need at least one device"
            )

    # ------------------------------------------------------------------
    # Logic
    # ------------------------------------------------------------------
    def evaluate(self, inputs: Sequence[Optional[int]]) -> Optional[int]:
        """Three-valued evaluation.

        ``None`` inputs are unknown; the output is known only when every
        completion of the unknowns agrees (e.g. NAND with one input at
        0 is 1 regardless of the other input).
        """
        if len(inputs) != self.n_inputs:
            raise NetlistError(
                f"cell {self.name}: expected {self.n_inputs} inputs, "
                f"got {len(inputs)}"
            )
        unknown_positions = [
            i for i, v in enumerate(inputs) if v is UNKNOWN
        ]
        if not unknown_positions:
            return self.truth_table[self._index(inputs)]
        seen = set()
        for fill in range(2 ** len(unknown_positions)):
            candidate = list(inputs)
            for bit, position in enumerate(unknown_positions):
                candidate[position] = (fill >> bit) & 1
            seen.add(self.truth_table[self._index(candidate)])
            if len(seen) > 1:
                return UNKNOWN
        return seen.pop()

    def _index(self, inputs: Sequence[int]) -> int:
        index = 0
        for bit, value in enumerate(inputs):
            if value not in (0, 1):
                raise NetlistError(
                    f"cell {self.name}: input values must be 0/1, got {value}"
                )
            index |= value << bit
        return index

    # ------------------------------------------------------------------
    # Structure-derived electrical quantities
    # ------------------------------------------------------------------
    @property
    def nmos_stack_depth(self) -> int:
        """Series depth of the pull-down network."""
        return len(self.nmos_path_widths_um)

    @property
    def pmos_stack_depth(self) -> int:
        """Series depth of the pull-up network."""
        return len(self.pmos_path_widths_um)

    def input_capacitance(self, technology: Technology, vdd: float) -> float:
        """Switched gate capacitance presented by one input [F]."""
        length = technology.drawn_length_um
        gate = technology.gate_cap
        return gate.gate_capacitance(
            self.input_nmos_width_um, length, vdd
        ) + gate.gate_capacitance(self.input_pmos_width_um, length, vdd)

    def output_capacitance(self, technology: Technology, vdd: float) -> float:
        """Self (drain-junction) capacitance on the output node [F]."""
        junction = technology.junction_cap
        extent = technology.drain_extent_um
        n_part = junction.drain_capacitance(
            self.input_nmos_width_um * self.nmos_drains_on_output,
            extent,
            vdd,
        )
        p_part = junction.drain_capacitance(
            self.input_pmos_width_um * self.pmos_drains_on_output,
            extent,
            vdd,
        )
        return n_part + p_part

    def series_equivalent_width(self, widths_um: Sequence[float]) -> float:
        """Width of the single device equivalent to a series path.

        Series conductances add as reciprocals, so k identical devices
        of width w behave like one device of width w/k.
        """
        return 1.0 / sum(1.0 / w for w in widths_um)


@dataclass(frozen=True)
class RegisterStyle:
    """A register circuit style for the Fig. 1 comparison.

    Parameters
    ----------
    name:
        Style name ("C2MOS", "TSPC", "LCLR").
    nmos_count, pmos_count:
        Device counts.
    nmos_width_um, pmos_width_um:
        Typical device widths [um].
    clock_device_count:
        Devices whose gates load the clock.
    internal_activity:
        Average fraction of internal nodes that toggle per captured
        datum (data activity 1).
    wire_length_um:
        Local interconnect attributed to the cell [um].
    """

    name: str
    nmos_count: int
    pmos_count: int
    nmos_width_um: float
    pmos_width_um: float
    clock_device_count: int
    internal_activity: float
    wire_length_um: float

    def __post_init__(self) -> None:
        if self.nmos_count < 1 or self.pmos_count < 1:
            raise NetlistError(f"register {self.name}: empty network")
        if not 0.0 < self.internal_activity <= 1.0:
            raise NetlistError(
                f"register {self.name}: internal_activity must be in (0, 1]"
            )

    @property
    def device_count(self) -> int:
        """Total transistor count."""
        return self.nmos_count + self.pmos_count

    def switched_capacitance(
        self,
        technology: Technology,
        vdd: float,
        data_activity: float = 1.0,
    ) -> float:
        """Effective switched capacitance per clock cycle [F].

        This is the quantity of the paper's Fig. 1: energy per cycle
        divided by V_DD^2.  It includes the clock load (which switches
        every cycle) plus the data-activity-weighted internal gate,
        junction and wire capacitance.  Because the gate component uses
        the non-linear :class:`GateCapacitanceModel`, the result rises
        with V_DD.
        """
        if not 0.0 <= data_activity <= 1.0:
            raise NetlistError("data_activity must be in [0, 1]")
        length = technology.drawn_length_um
        gate = technology.gate_cap
        junction = technology.junction_cap
        average_width = 0.5 * (self.nmos_width_um + self.pmos_width_um)

        clock_cap = self.clock_device_count * gate.gate_capacitance(
            average_width, length, vdd
        )
        internal_gate_cap = (
            self.nmos_count * gate.gate_capacitance(self.nmos_width_um, length, vdd)
            + self.pmos_count
            * gate.gate_capacitance(self.pmos_width_um, length, vdd)
        )
        internal_junction_cap = junction.drain_capacitance(
            self.nmos_count * self.nmos_width_um
            + self.pmos_count * self.pmos_width_um,
            technology.drain_extent_um,
            vdd,
        )
        wire_cap = technology.wire_cap.wire_capacitance(self.wire_length_um)
        data_cap = internal_gate_cap + internal_junction_cap + wire_cap
        return clock_cap + data_activity * self.internal_activity * data_cap


def _simple_cell(
    name: str,
    truth_table: Tuple[int, ...],
    n_inputs: int,
    nmos_series: int,
    pmos_series: int,
    nmos_count: int,
    pmos_count: int,
    nmos_drains: int,
    pmos_drains: int,
    unit_nmos_um: float = 2.0,
    unit_pmos_um: float = 4.0,
) -> Cell:
    """Build a cell with stack-compensated device sizing.

    Series devices are widened by the stack depth so every cell has
    roughly inverter-equivalent drive, the usual sizing discipline.
    """
    nmos_width = unit_nmos_um * nmos_series
    pmos_width = unit_pmos_um * pmos_series
    return Cell(
        name=name,
        n_inputs=n_inputs,
        truth_table=truth_table,
        nmos_path_widths_um=(nmos_width,) * nmos_series,
        pmos_path_widths_um=(pmos_width,) * pmos_series,
        nmos_count=nmos_count,
        pmos_count=pmos_count,
        nmos_drains_on_output=nmos_drains,
        pmos_drains_on_output=pmos_drains,
        input_nmos_width_um=nmos_width,
        input_pmos_width_um=pmos_width,
    )


def standard_cells() -> Dict[str, Cell]:
    """The cell catalog used by all netlist builders.

    Truth-table index convention: input 0 is the least-significant bit.
    """
    cells = [
        _simple_cell("INV", (1, 0), 1, 1, 1, 1, 1, 1, 1),
        _simple_cell("BUF", (0, 1), 1, 1, 1, 2, 2, 1, 1),
        _simple_cell("NAND2", (1, 1, 1, 0), 2, 2, 1, 2, 2, 1, 2),
        _simple_cell("NAND3", (1,) * 7 + (0,), 3, 3, 1, 3, 3, 1, 3),
        _simple_cell("NOR2", (1, 0, 0, 0), 2, 1, 2, 2, 2, 2, 1),
        _simple_cell("NOR3", (1,) + (0,) * 7, 3, 1, 3, 3, 3, 3, 1),
        _simple_cell("AND2", (0, 0, 0, 1), 2, 2, 1, 3, 3, 1, 1),
        _simple_cell("OR2", (0, 1, 1, 1), 2, 1, 2, 3, 3, 1, 1),
        _simple_cell("XOR2", (0, 1, 1, 0), 2, 2, 2, 6, 6, 2, 2),
        _simple_cell("XNOR2", (1, 0, 0, 1), 2, 2, 2, 6, 6, 2, 2),
        # AOI21: out = !((a & b) | c); index = a + 2b + 4c.
        _simple_cell("AOI21", (1, 1, 1, 0, 0, 0, 0, 0), 3, 2, 2, 3, 3, 2, 1),
        # OAI21: out = !((a | b) & c).
        _simple_cell("OAI21", (1, 1, 1, 1, 1, 0, 0, 0), 3, 2, 2, 3, 3, 1, 2),
        # MUX2: inputs (a, b, sel); out = b if sel else a.
        _simple_cell("MUX2", (0, 1, 0, 1, 0, 0, 1, 1), 3, 2, 2, 6, 6, 2, 2),
    ]
    return {cell.name: cell for cell in cells}


def register_styles() -> Dict[str, RegisterStyle]:
    """The three register styles of the paper's Fig. 1.

    Ordering by switched capacitance (C2MOS > TSPC > LCLR) follows the
    device counts and clock loading; the paper attributes the upward
    slope versus V_DD to gate-capacitance non-linearity, which
    :meth:`RegisterStyle.switched_capacitance` inherits from the
    technology's gate model.
    """
    styles = [
        RegisterStyle(
            name="C2MOS",
            nmos_count=10,
            pmos_count=10,
            nmos_width_um=3.0,
            pmos_width_um=6.0,
            clock_device_count=8,
            internal_activity=0.6,
            wire_length_um=40.0,
        ),
        RegisterStyle(
            name="TSPC",
            nmos_count=6,
            pmos_count=5,
            nmos_width_um=2.5,
            pmos_width_um=5.0,
            clock_device_count=4,
            internal_activity=0.55,
            wire_length_um=25.0,
        ),
        RegisterStyle(
            name="LCLR",
            nmos_count=5,
            pmos_count=4,
            nmos_width_um=2.0,
            pmos_width_um=4.0,
            clock_device_count=2,
            internal_activity=0.5,
            wire_length_um=18.0,
        ),
    ]
    return {style.name: style for style in styles}
