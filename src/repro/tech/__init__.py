"""Standard-cell layer: cell templates, characterization, libraries.

Sits between the device models and the circuit/netlist layer.  The
characterization engine here replaces SPICE in the paper's flow: it
turns a :class:`~repro.device.technology.Technology` plus a
:class:`~repro.tech.cells.Cell` into delay / energy / leakage numbers
at any (V_DD, V_T-shift) corner, and a whole catalog of cells into a
serializable :class:`~repro.tech.library.CellLibrary`.
"""

from repro.tech.cells import (
    Cell,
    RegisterStyle,
    standard_cells,
    register_styles,
)
from repro.tech.characterize import CellCharacterizer, CellTimings
from repro.tech.batch import VariationPlan
from repro.tech.library import CellLibrary

__all__ = [
    "Cell",
    "RegisterStyle",
    "standard_cells",
    "register_styles",
    "CellCharacterizer",
    "CellTimings",
    "VariationPlan",
    "CellLibrary",
]
