"""Physical constants and unit helpers.

All quantities in the library are SI unless a name says otherwise
(``*_um`` for micrometres, ``*_ff`` for femtofarads, ...).  The helpers
here exist so call sites read like the paper: ``nm(9)``, ``ff(50)``,
``mv_per_decade(66)``.
"""

from __future__ import annotations

import math

__all__ = [
    "BOLTZMANN",
    "ELECTRON_CHARGE",
    "EPSILON_0",
    "EPSILON_SI",
    "EPSILON_OX",
    "ROOM_TEMPERATURE_K",
    "LN10",
    "thermal_voltage",
    "nm",
    "um",
    "mm",
    "ff",
    "pf",
    "ns",
    "ps",
    "mhz",
    "khz",
    "ghz",
    "mw",
    "uw",
    "nw",
    "ua",
    "na",
    "pa",
    "mv",
    "to_ff",
    "to_ps",
    "to_uw",
    "decades",
]

#: Boltzmann constant [J/K].
BOLTZMANN = 1.380649e-23
#: Elementary charge [C].
ELECTRON_CHARGE = 1.602176634e-19
#: Vacuum permittivity [F/m].
EPSILON_0 = 8.8541878128e-12
#: Permittivity of silicon [F/m].
EPSILON_SI = 11.7 * EPSILON_0
#: Permittivity of silicon dioxide [F/m].
EPSILON_OX = 3.9 * EPSILON_0
#: Default device temperature [K].
ROOM_TEMPERATURE_K = 300.0
#: Natural log of 10, used to convert subthreshold swing to ideality.
LN10 = math.log(10.0)


def thermal_voltage(temperature_k: float = ROOM_TEMPERATURE_K) -> float:
    """Return the thermal voltage ``kT/q`` in volts.

    At the default 300 K this is ~25.85 mV, the quantity the paper calls
    ``V_t`` in its subthreshold-current expression (Eq. 2).
    """
    if temperature_k <= 0.0:
        raise ValueError(f"temperature must be positive, got {temperature_k}")
    return BOLTZMANN * temperature_k / ELECTRON_CHARGE


def nm(value: float) -> float:
    """Nanometres to metres."""
    return value * 1e-9


def um(value: float) -> float:
    """Micrometres to metres."""
    return value * 1e-6


def mm(value: float) -> float:
    """Millimetres to metres."""
    return value * 1e-3


def ff(value: float) -> float:
    """Femtofarads to farads."""
    return value * 1e-15


def pf(value: float) -> float:
    """Picofarads to farads."""
    return value * 1e-12


def ns(value: float) -> float:
    """Nanoseconds to seconds."""
    return value * 1e-9


def ps(value: float) -> float:
    """Picoseconds to seconds."""
    return value * 1e-12


def mhz(value: float) -> float:
    """Megahertz to hertz."""
    return value * 1e6


def khz(value: float) -> float:
    """Kilohertz to hertz."""
    return value * 1e3


def ghz(value: float) -> float:
    """Gigahertz to hertz."""
    return value * 1e9


def mw(value: float) -> float:
    """Milliwatts to watts."""
    return value * 1e-3


def uw(value: float) -> float:
    """Microwatts to watts."""
    return value * 1e-6


def nw(value: float) -> float:
    """Nanowatts to watts."""
    return value * 1e-9


def ua(value: float) -> float:
    """Microamperes to amperes."""
    return value * 1e-6


def na(value: float) -> float:
    """Nanoamperes to amperes."""
    return value * 1e-9


def pa(value: float) -> float:
    """Picoamperes to amperes."""
    return value * 1e-12


def mv(value: float) -> float:
    """Millivolts to volts."""
    return value * 1e-3


def to_ff(farads: float) -> float:
    """Farads to femtofarads (for reporting)."""
    return farads * 1e15


def to_ps(seconds: float) -> float:
    """Seconds to picoseconds (for reporting)."""
    return seconds * 1e12


def to_uw(watts: float) -> float:
    """Watts to microwatts (for reporting)."""
    return watts * 1e6


def decades(ratio: float) -> float:
    """Express a positive ratio in decades (``log10``).

    Used when checking the paper's "~4 decade" off-current statements.
    """
    if ratio <= 0.0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    return math.log10(ratio)
