"""Lightweight observability: counters, timers, and trace spans.

The toolkit's hot paths (cell characterization, switch-level
simulation, bisection/golden-section optimization, the parallel sweep
engine, the ISA interpreter's ``machine.instructions`` /
``machine.decode`` / instructions-per-second metrics) are instrumented
against this module.  The design constraint
is **zero overhead when disabled**: every instrumentation site guards
on the module-level :data:`ENABLED` flag — a single attribute read —
before doing any work, so production sweeps with metrics off pay
nothing measurable.

Metric model
------------
* **Counters** — monotonically increasing integers
  (``obs.incr("characterizer.hits")``).  Dotted names form families:
  ``characterizer.hits.delay`` is the per-family breakdown of
  ``characterizer.hits``.
* **Timers / spans** — ``with obs.span("optimizer.sweep"): ...``
  records call count and total wall-clock seconds per name.  Spans do
  not nest semantically; a nested span is simply a second independent
  name.
* **Gauges** — last-write-wins values for sizes and ratios
  (``obs.gauge("ring.corners", 12)``).

All state is process-global and therefore per-worker in the parallel
engine: child processes start with empty registries and their samples
are *not* merged back (the parent's counters describe the parent's own
work — dispatching, retries, fallbacks).

Usage::

    from repro import obs

    obs.enable()
    ...  # run a sweep
    print(obs.format_summary())
    obs.dump_json("metrics.json")
    obs.disable()
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "ENABLED",
    "enable",
    "disable",
    "is_enabled",
    "enabled_scope",
    "incr",
    "gauge",
    "observe_seconds",
    "span",
    "counter_value",
    "counters_with_prefix",
    "timer_value",
    "snapshot",
    "reset",
    "summary_rows",
    "format_summary",
    "dump_json",
    "CacheInfo",
]

#: Global instrumentation switch.  Hot paths read this attribute
#: directly (``if obs.ENABLED: ...``) so the disabled cost is one
#: attribute lookup and a falsy test.
ENABLED = False

_counters: Dict[str, int] = {}
_gauges: Dict[str, float] = {}
#: name -> [count, total_seconds]
_timers: Dict[str, List[float]] = {}


@dataclass(frozen=True)
class CacheInfo:
    """``functools.lru_cache``-style cache statistics.

    ``maxsize`` is ``None`` for unbounded caches; ``hits``/``misses``
    count every lookup since construction (or the last ``clear``),
    independent of whether :mod:`repro.obs` is enabled.
    """

    hits: int
    misses: int
    currsize: int
    maxsize: Optional[int] = None

    @property
    def hit_rate(self) -> float:
        """hits / (hits + misses); 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def enable() -> None:
    """Turn instrumentation on (state accumulates until :func:`reset`)."""
    global ENABLED
    ENABLED = True


def disable() -> None:
    """Turn instrumentation off; accumulated state is kept."""
    global ENABLED
    ENABLED = False


def is_enabled() -> bool:
    """Whether instrumentation is currently recording."""
    return ENABLED


@contextmanager
def enabled_scope(fresh: bool = True) -> Iterator[None]:
    """Enable instrumentation for a block, restoring the previous state.

    ``fresh`` resets the registries on entry so the block's metrics are
    isolated — the pattern the tests and benchmarks use.
    """
    previous = ENABLED
    if fresh:
        reset()
    enable()
    try:
        yield
    finally:
        if not previous:
            disable()


def incr(name: str, amount: int = 1) -> None:
    """Add ``amount`` to a counter (no-op while disabled)."""
    if not ENABLED:
        return
    _counters[name] = _counters.get(name, 0) + amount


def gauge(name: str, value: float) -> None:
    """Record a last-write-wins gauge value (no-op while disabled)."""
    if not ENABLED:
        return
    _gauges[name] = value


def observe_seconds(name: str, seconds: float) -> None:
    """Fold one duration sample into a timer (no-op while disabled)."""
    if not ENABLED:
        return
    entry = _timers.get(name)
    if entry is None:
        _timers[name] = [1, seconds]
    else:
        entry[0] += 1
        entry[1] += seconds


class _NullSpan:
    """Shared no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("name", "_start")

    def __init__(self, name: str):
        self.name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        observe_seconds(self.name, time.perf_counter() - self._start)


def span(name: str):
    """Context manager timing a block into the ``name`` timer.

    Returns a shared no-op object while disabled, so
    ``with obs.span("x"):`` costs one call and no allocation on the
    disabled path.
    """
    if not ENABLED:
        return _NULL_SPAN
    return _Span(name)


def counter_value(name: str) -> int:
    """Current value of a counter (0 if never incremented)."""
    return _counters.get(name, 0)


def counters_with_prefix(prefix: str) -> Dict[str, int]:
    """Every counter whose dotted name starts with ``prefix``.

    ``counters_with_prefix("store")`` collects the result-store family
    (``store.hits``, ``store.misses``, ``store.evictions``,
    ``store.writes``, ``store.corrupt_dropped``,
    ``store.sweep_cells_restored``, ...) — the snapshot run manifests
    embed.  A bare prefix matches both the exact name and its
    sub-families.
    """
    dotted = prefix + "."
    return {
        name: value
        for name, value in sorted(_counters.items())
        if name == prefix or name.startswith(dotted)
    }


def timer_value(name: str) -> Tuple[int, float]:
    """(count, total_seconds) of a timer (zeros if never recorded)."""
    entry = _timers.get(name)
    if entry is None:
        return (0, 0.0)
    return (int(entry[0]), entry[1])


def snapshot() -> Dict[str, dict]:
    """Machine-readable copy of every metric.

    Shape::

        {
          "enabled": bool,
          "counters": {name: int, ...},
          "gauges": {name: float, ...},
          "timers": {name: {"count": int, "total_s": float}, ...},
        }
    """
    return {
        "enabled": ENABLED,
        "counters": dict(sorted(_counters.items())),
        "gauges": dict(sorted(_gauges.items())),
        "timers": {
            name: {"count": int(entry[0]), "total_s": entry[1]}
            for name, entry in sorted(_timers.items())
        },
    }


def reset() -> None:
    """Zero every counter, gauge, and timer (the flag is untouched)."""
    _counters.clear()
    _gauges.clear()
    _timers.clear()


def summary_rows() -> List[List[str]]:
    """``[kind, name, value]`` rows for table rendering."""
    rows: List[List[str]] = []
    for name, value in sorted(_counters.items()):
        rows.append(["counter", name, str(value)])
    for name, value in sorted(_gauges.items()):
        rows.append(["gauge", name, f"{value:g}"])
    for name, entry in sorted(_timers.items()):
        rows.append(
            ["timer", name, f"{entry[1]:.4f} s / {int(entry[0])} calls"]
        )
    return rows


def format_summary(title: str = "Metrics") -> str:
    """ASCII table of every recorded metric (empty-state message if none)."""
    rows = summary_rows()
    if not rows:
        return f"{title}: no metrics recorded"
    # Imported lazily: obs must stay import-light so every layer can
    # depend on it without cycles.
    from repro.analysis.tables import format_table

    return format_table(["kind", "metric", "value"], rows, title=title)


def dump_json(path: str, extra: Optional[Dict[str, object]] = None) -> None:
    """Write :func:`snapshot` (plus optional ``extra`` keys) as JSON."""
    payload = dict(snapshot())
    if extra:
        payload.update(extra)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
