"""Exception hierarchy for the ``repro`` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DeviceModelError",
    "CalibrationError",
    "NetlistError",
    "SimulationError",
    "StimulusError",
    "AssemblyError",
    "MachineError",
    "ProfileError",
    "CharacterizationError",
    "LibraryError",
    "OptimizationError",
    "AnalysisError",
    "SerializationError",
    "StoreError",
    "SchedulerError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class DeviceModelError(ReproError):
    """Invalid device-model parameters or out-of-domain bias point."""


class CalibrationError(DeviceModelError):
    """A calibration routine could not fit the requested targets."""


class NetlistError(ReproError):
    """Structural problem in a netlist (unknown net, cycle, bad pin...)."""


class SimulationError(ReproError):
    """The event-driven simulator was misused or reached a bad state."""


class StimulusError(ReproError):
    """A stimulus generator received inconsistent parameters."""


class AssemblyError(ReproError):
    """The assembler rejected an assembly-language source program."""


class MachineError(ReproError):
    """The ISA interpreter trapped (bad opcode, memory fault, ...)."""


class ProfileError(ReproError):
    """Activity profiling failed or was queried inconsistently."""


class CharacterizationError(ReproError):
    """Cell characterization failed for a cell/corner combination."""


class LibraryError(ReproError):
    """Cell-library lookup or (de)serialization problem."""


class OptimizationError(ReproError):
    """A (V_DD, V_T) optimization did not converge or is infeasible."""


class AnalysisError(ReproError):
    """Analysis-layer misuse (empty sweep, bad contour request, ...)."""


class SerializationError(DeviceModelError):
    """A persisted payload is malformed: corrupt JSON, missing keys, or
    a wrong schema version.  Subclasses :class:`DeviceModelError` so
    callers that caught device errors for load failures keep working."""


class StoreError(ReproError):
    """Result-store misuse or damage (bad key, torn checkpoint, ...)."""


class SchedulerError(ReproError):
    """Scheduler misuse or queue damage (bad job, lost lease, ...)."""
