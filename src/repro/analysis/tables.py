"""ASCII rendering of tables and curves for the benchmark harness.

The benchmarks print the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and uniform.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import AnalysisError

__all__ = [
    "format_table",
    "format_series",
    "format_value",
    "format_profile",
]


def format_value(value, precision: int = 4) -> str:
    """Human-friendly scalar formatting (engineering-ish)."""
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return str(value)
    if value == 0.0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e5 or magnitude < 1e-3:
        return f"{value:.{precision}e}"
    return f"{value:.{precision}g}"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Fixed-width table with a header rule.

    >>> print(format_table(["a", "b"], [[1, 2.5]]))
    a  b
    -  ---
    1  2.5
    """
    if not headers:
        raise AnalysisError("table needs headers")
    rendered: List[List[str]] = [
        [format_value(cell, precision) for cell in row] for row in rows
    ]
    for row in rendered:
        if len(row) != len(headers):
            raise AnalysisError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered))
        if rendered
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append(
            "  ".join(row[i].ljust(widths[i]) for i in range(len(headers)))
        )
    return "\n".join(lines)


def format_profile(
    profile,
    units: Sequence[str],
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render a :class:`~repro.isa.FunctionalUnitProfile` as a table.

    One row per unit in ``units`` order with the paper's activity
    columns (uses, runs, fga, bga, mean run length) — the layout of
    Tables 1-3 and the ``profile`` CLI subcommand.
    """
    rows = []
    for unit in units:
        stats = profile.stats(unit)
        rows.append(
            [
                unit,
                stats.uses,
                stats.runs,
                stats.fga,
                stats.bga,
                stats.mean_run_length,
            ]
        )
    return format_table(
        ["unit", "uses", "runs", "fga", "bga", "mean run"],
        rows,
        title=title,
        precision=precision,
    )


def format_series(
    x_name: str,
    y_name: str,
    xs: Sequence[float],
    ys: Sequence[float],
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Two-column rendering of a figure curve."""
    if len(xs) != len(ys):
        raise AnalysisError("xs and ys must have equal length")
    return format_table(
        [x_name, y_name],
        [[x, y] for x, y in zip(xs, ys)],
        title=title,
        precision=precision,
    )
