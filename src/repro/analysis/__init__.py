"""Design-space exploration: sweeps, contours, comparisons, tables."""

from repro.analysis.sweep import Sweep1D, Sweep2D, sweep_1d, sweep_2d
from repro.analysis.contour import (
    RatioSurface,
    RefinedSurface,
    energy_ratio_surface,
    breakeven_bga,
    zero_crossing_cells,
    ApplicationPoint,
)
from repro.analysis.surface import EnergySurface, energy_surface
from repro.analysis.comparator import (
    TechnologyComparator,
    TechnologyVerdict,
)
from repro.analysis.tables import format_table, format_series
from repro.analysis.variation import (
    Distribution,
    MonteCarloAnalyzer,
    lognormal_leakage_amplification,
)
from repro.analysis.pareto import (
    DesignPoint,
    EnergyDelayExplorer,
    pareto_front,
)

__all__ = [
    "DesignPoint",
    "EnergyDelayExplorer",
    "pareto_front",
    "Distribution",
    "MonteCarloAnalyzer",
    "lognormal_leakage_amplification",
    "Sweep1D",
    "Sweep2D",
    "sweep_1d",
    "sweep_2d",
    "RatioSurface",
    "RefinedSurface",
    "energy_ratio_surface",
    "breakeven_bga",
    "zero_crossing_cells",
    "ApplicationPoint",
    "EnergySurface",
    "energy_surface",
    "TechnologyComparator",
    "TechnologyVerdict",
    "format_table",
    "format_series",
]
