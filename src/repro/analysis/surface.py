"""The Fig. 3/4 energy surface over the (V_DD, V_T) plane.

Figs. 3 and 4 of the paper study a fixed-throughput ring oscillator:
for each (V_DD, V_T) pair the ring either meets the cycle-time budget
or it does not, and where it does, the cycle energy is the Fig. 4
switching-plus-leakage sum.  This module samples that plane on a
(V_T, V_DD) grid — each V_T row shares one characterizer corner and
one decoded :class:`~repro.tech.opplan.OperatingPlan`, which is what
makes whole-axis evaluation cheap — and marks infeasible cells (stage
delay above the per-stage budget) as ``None``.

The interesting structure is one-dimensional: per V_T row, energy
falls with V_DD until leakage-vs-delay trade-off turns it around, so
the optimum-energy locus is a curve on the plane.  ``refine_levels``
reuses the adaptive machinery behind the Fig. 10 contour
(:mod:`repro.analysis.contour`) to subdivide only the cells that touch
the feasibility boundary or sit within ``refine_band`` of their row's
minimum — the locus is resolved at ``2**levels`` times the base grid
without re-sampling the flat high-energy regions.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.analysis.contour import (
    _MAX_REFINE_LEVELS,
    RefinedSurface,
    _evaluate_points,
    _subdivide_axis,
)
from repro.analysis.sweep import Sweep2D, sweep_2d
from repro.device.technology import Technology
from repro.errors import AnalysisError

__all__ = ["EnergySurface", "energy_surface"]

#: Per-worker decoded operating plans, keyed by (technology, vt).
#: Mirrors the CLI locus fan-out's model cache: a pool worker handed
#: many (V_T, V_DD) cells decodes each V_T corner once and pushes every
#: V_DD through the plan's kernels.  The serial path shares the same
#: cache, so a V_T-major grid decodes one plan per row.  Bounded like
#: the ring model's corner LRU so long-lived processes cannot leak.
_WORKER_PLANS: "OrderedDict" = OrderedDict()
_MAX_WORKER_PLANS = 256

#: The ring probe cell, resolved once per process — ``standard_cells``
#: rebuilds the whole library on every call, which at one call per V_T
#: corner was a measurable slice of the decode cost.
_INVERTER = None


def _inverter():
    global _INVERTER
    if _INVERTER is None:
        from repro.tech.cells import standard_cells

        _INVERTER = standard_cells()["INV"]
    return _INVERTER


def _corner_plan(technology: Technology, vt: float):
    """The fanout-1 inverter :class:`OperatingPlan` for one V_T corner."""
    key = (technology, vt)
    plan = _WORKER_PLANS.get(key)
    if plan is None:
        from repro.tech.characterize import CellCharacterizer

        characterizer = CellCharacterizer(technology.with_vt(vt))
        plan = characterizer.plan_operating(_inverter(), fanout=1)
        while len(_WORKER_PLANS) >= _MAX_WORKER_PLANS:
            _WORKER_PLANS.popitem(last=False)
        _WORKER_PLANS[key] = plan
    else:
        _WORKER_PLANS.move_to_end(key)
    return plan


class _EnergyCell:
    """One (V_T, V_DD) surface cell; a class so the fan-out can pickle it.

    Returns the ring's cycle energy [J] when the stage delay meets the
    per-stage budget, ``None`` where the corner is infeasible.  The
    plan kernels and the association below are float-for-float the
    :meth:`~repro.power.optimizer.RingOscillatorModel.stage_delay` /
    :meth:`~repro.power.optimizer.RingOscillatorModel.energy_per_cycle`
    chain (pinned by ``tests/analysis/test_surface.py``), minus the
    per-point memo traffic — a pure function of its coordinates, so
    parallel, scheduled, store-restored and serial evaluations are
    bit-identical.
    """

    __slots__ = (
        "technology",
        "stages",
        "activity",
        "t_cycle_s",
        "target_stage_delay_s",
    )

    def __init__(
        self,
        technology: Technology,
        stages: int,
        activity: float,
        t_cycle_s: float,
        target_stage_delay_s: float,
    ):
        self.technology = technology
        self.stages = stages
        self.activity = activity
        self.t_cycle_s = t_cycle_s
        self.target_stage_delay_s = target_stage_delay_s

    def __call__(self, vt: float, vdd: float) -> Optional[float]:
        plan = _corner_plan(self.technology, vt)
        if plan.delay(vdd) > self.target_stage_delay_s:
            return None
        switching_per_stage, leak_per_stage = plan.energies((vdd,))[0]
        switching = self.stages * self.activity * switching_per_stage
        leakage_current = self.stages * leak_per_stage
        return switching + leakage_current * vdd * self.t_cycle_s

    def row(
        self, vt: float, vdds: Sequence[float]
    ) -> Tuple[Optional[float], ...]:
        """One whole V_T row through the plan's batched kernels.

        Bit-identical to calling the cell per point — the kernels
        evaluate points independently — but the decode and the loop
        setup are paid once per row instead of once per cell.
        """
        plan = _corner_plan(self.technology, vt)
        points = plan.operating_points(
            vdds, max_delay_s=self.target_stage_delay_s
        )
        stages = self.stages
        stages_activity = stages * self.activity
        t_cycle_s = self.t_cycle_s
        out = []
        append = out.append
        for vdd, (_delay, switching_per_stage, leak_per_stage) in zip(
            vdds, points
        ):
            if switching_per_stage is None:
                append(None)
                continue
            switching = stages_activity * switching_per_stage
            leakage_current = stages * leak_per_stage
            append(switching + leakage_current * vdd * t_cycle_s)
        return tuple(out)

    def __getstate__(self):
        return tuple(getattr(self, name) for name in self.__slots__)

    def __setstate__(self, state):
        for name, value in zip(self.__slots__, state):
            setattr(self, name, value)


@dataclass(frozen=True)
class EnergySurface:
    """Cycle energy over the (V_T, V_DD) plane at fixed throughput.

    ``grid.zs[i][j]`` is the ring's energy per cycle at
    ``(vt=grid.xs[i], vdd=grid.ys[j])``, or ``None`` where the stage
    delay misses the per-stage budget ``target_stage_delay_s``.
    """

    grid: Sweep2D
    t_cycle_s: float
    target_stage_delay_s: float
    stages: int
    activity: float
    cycle_stages: int
    #: Present when the surface was computed with ``refine_levels > 0``.
    refined: Optional[RefinedSurface] = field(default=None)

    def optimum_locus(self) -> List[Tuple[float, float, float]]:
        """Per-V_T minimum-energy operating points (Fig. 3's locus).

        One ``(vt, vdd, energy_per_cycle_j)`` row per V_T with at
        least one feasible cell; fully infeasible rows are skipped.
        """
        locus = []
        for i, vt in enumerate(self.grid.xs):
            best = None
            for j, value in enumerate(self.grid.zs[i]):
                if value is None:
                    continue
                if best is None or value < best[1]:
                    best = (self.grid.ys[j], value)
            if best is not None:
                locus.append((vt, best[0], best[1]))
        return locus

    def optimum(self) -> Tuple[float, float, float]:
        """Global minimum: ``(vdd, vt, energy_per_cycle_j)``."""
        locus = self.optimum_locus()
        if not locus:
            raise AnalysisError(
                "no feasible (V_DD, V_T) cell meets the delay target"
            )
        vt, vdd, energy = min(locus, key=lambda row: row[2])
        return vdd, vt, energy


def _row_batched_grid(
    cell: _EnergyCell,
    vt_values: Sequence[float],
    vdd_values: Sequence[float],
    progress: Optional[Callable[[int, int], None]],
) -> Sweep2D:
    """Serial base grid, one batched kernel pass per V_T row."""
    vdds = [float(vdd) for vdd in vdd_values]
    total = len(vt_values) * len(vdds)
    done = 0
    rows = []
    for vt in vt_values:
        rows.append(cell.row(vt, vdds))
        done += len(vdds)
        if progress is not None:
            progress(done, total)
    return Sweep2D(
        x_name="vt",
        y_name="vdd",
        z_name="energy_per_cycle_j",
        xs=tuple(float(vt) for vt in vt_values),
        ys=tuple(vdds),
        zs=tuple(rows),
    )


def _row_minima(
    known: Dict[Tuple[int, int], Optional[float]],
) -> Dict[int, float]:
    """Per-V_T-row minimum over the defined known lattice values."""
    minima: Dict[int, float] = {}
    for (i, _j), value in known.items():
        if value is None:
            continue
        current = minima.get(i)
        if current is None or value < current:
            minima[i] = value
    return minima


def _near_optimum(
    corners: Sequence[Optional[float]],
    rows: Sequence[int],
    row_min: Dict[int, float],
    band: float,
) -> bool:
    """Refinement criterion for one cell of the energy surface.

    A cell is interesting when it touches the feasibility boundary
    (mixed defined/None corners — the minimum-energy V_DD hugs that
    edge at low V_T) or when any corner is within a relative ``band``
    of its own row's minimum (the optimum-energy locus proper).
    """
    defined = [value for value in corners if value is not None]
    if not defined:
        return False
    if len(defined) < len(corners):
        return True
    return any(
        value <= (1.0 + band) * row_min[row]
        for row, value in zip(rows, corners)
    )


def _refine_energy_surface(
    cell: _EnergyCell,
    store_inputs: Optional[list],
    grid: Sweep2D,
    levels: int,
    band: float,
    workers: int,
    progress,
    store,
    checkpoint_every: int,
    scheduler=None,
) -> RefinedSurface:
    """Recursively subdivide only the cells near the optimum locus.

    Same sparse-lattice bookkeeping as the Fig. 10 contour refinement
    (:func:`repro.analysis.contour._refine_surface`), with the
    interest test swapped for :func:`_near_optimum` — here the target
    is an energy minimum per row, not a zero crossing.
    """
    stride = 1 << levels
    xs = _subdivide_axis(grid.xs, levels)
    ys = _subdivide_axis(grid.ys, levels)
    known: Dict[Tuple[int, int], Optional[float]] = {}
    for i, row in enumerate(grid.zs):
        for j, value in enumerate(row):
            known[(i * stride, j * stride)] = value
    active = [
        (i * stride, j * stride)
        for i in range(len(grid.xs) - 1)
        for j in range(len(grid.ys) - 1)
    ]
    refined = 0
    skipped = 0
    for level in range(levels):
        size = stride >> level
        half = size >> 1
        row_min = _row_minima(known)
        targets = []
        for i, j in active:
            corners = (
                known[(i, j)],
                known[(i, j + size)],
                known[(i + size, j)],
                known[(i + size, j + size)],
            )
            rows = (i, i, i + size, i + size)
            if _near_optimum(corners, rows, row_min, band):
                targets.append((i, j))
            else:
                skipped += 1
        refined += len(targets)
        if not targets:
            break
        needed = sorted(
            {
                point
                for i, j in targets
                for point in (
                    (i, j + half),
                    (i + half, j),
                    (i + half, j + half),
                    (i + half, j + size),
                    (i + size, j + half),
                )
                if point not in known
            }
        )
        if needed:
            store_key = None
            if store is not None:
                from repro.store.hashing import request_digest

                store_key = request_digest(
                    "energy-surface-refine",
                    *store_inputs,
                    levels,
                    band,
                    level,
                )
            values = _evaluate_points(
                cell, needed, xs, ys, workers, progress, store,
                store_key, checkpoint_every, scheduler=scheduler,
                min_parallel_items=0,
            )
            known.update(zip(needed, values))
        active = [
            (i + di, j + dj)
            for i, j in targets
            for di in (0, half)
            for dj in (0, half)
        ]
    if obs.ENABLED:
        if refined:
            obs.incr("surface.cells_refined", refined)
        if skipped:
            obs.incr("surface.cells_skipped", skipped)
    indices = tuple(sorted(known))
    return RefinedSurface(
        levels=levels,
        band=band,
        xs=xs,
        ys=ys,
        indices=indices,
        values=tuple(known[point] for point in indices),
        cells_refined=refined,
        cells_skipped=skipped,
    )


def energy_surface(
    technology: Technology,
    vt_values: Sequence[float],
    vdd_values: Sequence[float],
    t_cycle_s: float,
    stages: int = 101,
    activity: float = 1.0,
    cycle_stages: Optional[int] = None,
    workers: int = 0,
    progress: Optional[Callable[[int, int], None]] = None,
    store=None,
    checkpoint_every: int = 32,
    refine_levels: int = 0,
    refine_band: float = 0.2,
    scheduler=None,
) -> EnergySurface:
    """Sample the Fig. 3/4 energy plane over a (V_T, V_DD) grid.

    ``cycle_stages`` converts the cycle time into the per-stage delay
    budget ``t_cycle_s / cycle_stages`` (default ``2 * stages``, the
    ring's own period — matching
    :meth:`repro.core.flow.LowVoltageDesignFlow.throughput_optimizer`).
    Cells whose stage delay misses the budget come back as ``None``.

    Rows share a V_T corner: the grid is evaluated V_T-major, so each
    row is one decoded operating plan swept along the whole V_DD axis.
    ``workers`` fans rows' cells across processes (0 = serial; ring
    cells are expensive enough that the small-grid serial gate is
    disabled here) and the sampled surface is identical for any worker
    count.  ``progress(done_cells, total_cells)`` reports completion.

    With ``store`` (a :class:`repro.store.ResultStore`) the grid is
    checkpointed under a canonical digest of every input, so a killed
    surface resumes from its completed chunks and an identical
    re-request is served entirely from the store.

    ``refine_levels > 0`` turns on **adaptive locus refinement**: the
    same machinery that sharpens the Fig. 10 break-even contour
    recursively subdivides the cells whose corners touch the
    feasibility boundary or fall within ``refine_band`` (relative) of
    their row's energy minimum — the optimum-energy locus is resolved
    at ``2**levels`` times the grid resolution while flat regions are
    never re-sampled.  The sparse points live in ``surface.refined``;
    with a store each level checkpoints under its own digest.

    ``scheduler`` (a :class:`repro.sched.Scheduler`) evaluates the
    grid — and every refinement level — through the durable work
    queue; ``workers`` is then ignored and the surface stays
    bit-identical to the serial path.
    """
    if t_cycle_s <= 0.0:
        raise AnalysisError(
            f"cycle time must be positive, got {t_cycle_s}"
        )
    if any(vdd <= 0.0 for vdd in vdd_values):
        raise AnalysisError("vdd values must be positive")
    if cycle_stages is None:
        cycle_stages = 2 * stages
    if cycle_stages < 1:
        raise AnalysisError(
            f"cycle_stages must be >= 1, got {cycle_stages}"
        )
    if refine_levels < 0:
        raise AnalysisError(
            f"refine_levels must be >= 0, got {refine_levels}"
        )
    if refine_levels > _MAX_REFINE_LEVELS:
        raise AnalysisError(
            f"refine_levels must be <= {_MAX_REFINE_LEVELS}, "
            f"got {refine_levels}"
        )
    if refine_levels > 0:
        if refine_band <= 0.0:
            raise AnalysisError(
                f"refine_band must be positive, got {refine_band}"
            )
        if len(vt_values) < 2 or len(vdd_values) < 2:
            raise AnalysisError(
                "refinement needs at least two points per axis"
            )
    target_stage_delay_s = t_cycle_s / cycle_stages
    cell = _EnergyCell(
        technology, stages, activity, t_cycle_s, target_stage_delay_s
    )
    store_inputs = None
    store_key = None
    if store is not None:
        from repro.store.hashing import request_digest, technology_digest

        store_inputs = [
            technology_digest(technology),
            stages,
            activity,
            t_cycle_s,
            target_stage_delay_s,
            [float(v) for v in vt_values],
            [float(v) for v in vdd_values],
        ]
        store_key = request_digest("energy-surface", *store_inputs)
    with obs.span("analysis.energy_surface"):
        if workers == 0 and store is None and scheduler is None:
            # The plain serial grid goes row-at-a-time through the
            # plan's batched kernels — one decode and one tight loop
            # per V_T.  The fan-out/checkpoint/queue paths below keep
            # the per-cell contract (chunking, restore and progress
            # are all cell-keyed) and produce the same floats, since
            # the kernels evaluate points independently.
            grid = _row_batched_grid(
                cell, vt_values, vdd_values, progress
            )
        else:
            grid = sweep_2d(
                "vt",
                "vdd",
                "energy_per_cycle_j",
                vt_values,
                vdd_values,
                cell,
                workers=workers,
                progress=progress,
                store=store,
                store_key=store_key,
                checkpoint_every=checkpoint_every,
                scheduler=scheduler,
                min_parallel_items=0,
            )
    refined = None
    if refine_levels > 0:
        with obs.span("analysis.surface_refine"):
            refined = _refine_energy_surface(
                cell, store_inputs, grid, refine_levels, refine_band,
                workers, progress, store, checkpoint_every,
                scheduler=scheduler,
            )
    return EnergySurface(
        grid=grid,
        t_cycle_s=t_cycle_s,
        target_stage_delay_s=target_stage_delay_s,
        stages=stages,
        activity=activity,
        cycle_stages=cycle_stages,
        refined=refined,
    )
