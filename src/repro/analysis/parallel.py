"""Process-parallel evaluation of sweep grids and sample batches.

The figure pipelines spend their time in embarrassingly parallel loops:
every cell of a contour grid and every Monte-Carlo sample is an
independent pure-function evaluation.  This module provides the one
primitive they share — map a picklable function over a work list with
:class:`concurrent.futures.ProcessPoolExecutor`, chunked to amortize
IPC, with **deterministic result ordering** (results always come back
in input order, regardless of which worker finished first).

Fault-tolerance policy
----------------------
Work is dispatched as explicit chunks (one future per chunk), so the
engine always knows exactly which chunks have completed.  When the pool
breaks mid-run (a worker killed by the OOM killer, a segfaulting
extension, ``BrokenProcessPool``), only the chunks still outstanding
are retried on a fresh pool — completed results are never discarded
and never recomputed.  After ``max_retries`` pool rebuilds the
remaining chunks degrade to the in-process serial path, which is
always available and always correct.

Exceptions raised by the user function itself — including ``OSError``
and ``pickle.PicklingError`` — are *not* infrastructure failures: they
propagate to the caller identically on the serial and parallel paths.
Only pool-level failures (a pool that cannot spawn, a worker that
dies) trigger retry/fallback.

``workers=0`` forces the serial path explicitly; an unpicklable
function (e.g. a closure) or a single-item work list degrade to serial
evaluation transparently.  Because every evaluation is a pure function
of its arguments, parallel and serial results are bit-identical —
asserted by the equivalence and fault-injection tests.

Observability (:mod:`repro.obs`, when enabled):

* ``parallel.chunks`` — chunks dispatched to the pool (including
  retries),
* ``parallel.chunk_retries`` — chunks re-dispatched after a pool
  failure,
* ``parallel.worker_failures`` — pool-breakage events observed,
* ``parallel.timeouts`` — chunks abandoned for exceeding ``timeout_s``,
* ``parallel.fallbacks`` — times the engine degraded to the serial
  path (for any reason),
* ``parallel.items`` — work items completed (either path),
* ``parallel.min_items_fallbacks`` — parallel requests served serially
  because the work list was below ``min_parallel_items``,
* ``parallel.pickle_fallbacks`` — parallel requests served serially
  because the function was unpicklable (also warned once per process).
"""

from __future__ import annotations

import os
import pickle
import warnings
import weakref
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro import obs
from repro.errors import AnalysisError

__all__ = ["resolve_workers", "map_items", "map_grid"]

_X = TypeVar("_X")
_Y = TypeVar("_Y")
_R = TypeVar("_R")

#: Chunks handed to each worker per dispatch; >1 keeps the pool busy
#: when per-item cost is uneven, while still amortizing IPC.
_CHUNKS_PER_WORKER = 4

#: Pool rebuilds attempted after ``BrokenProcessPool`` before the
#: remaining chunks degrade to the serial path.
_DEFAULT_MAX_RETRIES = 2

#: Below this many work items a process pool loses outright for cheap
#: cell functions: spawning workers and pickling chunks costs more than
#: the evaluation itself (the seed benchmark measured a 64x64 contour
#: grid ~14x *slower* at 2 workers than serial).  Grid fan-outs with
#: closed-form cells (``map_grid``, the contour/ratio-surface
#: pipelines) opt in to this threshold by default; callers whose items
#: are individually expensive (Monte-Carlo chunk tasks, ring-oscillator
#: surface cells) pass ``min_parallel_items=0`` — or an explicit
#: ``chunksize``, which always bypasses the gate — to keep the pool.
_MIN_PARALLEL_ITEMS = 8192

#: One-time flag for the unpicklable-function warning (satellite of the
#: silent-serial-fallback fix): users asking for ``workers=8`` with a
#: closure should learn they got 1, once, not per sweep.
_PICKLE_FALLBACK_WARNED = False


def resolve_workers(workers: Optional[int]) -> int:
    """Worker count to use: ``0``/``1`` = serial.

    Precedence for ``workers=None``: the ``REPRO_WORKERS`` environment
    variable if set, else one worker per CPU.  An explicit ``workers=``
    argument always wins over the environment.  Scheduler worker
    processes (:mod:`repro.sched.worker`) set ``REPRO_WORKERS=0`` so a
    workload that internally calls :func:`map_items` with
    ``workers=None`` does not fork a nested one-pool-per-CPU on an
    already fully subscribed host.
    """
    if workers is None:
        env = os.environ.get("REPRO_WORKERS")
        if env is not None:
            try:
                workers = int(env)
            except ValueError:
                raise AnalysisError(
                    f"REPRO_WORKERS must be an integer, got {env!r}"
                ) from None
            if workers < 0:
                raise AnalysisError(
                    f"REPRO_WORKERS must be >= 0, got {workers}"
                )
            return workers
        return max(os.cpu_count() or 1, 1)
    if workers < 0:
        raise AnalysisError(f"workers must be >= 0, got {workers}")
    return workers


#: Per-callable memo for :func:`_picklable`.  ``map_items`` probes its
#: function on every call; for module-level functions and bound plans
#: with large captured state that probe re-pickles the whole closure
#: each sweep.  Weak keys keep the memo from pinning dead callables.
_PICKLABLE_MEMO: "weakref.WeakKeyDictionary[Callable, bool]" = (
    weakref.WeakKeyDictionary()
)


def _picklable(fn: Callable) -> bool:
    try:
        cached = _PICKLABLE_MEMO.get(fn)
    except TypeError:  # unhashable callable: probe every time
        cached = None
        memoizable = False
    else:
        memoizable = True
    if cached is not None:
        return cached
    try:
        pickle.dumps(fn)
        result = True
    except Exception:
        result = False
    if memoizable:
        try:
            _PICKLABLE_MEMO[fn] = result
        except TypeError:  # not weak-referenceable (e.g. builtins)
            pass
    return result


def _chunksize(n_items: int, n_workers: int) -> int:
    return max(1, -(-n_items // (n_workers * _CHUNKS_PER_WORKER)))


def _run_chunk(fn: Callable[[_X], _R], chunk: Sequence[_X]) -> List[_R]:
    """Worker-side chunk body (module-level so it pickles)."""
    return [fn(item) for item in chunk]


def _serial_tail(
    fn: Callable[[_X], _R],
    chunks: List[List[_X]],
    results: List[Optional[List[_R]]],
    pending: List[int],
    progress: Optional[Callable[[int, int], None]],
    done_items: int,
    total_items: int,
    chunksize: int,
    chunk_done: Optional[Callable[[Sequence[int], Sequence[_R]], None]],
) -> None:
    """Evaluate the outstanding chunks in-process (the fallback path)."""
    if obs.ENABLED:
        obs.incr("parallel.fallbacks")
    for index in pending:
        results[index] = [fn(item) for item in chunks[index]]
        done_items += len(chunks[index])
        if obs.ENABLED:
            obs.incr("parallel.items", len(chunks[index]))
        if chunk_done is not None:
            start = index * chunksize
            chunk_done(
                range(start, start + len(chunks[index])), results[index]
            )
        if progress is not None:
            progress(done_items, total_items)


def _map_chunked(
    fn: Callable[[_X], _R],
    work: List[_X],
    n_workers: int,
    chunksize: int,
    timeout_s: Optional[float],
    progress: Optional[Callable[[int, int], None]],
    max_retries: int,
    chunk_done: Optional[Callable[[Sequence[int], Sequence[_R]], None]],
) -> List[_R]:
    """The fault-tolerant chunk engine behind :func:`map_items`."""
    chunks: List[List[_X]] = [
        work[i : i + chunksize] for i in range(0, len(work), chunksize)
    ]
    results: List[Optional[List[_R]]] = [None] * len(chunks)
    pending: List[int] = list(range(len(chunks)))
    total_items = len(work)
    done_items = 0
    rebuilds = 0

    while pending:
        try:
            executor = ProcessPoolExecutor(max_workers=n_workers)
        except OSError:
            _serial_tail(
                fn, chunks, results, pending, progress, done_items,
                total_items, chunksize, chunk_done,
            )
            pending = []
            break
        broke = False
        try:
            try:
                futures = {
                    executor.submit(_run_chunk, fn, chunks[index]): index
                    for index in pending
                }
            except (OSError, BrokenProcessPool):
                _serial_tail(
                    fn, chunks, results, pending, progress, done_items,
                    total_items, chunksize, chunk_done,
                )
                pending = []
                break
            if obs.ENABLED:
                obs.incr("parallel.chunks", len(futures))
            outstanding = set(futures)
            while outstanding:
                finished, outstanding = wait(
                    outstanding,
                    timeout=timeout_s,
                    return_when=FIRST_COMPLETED,
                )
                if not finished:
                    # Nothing completed within the per-chunk budget:
                    # every outstanding chunk has been running at least
                    # ``timeout_s``.  The stuck workers cannot be
                    # reclaimed portably, so abandon the run.
                    if obs.ENABLED:
                        obs.incr("parallel.timeouts", len(outstanding))
                    # Private, but the only portable way to reclaim a
                    # worker stuck inside user code.
                    for process in (
                        getattr(executor, "_processes", None) or {}
                    ).values():
                        process.terminate()
                    raise FuturesTimeoutError(
                        f"{len(outstanding)} chunk(s) exceeded the "
                        f"{timeout_s} s chunk timeout"
                    )
                for future in finished:
                    index = futures[future]
                    try:
                        chunk_result = future.result()
                    except BrokenProcessPool:
                        # Keep draining: chunks that completed before
                        # the pool broke still hold good results.
                        broke = True
                        continue
                    # Any other exception came from ``fn`` inside the
                    # worker and propagates to the caller unchanged.
                    results[index] = chunk_result
                    pending.remove(index)
                    done_items += len(chunks[index])
                    if obs.ENABLED:
                        obs.incr("parallel.items", len(chunks[index]))
                    if chunk_done is not None:
                        start = index * chunksize
                        chunk_done(
                            range(start, start + len(chunks[index])),
                            chunk_result,
                        )
                    if progress is not None:
                        progress(done_items, total_items)
                if broke:
                    break
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        if not broke:
            break
        # Pool infrastructure failure: retry only the lost chunks.
        if obs.ENABLED:
            obs.incr("parallel.worker_failures")
        rebuilds += 1
        if rebuilds > max_retries:
            _serial_tail(
                fn, chunks, results, pending, progress, done_items,
                total_items, chunksize, chunk_done,
            )
            pending = []
        elif obs.ENABLED:
            obs.incr("parallel.chunk_retries", len(pending))

    flat: List[_R] = []
    for chunk_result in results:
        assert chunk_result is not None
        flat.extend(chunk_result)
    return flat


def map_items(
    fn: Callable[[_X], _R],
    items: Sequence[_X],
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    timeout_s: Optional[float] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    max_retries: int = _DEFAULT_MAX_RETRIES,
    chunk_done: Optional[Callable[[Sequence[int], Sequence[_R]], None]] = None,
    min_parallel_items: Optional[int] = None,
) -> List[_R]:
    """``[fn(item) for item in items]``, possibly across processes.

    Results are returned in input order.  Exceptions raised by ``fn``
    propagate to the caller on both paths; pool-infrastructure failures
    (a worker that cannot spawn or dies mid-run) are retried per chunk
    — only the chunks whose results were lost re-run — and degrade to
    the serial path after ``max_retries`` pool rebuilds.

    Parameters
    ----------
    timeout_s:
        Optional per-chunk wall-clock budget.  If no outstanding chunk
        completes within it, the run aborts with
        :class:`concurrent.futures.TimeoutError` (stuck workers are
        terminated; there is no silent serial re-run of work that may
        never terminate).
    progress:
        Optional ``progress(done_items, total_items)`` callback,
        invoked after every completed chunk (serial path: after every
        item).  Exceptions from the callback propagate.
    max_retries:
        Pool rebuilds tolerated before the remaining chunks fall back
        to serial evaluation.
    chunk_done:
        Optional ``chunk_done(item_indices, chunk_results)`` callback,
        invoked in the *parent* process exactly once per completed
        chunk, with the global (input-order) indices the chunk covers
        (serial path: per item).  This is the checkpointing hook — a
        chunk handed to ``chunk_done`` is complete and will never be
        re-dispatched, so persisting it is safe.
    min_parallel_items:
        Work lists shorter than this are evaluated serially even when
        ``workers`` asks for a pool (counted in
        ``parallel.min_items_fallbacks``) — below the threshold the
        pool's spawn/IPC overhead dominates cheap per-item work.
        ``None`` (the default) disables the gate; an explicit
        ``chunksize`` also bypasses it (the caller has already sized
        the IPC trade-off).  See :data:`_MIN_PARALLEL_ITEMS`.
    """
    work = list(items)
    n_workers = resolve_workers(workers)
    serial = n_workers <= 1 or len(work) <= 1
    if not serial and not _picklable(fn):
        # The caller asked for a pool it cannot have: say so once
        # (and count every occurrence) instead of silently running on
        # one core.
        serial = True
        if obs.ENABLED:
            obs.incr("parallel.pickle_fallbacks")
        global _PICKLE_FALLBACK_WARNED
        if not _PICKLE_FALLBACK_WARNED:
            _PICKLE_FALLBACK_WARNED = True
            warnings.warn(
                f"map_items: {fn!r} is not picklable (a lambda or "
                f"closure?); the requested {n_workers} workers degrade "
                "to serial evaluation. Use a module-level function or "
                "a picklable callable class for actual parallelism.",
                RuntimeWarning,
                stacklevel=2,
            )
    if (
        not serial
        and chunksize is None
        and min_parallel_items is not None
        and len(work) < min_parallel_items
    ):
        serial = True
        if obs.ENABLED:
            obs.incr("parallel.min_items_fallbacks")
    if serial:
        if obs.ENABLED and work:
            obs.incr("parallel.items", len(work))
        results = []
        for done, item in enumerate(work, start=1):
            results.append(fn(item))
            if chunk_done is not None:
                chunk_done([done - 1], results[-1:])
            if progress is not None:
                progress(done, len(work))
        return results
    if chunksize is None:
        chunksize = _chunksize(len(work), n_workers)
    if chunksize < 1:
        raise AnalysisError(f"chunksize must be >= 1, got {chunksize}")
    if timeout_s is not None and timeout_s <= 0.0:
        raise AnalysisError(f"timeout_s must be positive, got {timeout_s}")
    if max_retries < 0:
        raise AnalysisError(f"max_retries must be >= 0, got {max_retries}")
    with obs.span("parallel.map_items"):
        return _map_chunked(
            fn, work, n_workers, chunksize, timeout_s, progress,
            max_retries, chunk_done,
        )


class _PairFn:
    """Picklable ``pair -> fn(*pair)`` wrapper for :func:`map_grid`."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[_X, _Y], _R]):
        self.fn = fn

    def __call__(self, pair: Tuple[_X, _Y]) -> _R:
        return self.fn(pair[0], pair[1])


def map_grid(
    fn: Callable[[_X, _Y], _R],
    xs: Sequence[_X],
    ys: Sequence[_Y],
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    timeout_s: Optional[float] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    max_retries: int = _DEFAULT_MAX_RETRIES,
    chunk_done: Optional[Callable[[Sequence[int], Sequence[_R]], None]] = None,
    min_parallel_items: Optional[int] = _MIN_PARALLEL_ITEMS,
) -> List[List[_R]]:
    """Evaluate ``fn`` over the cartesian grid, row-major.

    Returns ``rows[i][j] == fn(xs[i], ys[j])`` — the same layout as
    :class:`repro.analysis.sweep.Sweep2D`.  The grid is flattened into
    one chunked work list so uneven rows cannot starve workers; the
    fault-tolerance, timeout, progress, and ``chunk_done`` semantics
    are those of :func:`map_items` (``chunk_done`` indices address the
    row-major flattening: cell ``(i, j)`` is index ``i * len(ys) + j``).

    Grids below ``min_parallel_items`` cells run serially by default —
    pool overhead dominates cheap grid cells there (results are
    bit-identical either way).  Pass ``min_parallel_items=0`` for grids
    of individually expensive cells, or an explicit ``chunksize``,
    which bypasses the gate.
    """
    x_list = list(xs)
    y_list = list(ys)
    pairs: List[Tuple[_X, _Y]] = [(x, y) for x in x_list for y in y_list]
    flat = map_items(
        _PairFn(fn),
        pairs,
        workers=workers,
        chunksize=chunksize,
        timeout_s=timeout_s,
        progress=progress,
        max_retries=max_retries,
        chunk_done=chunk_done,
        min_parallel_items=min_parallel_items,
    )
    n_y = len(y_list)
    return [flat[i * n_y : (i + 1) * n_y] for i in range(len(x_list))]
