"""Process-parallel evaluation of sweep grids and sample batches.

The figure pipelines spend their time in embarrassingly parallel loops:
every cell of a contour grid and every Monte-Carlo sample is an
independent pure-function evaluation.  This module provides the one
primitive they share — map a picklable function over a work list with
:class:`concurrent.futures.ProcessPoolExecutor`, chunked to amortize
IPC, with **deterministic result ordering** (results always come back
in input order, regardless of which worker finished first).

Fallback policy: the serial path is always available and always
correct.  ``workers=0`` forces it explicitly; an unpicklable function
(e.g. a closure), a single-item work list, or a pool that cannot be
spawned all degrade to serial evaluation transparently.  Because every
evaluation is a pure function of its arguments, parallel and serial
results are bit-identical — asserted by the equivalence tests.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.errors import AnalysisError

__all__ = ["resolve_workers", "map_items", "map_grid"]

_X = TypeVar("_X")
_Y = TypeVar("_Y")
_R = TypeVar("_R")

#: Chunks handed to each worker per ``executor.map`` call; >1 keeps the
#: pool busy when per-item cost is uneven, while still amortizing IPC.
_CHUNKS_PER_WORKER = 4


def resolve_workers(workers: Optional[int]) -> int:
    """Worker count to use: ``None`` = one per CPU, ``0``/``1`` = serial."""
    if workers is None:
        return max(os.cpu_count() or 1, 1)
    if workers < 0:
        raise AnalysisError(f"workers must be >= 0, got {workers}")
    return workers


def _picklable(fn: Callable) -> bool:
    try:
        pickle.dumps(fn)
        return True
    except Exception:
        return False


def _chunksize(n_items: int, n_workers: int) -> int:
    return max(1, -(-n_items // (n_workers * _CHUNKS_PER_WORKER)))


def map_items(
    fn: Callable[[_X], _R],
    items: Sequence[_X],
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> List[_R]:
    """``[fn(item) for item in items]``, possibly across processes.

    Results are returned in input order.  Exceptions raised by ``fn``
    propagate to the caller on both paths; only pool-infrastructure
    failures (a worker that cannot spawn or dies) trigger the serial
    fallback.
    """
    work = list(items)
    n_workers = resolve_workers(workers)
    if n_workers <= 1 or len(work) <= 1 or not _picklable(fn):
        return [fn(item) for item in work]
    if chunksize is None:
        chunksize = _chunksize(len(work), n_workers)
    try:
        with ProcessPoolExecutor(max_workers=n_workers) as executor:
            return list(executor.map(fn, work, chunksize=chunksize))
    except (BrokenProcessPool, OSError, pickle.PicklingError):
        return [fn(item) for item in work]


def map_grid(
    fn: Callable[[_X, _Y], _R],
    xs: Sequence[_X],
    ys: Sequence[_Y],
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> List[List[_R]]:
    """Evaluate ``fn`` over the cartesian grid, row-major.

    Returns ``rows[i][j] == fn(xs[i], ys[j])`` — the same layout as
    :class:`repro.analysis.sweep.Sweep2D`.  The grid is flattened into
    one chunked work list so uneven rows cannot starve workers.
    """
    x_list = list(xs)
    y_list = list(ys)
    n_workers = resolve_workers(workers)
    total = len(x_list) * len(y_list)
    if n_workers <= 1 or total <= 1 or not _picklable(fn):
        return [[fn(x, y) for y in y_list] for x in x_list]
    flat_x = [x for x in x_list for _ in y_list]
    flat_y = [y for _ in x_list for y in y_list]
    if chunksize is None:
        chunksize = _chunksize(total, n_workers)
    try:
        with ProcessPoolExecutor(max_workers=n_workers) as executor:
            flat = list(executor.map(fn, flat_x, flat_y, chunksize=chunksize))
    except (BrokenProcessPool, OSError, pickle.PicklingError):
        return [[fn(x, y) for y in y_list] for x in x_list]
    n_y = len(y_list)
    return [flat[i * n_y : (i + 1) * n_y] for i in range(len(x_list))]
