"""Generic parameter-sweep containers.

Thin, dependency-free structures the benchmarks use to hold the data
series behind each figure: a 1-D sweep is a figure curve, a 2-D sweep
is a contour-plot grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import AnalysisError

__all__ = ["Sweep1D", "Sweep2D", "sweep_1d", "sweep_2d"]


@dataclass(frozen=True)
class Sweep1D:
    """One curve: ``y = f(x)`` sampled over a grid."""

    x_name: str
    y_name: str
    xs: Tuple[float, ...]
    ys: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise AnalysisError("xs and ys must have equal length")
        if not self.xs:
            raise AnalysisError("sweep is empty")

    def argmin(self) -> Tuple[float, float]:
        """(x, y) of the minimum sample."""
        index = min(range(len(self.ys)), key=self.ys.__getitem__)
        return self.xs[index], self.ys[index]

    def argmax(self) -> Tuple[float, float]:
        """(x, y) of the maximum sample."""
        index = max(range(len(self.ys)), key=self.ys.__getitem__)
        return self.xs[index], self.ys[index]

    def is_monotone(self, increasing: bool = True) -> bool:
        """Whether the samples are sorted along y."""
        ordered = sorted(self.ys, reverse=not increasing)
        return list(self.ys) == ordered

    def has_interior_minimum(self) -> bool:
        """True when the minimum is not at either end (a U-shape)."""
        index = min(range(len(self.ys)), key=self.ys.__getitem__)
        return 0 < index < len(self.ys) - 1

    def rows(self) -> List[Tuple[float, float]]:
        """(x, y) pairs for table rendering."""
        return list(zip(self.xs, self.ys))


@dataclass(frozen=True)
class Sweep2D:
    """A grid: ``z = f(x, y)``; ``None`` marks undefined cells."""

    x_name: str
    y_name: str
    z_name: str
    xs: Tuple[float, ...]
    ys: Tuple[float, ...]
    zs: Tuple[Tuple[Optional[float], ...], ...]  # zs[i][j] = f(xs[i], ys[j])

    def __post_init__(self) -> None:
        if len(self.zs) != len(self.xs):
            raise AnalysisError("z grid rows must match xs")
        if any(len(row) != len(self.ys) for row in self.zs):
            raise AnalysisError("z grid columns must match ys")

    def at(self, i: int, j: int) -> Optional[float]:
        """Grid value at index (i, j)."""
        return self.zs[i][j]

    def defined_cells(self) -> int:
        """Number of non-None cells."""
        return sum(
            1 for row in self.zs for value in row if value is not None
        )


def sweep_1d(
    x_name: str,
    y_name: str,
    xs: Sequence[float],
    fn: Callable[[float], float],
) -> Sweep1D:
    """Sample ``fn`` over ``xs``."""
    if not xs:
        raise AnalysisError("empty sweep grid")
    values = tuple(float(fn(x)) for x in xs)
    return Sweep1D(
        x_name=x_name, y_name=y_name, xs=tuple(float(x) for x in xs),
        ys=values,
    )


def _fanout_items(
    fn,
    items,
    workers,
    scheduler,
    progress=None,
    chunk_done=None,
    min_parallel_items=None,
):
    """``map_items`` or its scheduler drop-in, chosen by ``scheduler``.

    The one dispatch point the sweep layers share: a non-None
    ``scheduler`` (a :class:`repro.sched.Scheduler`) routes the fan-out
    through the durable work queue — same input-order results, same
    ``progress``/``chunk_done`` contract — otherwise the in-process
    pool handles it exactly as before.  ``min_parallel_items`` is
    forwarded to :func:`~repro.analysis.parallel.map_items` on the
    pool path only (grid pipelines with cheap cells pass the library
    threshold; callers with few expensive items — Monte-Carlo chunk
    tasks — leave it ``None``); a scheduler fan-out is already paying
    queue latency by design, so it is never gated.
    """
    if scheduler is not None:
        from repro.sched.client import scheduled_map_items

        return scheduled_map_items(
            fn, items, scheduler, progress=progress, chunk_done=chunk_done
        )
    from repro.analysis.parallel import map_items

    return map_items(
        fn, items, workers=workers, progress=progress,
        chunk_done=chunk_done, min_parallel_items=min_parallel_items,
    )


def _checkpointed_grid(
    xs: Sequence[float],
    ys: Sequence[float],
    fn: Callable[[float, float], Optional[float]],
    workers: int,
    progress: Optional[Callable[[int, int], None]],
    store,
    store_key: str,
    checkpoint_every: int,
    scheduler=None,
    min_parallel_items=None,
) -> Tuple[Tuple[Optional[float], ...], ...]:
    """Store-backed grid evaluation: restore, compute the gap, persist.

    Every completed chunk becomes durable as it finishes (see
    :class:`repro.store.checkpoint.SweepCheckpoint`), so a killed run
    resumed with the same store and key recomputes only the missing
    cells — and the assembled grid is bit-identical to a cold serial
    run, because restored cells JSON-round-trip exactly and computed
    cells are pure functions of their coordinates.
    """
    from repro.analysis.parallel import _PairFn
    from repro.store.checkpoint import SweepCheckpoint

    n_y = len(ys)
    total = len(xs) * n_y
    checkpoint = SweepCheckpoint(
        store, store_key, total, flush_every=checkpoint_every
    )
    cells = checkpoint.restored()
    if progress is not None and cells:
        progress(len(cells), total)
    missing = [index for index in range(total) if index not in cells]
    if missing:
        pairs = [(xs[index // n_y], ys[index % n_y]) for index in missing]
        restored_count = len(cells)

        def on_chunk(positions, values) -> None:
            chunk = [
                (
                    missing[position],
                    None if value is None else float(value),
                )
                for position, value in zip(positions, values)
            ]
            cells.update(chunk)
            checkpoint.record_many(chunk)

        shifted = None
        if progress is not None:
            def shifted(done: int, _missing_total: int) -> None:
                progress(restored_count + done, total)

        _fanout_items(
            _PairFn(fn),
            pairs,
            workers,
            scheduler,
            progress=shifted,
            chunk_done=on_chunk,
            min_parallel_items=min_parallel_items,
        )
    checkpoint.finalize()
    return tuple(
        tuple(cells[i * n_y + j] for j in range(n_y))
        for i in range(len(xs))
    )


def sweep_2d(
    x_name: str,
    y_name: str,
    z_name: str,
    xs: Sequence[float],
    ys: Sequence[float],
    fn: Callable[[float, float], Optional[float]],
    workers: int = 0,
    progress: Optional[Callable[[int, int], None]] = None,
    store=None,
    store_key: Optional[str] = None,
    checkpoint_every: int = 32,
    scheduler=None,
    min_parallel_items: Optional[int] = None,
) -> Sweep2D:
    """Sample ``fn`` over the cartesian grid; fn may return None.

    ``workers`` fans the grid out over processes via
    :func:`repro.analysis.parallel.map_grid` (0 = serial, None = one
    per CPU).  ``fn`` must be picklable for actual parallelism — a
    closure falls back to the serial path with a one-time
    ``RuntimeWarning`` (counted in ``parallel.pickle_fallbacks``);
    results are identical either way.  Grids below
    ``min_parallel_items`` cells (``None`` = the library default,
    :data:`repro.analysis.parallel._MIN_PARALLEL_ITEMS`; ``0``
    disables the gate) also run serially — pool overhead dominates
    cheap cells on small grids.  ``progress(done_cells, total_cells)``
    is invoked as cells complete (per chunk on the parallel path, per
    cell on the serial one).

    With ``store`` (a :class:`repro.store.ResultStore`) and
    ``store_key`` (a stable digest of the sweep inputs — see
    :func:`repro.store.request_digest`) the sweep is **checkpointed
    and resumable**: completed cells are persisted in chunks of
    ``checkpoint_every`` (immediately per chunk on the parallel path),
    a re-run restores them and computes only the gap, and the result
    is bit-identical to an unstored serial run.

    ``scheduler`` (a :class:`repro.sched.Scheduler`) routes the
    fan-out through the durable work queue instead of the in-process
    pool — any number of worker processes/hosts evaluate the cells,
    ``workers`` is ignored, and the assembled grid stays bit-identical
    to the serial path (combinable with ``store`` for checkpointed
    scheduler sweeps).
    """
    if not xs or not ys:
        raise AnalysisError("empty sweep grid")
    if min_parallel_items is None:
        from repro.analysis.parallel import _MIN_PARALLEL_ITEMS

        min_parallel_items = _MIN_PARALLEL_ITEMS
    if store is not None:
        if not store_key:
            raise AnalysisError(
                "a store-backed sweep needs a store_key identifying "
                "its inputs"
            )
        grid = _checkpointed_grid(
            xs, ys, fn, workers, progress, store, store_key,
            checkpoint_every, scheduler=scheduler,
            min_parallel_items=min_parallel_items,
        )
    elif scheduler is not None:
        from repro.analysis.parallel import _PairFn

        n_y = len(ys)
        pairs = [(x, y) for x in xs for y in ys]
        flat = _fanout_items(
            _PairFn(fn), pairs, workers, scheduler, progress=progress
        )
        grid = tuple(
            tuple(
                None if value is None else float(value)
                for value in flat[i * n_y : (i + 1) * n_y]
            )
            for i in range(len(xs))
        )
    elif workers == 0:
        total = len(xs) * len(ys)
        done = 0
        rows = []
        for x in xs:
            row = []
            for y in ys:
                value = fn(x, y)
                row.append(None if value is None else float(value))
                done += 1
                if progress is not None:
                    progress(done, total)
            rows.append(tuple(row))
        grid = tuple(rows)
    else:
        from repro.analysis.parallel import map_grid

        grid = tuple(
            tuple(
                None if value is None else float(value) for value in row
            )
            for row in map_grid(
                fn, xs, ys, workers=workers, progress=progress,
                min_parallel_items=min_parallel_items,
            )
        )
    return Sweep2D(
        x_name=x_name,
        y_name=y_name,
        z_name=z_name,
        xs=tuple(float(x) for x in xs),
        ys=tuple(float(y) for y in ys),
        zs=grid,
    )
