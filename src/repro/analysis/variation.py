"""Monte-Carlo threshold-variation analysis (extension).

Aggressive voltage scaling amplifies process variation: gate delay
goes as ``(V_DD - V_T)^-alpha``, so the same V_T spread that is noise
at 3 V becomes a large delay spread at 0.3 V; and because leakage is
exponential in V_T, the *mean* leakage of many devices exceeds the
nominal-V_T leakage (a lognormal mean shift).  Both effects bear
directly on how far the paper's (V_DD, V_T) optimization can be pushed
on real silicon.

:class:`MonteCarloAnalyzer` samples per-device V_T offsets and reports
delay and leakage distributions for any cell; the closed-form
lognormal mean amplification is provided for cross-checking.

Every distribution is evaluated through the **batched variation
engine**: the analyzer asks its characterizer for one
:class:`~repro.tech.batch.VariationPlan` per (cell, V_DD, load) corner
and pushes the whole shift vector through it, instead of running the
full characterization call chain once per sample.  The serial,
``workers``, and ``store``-checkpointed paths all use plans — on the
parallel path each worker decodes the corner once and evaluates its
chunks through it — and all three remain bit-identical to the
per-sample path (asserted by the differential property tests and the
``variation`` section of ``bench_hotpaths.py``).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.device.technology import Technology
from repro.errors import AnalysisError
from repro.tech.cells import Cell
from repro.tech.characterize import CellCharacterizer
from repro.units import LN10

__all__ = [
    "Distribution",
    "MonteCarloAnalyzer",
    "lognormal_leakage_amplification",
]

#: Per-process characterizer cache for the parallel Monte-Carlo path —
#: each worker decodes the corner once (the plan is memoized on its
#: characterizer) and reuses it across the chunks it is handed.  Keyed
#: by the (hashable) Technology value.
_WORKER_CHARACTERIZERS: dict = {}

#: Eviction bound on the per-process cache: a long-lived worker serving
#: sweeps over many technologies would otherwise accumulate one
#: unbounded memo per technology (oldest-first eviction, FIFO).
_MAX_WORKER_CHARACTERIZERS = 8


def _characterizer_for(technology: Technology) -> CellCharacterizer:
    characterizer = _WORKER_CHARACTERIZERS.get(technology)
    if characterizer is None:
        while len(_WORKER_CHARACTERIZERS) >= _MAX_WORKER_CHARACTERIZERS:
            _WORKER_CHARACTERIZERS.pop(next(iter(_WORKER_CHARACTERIZERS)))
        characterizer = CellCharacterizer(technology)
        _WORKER_CHARACTERIZERS[technology] = characterizer
    return characterizer


def _batched_chunk(task) -> List[float]:
    """Evaluate one chunk of V_T shifts through a per-process plan."""
    kind, technology, cell, vdd, load_f, shifts = task
    plan = _characterizer_for(technology).plan_variation(cell, vdd, load_f)
    if kind == "delay":
        return plan.delays(shifts)
    return plan.leakages(shifts)


def _shift_chunks(
    shifts: Sequence[float], workers: Optional[int]
) -> List[Tuple[float, ...]]:
    """Split a shift vector into the chunks the pool would form.

    Mirrors ``map_items``'s own chunk sizing so each worker receives
    about four plan-sized batches, keeping the pool busy without
    paying per-sample IPC.
    """
    from repro.analysis.parallel import _chunksize, resolve_workers

    count = max(resolve_workers(workers), 1)
    size = _chunksize(len(shifts), count)
    return [
        tuple(shifts[i : i + size]) for i in range(0, len(shifts), size)
    ]


@dataclass(frozen=True)
class Distribution:
    """Summary of a sampled quantity.

    Moments and the sorted sample view are computed once on first use
    and cached on the (frozen) instance, so ``percentile`` does not
    re-sort the tuple per call — ``timing_yield_vdd``'s 40-step
    bisection used to sort the same 300 samples on every probe.
    """

    samples: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.samples) < 2:
            raise AnalysisError("need at least two samples")
        object.__setattr__(self, "_moments", None)
        object.__setattr__(self, "_ordered", None)

    def _stats(self) -> Tuple[float, float]:
        moments = self._moments
        if moments is None:
            mu = sum(self.samples) / len(self.samples)
            std = math.sqrt(
                sum((x - mu) ** 2 for x in self.samples)
                / (len(self.samples) - 1)
            )
            moments = (mu, std)
            object.__setattr__(self, "_moments", moments)
        return moments

    @property
    def mean(self) -> float:
        """Sample mean."""
        return self._stats()[0]

    @property
    def std(self) -> float:
        """Sample standard deviation (n-1)."""
        return self._stats()[1]

    @property
    def coefficient_of_variation(self) -> float:
        """std / mean — the spread metric that grows at low V_DD."""
        mu, std = self._stats()
        if mu == 0.0:
            raise AnalysisError("mean is zero; CV undefined")
        return std / mu

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, p in [0, 100]."""
        if not 0.0 <= p <= 100.0:
            raise AnalysisError("percentile must be in [0, 100]")
        ordered = self._ordered
        if ordered is None:
            ordered = sorted(self.samples)
            object.__setattr__(self, "_ordered", ordered)
        position = p / 100.0 * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def lognormal_leakage_amplification(
    vt_sigma: float, subthreshold_swing: float
) -> float:
    """Closed-form mean-leakage amplification from V_T spread.

    With ``I = I0 * 10^(-dVT / S)`` and Gaussian ``dVT``, the current is
    lognormal with ``sigma_ln = vt_sigma * ln10 / S`` and mean
    ``exp(sigma_ln^2 / 2)`` times the nominal — why chips leak more
    than their nominal corner says.
    """
    if vt_sigma < 0.0 or subthreshold_swing <= 0.0:
        raise AnalysisError("bad sigma or swing")
    sigma_ln = vt_sigma * LN10 / subthreshold_swing
    return math.exp(sigma_ln**2 / 2.0)


class MonteCarloAnalyzer:
    """Samples per-instance V_T offsets and characterizes the spread."""

    def __init__(
        self,
        technology: Technology,
        vt_sigma: float = 0.03,
        n_samples: int = 300,
        seed: int = 0,
        workers: int = 0,
        store=None,
        progress=None,
        scheduler=None,
    ):
        if vt_sigma < 0.0:
            raise AnalysisError("vt_sigma must be >= 0")
        if n_samples < 2:
            raise AnalysisError("need at least two samples")
        self.technology = technology
        self.vt_sigma = vt_sigma
        self.n_samples = n_samples
        self.seed = seed
        self.workers = workers
        self.store = store
        self.progress = progress
        #: Optional :class:`repro.sched.Scheduler`: evaluates sample
        #: chunks through the durable work queue instead of the
        #: in-process pool (``workers`` is then ignored; chunk planning
        #: follows the scheduler's deterministic ``plan_workers``).
        self.scheduler = scheduler
        self._characterizer = CellCharacterizer(technology)
        self._tech_digest: str = ""

    def _request_key(self, kind: str, *parts) -> str:
        """Canonical key for one distribution request on this analyzer."""
        from repro.store.hashing import request_digest, technology_digest

        if not self._tech_digest:
            self._tech_digest = technology_digest(self.technology)
        return request_digest(
            kind,
            self._tech_digest,
            self.vt_sigma,
            self.n_samples,
            self.seed,
            *parts,
        )

    # ------------------------------------------------------------------
    # Evaluation paths (all plan-based)
    # ------------------------------------------------------------------
    def _chunk_width(self) -> Optional[int]:
        """Fan-out width used for chunk planning.

        With a scheduler the plan must be deterministic across hosts
        (it feeds the job id), so the scheduler's fixed
        ``plan_workers`` replaces this process's worker count.
        """
        if self.scheduler is not None:
            return self.scheduler.plan_workers
        return self.workers

    def _fanout(
        self, kind: str, cell: Cell, vdd: float, load_f: float, shifts
    ) -> Tuple[float, ...]:
        """Evaluate the shift vector across processes, chunk-batched."""
        from repro.analysis.sweep import _fanout_items

        tasks = [
            (kind, self.technology, cell, vdd, load_f, chunk)
            for chunk in _shift_chunks(shifts, self._chunk_width())
        ]
        chunks = _fanout_items(
            _batched_chunk,
            tasks,
            self.workers,
            self.scheduler,
            progress=self.progress,
        )
        return tuple(value for chunk in chunks for value in chunk)

    def _checkpointed_batches(
        self, key: str, kind: str, cell: Cell, vdd: float, load_f: float,
        shifts,
    ) -> Tuple[float, ...]:
        """Evaluate the shift vector through a sweep checkpoint.

        Restores already-persisted samples, batch-evaluates only the
        gap (serial or fanned out per ``self.workers``), and persists
        completed batches as they finish — the Monte-Carlo twin of the
        checkpointed grid sweep.  Sample indices and stored values are
        identical to the per-sample checkpoint layout, so checkpoints
        written before the batched engine resume cleanly under it.
        """
        from repro.analysis.sweep import _fanout_items
        from repro.store.checkpoint import SweepCheckpoint

        checkpoint = SweepCheckpoint(self.store, key, len(shifts))
        samples = checkpoint.restored()
        missing = [i for i in range(len(shifts)) if i not in samples]
        if missing:
            if self.workers == 0 and self.scheduler is None:
                plan = self._characterizer.plan_variation(cell, vdd, load_f)
                evaluate = plan.delays if kind == "delay" else plan.leakages
                # Evaluate in flush-sized batches so a crash loses at
                # most one buffer, exactly as the per-sample path did.
                step = checkpoint.flush_every
                for start in range(0, len(missing), step):
                    block = missing[start : start + step]
                    values = evaluate([shifts[i] for i in block])
                    for index, value in zip(block, values):
                        samples[index] = value
                        checkpoint.record(index, value)
            else:
                chunks = _shift_chunks(
                    [shifts[i] for i in missing], self._chunk_width()
                )
                tasks = []
                offsets = []
                offset = 0
                for chunk in chunks:
                    tasks.append(
                        (kind, self.technology, cell, vdd, load_f, chunk)
                    )
                    offsets.append(offset)
                    offset += len(chunk)

                def on_chunk(positions, values) -> None:
                    cells = []
                    for position, chunk_values in zip(positions, values):
                        base = offsets[position]
                        cells.extend(
                            (missing[base + k], float(value))
                            for k, value in enumerate(chunk_values)
                        )
                    samples.update(cells)
                    checkpoint.record_many(cells)

                _fanout_items(
                    _batched_chunk,
                    tasks,
                    self.workers,
                    self.scheduler,
                    progress=self.progress,
                    chunk_done=on_chunk,
                )
        checkpoint.finalize()
        return tuple(samples[i] for i in range(len(shifts)))

    def _distribution(
        self, key, kind: str, cell: Cell, vdd: float, load_f: float
    ) -> Distribution:
        shifts = self.sample_vt_shifts()
        if self.store is not None:
            samples = self._checkpointed_batches(
                key, kind, cell, vdd, load_f, shifts
            )
        elif self.workers == 0 and self.scheduler is None:
            plan = self._characterizer.plan_variation(cell, vdd, load_f)
            evaluate = plan.delays if kind == "delay" else plan.leakages
            samples = tuple(evaluate(shifts))
        else:
            samples = self._fanout(kind, cell, vdd, load_f, shifts)
        return Distribution(samples=samples)

    def sample_vt_shifts(self) -> List[float]:
        """Deterministic Gaussian V_T offsets (one per sample)."""
        rng = random.Random(self.seed)
        return [
            rng.gauss(0.0, self.vt_sigma) for _ in range(self.n_samples)
        ]

    def delay_distribution(
        self, cell: Cell, vdd: float, load_f: float = 10e-15
    ) -> Distribution:
        """Cell delay across the V_T samples at one supply.

        With ``workers`` set on the analyzer the samples fan out over
        processes; the sampled values (and their order) are identical
        to the serial path because each sample is a pure function of
        its deterministic V_T shift.  With a ``store`` on the analyzer
        the samples are checkpointed and restored across runs (keyed
        by technology, cell, operating point, and the sampling
        parameters), again bit-identical.
        """
        key = None
        if self.store is not None:
            from repro.store.hashing import cell_digest

            key = self._request_key(
                "mc-delay", cell_digest(cell), vdd, load_f
            )
        return self._distribution(key, "delay", cell, vdd, load_f)

    def leakage_distribution(
        self, cell: Cell, vdd: float
    ) -> Distribution:
        """Cell leakage across the V_T samples at one supply.

        Store/workers semantics match :meth:`delay_distribution`.
        """
        key = None
        if self.store is not None:
            from repro.store.hashing import cell_digest

            key = self._request_key("mc-leakage", cell_digest(cell), vdd)
        return self._distribution(key, "leakage", cell, vdd, 0.0)

    def leakage_amplification(self, cell: Cell, vdd: float) -> float:
        """Measured mean-vs-nominal leakage ratio (cf. the closed form)."""
        nominal = self._characterizer.leakage_current(cell, vdd)
        if nominal <= 0.0:
            raise AnalysisError("nominal leakage is zero")
        return self.leakage_distribution(cell, vdd).mean / nominal

    def delay_spread_vs_vdd(
        self, cell: Cell, vdds: Sequence[float], load_f: float = 10e-15
    ) -> List[Tuple[float, float]]:
        """(V_DD, delay CV) pairs: the low-voltage variation penalty.

        Each supply point reuses its memoized plan on repeat visits —
        sweeping the same supplies again costs only the vector loops.
        """
        if not vdds:
            raise AnalysisError("empty supply sweep")
        return [
            (
                vdd,
                self.delay_distribution(
                    cell, vdd, load_f
                ).coefficient_of_variation,
            )
            for vdd in vdds
        ]

    def timing_yield_vdd(
        self,
        cell: Cell,
        target_delay_s: float,
        percentile: float = 99.0,
        load_f: float = 10e-15,
        vdd_bounds: Tuple[float, float] = (0.1, 2.0),
    ) -> float:
        """Supply at which the p-th percentile delay meets the target.

        The variation-aware version of Fig. 3's V_DD-for-delay solve:
        guard-banding the supply so slow-corner devices still make
        timing.  Each bisection V_DD decodes one plan and evaluates the
        shift vector through it, and the per-V_DD percentile is
        memoized within the solve, so revisiting a bracket endpoint is
        free.
        """
        if target_delay_s <= 0.0:
            raise AnalysisError("target delay must be positive")
        low, high = float(vdd_bounds[0]), float(vdd_bounds[1])
        if not 0.0 < low < high:
            raise AnalysisError(f"bad vdd bounds [{low}, {high}]")

        solved: dict = {}

        def worst_delay(vdd: float) -> float:
            result = solved.get(vdd)
            if result is None:
                result = self.delay_distribution(
                    cell, vdd, load_f
                ).percentile(percentile)
                solved[vdd] = result
            return result

        if worst_delay(high) > target_delay_s:
            raise AnalysisError(
                f"target unreachable even at V_DD = {high} V"
            )
        if worst_delay(low) < target_delay_s:
            return low
        for _ in range(40):
            mid = 0.5 * (low + high)
            if worst_delay(mid) > target_delay_s:
                low = mid
            else:
                high = mid
        return 0.5 * (low + high)
