"""Monte-Carlo threshold-variation analysis (extension).

Aggressive voltage scaling amplifies process variation: gate delay
goes as ``(V_DD - V_T)^-alpha``, so the same V_T spread that is noise
at 3 V becomes a large delay spread at 0.3 V; and because leakage is
exponential in V_T, the *mean* leakage of many devices exceeds the
nominal-V_T leakage (a lognormal mean shift).  Both effects bear
directly on how far the paper's (V_DD, V_T) optimization can be pushed
on real silicon.

:class:`MonteCarloAnalyzer` samples per-device V_T offsets and reports
delay and leakage distributions for any cell; the closed-form
lognormal mean amplification is provided for cross-checking.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.device.technology import Technology
from repro.errors import AnalysisError
from repro.tech.cells import Cell
from repro.tech.characterize import CellCharacterizer
from repro.units import LN10

__all__ = [
    "Distribution",
    "MonteCarloAnalyzer",
    "lognormal_leakage_amplification",
]

#: Per-process characterizer cache for the parallel Monte-Carlo path —
#: each worker builds the corner once and reuses its memo across the
#: samples in its chunk.  Keyed by the (hashable) Technology value.
_WORKER_CHARACTERIZERS: dict = {}

#: Eviction bound on the per-process cache: a long-lived worker serving
#: sweeps over many technologies would otherwise accumulate one
#: unbounded memo per technology (oldest-first eviction, FIFO).
_MAX_WORKER_CHARACTERIZERS = 8


def _characterizer_for(technology: Technology) -> CellCharacterizer:
    characterizer = _WORKER_CHARACTERIZERS.get(technology)
    if characterizer is None:
        while len(_WORKER_CHARACTERIZERS) >= _MAX_WORKER_CHARACTERIZERS:
            _WORKER_CHARACTERIZERS.pop(next(iter(_WORKER_CHARACTERIZERS)))
        characterizer = CellCharacterizer(technology)
        _WORKER_CHARACTERIZERS[technology] = characterizer
    return characterizer


def _delay_sample(task) -> float:
    technology, cell, vdd, load_f, shift = task
    return _characterizer_for(technology).propagation_delay(
        cell, vdd, load_f, vt_shift=shift
    )


def _leakage_sample(task) -> float:
    technology, cell, vdd, shift = task
    return _characterizer_for(technology).leakage_current(
        cell, vdd, vt_shift=shift
    )


@dataclass(frozen=True)
class Distribution:
    """Summary of a sampled quantity."""

    samples: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.samples) < 2:
            raise AnalysisError("need at least two samples")

    @property
    def mean(self) -> float:
        """Sample mean."""
        return sum(self.samples) / len(self.samples)

    @property
    def std(self) -> float:
        """Sample standard deviation (n-1)."""
        mu = self.mean
        return math.sqrt(
            sum((x - mu) ** 2 for x in self.samples)
            / (len(self.samples) - 1)
        )

    @property
    def coefficient_of_variation(self) -> float:
        """std / mean — the spread metric that grows at low V_DD."""
        mu = self.mean
        if mu == 0.0:
            raise AnalysisError("mean is zero; CV undefined")
        return self.std / mu

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, p in [0, 100]."""
        if not 0.0 <= p <= 100.0:
            raise AnalysisError("percentile must be in [0, 100]")
        ordered = sorted(self.samples)
        position = p / 100.0 * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def lognormal_leakage_amplification(
    vt_sigma: float, subthreshold_swing: float
) -> float:
    """Closed-form mean-leakage amplification from V_T spread.

    With ``I = I0 * 10^(-dVT / S)`` and Gaussian ``dVT``, the current is
    lognormal with ``sigma_ln = vt_sigma * ln10 / S`` and mean
    ``exp(sigma_ln^2 / 2)`` times the nominal — why chips leak more
    than their nominal corner says.
    """
    if vt_sigma < 0.0 or subthreshold_swing <= 0.0:
        raise AnalysisError("bad sigma or swing")
    sigma_ln = vt_sigma * LN10 / subthreshold_swing
    return math.exp(sigma_ln**2 / 2.0)


class MonteCarloAnalyzer:
    """Samples per-instance V_T offsets and characterizes the spread."""

    def __init__(
        self,
        technology: Technology,
        vt_sigma: float = 0.03,
        n_samples: int = 300,
        seed: int = 0,
        workers: int = 0,
        store=None,
    ):
        if vt_sigma < 0.0:
            raise AnalysisError("vt_sigma must be >= 0")
        if n_samples < 2:
            raise AnalysisError("need at least two samples")
        self.technology = technology
        self.vt_sigma = vt_sigma
        self.n_samples = n_samples
        self.seed = seed
        self.workers = workers
        self.store = store
        self._characterizer = CellCharacterizer(technology)
        self._tech_digest: str = ""

    def _request_key(self, kind: str, *parts) -> str:
        """Canonical key for one distribution request on this analyzer."""
        from repro.store.hashing import request_digest, technology_digest

        if not self._tech_digest:
            self._tech_digest = technology_digest(self.technology)
        return request_digest(
            kind,
            self._tech_digest,
            self.vt_sigma,
            self.n_samples,
            self.seed,
            *parts,
        )

    def _checkpointed_samples(self, key, tasks, worker_fn, serial_fn):
        """Evaluate per-sample tasks through a sweep checkpoint.

        Restores already-persisted samples, computes only the gap
        (serial or fanned out per ``self.workers``), and persists
        completed chunks as they finish — the Monte-Carlo twin of the
        checkpointed grid sweep.
        """
        from repro.analysis.parallel import map_items
        from repro.store.checkpoint import SweepCheckpoint

        checkpoint = SweepCheckpoint(self.store, key, len(tasks))
        samples = checkpoint.restored()
        missing = [i for i in range(len(tasks)) if i not in samples]
        if missing:
            if self.workers == 0:
                for index in missing:
                    value = serial_fn(tasks[index])
                    samples[index] = value
                    checkpoint.record(index, value)
            else:
                def on_chunk(positions, values) -> None:
                    chunk = [
                        (missing[position], float(value))
                        for position, value in zip(positions, values)
                    ]
                    samples.update(chunk)
                    checkpoint.record_many(chunk)

                map_items(
                    worker_fn,
                    [tasks[index] for index in missing],
                    workers=self.workers,
                    chunk_done=on_chunk,
                )
        checkpoint.finalize()
        return tuple(samples[i] for i in range(len(tasks)))

    def sample_vt_shifts(self) -> List[float]:
        """Deterministic Gaussian V_T offsets (one per sample)."""
        rng = random.Random(self.seed)
        return [
            rng.gauss(0.0, self.vt_sigma) for _ in range(self.n_samples)
        ]

    def delay_distribution(
        self, cell: Cell, vdd: float, load_f: float = 10e-15
    ) -> Distribution:
        """Cell delay across the V_T samples at one supply.

        With ``workers`` set on the analyzer the samples fan out over
        processes; the sampled values (and their order) are identical
        to the serial path because each sample is a pure function of
        its deterministic V_T shift.  With a ``store`` on the analyzer
        the samples are checkpointed and restored across runs (keyed
        by technology, cell, operating point, and the sampling
        parameters), again bit-identical.
        """
        shifts = self.sample_vt_shifts()
        tasks = [
            (self.technology, cell, vdd, load_f, shift) for shift in shifts
        ]
        if self.store is not None:
            from repro.store.hashing import cell_digest

            samples = self._checkpointed_samples(
                self._request_key("mc-delay", cell_digest(cell), vdd, load_f),
                tasks,
                _delay_sample,
                lambda task: self._characterizer.propagation_delay(
                    task[1], task[2], task[3], vt_shift=task[4]
                ),
            )
        elif self.workers == 0:
            samples = tuple(
                self._characterizer.propagation_delay(
                    cell, vdd, load_f, vt_shift=shift
                )
                for shift in shifts
            )
        else:
            from repro.analysis.parallel import map_items

            samples = tuple(map_items(
                _delay_sample, tasks, workers=self.workers,
            ))
        return Distribution(samples=samples)

    def leakage_distribution(
        self, cell: Cell, vdd: float
    ) -> Distribution:
        """Cell leakage across the V_T samples at one supply.

        Store/workers semantics match :meth:`delay_distribution`.
        """
        shifts = self.sample_vt_shifts()
        tasks = [(self.technology, cell, vdd, shift) for shift in shifts]
        if self.store is not None:
            from repro.store.hashing import cell_digest

            samples = self._checkpointed_samples(
                self._request_key("mc-leakage", cell_digest(cell), vdd),
                tasks,
                _leakage_sample,
                lambda task: self._characterizer.leakage_current(
                    task[1], task[2], vt_shift=task[3]
                ),
            )
        elif self.workers == 0:
            samples = tuple(
                self._characterizer.leakage_current(
                    cell, vdd, vt_shift=shift
                )
                for shift in shifts
            )
        else:
            from repro.analysis.parallel import map_items

            samples = tuple(map_items(
                _leakage_sample, tasks, workers=self.workers,
            ))
        return Distribution(samples=samples)

    def leakage_amplification(self, cell: Cell, vdd: float) -> float:
        """Measured mean-vs-nominal leakage ratio (cf. the closed form)."""
        nominal = self._characterizer.leakage_current(cell, vdd)
        if nominal <= 0.0:
            raise AnalysisError("nominal leakage is zero")
        return self.leakage_distribution(cell, vdd).mean / nominal

    def delay_spread_vs_vdd(
        self, cell: Cell, vdds: Sequence[float], load_f: float = 10e-15
    ) -> List[Tuple[float, float]]:
        """(V_DD, delay CV) pairs: the low-voltage variation penalty."""
        if not vdds:
            raise AnalysisError("empty supply sweep")
        return [
            (
                vdd,
                self.delay_distribution(
                    cell, vdd, load_f
                ).coefficient_of_variation,
            )
            for vdd in vdds
        ]

    def timing_yield_vdd(
        self,
        cell: Cell,
        target_delay_s: float,
        percentile: float = 99.0,
        load_f: float = 10e-15,
        vdd_bounds: Tuple[float, float] = (0.1, 2.0),
    ) -> float:
        """Supply at which the p-th percentile delay meets the target.

        The variation-aware version of Fig. 3's V_DD-for-delay solve:
        guard-banding the supply so slow-corner devices still make
        timing.
        """
        if target_delay_s <= 0.0:
            raise AnalysisError("target delay must be positive")
        low, high = float(vdd_bounds[0]), float(vdd_bounds[1])
        if not 0.0 < low < high:
            raise AnalysisError(f"bad vdd bounds [{low}, {high}]")

        def worst_delay(vdd: float) -> float:
            return self.delay_distribution(cell, vdd, load_f).percentile(
                percentile
            )

        if worst_delay(high) > target_delay_s:
            raise AnalysisError(
                f"target unreachable even at V_DD = {high} V"
            )
        if worst_delay(low) < target_delay_s:
            return low
        for _ in range(40):
            mid = 0.5 * (low + high)
            if worst_delay(mid) > target_delay_s:
                low = mid
            else:
                high = mid
        return 0.5 * (low + high)
