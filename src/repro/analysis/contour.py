"""The Fig. 10 energy-ratio surface and break-even contour.

Fig. 10 plots ``log10(E_SOIAS / E_SOI)`` over the (fga, bga) plane.
The zero contour is the break-even locus: applications below it save
energy with SOIAS.  Setting Eq. 3 equal to Eq. 4 gives the break-even
back-gate activity in closed form::

    bga* = (1 - fga) * (I_low - I_high) * V_DD * t_cyc / (C_bg * V_bg^2)

— the leakage rescued while idle, divided by the cost of one back-gate
toggle.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.analysis.sweep import Sweep2D, sweep_2d
from repro.errors import AnalysisError
from repro.power.energy import (
    ModuleEnergyParameters,
    e_soi,
    e_soias,
)

__all__ = [
    "ApplicationPoint",
    "RatioSurface",
    "RefinedSurface",
    "energy_ratio_surface",
    "breakeven_bga",
    "zero_crossing_cells",
]

#: Subdivision-depth bound: each level doubles both axes, so 10 levels
#: already turn a 24-point axis into ~23k points.
_MAX_REFINE_LEVELS = 10


def _defined_straddle(corners: Sequence[Optional[float]]) -> bool:
    """True when the defined corner values bracket zero."""
    defined = [value for value in corners if value is not None]
    if not defined:
        return False
    return min(defined) < 0.0 < max(defined)


def _interesting(
    corners: Sequence[Optional[float]], band: float
) -> bool:
    """Refinement criterion: the cell straddles or nears the contour.

    The surface is monotone in bga, so a sign change across the
    defined corners locates the contour exactly; the |value| <= band
    test additionally catches cells whose corners are all undefined
    but one (the contour can hide behind the infeasible bga > fga
    triangle) and cells the contour merely grazes.
    """
    defined = [value for value in corners if value is not None]
    if not defined:
        return False
    if min(defined) < 0.0 < max(defined):
        return True
    return any(abs(value) <= band for value in defined)


def zero_crossing_cells(
    zs: Sequence[Sequence[Optional[float]]],
) -> Tuple[Tuple[int, int], ...]:
    """Grid cells (by lower-corner index) whose corners bracket zero.

    The uniform-grid counterpart of
    :meth:`RefinedSurface.zero_cells`, used to verify that adaptive
    refinement resolves the same contour as a full grid.
    """
    cells = []
    for i in range(len(zs) - 1):
        row, next_row = zs[i], zs[i + 1]
        for j in range(len(row) - 1):
            corners = (row[j], row[j + 1], next_row[j], next_row[j + 1])
            if _defined_straddle(corners):
                cells.append((i, j))
    return tuple(cells)


@dataclass(frozen=True)
class RefinedSurface:
    """Adaptively refined view of a ratio surface near its contour.

    ``xs``/``ys`` are the finest-level axes (every base interval
    subdivided ``levels`` times); ``indices``/``values`` hold the
    sparse set of evaluated points on that lattice — the full base
    grid plus the midpoints spawned inside cells that straddle or
    near the break-even contour.  Points far from the contour are
    never evaluated, which is the entire saving.
    """

    levels: int
    band: float
    xs: Tuple[float, ...]
    ys: Tuple[float, ...]
    indices: Tuple[Tuple[int, int], ...]
    values: Tuple[Optional[float], ...]
    cells_refined: int
    cells_skipped: int

    def known(self) -> Dict[Tuple[int, int], Optional[float]]:
        """Evaluated finest-lattice points as an ``{(i, j): z}`` map."""
        return dict(zip(self.indices, self.values))

    def value_at(self, i: int, j: int) -> Optional[float]:
        """Value at one finest-lattice point (raises if unevaluated)."""
        try:
            return self.known()[(i, j)]
        except KeyError:
            raise AnalysisError(
                f"point ({i}, {j}) was not evaluated (outside the "
                f"refinement band)"
            )

    @property
    def evaluated(self) -> int:
        """Number of points actually evaluated."""
        return len(self.indices)

    @property
    def total_points(self) -> int:
        """Points a uniform grid at finest resolution would evaluate."""
        return len(self.xs) * len(self.ys)

    @property
    def coverage(self) -> float:
        """Evaluated fraction of the equivalent uniform grid."""
        return self.evaluated / self.total_points

    def zero_cells(self) -> Tuple[Tuple[int, int], ...]:
        """Finest-level cells whose evaluated corners bracket zero.

        Only cells with all four corners evaluated qualify — exactly
        the cells inside the refinement band, where the contour is.
        """
        known = self.known()
        cells = []
        for i in range(len(self.xs) - 1):
            for j in range(len(self.ys) - 1):
                missing = object()
                corners = (
                    known.get((i, j), missing),
                    known.get((i, j + 1), missing),
                    known.get((i + 1, j), missing),
                    known.get((i + 1, j + 1), missing),
                )
                if missing in corners:
                    continue
                if _defined_straddle(corners):
                    cells.append((i, j))
        return tuple(cells)


@dataclass(frozen=True)
class ApplicationPoint:
    """One profiled application/unit pair placed on the Fig. 10 plane."""

    label: str
    fga: float
    bga: float
    log10_ratio: float

    @property
    def soias_wins(self) -> bool:
        """Below the zero contour: SOIAS dissipates less than SOI."""
        return self.log10_ratio < 0.0

    @property
    def saving_fraction(self) -> float:
        """Energy saved by SOIAS relative to SOI (negative = loss)."""
        return 1.0 - 10.0**self.log10_ratio


@dataclass(frozen=True)
class RatioSurface:
    """log10(E_SOIAS/E_SOI) over the (fga, bga) plane for one module."""

    module: ModuleEnergyParameters
    vdd: float
    t_cycle_s: float
    grid: Sweep2D
    #: Present when the surface was computed with ``refine_levels > 0``.
    refined: Optional[RefinedSurface] = field(default=None)

    def log10_ratio(self, fga: float, bga: float) -> float:
        """Exact surface value at one (fga, bga)."""
        soi = e_soi(self.module, fga, self.vdd, self.t_cycle_s)
        soias = e_soias(self.module, fga, bga, self.vdd, self.t_cycle_s)
        if soi <= 0.0 or soias <= 0.0:
            raise AnalysisError("energies must be positive for a ratio")
        return math.log10(soias / soi)

    def application_point(
        self, label: str, fga: float, bga: float
    ) -> ApplicationPoint:
        """Place a profiled application on the surface."""
        return ApplicationPoint(
            label=label,
            fga=fga,
            bga=bga,
            log10_ratio=self.log10_ratio(fga, bga),
        )

    def breakeven_contour(
        self, fga_values: Sequence[float]
    ) -> List[Optional[float]]:
        """bga* at each fga (None where break-even exceeds fga).

        A None entry means SOIAS wins for *every* admissible bga at
        that fga — or, when bga* is zero or negative, that it can
        never win.
        """
        contour: List[Optional[float]] = []
        for fga in fga_values:
            bga_star = breakeven_bga(
                self.module, fga, self.vdd, self.t_cycle_s
            )
            if bga_star is not None and bga_star > fga:
                bga_star = None
            contour.append(bga_star)
        return contour


def breakeven_bga(
    module: ModuleEnergyParameters,
    fga: float,
    vdd: float,
    t_cycle_s: float,
) -> Optional[float]:
    """Closed-form break-even back-gate activity, or None if undefined.

    Returns None when the module has no back-gate capacitance (the
    overhead term vanishes, so SOIAS wins at any bga when it rescues
    leakage).
    """
    if not 0.0 <= fga <= 1.0:
        raise AnalysisError(f"fga must be in [0, 1], got {fga}")
    if vdd <= 0.0 or t_cycle_s <= 0.0:
        raise AnalysisError("vdd and cycle time must be positive")
    overhead = module.back_gate_capacitance_f * module.back_gate_swing_v**2
    rescued = (
        (1.0 - fga)
        * (module.leakage_low_vt_a - module.leakage_high_vt_a)
        * vdd
        * t_cycle_s
    )
    if overhead <= 0.0:
        return None
    return rescued / overhead


def _ratio_cell(
    module: ModuleEnergyParameters,
    vdd: float,
    t_cycle_s: float,
    fga: float,
    bga: float,
) -> Optional[float]:
    """One surface cell; module-level so the grid fan-out can pickle it."""
    if bga > fga:
        return None
    soi = e_soi(module, fga, vdd, t_cycle_s)
    soias = e_soias(module, fga, bga, vdd, t_cycle_s)
    if soi <= 0.0 or soias <= 0.0:
        return None
    return math.log10(soias / soi)


def _subdivide_axis(
    values: Sequence[float], levels: int
) -> Tuple[float, ...]:
    """Insert midpoints into every interval, ``levels`` times over."""
    axis = [float(value) for value in values]
    for _ in range(levels):
        finer = []
        for left, right in zip(axis[:-1], axis[1:]):
            finer.append(left)
            finer.append(0.5 * (left + right))
        finer.append(axis[-1])
        axis = finer
    return tuple(axis)


def _evaluate_points(
    cell: Callable[[float, float], Optional[float]],
    points: Sequence[Tuple[int, int]],
    xs: Sequence[float],
    ys: Sequence[float],
    workers: int,
    progress,
    store,
    store_key: Optional[str],
    checkpoint_every: int,
    scheduler=None,
    min_parallel_items=None,
) -> List[Optional[float]]:
    """Evaluate sparse lattice points, checkpointed when stored.

    ``points`` must be deterministic for a given base surface — the
    flat position of each point keys its checkpoint cell, so a resumed
    run (which restores the same base grid bit-identically) addresses
    the same cells.  ``min_parallel_items`` follows the
    :func:`repro.analysis.parallel.map_items` contract: refinement
    levels usually produce far fewer points than the base grid, so
    callers with cheap cells pass the library threshold to keep small
    fan-outs off the pool.
    """
    from repro.analysis.parallel import _PairFn
    from repro.analysis.sweep import _fanout_items

    pairs = [(xs[i], ys[j]) for i, j in points]
    if store is None:
        return _fanout_items(
            _PairFn(cell), pairs, workers, scheduler, progress=progress,
            min_parallel_items=min_parallel_items,
        )
    from repro.store.checkpoint import SweepCheckpoint

    checkpoint = SweepCheckpoint(
        store, store_key, len(points), flush_every=checkpoint_every
    )
    values = checkpoint.restored()
    missing = [k for k in range(len(points)) if k not in values]
    if missing:

        def on_chunk(positions, results) -> None:
            chunk = [
                (
                    missing[position],
                    None if result is None else float(result),
                )
                for position, result in zip(positions, results)
            ]
            values.update(chunk)
            checkpoint.record_many(chunk)

        _fanout_items(
            _PairFn(cell),
            [pairs[k] for k in missing],
            workers,
            scheduler,
            progress=progress,
            chunk_done=on_chunk,
            min_parallel_items=min_parallel_items,
        )
    checkpoint.finalize()
    return [values[k] for k in range(len(points))]


def _refine_surface(
    module: ModuleEnergyParameters,
    vdd: float,
    t_cycle_s: float,
    grid: Sweep2D,
    levels: int,
    band: float,
    workers: int,
    progress,
    store,
    checkpoint_every: int,
    scheduler=None,
) -> RefinedSurface:
    """Recursively subdivide only the cells near the zero contour."""
    from repro.analysis.parallel import _MIN_PARALLEL_ITEMS

    cell = functools.partial(_ratio_cell, module, vdd, t_cycle_s)
    stride = 1 << levels
    xs = _subdivide_axis(grid.xs, levels)
    ys = _subdivide_axis(grid.ys, levels)
    known: Dict[Tuple[int, int], Optional[float]] = {}
    for i, row in enumerate(grid.zs):
        for j, value in enumerate(row):
            known[(i * stride, j * stride)] = value
    active = [
        (i * stride, j * stride)
        for i in range(len(grid.xs) - 1)
        for j in range(len(grid.ys) - 1)
    ]
    refined = 0
    skipped = 0
    for level in range(levels):
        size = stride >> level
        half = size >> 1
        targets = []
        for i, j in active:
            corners = (
                known[(i, j)],
                known[(i, j + size)],
                known[(i + size, j)],
                known[(i + size, j + size)],
            )
            if _interesting(corners, band):
                targets.append((i, j))
            else:
                skipped += 1
        refined += len(targets)
        if not targets:
            break
        # The five new points of each refined cell: edge midpoints and
        # the center.  Shared edges between neighbouring targets (and
        # points evaluated at earlier levels) dedup through the set.
        needed = sorted(
            {
                point
                for i, j in targets
                for point in (
                    (i, j + half),
                    (i + half, j),
                    (i + half, j + half),
                    (i + half, j + size),
                    (i + size, j + half),
                )
                if point not in known
            }
        )
        if needed:
            store_key = None
            if store is not None:
                from repro.store.hashing import request_digest

                store_key = request_digest(
                    "ratio-surface-refine",
                    module,
                    vdd,
                    t_cycle_s,
                    list(grid.xs),
                    list(grid.ys),
                    levels,
                    band,
                    level,
                )
            values = _evaluate_points(
                cell, needed, xs, ys, workers, progress, store,
                store_key, checkpoint_every, scheduler=scheduler,
                min_parallel_items=_MIN_PARALLEL_ITEMS,
            )
            known.update(zip(needed, values))
        active = [
            (i + di, j + dj)
            for i, j in targets
            for di in (0, half)
            for dj in (0, half)
        ]
    if obs.ENABLED:
        if refined:
            obs.incr("contour.cells_refined", refined)
        if skipped:
            obs.incr("contour.cells_skipped", skipped)
    indices = tuple(sorted(known))
    return RefinedSurface(
        levels=levels,
        band=band,
        xs=xs,
        ys=ys,
        indices=indices,
        values=tuple(known[point] for point in indices),
        cells_refined=refined,
        cells_skipped=skipped,
    )


def energy_ratio_surface(
    module: ModuleEnergyParameters,
    vdd: float,
    t_cycle_s: float,
    fga_values: Sequence[float],
    bga_values: Sequence[float],
    workers: int = 0,
    progress: Optional[Callable[[int, int], None]] = None,
    store=None,
    checkpoint_every: int = 32,
    refine_levels: int = 0,
    refine_band: float = 0.15,
    scheduler=None,
) -> RatioSurface:
    """Sample the Fig. 10 surface over a grid.

    Cells with ``bga > fga`` are physically impossible (a block cannot
    power up more often than it is used) and come back as None.
    ``workers`` parallelizes the grid across processes (0 = serial);
    the sampled surface is identical for any worker count.
    ``progress(done_cells, total_cells)`` reports completion for long
    grids.

    With ``store`` (a :class:`repro.store.ResultStore`) the grid is
    checkpointed under a canonical digest of every input — module
    parameters, operating point, and both axes — so a killed surface
    resumes from its completed chunks and an identical re-request is
    served entirely from the store.

    ``refine_levels > 0`` turns on **adaptive contour refinement**:
    after the coarse grid, cells straddling the zero contour (or with
    a corner within ``refine_band`` of it in log10) are recursively
    subdivided, each level halving the cell size — the contour ends up
    resolved at ``2^levels`` times the grid resolution while the flat
    regions of the surface are never re-sampled.  The sparse refined
    points live in ``surface.refined`` (a :class:`RefinedSurface`),
    they fan out through the same ``workers`` pool, and with a store
    each level checkpoints under its own digest so refinement resumes
    exactly like the base grid.  Every evaluated point is bit-identical
    to the same cell of a uniform finest-level grid.

    ``scheduler`` (a :class:`repro.sched.Scheduler`) evaluates the
    grid — and every refinement level — through the durable work
    queue instead of the in-process pool; ``workers`` is then ignored
    and the surface stays bit-identical to the serial path.
    """
    if refine_levels < 0:
        raise AnalysisError(
            f"refine_levels must be >= 0, got {refine_levels}"
        )
    if refine_levels > _MAX_REFINE_LEVELS:
        raise AnalysisError(
            f"refine_levels must be <= {_MAX_REFINE_LEVELS}, "
            f"got {refine_levels}"
        )
    if refine_levels > 0:
        if refine_band <= 0.0:
            raise AnalysisError(
                f"refine_band must be positive, got {refine_band}"
            )
        if len(fga_values) < 2 or len(bga_values) < 2:
            raise AnalysisError(
                "refinement needs at least two points per axis"
            )
    cell = functools.partial(_ratio_cell, module, vdd, t_cycle_s)
    store_key = None
    if store is not None:
        from repro.store.hashing import request_digest

        store_key = request_digest(
            "ratio-surface",
            module,
            vdd,
            t_cycle_s,
            [float(v) for v in fga_values],
            [float(v) for v in bga_values],
        )
    with obs.span("analysis.ratio_surface"):
        grid = sweep_2d(
            "fga",
            "bga",
            "log10(E_SOIAS/E_SOI)",
            fga_values,
            bga_values,
            cell,
            workers=workers,
            progress=progress,
            store=store,
            store_key=store_key,
            checkpoint_every=checkpoint_every,
            scheduler=scheduler,
        )
    refined = None
    if refine_levels > 0:
        with obs.span("analysis.contour_refine"):
            refined = _refine_surface(
                module, vdd, t_cycle_s, grid, refine_levels,
                refine_band, workers, progress, store, checkpoint_every,
                scheduler=scheduler,
            )
    return RatioSurface(
        module=module,
        vdd=vdd,
        t_cycle_s=t_cycle_s,
        grid=grid,
        refined=refined,
    )
