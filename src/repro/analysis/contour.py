"""The Fig. 10 energy-ratio surface and break-even contour.

Fig. 10 plots ``log10(E_SOIAS / E_SOI)`` over the (fga, bga) plane.
The zero contour is the break-even locus: applications below it save
energy with SOIAS.  Setting Eq. 3 equal to Eq. 4 gives the break-even
back-gate activity in closed form::

    bga* = (1 - fga) * (I_low - I_high) * V_DD * t_cyc / (C_bg * V_bg^2)

— the leakage rescued while idle, divided by the cost of one back-gate
toggle.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro import obs
from repro.analysis.sweep import Sweep2D, sweep_2d
from repro.errors import AnalysisError
from repro.power.energy import (
    ModuleEnergyParameters,
    e_soi,
    e_soias,
)

__all__ = [
    "ApplicationPoint",
    "RatioSurface",
    "energy_ratio_surface",
    "breakeven_bga",
]


@dataclass(frozen=True)
class ApplicationPoint:
    """One profiled application/unit pair placed on the Fig. 10 plane."""

    label: str
    fga: float
    bga: float
    log10_ratio: float

    @property
    def soias_wins(self) -> bool:
        """Below the zero contour: SOIAS dissipates less than SOI."""
        return self.log10_ratio < 0.0

    @property
    def saving_fraction(self) -> float:
        """Energy saved by SOIAS relative to SOI (negative = loss)."""
        return 1.0 - 10.0**self.log10_ratio


@dataclass(frozen=True)
class RatioSurface:
    """log10(E_SOIAS/E_SOI) over the (fga, bga) plane for one module."""

    module: ModuleEnergyParameters
    vdd: float
    t_cycle_s: float
    grid: Sweep2D

    def log10_ratio(self, fga: float, bga: float) -> float:
        """Exact surface value at one (fga, bga)."""
        soi = e_soi(self.module, fga, self.vdd, self.t_cycle_s)
        soias = e_soias(self.module, fga, bga, self.vdd, self.t_cycle_s)
        if soi <= 0.0 or soias <= 0.0:
            raise AnalysisError("energies must be positive for a ratio")
        return math.log10(soias / soi)

    def application_point(
        self, label: str, fga: float, bga: float
    ) -> ApplicationPoint:
        """Place a profiled application on the surface."""
        return ApplicationPoint(
            label=label,
            fga=fga,
            bga=bga,
            log10_ratio=self.log10_ratio(fga, bga),
        )

    def breakeven_contour(
        self, fga_values: Sequence[float]
    ) -> List[Optional[float]]:
        """bga* at each fga (None where break-even exceeds fga).

        A None entry means SOIAS wins for *every* admissible bga at
        that fga — or, when bga* is zero or negative, that it can
        never win.
        """
        contour: List[Optional[float]] = []
        for fga in fga_values:
            bga_star = breakeven_bga(
                self.module, fga, self.vdd, self.t_cycle_s
            )
            if bga_star is not None and bga_star > fga:
                bga_star = None
            contour.append(bga_star)
        return contour


def breakeven_bga(
    module: ModuleEnergyParameters,
    fga: float,
    vdd: float,
    t_cycle_s: float,
) -> Optional[float]:
    """Closed-form break-even back-gate activity, or None if undefined.

    Returns None when the module has no back-gate capacitance (the
    overhead term vanishes, so SOIAS wins at any bga when it rescues
    leakage).
    """
    if not 0.0 <= fga <= 1.0:
        raise AnalysisError(f"fga must be in [0, 1], got {fga}")
    if vdd <= 0.0 or t_cycle_s <= 0.0:
        raise AnalysisError("vdd and cycle time must be positive")
    overhead = module.back_gate_capacitance_f * module.back_gate_swing_v**2
    rescued = (
        (1.0 - fga)
        * (module.leakage_low_vt_a - module.leakage_high_vt_a)
        * vdd
        * t_cycle_s
    )
    if overhead <= 0.0:
        return None
    return rescued / overhead


def _ratio_cell(
    module: ModuleEnergyParameters,
    vdd: float,
    t_cycle_s: float,
    fga: float,
    bga: float,
) -> Optional[float]:
    """One surface cell; module-level so the grid fan-out can pickle it."""
    if bga > fga:
        return None
    soi = e_soi(module, fga, vdd, t_cycle_s)
    soias = e_soias(module, fga, bga, vdd, t_cycle_s)
    if soi <= 0.0 or soias <= 0.0:
        return None
    return math.log10(soias / soi)


def energy_ratio_surface(
    module: ModuleEnergyParameters,
    vdd: float,
    t_cycle_s: float,
    fga_values: Sequence[float],
    bga_values: Sequence[float],
    workers: int = 0,
    progress: Optional[Callable[[int, int], None]] = None,
    store=None,
    checkpoint_every: int = 32,
) -> RatioSurface:
    """Sample the Fig. 10 surface over a grid.

    Cells with ``bga > fga`` are physically impossible (a block cannot
    power up more often than it is used) and come back as None.
    ``workers`` parallelizes the grid across processes (0 = serial);
    the sampled surface is identical for any worker count.
    ``progress(done_cells, total_cells)`` reports completion for long
    grids.

    With ``store`` (a :class:`repro.store.ResultStore`) the grid is
    checkpointed under a canonical digest of every input — module
    parameters, operating point, and both axes — so a killed surface
    resumes from its completed chunks and an identical re-request is
    served entirely from the store.
    """
    cell = functools.partial(_ratio_cell, module, vdd, t_cycle_s)
    store_key = None
    if store is not None:
        from repro.store.hashing import request_digest

        store_key = request_digest(
            "ratio-surface",
            module,
            vdd,
            t_cycle_s,
            [float(v) for v in fga_values],
            [float(v) for v in bga_values],
        )
    with obs.span("analysis.ratio_surface"):
        grid = sweep_2d(
            "fga",
            "bga",
            "log10(E_SOIAS/E_SOI)",
            fga_values,
            bga_values,
            cell,
            workers=workers,
            progress=progress,
            store=store,
            store_key=store_key,
            checkpoint_every=checkpoint_every,
        )
    return RatioSurface(
        module=module, vdd=vdd, t_cycle_s=t_cycle_s, grid=grid
    )
