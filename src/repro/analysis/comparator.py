"""Per-application technology comparison (the Section 5.4 verdicts).

Given a module's electrical parameters and its profiled (fga, bga),
the comparator evaluates every burst-mode technology model against the
fixed-low-V_T SOI baseline and reports savings — producing exactly the
kind of statement the paper closes with: "43 % for the adder, 81 % for
the shifter, 97 % for the multiplier" under the X-server duty cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import AnalysisError
from repro.power.energy import (
    ModuleEnergyParameters,
    e_mtcmos,
    e_soi,
    e_soias,
    e_vtcmos,
)

__all__ = ["TechnologyVerdict", "TechnologyComparator"]


@dataclass(frozen=True)
class TechnologyVerdict:
    """Outcome of one technology-vs-baseline comparison."""

    technology: str
    module: str
    fga: float
    bga: float
    baseline_energy_j: float
    candidate_energy_j: float

    @property
    def ratio(self) -> float:
        """candidate / baseline (< 1 means the candidate wins)."""
        return self.candidate_energy_j / self.baseline_energy_j

    @property
    def saving_percent(self) -> float:
        """Energy saved versus the SOI baseline, in percent."""
        return 100.0 * (1.0 - self.ratio)

    @property
    def wins(self) -> bool:
        """Whether the candidate beats the baseline."""
        return self.candidate_energy_j < self.baseline_energy_j


class TechnologyComparator:
    """Evaluates burst-mode technologies for one module.

    Parameters
    ----------
    module:
        The module's Eq. 3/4 electrical parameters.
    vdd:
        Operating supply [V].
    t_cycle_s:
        Clock period [s].
    vtcmos_well_capacitance_f / vtcmos_body_swing_v:
        VTCMOS control-node model (the well is big and the swing is
        large — the paper's square-root caveat).
    """

    def __init__(
        self,
        module: ModuleEnergyParameters,
        vdd: float,
        t_cycle_s: float,
        vtcmos_well_capacitance_f: Optional[float] = None,
        vtcmos_body_swing_v: float = 3.0,
    ):
        if vdd <= 0.0 or t_cycle_s <= 0.0:
            raise AnalysisError("vdd and cycle time must be positive")
        self.module = module
        self.vdd = vdd
        self.t_cycle_s = t_cycle_s
        # Default well model: the well capacitance is several times the
        # gate back-plane (junction area under the whole module).
        self.vtcmos_well_capacitance_f = (
            3.0 * module.back_gate_capacitance_f
            if vtcmos_well_capacitance_f is None
            else vtcmos_well_capacitance_f
        )
        self.vtcmos_body_swing_v = vtcmos_body_swing_v

    def baseline_energy(self, fga: float) -> float:
        """Eq. 3 baseline at this operating point [J]."""
        return e_soi(self.module, fga, self.vdd, self.t_cycle_s)

    def verdict(
        self, technology: str, fga: float, bga: float
    ) -> TechnologyVerdict:
        """Compare one technology against the baseline."""
        baseline = self.baseline_energy(fga)
        if technology == "soias":
            candidate = e_soias(
                self.module, fga, bga, self.vdd, self.t_cycle_s
            )
        elif technology == "mtcmos":
            candidate = e_mtcmos(
                self.module, fga, bga, self.vdd, self.t_cycle_s
            )
        elif technology == "vtcmos":
            candidate = e_vtcmos(
                self.module,
                fga,
                bga,
                self.vdd,
                self.t_cycle_s,
                well_capacitance_f=self.vtcmos_well_capacitance_f,
                body_bias_swing_v=self.vtcmos_body_swing_v,
            )
        else:
            raise AnalysisError(
                f"unknown technology {technology!r}; choose from "
                "'soias', 'mtcmos', 'vtcmos'"
            )
        return TechnologyVerdict(
            technology=technology,
            module=self.module.name,
            fga=fga,
            bga=bga,
            baseline_energy_j=baseline,
            candidate_energy_j=candidate,
        )

    def all_verdicts(
        self, fga: float, bga: float
    ) -> Dict[str, TechnologyVerdict]:
        """Verdicts for every modelled burst-mode technology."""
        return {
            name: self.verdict(name, fga, bga)
            for name in ("soias", "mtcmos", "vtcmos")
        }
