"""Energy-delay design-space exploration and Pareto fronts (extension).

The paper's Figs. 3-4 slice the (V_DD, V_T) plane along fixed-delay
loci.  The full picture is the energy-delay plane: each (V_DD, V_T)
pair is a design point with a delay and a per-operation energy, and
only the non-dominated frontier matters.  Classic summary metrics —
minimum energy-delay product, minimum energy at a delay bound — fall
out of the same exploration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.device.technology import Technology
from repro.errors import AnalysisError
from repro.power.optimizer import RingOscillatorModel

__all__ = ["DesignPoint", "pareto_front", "EnergyDelayExplorer"]


@dataclass(frozen=True)
class DesignPoint:
    """One (V_DD, V_T) operating point with its costs."""

    vdd: float
    vt: float
    delay_s: float
    energy_j: float

    @property
    def energy_delay_product(self) -> float:
        """EDP [J·s], the classic balanced metric."""
        return self.energy_j * self.delay_s

    def dominates(self, other: "DesignPoint") -> bool:
        """Faster-or-equal AND lower-or-equal energy, better in one."""
        return (
            self.delay_s <= other.delay_s
            and self.energy_j <= other.energy_j
            and (
                self.delay_s < other.delay_s
                or self.energy_j < other.energy_j
            )
        )


def pareto_front(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Non-dominated subset, sorted by increasing delay.

    Along the returned front the energy is strictly decreasing — the
    canonical energy-delay trade curve.
    """
    if not points:
        raise AnalysisError("no design points")
    ordered = sorted(points, key=lambda p: (p.delay_s, p.energy_j))
    front: List[DesignPoint] = []
    best_energy = float("inf")
    for point in ordered:
        if point.energy_j < best_energy:
            front.append(point)
            best_energy = point.energy_j
    return front


class EnergyDelayExplorer:
    """Grid exploration of the (V_DD, V_T) plane for a ring module.

    Each point's delay is the ring stage delay; its energy is the
    per-cycle energy of the ring clocked at its own speed
    (``cycle_stages`` stage delays per operation), so the leakage term
    grows as the design slows — the mechanism that curls the Pareto
    front back up at the low-energy end.
    """

    def __init__(
        self,
        technology: Technology,
        stages: int = 51,
        activity: float = 1.0,
        cycle_stages: Optional[int] = None,
    ):
        self.ring = RingOscillatorModel(
            technology, stages=stages, activity=activity
        )
        self.cycle_stages = (
            2 * stages if cycle_stages is None else cycle_stages
        )
        if self.cycle_stages < 1:
            raise AnalysisError("cycle_stages must be >= 1")

    def design_point(self, vdd: float, vt: float) -> DesignPoint:
        """Evaluate one (V_DD, V_T) pair."""
        delay = self.ring.stage_delay(vdd, vt)
        operating = self.ring.energy_per_cycle(
            vdd, vt, self.cycle_stages * delay
        )
        return DesignPoint(
            vdd=vdd,
            vt=vt,
            delay_s=delay,
            energy_j=operating.energy_per_cycle_j,
        )

    def explore(
        self,
        vdd_grid: Sequence[float],
        vt_grid: Sequence[float],
    ) -> List[DesignPoint]:
        """Evaluate the full cartesian grid."""
        if not vdd_grid or not vt_grid:
            raise AnalysisError("empty exploration grid")
        return [
            self.design_point(vdd, vt)
            for vdd in vdd_grid
            for vt in vt_grid
        ]

    def front(
        self,
        vdd_grid: Sequence[float],
        vt_grid: Sequence[float],
    ) -> List[DesignPoint]:
        """Pareto-optimal subset of the grid."""
        return pareto_front(self.explore(vdd_grid, vt_grid))

    def minimum_edp_point(
        self,
        vdd_grid: Sequence[float],
        vt_grid: Sequence[float],
    ) -> DesignPoint:
        """Grid point with the lowest energy-delay product."""
        return min(
            self.explore(vdd_grid, vt_grid),
            key=lambda p: p.energy_delay_product,
        )

    def minimum_energy_under_delay(
        self,
        vdd_grid: Sequence[float],
        vt_grid: Sequence[float],
        delay_bound_s: float,
    ) -> DesignPoint:
        """Lowest-energy grid point meeting a delay budget."""
        feasible = [
            p
            for p in self.explore(vdd_grid, vt_grid)
            if p.delay_s <= delay_bound_s
        ]
        if not feasible:
            raise AnalysisError(
                f"no grid point meets the {delay_bound_s:.3e} s bound"
            )
        return min(feasible, key=lambda p: p.energy_j)
