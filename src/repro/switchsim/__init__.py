"""Event-driven switch-level logic simulation (the IRSIM substitute).

The paper measures node transition activity — including glitches — with
a switch-level simulator.  This package provides the same observable:

* :class:`~repro.switchsim.simulator.SwitchLevelSimulator` — an
  event-driven gate-level simulator with inertial delays derived from
  the cell characterizer, so late-arriving inputs re-evaluate gates and
  produce the glitch transitions visible in the paper's Figs. 8-9.
* :mod:`~repro.switchsim.stimulus` — random, correlated and counting
  input-pattern generators.
* :class:`~repro.switchsim.activity.ActivityReport` — per-node
  transition counts, activity factors (the alpha of Eq. 1) and the
  histograms of Figs. 8-9.
"""

from repro.switchsim.events import Event, EventQueue
from repro.switchsim.simulator import SwitchLevelSimulator
from repro.switchsim.activity import ActivityReport
from repro.switchsim.stimulus import (
    random_bus_vectors,
    counting_bus_vectors,
    gray_code_bus_vectors,
    vectors_from_values,
)

__all__ = [
    "Event",
    "EventQueue",
    "SwitchLevelSimulator",
    "ActivityReport",
    "random_bus_vectors",
    "counting_bus_vectors",
    "gray_code_bus_vectors",
    "vectors_from_values",
]
