"""Probabilistic (logic-level) activity estimation.

Section 5.3 of the paper lists three ways to get node activity:
SPICE, switch-level simulation, and logic-level estimation.  This
module is the third: propagate static signal probabilities through the
levelized netlist and derive transition activity under the
temporal-independence assumption

    alpha_0->1(net) = P1(net) * (1 - P1(net))

It is orders of magnitude faster than event-driven simulation but
ignores two effects the simulator captures exactly: spatial
correlation through reconvergent fanout, and glitching (it reports the
zero-delay lower bound on activity).  The tests quantify both gaps
against the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Union

from repro.circuits.netlist import Netlist
from repro.device.technology import Technology
from repro.errors import ProfileError

__all__ = ["ProbabilisticActivity", "ProbabilisticActivityEstimator"]


@dataclass(frozen=True)
class ProbabilisticActivity:
    """Per-net signal and transition probabilities."""

    netlist_name: str
    p_one: Dict[str, float]
    primary_inputs: tuple
    constants: tuple

    def signal_probability(self, net: str) -> float:
        """P(net = 1) in steady state."""
        self._check(net)
        return self.p_one[net]

    def alpha(self, net: str) -> float:
        """0->1 transition probability per cycle (independence model)."""
        p = self.signal_probability(net)
        return p * (1.0 - p)

    def transition_probability(self, net: str) -> float:
        """Total-transition probability per cycle: ``2 p (1-p)``."""
        return 2.0 * self.alpha(net)

    def internal_nets(self) -> list:
        """Nets computed by gates (not inputs/constants)."""
        excluded = set(self.primary_inputs) | set(self.constants)
        return [net for net in self.p_one if net not in excluded]

    def mean_activity(self) -> float:
        """Average transition probability over internal nets."""
        nets = self.internal_nets()
        if not nets:
            raise ProfileError("no internal nets")
        return sum(self.transition_probability(n) for n in nets) / len(nets)

    def switched_capacitance(
        self,
        netlist: Netlist,
        technology: Technology,
        vdd: float,
        wire_length_per_fanout_um: float = 5.0,
    ) -> float:
        """Estimated ``sum alpha(net) * C(net)`` [F] (zero-delay)."""
        if netlist.name != self.netlist_name:
            raise ProfileError(
                f"activity is for {self.netlist_name!r}, not "
                f"{netlist.name!r}"
            )
        return sum(
            self.alpha(net)
            * netlist.net_capacitance(
                net, technology, vdd, wire_length_per_fanout_um
            )
            for net in self.p_one
        )

    def _check(self, net: str) -> None:
        if net not in self.p_one:
            raise ProfileError(
                f"no probability for net {net!r} in "
                f"{self.netlist_name!r}"
            )


class ProbabilisticActivityEstimator:
    """Propagates signal probabilities through an acyclic netlist."""

    def __init__(self, netlist: Netlist):
        netlist.validate()
        self.netlist = netlist
        self._order = netlist.levelize()

    def estimate(
        self,
        input_probabilities: Union[float, Mapping[str, float]] = 0.5,
    ) -> ProbabilisticActivity:
        """Exact per-gate propagation under input independence.

        Parameters
        ----------
        input_probabilities:
            Either one P(1) applied to every primary input, or a
            mapping per input net (missing nets default to 0.5).
        """
        p_one: Dict[str, float] = {}
        if isinstance(input_probabilities, (int, float)):
            default = float(input_probabilities)
            per_input: Mapping[str, float] = {}
        else:
            default = 0.5
            per_input = input_probabilities
            unknown = set(per_input) - set(self.netlist.primary_inputs)
            if unknown:
                raise ProfileError(
                    f"probabilities given for non-input nets: "
                    f"{sorted(unknown)[:5]}"
                )
        for net in self.netlist.primary_inputs:
            p = float(per_input.get(net, default))
            if not 0.0 <= p <= 1.0:
                raise ProfileError(
                    f"probability for {net!r} must be in [0, 1], got {p}"
                )
            p_one[net] = p
        for net, value in self.netlist.constants.items():
            p_one[net] = float(value)

        for instance in self._order:
            inputs = instance.inputs
            table = instance.cell.truth_table
            probability = 0.0
            for combo in range(len(table)):
                if not table[combo]:
                    continue
                term = 1.0
                for bit, net in enumerate(inputs):
                    p = p_one[net]
                    term *= p if (combo >> bit) & 1 else (1.0 - p)
                probability += term
            p_one[instance.output] = min(max(probability, 0.0), 1.0)

        return ProbabilisticActivity(
            netlist_name=self.netlist.name,
            p_one=p_one,
            primary_inputs=tuple(self.netlist.primary_inputs),
            constants=tuple(self.netlist.constants),
        )
