"""Time-ordered event queue with inertial-delay cancellation.

Events carry a per-net generation number; scheduling a newer event for
the same net invalidates any older pending one (lazy deletion on pop).
Time is integer femtoseconds so event ordering is exact and runs are
bit-reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import SimulationError

__all__ = ["Event", "EventQueue"]


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled value change on a net.

    Ordering is (time, sequence) so simultaneous events pop in
    scheduling order — deterministic across runs.
    """

    time_fs: int
    sequence: int
    net: str = field(compare=False)
    value: Optional[int] = field(compare=False)
    generation: int = field(compare=False, default=0)


class EventQueue:
    """Min-heap of :class:`Event` with per-net superseding."""

    def __init__(self) -> None:
        self._heap: list = []
        self._sequence = 0
        self._generation: Dict[str, int] = {}
        self._pending_value: Dict[str, Optional[int]] = {}
        self._pending_time: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time_fs: int, net: str, value: Optional[int]) -> None:
        """Schedule ``net`` to take ``value``, superseding older events.

        Inertial-delay semantics: at most one event per net is live; a
        later scheduling replaces it (the earlier pulse is swallowed).
        """
        if time_fs < 0:
            raise SimulationError(f"cannot schedule in negative time: {time_fs}")
        generation = self._generation.get(net, 0) + 1
        self._generation[net] = generation
        self._pending_value[net] = value
        self._pending_time[net] = time_fs
        self._sequence += 1
        heapq.heappush(
            self._heap,
            Event(
                time_fs=time_fs,
                sequence=self._sequence,
                net=net,
                value=value,
                generation=generation,
            ),
        )

    def cancel(self, net: str) -> None:
        """Invalidate any pending event for ``net``."""
        if net in self._pending_value:
            self._generation[net] = self._generation.get(net, 0) + 1
            del self._pending_value[net]
            self._pending_time.pop(net, None)

    def pending_value(self, net: str) -> Optional[int]:
        """Value the net is destined for, or None if nothing pending.

        Note a pending event *to* ``None`` (unknown) is reported the
        same as no pending event; callers use :meth:`has_pending` to
        distinguish.
        """
        return self._pending_value.get(net)

    def has_pending(self, net: str) -> bool:
        """Whether a live event exists for ``net``."""
        return net in self._pending_value

    def pop(self) -> Optional[Event]:
        """Next live event in time order, or None when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if self._generation.get(event.net) == event.generation:
                del self._pending_value[event.net]
                self._pending_time.pop(event.net, None)
                return event
        return None

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next live event, or None."""
        while self._heap:
            event = self._heap[0]
            if self._generation.get(event.net) == event.generation:
                return event.time_fs
            heapq.heappop(self._heap)
        return None
