"""Input-pattern generators for the switch-level simulator.

The paper's Figs. 8-9 contrast two stimuli on the same 8-bit adder:

* random patterns on both operands (Fig. 8), and
* one operand fixed while the other increments 0..255 (Fig. 9) —
  highly correlated data whose activity is far lower.

These generators produce lists of ``{net: value}`` vectors for bused
primary inputs, plus a generic value-driven helper.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import StimulusError

__all__ = [
    "random_bus_vectors",
    "counting_bus_vectors",
    "gray_code_bus_vectors",
    "vectors_from_values",
]


def _expand_bus(prefix: str, width: int, value: int) -> Dict[str, int]:
    if width < 1:
        raise StimulusError(f"bus {prefix!r} width must be >= 1")
    if not 0 <= value < 2**width:
        raise StimulusError(
            f"value {value} does not fit in {width}-bit bus {prefix!r}"
        )
    return {f"{prefix}[{i}]": (value >> i) & 1 for i in range(width)}


def vectors_from_values(
    buses: Mapping[str, int],
    values: Sequence[Mapping[str, int]],
    scalars: Optional[Mapping[str, int]] = None,
) -> List[Dict[str, int]]:
    """Expand per-bus integer values into per-net vectors.

    Parameters
    ----------
    buses:
        ``{prefix: width}`` of every driven bus.
    values:
        One ``{prefix: integer}`` mapping per vector.
    scalars:
        Optional scalar nets held constant across all vectors.
    """
    vectors: List[Dict[str, int]] = []
    for row in values:
        missing = set(buses) - set(row)
        if missing:
            raise StimulusError(f"vector missing buses: {sorted(missing)}")
        vector: Dict[str, int] = {}
        for prefix, width in buses.items():
            vector.update(_expand_bus(prefix, width, row[prefix]))
        if scalars:
            vector.update(scalars)
        vectors.append(vector)
    return vectors


def random_bus_vectors(
    buses: Mapping[str, int],
    count: int,
    seed: int = 0,
    one_probability: float = 0.5,
    scalars: Optional[Mapping[str, int]] = None,
) -> List[Dict[str, int]]:
    """Uniform (or biased) random patterns on every bus.

    ``one_probability`` biases individual bits, which is how signal
    statistics other than uniform are explored.
    """
    if count < 1:
        raise StimulusError("count must be >= 1")
    if not 0.0 <= one_probability <= 1.0:
        raise StimulusError("one_probability must be in [0, 1]")
    rng = random.Random(seed)
    vectors: List[Dict[str, int]] = []
    for _ in range(count):
        vector: Dict[str, int] = {}
        for prefix, width in buses.items():
            value = 0
            for bit in range(width):
                if rng.random() < one_probability:
                    value |= 1 << bit
            vector.update(_expand_bus(prefix, width, value))
        if scalars:
            vector.update(scalars)
        vectors.append(vector)
    return vectors


def counting_bus_vectors(
    counting_bus: str,
    width: int,
    count: int,
    fixed_buses: Optional[Mapping[str, int]] = None,
    fixed_widths: Optional[Mapping[str, int]] = None,
    start: int = 0,
    scalars: Optional[Mapping[str, int]] = None,
) -> List[Dict[str, int]]:
    """One bus increments each vector; others stay fixed (Fig. 9).

    Parameters
    ----------
    counting_bus:
        Prefix of the incrementing bus.
    width:
        Its width; counting wraps modulo ``2**width``.
    count:
        Number of vectors.
    fixed_buses / fixed_widths:
        ``{prefix: value}`` and ``{prefix: width}`` of the held buses.
    """
    if count < 1:
        raise StimulusError("count must be >= 1")
    fixed_buses = fixed_buses or {}
    fixed_widths = fixed_widths or {}
    if set(fixed_buses) != set(fixed_widths):
        raise StimulusError(
            "fixed_buses and fixed_widths must name the same buses"
        )
    vectors: List[Dict[str, int]] = []
    modulus = 2**width
    for step in range(count):
        vector = _expand_bus(counting_bus, width, (start + step) % modulus)
        for prefix, value in fixed_buses.items():
            vector.update(_expand_bus(prefix, fixed_widths[prefix], value))
        if scalars:
            vector.update(scalars)
        vectors.append(vector)
    return vectors


def gray_code_bus_vectors(
    bus: str,
    width: int,
    count: int,
    fixed_buses: Optional[Mapping[str, int]] = None,
    fixed_widths: Optional[Mapping[str, int]] = None,
    scalars: Optional[Mapping[str, int]] = None,
) -> List[Dict[str, int]]:
    """Gray-code sequence: exactly one input bit flips per vector.

    The minimum-activity stimulus; useful as the lower anchor when
    studying how signal statistics move the activity histograms.
    """
    if count < 1:
        raise StimulusError("count must be >= 1")
    fixed_buses = fixed_buses or {}
    fixed_widths = fixed_widths or {}
    if set(fixed_buses) != set(fixed_widths):
        raise StimulusError(
            "fixed_buses and fixed_widths must name the same buses"
        )
    vectors: List[Dict[str, int]] = []
    modulus = 2**width
    for step in range(count):
        value = step % modulus
        gray = value ^ (value >> 1)
        vector = _expand_bus(bus, width, gray)
        for prefix, fixed_value in fixed_buses.items():
            vector.update(
                _expand_bus(prefix, fixed_widths[prefix], fixed_value)
            )
        if scalars:
            vector.update(scalars)
        vectors.append(vector)
    return vectors
