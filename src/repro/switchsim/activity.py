"""Per-node transition activity statistics (paper Figs. 8-9, Eq. 1).

An :class:`ActivityReport` holds rising/falling transition counts per
net over a number of applied vectors.  From it come:

* ``alpha(net)`` — the power-consuming (0->1) transition probability of
  Eq. 1,
* transition-probability histograms (the paper's Figs. 8-9),
* switched capacitance and switching energy when combined with a
  netlist and technology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.netlist import Netlist
from repro.device.technology import Technology
from repro.errors import ProfileError

__all__ = ["ActivityReport"]


@dataclass(frozen=True)
class ActivityReport:
    """Transition counts accumulated over ``cycles`` input vectors."""

    netlist_name: str
    cycles: int
    rising: Dict[str, int]
    falling: Dict[str, int]
    primary_inputs: Tuple[str, ...]
    constants: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.cycles < 1:
            raise ProfileError("cycles must be >= 1")

    # ------------------------------------------------------------------
    # Per-net statistics
    # ------------------------------------------------------------------
    def transitions(self, net: str) -> int:
        """Total transitions (both edges) seen on a net."""
        self._check_net(net)
        return self.rising[net] + self.falling[net]

    def alpha(self, net: str) -> float:
        """Power-consuming (0->1) transition probability per cycle.

        This is the alpha_0->1 of the paper's Eq. 1; it can exceed 1.0
        on glitchy nodes that rise more than once per applied vector.
        """
        self._check_net(net)
        return self.rising[net] / self.cycles

    def transition_probability(self, net: str) -> float:
        """Total-transition probability per cycle (the Figs. 8-9 axis)."""
        return self.transitions(net) / self.cycles

    def internal_nets(self) -> List[str]:
        """Nets that are neither primary inputs nor constants.

        These are the nodes whose activity the circuit's logic (not the
        stimulus) determines — what the paper histograms.
        """
        excluded = set(self.primary_inputs) | set(self.constants)
        return [net for net in self.rising if net not in excluded]

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def mean_activity(self, nets: Optional[Sequence[str]] = None) -> float:
        """Average total-transition probability over nets."""
        chosen = list(nets) if nets is not None else self.internal_nets()
        if not chosen:
            raise ProfileError("no nets to aggregate")
        return sum(self.transition_probability(n) for n in chosen) / len(
            chosen
        )

    def total_transitions(self) -> int:
        """Sum of all transitions on all nets."""
        return sum(self.rising.values()) + sum(self.falling.values())

    def histogram(
        self,
        bins: int = 20,
        max_probability: Optional[float] = None,
        nets: Optional[Sequence[str]] = None,
    ) -> Tuple[List[float], List[int]]:
        """Histogram of per-net transition probabilities.

        Returns (bin_edges, counts) with ``len(edges) == bins + 1``.
        This is the exact content of the paper's Figs. 8-9 ("number of
        nodes" versus "transition probability").
        """
        if bins < 1:
            raise ProfileError("bins must be >= 1")
        chosen = list(nets) if nets is not None else self.internal_nets()
        if not chosen:
            raise ProfileError("no nets to histogram")
        probabilities = [self.transition_probability(n) for n in chosen]
        top = max_probability
        if top is None:
            top = max(max(probabilities), 1e-9)
        width = top / bins
        edges = [i * width for i in range(bins + 1)]
        counts = [0] * bins
        for p in probabilities:
            index = min(int(p / width), bins - 1)
            counts[index] += 1
        return edges, counts

    # ------------------------------------------------------------------
    # Energy coupling
    # ------------------------------------------------------------------
    def switched_capacitance(
        self,
        netlist: Netlist,
        technology: Technology,
        vdd: float,
        wire_length_per_fanout_um: float = 5.0,
    ) -> float:
        """Average switched capacitance per cycle [F].

        ``sum over nets of alpha_0->1(net) * C(net)`` — the effective C
        of Eq. 1, with the capacitance extracted at the same V_DD so
        the Fig. 1 non-linearity is honoured.
        """
        if netlist.name != self.netlist_name:
            raise ProfileError(
                f"report is for {self.netlist_name!r}, not "
                f"{netlist.name!r}"
            )
        total = 0.0
        for net in self.rising:
            if self.rising[net] == 0:
                continue
            capacitance = netlist.net_capacitance(
                net, technology, vdd, wire_length_per_fanout_um
            )
            total += self.alpha(net) * capacitance
        return total

    def switching_energy_per_cycle(
        self,
        netlist: Netlist,
        technology: Technology,
        vdd: float,
        wire_length_per_fanout_um: float = 5.0,
    ) -> float:
        """Average switching energy per cycle: C_sw * V_DD^2 [J]."""
        return (
            self.switched_capacitance(
                netlist, technology, vdd, wire_length_per_fanout_um
            )
            * vdd
            * vdd
        )

    # ------------------------------------------------------------------
    def merged_with(self, other: "ActivityReport") -> "ActivityReport":
        """Combine two reports over the same netlist (count-wise)."""
        if other.netlist_name != self.netlist_name:
            raise ProfileError("cannot merge reports of different netlists")
        rising = dict(self.rising)
        falling = dict(self.falling)
        for net, count in other.rising.items():
            rising[net] = rising.get(net, 0) + count
        for net, count in other.falling.items():
            falling[net] = falling.get(net, 0) + count
        return ActivityReport(
            netlist_name=self.netlist_name,
            cycles=self.cycles + other.cycles,
            rising=rising,
            falling=falling,
            primary_inputs=self.primary_inputs,
            constants=self.constants,
        )

    # ------------------------------------------------------------------
    # Serialization (SAIF-like interchange)
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize the report to JSON (a SAIF-style activity dump)."""
        import json

        return json.dumps(
            {
                "format": "repro-activity-v1",
                "netlist": self.netlist_name,
                "cycles": self.cycles,
                "rising": self.rising,
                "falling": self.falling,
                "primary_inputs": list(self.primary_inputs),
                "constants": list(self.constants),
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, document: str) -> "ActivityReport":
        """Reconstruct a report written by :meth:`to_json`."""
        import json

        try:
            payload = json.loads(document)
        except json.JSONDecodeError as error:
            raise ProfileError(
                f"malformed activity JSON: {error}"
            ) from error
        if payload.get("format") != "repro-activity-v1":
            raise ProfileError(
                f"unsupported activity format {payload.get('format')!r}"
            )
        return cls(
            netlist_name=payload["netlist"],
            cycles=payload["cycles"],
            rising={k: int(v) for k, v in payload["rising"].items()},
            falling={k: int(v) for k, v in payload["falling"].items()},
            primary_inputs=tuple(payload["primary_inputs"]),
            constants=tuple(payload["constants"]),
        )

    def _check_net(self, net: str) -> None:
        if net not in self.rising:
            raise ProfileError(
                f"no activity recorded for net {net!r} in "
                f"{self.netlist_name!r}"
            )
