"""Event-driven gate-level simulator with inertial delays.

Each gate's propagation delay is derived from the cell characterizer at
the simulation corner, with the load extracted from the netlist — so
heavily loaded nets are slower, carry chains straggle, and the sum XORs
of a ripple adder glitch exactly as the paper's IRSIM runs showed.

The simulator exposes two levels of use:

* :meth:`SwitchLevelSimulator.apply` — change primary inputs, run until
  quiescence, and return the per-net transition counts of that vector.
* :meth:`SwitchLevelSimulator.run_vectors` — apply a stimulus sequence
  and accumulate an :class:`~repro.switchsim.activity.ActivityReport`.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro import obs
from repro.circuits.netlist import Netlist
from repro.device.technology import Technology
from repro.errors import SimulationError
from repro.switchsim.activity import ActivityReport
from repro.switchsim.events import EventQueue
from repro.tech.characterize import CellCharacterizer

__all__ = ["SwitchLevelSimulator"]

_FS_PER_S = 1e15

#: Fast-path sentinel for "no pending event" (0/1 are live values).
_NO_PENDING = object()


class SwitchLevelSimulator:
    """Simulates one netlist at one (V_DD, V_T-shift) corner.

    Parameters
    ----------
    netlist:
        The circuit; may be cyclic (e.g. ring oscillators) as long as
        runs are bounded with ``max_events``.
    technology, vdd, vt_shift:
        The electrical corner; sets every gate's inertial delay.
    wire_length_per_fanout_um:
        Wire-load assumption used for both delay and capacitance.
    """

    def __init__(
        self,
        netlist: Netlist,
        technology: Technology,
        vdd: float,
        vt_shift: float = 0.0,
        wire_length_per_fanout_um: float = 5.0,
    ):
        netlist.validate()
        self.netlist = netlist
        self.technology = technology
        self.vdd = vdd
        self.vt_shift = vt_shift
        self.wire_length_per_fanout_um = wire_length_per_fanout_um

        characterizer = CellCharacterizer(technology)
        self._delay_fs: Dict[str, int] = {}
        for instance in netlist.instances.values():
            external = self._external_load(instance.output)
            delay_s = characterizer.propagation_delay(
                instance.cell, vdd, external, vt_shift
            )
            self._delay_fs[instance.name] = max(int(delay_s * _FS_PER_S), 1)

        self.state: Dict[str, Optional[int]] = {
            net: None for net in netlist.nets()
        }
        self.state.update(netlist.constants)
        self.now_fs = 0
        self._queue = EventQueue()
        self._rising: Dict[str, int] = {net: 0 for net in self.state}
        self._falling: Dict[str, int] = {net: 0 for net in self.state}
        self._vectors_applied = 0
        self._build_fast_tables()

    def _build_fast_tables(self) -> None:
        """Precompute integer net ids and per-net fanout tuples.

        The reference event loop resolves net names through dicts and
        re-walks ``Netlist.fanout`` per event; the batched fast path
        (:meth:`run_vectors_fast`) works entirely on these indexed
        tables.  Net ids follow ``Netlist.nets()`` order and fanout
        tuples preserve ``Netlist.fanout`` insertion order, so event
        scheduling order — and therefore every glitch count — is
        identical between the two paths.
        """
        netlist = self.netlist
        names: List[str] = list(netlist.nets())
        self._net_names = names
        self._net_ids: Dict[str, int] = {n: i for i, n in enumerate(names)}
        instances = list(netlist.instances.values())
        self._inst_list = instances
        self._inst_inputs: List[Tuple[int, ...]] = [
            tuple(self._net_ids[n] for n in inst.inputs) for inst in instances
        ]
        self._inst_output: List[int] = [
            self._net_ids[inst.output] for inst in instances
        ]
        self._inst_delay: List[int] = [
            self._delay_fs[inst.name] for inst in instances
        ]
        self._inst_table: List[Tuple[int, ...]] = [
            inst.cell.truth_table for inst in instances
        ]
        index_of = {inst.name: k for k, inst in enumerate(instances)}
        self._fanout_ids: List[Tuple[int, ...]] = [
            tuple(index_of[inst.name] for inst, _ in netlist.fanout(name))
            for name in names
        ]
        self._pi_names = frozenset(netlist.primary_inputs)

    # ------------------------------------------------------------------
    # Initialization
    # ------------------------------------------------------------------
    def initialize(
        self, input_values: Mapping[str, int], preset: Optional[Mapping[str, int]] = None
    ) -> None:
        """Settle the circuit from an all-unknown state.

        Primary inputs take ``input_values``; ``preset`` optionally
        pins internal nets (needed to start cyclic circuits such as
        ring oscillators).  Settling transitions are *not* counted as
        activity.
        """
        for net in self.state:
            self.state[net] = None
        self.state.update(self.netlist.constants)
        if preset:
            for net, value in preset.items():
                if net not in self.state:
                    raise SimulationError(f"preset for unknown net {net!r}")
                self.state[net] = value
        self._set_inputs(input_values)
        # Three-valued relaxation to a fixpoint: repeatedly evaluate
        # every gate until nothing changes.  Gates whose output was
        # preset keep their preset if evaluation is consistent-unknown.
        for _ in range(len(self.netlist.instances) + 2):
            changed = False
            for instance in self.netlist.instances.values():
                operands = [self.state[n] for n in instance.inputs]
                value = instance.cell.evaluate(operands)
                if value is not None and self.state[instance.output] != value:
                    self.state[instance.output] = value
                    changed = True
            if not changed:
                break
        self.now_fs = 0
        self._queue = EventQueue()

    # ------------------------------------------------------------------
    # Vector application
    # ------------------------------------------------------------------
    def apply(
        self,
        input_values: Mapping[str, int],
        max_events: int = 1_000_000,
    ) -> int:
        """Apply an input vector and simulate to quiescence.

        Returns the number of value-change events processed (a glitchy
        vector processes more events than the functional minimum).
        """
        changed = self._set_inputs(input_values, count=True, propagate=True)
        processed = self._drain(max_events)
        self._vectors_applied += 1
        return processed + changed

    def run_vectors(
        self,
        vectors: Iterable[Mapping[str, int]],
        max_events_per_vector: int = 1_000_000,
    ) -> ActivityReport:
        """Apply a stimulus sequence; first vector initializes silently.

        Returns the accumulated :class:`ActivityReport` over the
        remaining vectors — the paper's per-node transition statistics.
        """
        iterator = iter(vectors)
        try:
            first = next(iterator)
        except StopIteration:
            raise SimulationError("stimulus must contain at least one vector")
        self.initialize(first)
        self.reset_activity()
        total_events = 0
        with obs.span("simulator.run_vectors"):
            for vector in iterator:
                total_events += self.apply(
                    vector, max_events=max_events_per_vector
                )
        if obs.ENABLED:
            obs.incr("simulator.runs.reference")
            obs.incr("simulator.vectors", self._vectors_applied)
            obs.incr("simulator.events", total_events)
        return self.activity_report()

    def run_vectors_fast(
        self,
        vectors: Iterable[Mapping[str, int]],
        max_events_per_vector: int = 1_000_000,
    ) -> ActivityReport:
        """Batched :meth:`run_vectors` on the precomputed index tables.

        Semantically identical to :meth:`run_vectors` (same event
        ordering, same inertial cancellation, same counts — the
        equivalence is asserted in the test suite); the difference is
        purely mechanical: net names become integer ids, per-event
        fanout walks become tuple scans, and all per-vector state (the
        value/counter arrays and the heap) is allocated once for the
        whole batch.
        """
        iterator = iter(vectors)
        try:
            first = next(iterator)
        except StopIteration:
            raise SimulationError("stimulus must contain at least one vector")
        self.initialize(first)
        self.reset_activity()

        net_ids = self._net_ids
        names = self._net_names
        n_nets = len(names)
        state: List[int] = [-1] * n_nets
        for i, name in enumerate(names):
            value = self.state[name]
            if value is not None:
                state[i] = value
        rising = [0] * n_nets
        falling = [0] * n_nets
        heap: List[Tuple[int, int, int, int, int]] = []
        generation = [0] * n_nets
        pending: List[object] = [_NO_PENDING] * n_nets
        sequence = 0
        now = 0

        inst_inputs = self._inst_inputs
        inst_output = self._inst_output
        inst_delay = self._inst_delay
        inst_table = self._inst_table
        fanout_ids = self._fanout_ids
        instances = self._inst_list
        heappush = heapq.heappush
        heappop = heapq.heappop

        def evaluate_and_schedule(k: int) -> None:
            nonlocal sequence
            index = 0
            unknown = False
            for bit, i in enumerate(inst_inputs[k]):
                value = state[i]
                if value < 0:
                    unknown = True
                    break
                index |= value << bit
            if unknown:
                new_value = instances[k].cell.evaluate(
                    [
                        None if state[i] < 0 else state[i]
                        for i in inst_inputs[k]
                    ]
                )
            else:
                new_value = inst_table[k][index]
            out = inst_output[k]
            was_pending = pending[out] is not _NO_PENDING
            if was_pending:
                destined = pending[out]
            elif state[out] < 0:
                destined = None
            else:
                destined = state[out]
            if new_value == destined:
                return
            if new_value is None:
                if was_pending:
                    generation[out] += 1
                    pending[out] = _NO_PENDING
                return
            generation[out] += 1
            pending[out] = new_value
            sequence += 1
            heappush(
                heap,
                (now + inst_delay[k], sequence, out, new_value, generation[out]),
            )

        vectors_applied = 0
        total_events = 0
        span = obs.span("simulator.run_vectors_fast")
        span.__enter__()
        try:
            for vector in iterator:
                for net, value in vector.items():
                    if net not in self._pi_names:
                        raise SimulationError(
                            f"{net!r} is not a primary input of "
                            f"{self.netlist.name!r}"
                        )
                    if value not in (0, 1):
                        raise SimulationError(
                            f"input {net!r} must be 0/1, got {value}"
                        )
                    i = net_ids[net]
                    old = state[i]
                    if old == value:
                        continue
                    state[i] = value
                    total_events += 1
                    if old >= 0:
                        if value == 1:
                            rising[i] += 1
                        else:
                            falling[i] += 1
                    for k in fanout_ids[i]:
                        evaluate_and_schedule(k)
                processed = 0
                while heap:
                    time_fs, _, i, value, gen = heappop(heap)
                    if generation[i] != gen:
                        continue
                    pending[i] = _NO_PENDING
                    processed += 1
                    if processed > max_events_per_vector:
                        raise SimulationError(
                            f"event budget {max_events_per_vector} "
                            f"exhausted; netlist {self.netlist.name!r} "
                            "may oscillate"
                        )
                    now = time_fs
                    old = state[i]
                    if old == value:
                        continue
                    state[i] = value
                    if old >= 0:
                        if value == 1:
                            rising[i] += 1
                        else:
                            falling[i] += 1
                    for k in fanout_ids[i]:
                        evaluate_and_schedule(k)
                total_events += processed
                vectors_applied += 1
        finally:
            span.__exit__(None, None, None)
            # Mirror the batch back into the reference-path state so
            # apply()/activity_report() keep working afterwards.
            for i, name in enumerate(names):
                self.state[name] = None if state[i] < 0 else state[i]
                self._rising[name] = rising[i]
                self._falling[name] = falling[i]
            self.now_fs = now
            self._queue = EventQueue()
            self._vectors_applied = vectors_applied
        if obs.ENABLED:
            obs.incr("simulator.runs.fast")
            obs.incr("simulator.vectors", vectors_applied)
            obs.incr("simulator.events", total_events)
        return self.activity_report()

    def clock_cycle(
        self,
        input_values: Mapping[str, int],
        max_events: int = 1_000_000,
    ) -> int:
        """One clock edge of a sequential netlist.

        Samples every register's D from the settled state, then applies
        the new primary-input values and the captured Q values
        simultaneously (the post-edge wavefront) and simulates to
        quiescence.
        """
        if not self.netlist.registers:
            raise SimulationError(
                f"netlist {self.netlist.name!r} has no registers; "
                "use apply()"
            )
        captured = {
            register.output: self.state[register.data_input]
            for register in self.netlist.registers.values()
        }
        for net, value in captured.items():
            if value is None:
                raise SimulationError(
                    f"register D value for {net!r} is unknown; "
                    "initialize() the circuit first"
                )
        changed = self._set_inputs(input_values, count=True, propagate=True)
        changed += self._set_register_outputs(captured)
        processed = self._drain(max_events)
        self._vectors_applied += 1
        return processed + changed

    def run_clocked(
        self,
        vectors: Iterable[Mapping[str, int]],
        max_events_per_vector: int = 1_000_000,
    ) -> ActivityReport:
        """Clock a stimulus sequence through a sequential netlist.

        The first vector initializes (registers take their declared
        reset values); each further vector is one clock cycle.
        """
        iterator = iter(vectors)
        try:
            first = next(iterator)
        except StopIteration:
            raise SimulationError("stimulus must contain at least one vector")
        self.initialize(
            first, preset=self.netlist.initial_register_state()
        )
        self.reset_activity()
        for vector in iterator:
            self.clock_cycle(vector, max_events=max_events_per_vector)
        return self.activity_report()

    def _set_register_outputs(self, captured: Mapping[str, int]) -> int:
        changed = 0
        for net, value in captured.items():
            old = self.state[net]
            if old == value:
                continue
            self.state[net] = value
            changed += 1
            if old is not None:
                if value == 1:
                    self._rising[net] += 1
                else:
                    self._falling[net] += 1
            for instance, _ in self.netlist.fanout(net):
                self._evaluate_and_schedule(instance)
        return changed

    def run_free(
        self,
        preset: Mapping[str, int],
        duration_fs: int,
        max_events: int = 1_000_000,
    ) -> ActivityReport:
        """Free-run a cyclic circuit (ring oscillator) for a duration.

        The preset seeds the loop; simulation stops at ``duration_fs``.
        The report's ``cycles`` field is 1 — use raw transition counts.
        """
        self.initialize({net: 0 for net in self.netlist.primary_inputs},
                        preset=preset)
        self.reset_activity()
        # Kick every gate once so inconsistent preset values propagate.
        for instance in self.netlist.instances.values():
            self._evaluate_and_schedule(instance)
        processed = 0
        while processed < max_events:
            next_time = self._queue.peek_time()
            if next_time is None or next_time > duration_fs:
                break
            event = self._queue.pop()
            assert event is not None
            self._commit(event, count=True)
            processed += 1
        else:
            raise SimulationError(
                f"event budget {max_events} exhausted in free-run"
            )
        self._vectors_applied = 1
        return self.activity_report()

    # ------------------------------------------------------------------
    # Activity
    # ------------------------------------------------------------------
    def reset_activity(self) -> None:
        """Zero the transition counters."""
        for net in self._rising:
            self._rising[net] = 0
            self._falling[net] = 0
        self._vectors_applied = 0

    def activity_report(self) -> ActivityReport:
        """Snapshot of accumulated transition counts."""
        return ActivityReport(
            netlist_name=self.netlist.name,
            cycles=max(self._vectors_applied, 1),
            rising=dict(self._rising),
            falling=dict(self._falling),
            primary_inputs=tuple(self.netlist.primary_inputs),
            constants=tuple(self.netlist.constants),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _set_inputs(
        self,
        input_values: Mapping[str, int],
        count: bool = False,
        propagate: bool = False,
    ) -> int:
        changed = 0
        for net, value in input_values.items():
            if net not in self.netlist.primary_inputs:
                raise SimulationError(
                    f"{net!r} is not a primary input of "
                    f"{self.netlist.name!r}"
                )
            if value not in (0, 1):
                raise SimulationError(
                    f"input {net!r} must be 0/1, got {value}"
                )
            old = self.state[net]
            if old == value:
                continue
            self.state[net] = value
            changed += 1
            if count and old is not None:
                if value == 1:
                    self._rising[net] += 1
                else:
                    self._falling[net] += 1
            if propagate:
                for instance, _ in self.netlist.fanout(net):
                    self._evaluate_and_schedule(instance)
        return changed

    def _evaluate_and_schedule(self, instance) -> None:
        operands = [self.state[n] for n in instance.inputs]
        new_value = instance.cell.evaluate(operands)
        output = instance.output
        destined = (
            self._queue.pending_value(output)
            if self._queue.has_pending(output)
            else self.state[output]
        )
        if new_value == destined:
            return
        if new_value is None:
            # Do not schedule transitions to unknown after init.
            self._queue.cancel(output)
            return
        self._queue.schedule(
            self.now_fs + self._delay_fs[instance.name], output, new_value
        )

    def _commit(self, event, count: bool) -> None:
        self.now_fs = event.time_fs
        old = self.state[event.net]
        if old == event.value:
            return
        self.state[event.net] = event.value
        if count and old is not None and event.value is not None:
            if event.value == 1:
                self._rising[event.net] += 1
            else:
                self._falling[event.net] += 1
        for instance, _ in self.netlist.fanout(event.net):
            self._evaluate_and_schedule(instance)

    def _drain(self, max_events: int) -> int:
        processed = 0
        while True:
            event = self._queue.pop()
            if event is None:
                return processed
            processed += 1
            if processed > max_events:
                raise SimulationError(
                    f"event budget {max_events} exhausted; netlist "
                    f"{self.netlist.name!r} may oscillate"
                )
            self._commit(event, count=True)

    def _external_load(self, net: str) -> float:
        loads = self.netlist.fanout(net)
        capacitance = sum(
            instance.cell.input_capacitance(self.technology, self.vdd)
            for instance, _ in loads
        )
        wire = self.technology.wire_cap.wire_capacitance(
            self.wire_length_per_fanout_um * max(len(loads), 1)
        )
        return capacitance + wire
