"""The RISC instruction set and its functional-unit annotations.

Every instruction carries the set of datapath functional units it
exercises.  The unit mapping follows the paper's stated implementation
assumption: *"all add, compare, load, and store instructions use the
ALU adder"* — loads/stores compute addresses on the adder, branches
compare on it.  Shifts use the (barrel) shifter, multiplies the array
multiplier, bitwise operations the logic unit.

Formats
-------
``rrr``     op rd, rs1, rs2
``rri``     op rd, rs1, imm
``ri``      op rd, imm
``mem``     op rd, imm(rs1)
``branch``  op rs1, rs2, label
``jump``    op rd, label     (JAL) / op rd, rs1, imm (JALR is ``rri``)
``none``    op               (HALT, NOP)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple

from repro.errors import AssemblyError

__all__ = [
    "FUNCTIONAL_UNITS",
    "InstructionSpec",
    "Instruction",
    "instruction_set",
]

#: Datapath functional units the profiler tracks.  The first three are
#: the blocks compared in the paper's Tables 1-3 and Fig. 10.
FUNCTIONAL_UNITS: Tuple[str, ...] = (
    "adder",
    "shifter",
    "multiplier",
    "logic",
    "memory",
    "control",
)


@dataclass(frozen=True)
class InstructionSpec:
    """Static description of one opcode."""

    mnemonic: str
    fmt: str
    units: FrozenSet[str]
    description: str

    def __post_init__(self) -> None:
        unknown = self.units - set(FUNCTIONAL_UNITS)
        if unknown:
            raise AssemblyError(
                f"{self.mnemonic}: unknown functional units {sorted(unknown)}"
            )


def _spec(mnemonic: str, fmt: str, units: Tuple[str, ...], text: str) -> InstructionSpec:
    return InstructionSpec(
        mnemonic=mnemonic, fmt=fmt, units=frozenset(units), description=text
    )


_SPECS = [
    # Adder class.
    _spec("ADD", "rrr", ("adder",), "rd = rs1 + rs2"),
    _spec("SUB", "rrr", ("adder",), "rd = rs1 - rs2"),
    _spec("ADDI", "rri", ("adder",), "rd = rs1 + imm"),
    _spec("SLT", "rrr", ("adder",), "rd = 1 if rs1 < rs2 (signed)"),
    _spec("SLTU", "rrr", ("adder",), "rd = 1 if rs1 < rs2 (unsigned)"),
    _spec("SLTI", "rri", ("adder",), "rd = 1 if rs1 < imm (signed)"),
    # Shifter class.
    _spec("SLL", "rrr", ("shifter",), "rd = rs1 << (rs2 & 31)"),
    _spec("SRL", "rrr", ("shifter",), "rd = rs1 >> (rs2 & 31) logical"),
    _spec("SRA", "rrr", ("shifter",), "rd = rs1 >> (rs2 & 31) arithmetic"),
    _spec("SLLI", "rri", ("shifter",), "rd = rs1 << imm"),
    _spec("SRLI", "rri", ("shifter",), "rd = rs1 >> imm logical"),
    _spec("SRAI", "rri", ("shifter",), "rd = rs1 >> imm arithmetic"),
    # Multiplier class.
    _spec("MUL", "rrr", ("multiplier",), "rd = low 32 bits of rs1 * rs2"),
    _spec("MULHU", "rrr", ("multiplier",), "rd = high 32 bits, unsigned"),
    # Logic class.
    _spec("AND", "rrr", ("logic",), "rd = rs1 & rs2"),
    _spec("OR", "rrr", ("logic",), "rd = rs1 | rs2"),
    _spec("XOR", "rrr", ("logic",), "rd = rs1 ^ rs2"),
    _spec("ANDI", "rri", ("logic",), "rd = rs1 & imm"),
    _spec("ORI", "rri", ("logic",), "rd = rs1 | imm"),
    _spec("XORI", "rri", ("logic",), "rd = rs1 ^ imm"),
    # Immediates.
    _spec("LUI", "ri", ("logic",), "rd = imm << 16"),
    # Memory: address arithmetic runs on the adder (paper assumption).
    _spec("LW", "mem", ("adder", "memory"), "rd = mem[rs1 + imm]"),
    _spec("SW", "mem", ("adder", "memory"), "mem[rs1 + imm] = rd"),
    # Control: branch comparisons run on the adder (paper assumption).
    _spec("BEQ", "branch", ("adder", "control"), "branch if rs1 == rs2"),
    _spec("BNE", "branch", ("adder", "control"), "branch if rs1 != rs2"),
    _spec("BLT", "branch", ("adder", "control"), "branch if rs1 < rs2 signed"),
    _spec("BGE", "branch", ("adder", "control"), "branch if rs1 >= rs2 signed"),
    _spec("BLTU", "branch", ("adder", "control"), "branch if rs1 < rs2 unsigned"),
    _spec("BGEU", "branch", ("adder", "control"), "branch if rs1 >= rs2 unsigned"),
    _spec("JAL", "jump", ("control",), "rd = pc + 1; pc = label"),
    _spec("JALR", "rri", ("control",), "rd = pc + 1; pc = rs1 + imm"),
    # Misc.
    _spec("HALT", "none", (), "stop execution"),
    _spec("NOP", "none", (), "no operation"),
]


def instruction_set() -> Dict[str, InstructionSpec]:
    """Mnemonic -> spec for the whole ISA."""
    return {spec.mnemonic: spec for spec in _SPECS}


@dataclass(frozen=True)
class Instruction:
    """A decoded instruction: spec plus resolved operands.

    Operand meaning by format:

    * ``rrr``: (rd, rs1, rs2)
    * ``rri``: (rd, rs1, imm)
    * ``ri``: (rd, imm)
    * ``mem``: (rd, rs1, imm)
    * ``branch``: (rs1, rs2, target_pc)
    * ``jump``: (rd, target_pc)
    * ``none``: ()
    """

    spec: InstructionSpec
    operands: Tuple[int, ...]
    source_line: int = 0

    @property
    def mnemonic(self) -> str:
        return self.spec.mnemonic

    @property
    def units(self) -> FrozenSet[str]:
        return self.spec.units

    def __repr__(self) -> str:
        return f"{self.mnemonic} {', '.join(map(str, self.operands))}"
