"""Interpreter for the profiling ISA with ATOM-style instrumentation.

The :class:`Machine` executes an assembled
:class:`~repro.isa.assembler.Program` and, like ATOM, lets analysis
code attach a per-instruction hook that observes every retired
instruction.  The profiler in :mod:`repro.isa.profiler` is one such
analysis; tests attach their own.

Two execution engines share one architectural state:

* the **reference** path — :meth:`Machine.step` / :meth:`Machine.run` —
  dispatches each retired instruction through a mnemonic if/elif chain
  and invokes every attached hook.  It is the specification.
* the **decoded** path — :meth:`Machine.run_fast` /
  :meth:`Machine.run_counted` — compiles each instruction once into a
  specialized closure (operands bound as locals, register file and
  memory captured directly, signed/shift helpers inlined) and
  dispatches through a flat ``pc -> closure`` list with the
  instruction-budget check hoisted out of the per-step path.  It is
  bit-identical to the reference in architectural state, retirement
  counts, and error behavior.  Hooks are the ATOM contract of the
  reference path: :meth:`run_fast` transparently falls back to
  :meth:`run` whenever a hook is attached.

Conventions: 32 registers (r0 hard-wired to zero), 32-bit two's
complement words, word-addressed memory, ``HALT`` stops execution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro import obs
from repro.errors import MachineError
from repro.isa.assembler import Program
from repro.isa.instructions import Instruction

__all__ = ["Machine", "UnitClassCounts"]

_WORD_MASK = 0xFFFFFFFF
_SIGN_BIT = 0x80000000
_TWO_32 = 0x100000000

#: Instructions dispatched per budget check in the decoded engine.  The
#: reference path compares the budget before every step; the decoded
#: loop runs unchecked bursts of at most this many retirements (clamped
#: to the remaining budget, so the raise point is identical).
_DISPATCH_CHUNK = 65536

#: Hook signature: (pc, instruction) -> None, called as each
#: instruction retires.
InstrumentationHook = Callable[[int, Instruction], None]


def _to_signed(value: int) -> int:
    value &= _WORD_MASK
    return value - _TWO_32 if value & _SIGN_BIT else value


@dataclass(frozen=True)
class UnitClassCounts:
    """Functional-unit-class transition counts from a counted fast run.

    Every instruction belongs to one **unit class** — the (interned)
    set of functional units its opcode exercises; class 0 is always the
    empty set, which doubles as the "nothing ran yet" start state.
    ``transitions`` is the row-major ``len(classes) x len(classes)``
    matrix ``transitions[prev * k + curr]`` counting retirements of a
    ``curr``-class instruction whose predecessor was ``prev``-class.
    Per-unit uses and run onsets (the paper's fga/bga numerators) are
    exact functions of this matrix — see
    :func:`repro.isa.profiler.profile_from_counts`.
    """

    classes: Tuple[FrozenSet[str], ...]
    transitions: Tuple[int, ...]
    retired: int
    final_class: int


def _nop_slot(pc: int) -> int:
    """Shared closure for NOP and any op whose only effect targets r0."""
    return pc + 1


def _compile_instruction(
    instruction: Instruction,
    regs: List[int],
    memory: Dict[int, int],
    machine: "Machine",
):
    """One instruction -> a ``closure(pc) -> next_pc`` dispatch slot.

    Operands are bound as default arguments (locals in CPython), the
    register list and memory dict are captured directly, and the
    signed/shift helpers are inlined.  Closures assume the register-
    file invariant that every entry is already masked to 32 bits and
    ``regs[0] == 0`` — maintained by every machine API and restored by
    the dispatch entry points.  A halt slot returns the bitwise
    complement of the next pc (always negative) so the dispatch loop
    detects it without a per-step flag check.
    """
    mnemonic = instruction.spec.mnemonic
    ops = instruction.operands

    if mnemonic in ("ADD", "SUB", "SLT", "SLTU", "SLL", "SRL", "SRA",
                    "MUL", "MULHU", "AND", "OR", "XOR"):
        rd, rs1, rs2 = ops
        if rd == 0:
            return _nop_slot
        if mnemonic == "ADD":
            def slot(pc, regs=regs, rd=rd, rs1=rs1, rs2=rs2):
                regs[rd] = (regs[rs1] + regs[rs2]) & _WORD_MASK
                return pc + 1
        elif mnemonic == "SUB":
            def slot(pc, regs=regs, rd=rd, rs1=rs1, rs2=rs2):
                regs[rd] = (regs[rs1] - regs[rs2]) & _WORD_MASK
                return pc + 1
        elif mnemonic == "SLT":
            # XOR with the sign bit maps signed order onto unsigned.
            def slot(pc, regs=regs, rd=rd, rs1=rs1, rs2=rs2):
                regs[rd] = (
                    1 if (regs[rs1] ^ _SIGN_BIT) < (regs[rs2] ^ _SIGN_BIT)
                    else 0
                )
                return pc + 1
        elif mnemonic == "SLTU":
            def slot(pc, regs=regs, rd=rd, rs1=rs1, rs2=rs2):
                regs[rd] = 1 if regs[rs1] < regs[rs2] else 0
                return pc + 1
        elif mnemonic == "SLL":
            def slot(pc, regs=regs, rd=rd, rs1=rs1, rs2=rs2):
                regs[rd] = (regs[rs1] << (regs[rs2] & 31)) & _WORD_MASK
                return pc + 1
        elif mnemonic == "SRL":
            def slot(pc, regs=regs, rd=rd, rs1=rs1, rs2=rs2):
                regs[rd] = regs[rs1] >> (regs[rs2] & 31)
                return pc + 1
        elif mnemonic == "SRA":
            def slot(pc, regs=regs, rd=rd, rs1=rs1, rs2=rs2):
                value = regs[rs1]
                if value & _SIGN_BIT:
                    regs[rd] = (
                        (value - _TWO_32) >> (regs[rs2] & 31)
                    ) & _WORD_MASK
                else:
                    regs[rd] = value >> (regs[rs2] & 31)
                return pc + 1
        elif mnemonic == "MUL":
            def slot(pc, regs=regs, rd=rd, rs1=rs1, rs2=rs2):
                regs[rd] = (regs[rs1] * regs[rs2]) & _WORD_MASK
                return pc + 1
        elif mnemonic == "MULHU":
            def slot(pc, regs=regs, rd=rd, rs1=rs1, rs2=rs2):
                regs[rd] = (regs[rs1] * regs[rs2]) >> 32
                return pc + 1
        elif mnemonic == "AND":
            def slot(pc, regs=regs, rd=rd, rs1=rs1, rs2=rs2):
                regs[rd] = regs[rs1] & regs[rs2]
                return pc + 1
        elif mnemonic == "OR":
            def slot(pc, regs=regs, rd=rd, rs1=rs1, rs2=rs2):
                regs[rd] = regs[rs1] | regs[rs2]
                return pc + 1
        else:  # XOR
            def slot(pc, regs=regs, rd=rd, rs1=rs1, rs2=rs2):
                regs[rd] = regs[rs1] ^ regs[rs2]
                return pc + 1
        return slot

    if mnemonic in ("ADDI", "SLTI", "SLLI", "SRLI", "SRAI",
                    "ANDI", "ORI", "XORI"):
        rd, rs1, imm = ops
        if rd == 0:
            return _nop_slot
        if mnemonic == "ADDI":
            def slot(pc, regs=regs, rd=rd, rs1=rs1, imm=imm):
                regs[rd] = (regs[rs1] + imm) & _WORD_MASK
                return pc + 1
        elif mnemonic == "SLTI":
            def slot(pc, regs=regs, rd=rd, rs1=rs1, imm=imm):
                value = regs[rs1]
                if value & _SIGN_BIT:
                    value -= _TWO_32
                regs[rd] = 1 if value < imm else 0
                return pc + 1
        elif mnemonic == "SLLI":
            shift = imm & 31

            def slot(pc, regs=regs, rd=rd, rs1=rs1, shift=shift):
                regs[rd] = (regs[rs1] << shift) & _WORD_MASK
                return pc + 1
        elif mnemonic == "SRLI":
            shift = imm & 31

            def slot(pc, regs=regs, rd=rd, rs1=rs1, shift=shift):
                regs[rd] = regs[rs1] >> shift
                return pc + 1
        elif mnemonic == "SRAI":
            shift = imm & 31

            def slot(pc, regs=regs, rd=rd, rs1=rs1, shift=shift):
                value = regs[rs1]
                if value & _SIGN_BIT:
                    regs[rd] = ((value - _TWO_32) >> shift) & _WORD_MASK
                else:
                    regs[rd] = value >> shift
                return pc + 1
        else:
            # ANDI / ORI / XORI share the 32-bit immediate semantics
            # (see docs/isa.md, "Immediate semantics").
            masked = imm & _WORD_MASK
            if mnemonic == "ANDI":
                def slot(pc, regs=regs, rd=rd, rs1=rs1, imm=masked):
                    regs[rd] = regs[rs1] & imm
                    return pc + 1
            elif mnemonic == "ORI":
                def slot(pc, regs=regs, rd=rd, rs1=rs1, imm=masked):
                    regs[rd] = regs[rs1] | imm
                    return pc + 1
            else:  # XORI
                def slot(pc, regs=regs, rd=rd, rs1=rs1, imm=masked):
                    regs[rd] = regs[rs1] ^ imm
                    return pc + 1
        return slot

    if mnemonic == "LUI":
        rd, imm = ops
        if rd == 0:
            return _nop_slot
        value = (imm & 0xFFFF) << 16

        def slot(pc, regs=regs, rd=rd, value=value):
            regs[rd] = value
            return pc + 1
        return slot

    if mnemonic == "LW":
        rd, rs1, imm = ops
        if rd == 0:
            # The address is masked non-negative, so the reference load
            # can neither fault nor (with rd = r0) write — a pure no-op.
            return _nop_slot

        def slot(pc, regs=regs, memory=memory, rd=rd, rs1=rs1, imm=imm):
            regs[rd] = memory.get((regs[rs1] + imm) & _WORD_MASK, 0)
            return pc + 1
        return slot

    if mnemonic == "SW":
        rd, rs1, imm = ops

        def slot(pc, regs=regs, memory=memory, machine=machine,
                 rd=rd, rs1=rs1, imm=imm):
            address = (regs[rs1] + imm) & _WORD_MASK
            if (
                address not in memory
                and len(memory) >= machine.memory_limit_words
            ):
                raise MachineError(
                    f"memory footprint exceeded "
                    f"{machine.memory_limit_words} words"
                )
            memory[address] = regs[rd]
            return pc + 1
        return slot

    if mnemonic in ("BEQ", "BNE", "BLT", "BGE", "BLTU", "BGEU"):
        rs1, rs2, target = ops
        if mnemonic == "BEQ":
            def slot(pc, regs=regs, rs1=rs1, rs2=rs2, target=target):
                return target if regs[rs1] == regs[rs2] else pc + 1
        elif mnemonic == "BNE":
            def slot(pc, regs=regs, rs1=rs1, rs2=rs2, target=target):
                return target if regs[rs1] != regs[rs2] else pc + 1
        elif mnemonic == "BLT":
            def slot(pc, regs=regs, rs1=rs1, rs2=rs2, target=target):
                return (
                    target
                    if (regs[rs1] ^ _SIGN_BIT) < (regs[rs2] ^ _SIGN_BIT)
                    else pc + 1
                )
        elif mnemonic == "BGE":
            def slot(pc, regs=regs, rs1=rs1, rs2=rs2, target=target):
                return (
                    target
                    if (regs[rs1] ^ _SIGN_BIT) >= (regs[rs2] ^ _SIGN_BIT)
                    else pc + 1
                )
        elif mnemonic == "BLTU":
            def slot(pc, regs=regs, rs1=rs1, rs2=rs2, target=target):
                return target if regs[rs1] < regs[rs2] else pc + 1
        else:  # BGEU
            def slot(pc, regs=regs, rs1=rs1, rs2=rs2, target=target):
                return target if regs[rs1] >= regs[rs2] else pc + 1
        return slot

    if mnemonic == "JAL":
        rd, target = ops
        if rd == 0:
            def slot(pc, target=target):
                return target
        else:
            def slot(pc, regs=regs, rd=rd, target=target):
                regs[rd] = pc + 1
                return target
        return slot

    if mnemonic == "JALR":
        rd, rs1, imm = ops
        if rd == 0:
            def slot(pc, regs=regs, rs1=rs1, imm=imm):
                return (regs[rs1] + imm) & _WORD_MASK
        else:
            def slot(pc, regs=regs, rd=rd, rs1=rs1, imm=imm):
                target = (regs[rs1] + imm) & _WORD_MASK
                regs[rd] = pc + 1
                return target
        return slot

    if mnemonic == "HALT":
        def slot(pc, machine=machine):
            machine.halted = True
            return ~(pc + 1)
        return slot

    if mnemonic == "NOP":
        return _nop_slot

    raise MachineError(  # pragma: no cover - spec table is static
        f"unimplemented mnemonic {mnemonic!r}"
    )


class Machine:
    """Executes a :class:`Program`.

    Parameters
    ----------
    program:
        The assembled program.
    memory_limit_words:
        Upper bound on distinct memory words touched, a guard against
        runaway stores.
    """

    def __init__(self, program: Program, memory_limit_words: int = 1 << 22):
        self.program = program
        self.registers: List[int] = [0] * 32
        self.memory: Dict[int, int] = dict(program.data)
        self.pc = program.entry() if "main" in program.labels else 0
        self.halted = False
        self.instructions_retired = 0
        self.memory_limit_words = memory_limit_words
        self._hooks: List[InstrumentationHook] = []
        # Decoded-engine state, built lazily on first fast run.
        self._decoded: Optional[List[Callable[[int], int]]] = None
        self._class_ids: Optional[List[int]] = None
        self._unit_classes: Optional[Tuple[FrozenSet[str], ...]] = None

    # ------------------------------------------------------------------
    # Instrumentation (the ATOM analogue)
    # ------------------------------------------------------------------
    def add_hook(self, hook: InstrumentationHook) -> None:
        """Attach a per-retired-instruction observer.

        Hooks are a reference-path contract: while any hook is
        attached, :meth:`run_fast` falls back to :meth:`run` so every
        observer still sees every retired instruction.
        """
        self._hooks.append(hook)

    # ------------------------------------------------------------------
    # Register / memory access
    # ------------------------------------------------------------------
    def read_register(self, index: int) -> int:
        """Unsigned 32-bit register value (r0 reads as 0)."""
        return 0 if index == 0 else self.registers[index] & _WORD_MASK

    def write_register(self, index: int, value: int) -> None:
        """Write a register (writes to r0 are ignored)."""
        if index != 0:
            self.registers[index] = value & _WORD_MASK

    def read_memory(self, address: int) -> int:
        """Read a data word; uninitialized memory reads as zero."""
        if address < 0:
            raise MachineError(f"negative memory address {address}")
        return self.memory.get(address, 0)

    def write_memory(self, address: int, value: int) -> None:
        """Write a data word."""
        if address < 0:
            raise MachineError(f"negative memory address {address}")
        if (
            address not in self.memory
            and len(self.memory) >= self.memory_limit_words
        ):
            raise MachineError(
                f"memory footprint exceeded {self.memory_limit_words} words"
            )
        self.memory[address] = value & _WORD_MASK

    # ------------------------------------------------------------------
    # Reference execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Execute one instruction."""
        if self.halted:
            raise MachineError("machine is halted")
        if not 0 <= self.pc < len(self.program.instructions):
            raise MachineError(f"PC {self.pc} outside program")
        instruction = self.program.instructions[self.pc]
        current_pc = self.pc
        self.pc += 1
        self._execute(instruction)
        self.instructions_retired += 1
        if self._hooks:
            for hook in self._hooks:
                hook(current_pc, instruction)

    def run(self, max_instructions: int = 50_000_000) -> int:
        """Run to ``HALT`` on the reference path; returns instructions
        retired this call."""
        start = self.instructions_retired
        started = time.perf_counter() if obs.ENABLED else 0.0
        instructions = self.program.instructions
        limit = len(instructions)
        hooks = self._hooks
        execute = self._execute
        while not self.halted:
            if self.instructions_retired - start >= max_instructions:
                raise MachineError(
                    f"instruction budget {max_instructions} exhausted "
                    f"(pc={self.pc})"
                )
            pc = self.pc
            if not 0 <= pc < limit:
                raise MachineError(f"PC {pc} outside program")
            instruction = instructions[pc]
            self.pc = pc + 1
            execute(instruction)
            self.instructions_retired += 1
            if hooks:
                for hook in hooks:
                    hook(pc, instruction)
        retired = self.instructions_retired - start
        if obs.ENABLED:
            self._record_run_metrics(
                "machine.run", retired, time.perf_counter() - started
            )
        return retired

    # ------------------------------------------------------------------
    # Decoded execution
    # ------------------------------------------------------------------
    def decode(self) -> None:
        """Compile the program into the decoded dispatch table.

        Called lazily by :meth:`run_fast` / :meth:`run_counted` on
        first use; calling it eagerly just front-loads the (timed)
        decode cost.  Idempotent.
        """
        if self._decoded is not None:
            return
        with obs.span("machine.decode"):
            regs = self.registers
            memory = self.memory
            decoded: List[Callable[[int], int]] = []
            classes: List[FrozenSet[str]] = [frozenset()]
            class_index: Dict[FrozenSet[str], int] = {frozenset(): 0}
            class_ids: List[int] = []
            for instruction in self.program.instructions:
                decoded.append(
                    _compile_instruction(instruction, regs, memory, self)
                )
                units = instruction.spec.units
                cid = class_index.get(units)
                if cid is None:
                    cid = len(classes)
                    class_index[units] = cid
                    classes.append(units)
                class_ids.append(cid)
            self._decoded = decoded
            self._class_ids = class_ids
            self._unit_classes = tuple(classes)

    def _normalize_registers(self) -> None:
        """Restore the register-file invariant the closures rely on.

        Every machine API keeps registers masked and r0 zero; this
        re-normalizes defensively (in place, identity preserved) so a
        caller who poked ``machine.registers`` directly still gets the
        reference semantics from the decoded path.
        """
        regs = self.registers
        regs[0] = 0
        for index in range(1, 32):
            regs[index] &= _WORD_MASK

    def run_fast(self, max_instructions: int = 50_000_000) -> int:
        """Run to ``HALT`` on the decoded path; returns instructions
        retired this call.

        Bit-identical to :meth:`run` in architectural state
        (registers, memory, pc, ``halted``, ``instructions_retired``)
        and in error behavior (same :class:`MachineError` messages at
        the same machine states).  If any instrumentation hook is
        attached, this transparently falls back to the reference path
        so the ATOM contract — every hook sees every retired
        instruction — is preserved.
        """
        if self._hooks:
            return self.run(max_instructions)
        if self._decoded is None:
            self.decode()
        decoded = self._decoded
        self._normalize_registers()
        start = self.instructions_retired
        started = time.perf_counter() if obs.ENABLED else 0.0
        remaining = max_instructions
        pc = self.pc
        limit = len(decoded)
        while not self.halted:
            if remaining <= 0:
                self.pc = pc
                raise MachineError(
                    f"instruction budget {max_instructions} exhausted "
                    f"(pc={pc})"
                )
            if not 0 <= pc < limit:
                self.pc = pc
                raise MachineError(f"PC {pc} outside program")
            chunk = remaining if remaining < _DISPATCH_CHUNK \
                else _DISPATCH_CHUNK
            executed = 0
            try:
                for executed in range(1, chunk + 1):
                    pc = decoded[pc](pc)
                    if pc < 0:
                        break
            except IndexError:
                # The fetch at an out-of-range pc did not retire; the
                # bounds check above raises on the next pass.
                executed -= 1
            except MachineError:
                # The faulting instruction did not retire, but the
                # reference path had already advanced the pc past it.
                self.instructions_retired += executed - 1
                self.pc = pc + 1
                raise
            self.instructions_retired += executed
            remaining -= executed
            if pc < 0 and self.halted:
                pc = ~pc  # decode the halt slot's ~(pc + 1) sentinel
        self.pc = pc
        retired = self.instructions_retired - start
        if obs.ENABLED:
            self._record_run_metrics(
                "machine.run_fast", retired, time.perf_counter() - started
            )
        return retired

    def run_counted(
        self, max_instructions: int = 50_000_000, start_class: int = 0
    ) -> UnitClassCounts:
        """Decoded run that also counts unit-class transitions.

        The profiling twin of :meth:`run_fast`: identical dispatch and
        architectural behavior, plus one flat-array increment per
        retirement recording the (previous class, current class)
        transition.  The result is everything the ATOM profiler's
        per-instruction hook would have observed, without calling any
        Python hook — see
        :func:`repro.isa.profiler.profile_from_counts`.

        ``start_class`` seeds the predecessor state (class 0, the
        empty set, means "nothing retired yet"); chaining the previous
        call's ``final_class`` continues run-length accounting across
        calls exactly like a persistent hook would.

        Raises :class:`MachineError` if hooks are attached — counted
        dispatch never invokes them, so use :meth:`run` with an
        :class:`~repro.isa.profiler.AtomProfiler` instead.
        """
        if self._hooks:
            raise MachineError(
                "run_counted does not dispatch hooks; use run() with an "
                "AtomProfiler attached"
            )
        if self._decoded is None:
            self.decode()
        decoded = self._decoded
        class_ids = self._class_ids
        classes = self._unit_classes
        k = len(classes)
        if not 0 <= start_class < k:
            raise MachineError(
                f"start_class {start_class} outside unit classes (k={k})"
            )
        self._normalize_registers()
        transitions = [0] * (k * k)
        prev_base = start_class * k
        start = self.instructions_retired
        started = time.perf_counter() if obs.ENABLED else 0.0
        remaining = max_instructions
        pc = self.pc
        limit = len(decoded)
        while not self.halted:
            if remaining <= 0:
                self.pc = pc
                raise MachineError(
                    f"instruction budget {max_instructions} exhausted "
                    f"(pc={pc})"
                )
            if not 0 <= pc < limit:
                self.pc = pc
                raise MachineError(f"PC {pc} outside program")
            chunk = remaining if remaining < _DISPATCH_CHUNK \
                else _DISPATCH_CHUNK
            executed = 0
            try:
                for executed in range(1, chunk + 1):
                    cid = class_ids[pc]
                    transitions[prev_base + cid] += 1
                    prev_base = cid * k
                    pc = decoded[pc](pc)
                    if pc < 0:
                        break
            except IndexError:
                executed -= 1
            except MachineError:
                self.instructions_retired += executed - 1
                self.pc = pc + 1
                raise
            self.instructions_retired += executed
            remaining -= executed
            if pc < 0 and self.halted:
                pc = ~pc
        self.pc = pc
        retired = self.instructions_retired - start
        if obs.ENABLED:
            self._record_run_metrics(
                "machine.run_counted", retired,
                time.perf_counter() - started,
            )
        return UnitClassCounts(
            classes=classes,
            transitions=tuple(transitions),
            retired=retired,
            final_class=prev_base // k,
        )

    @staticmethod
    def _record_run_metrics(
        timer: str, retired: int, elapsed: float
    ) -> None:
        obs.incr("machine.instructions", retired)
        obs.observe_seconds(timer, elapsed)
        if elapsed > 0.0:
            obs.gauge("machine.instructions_per_s", retired / elapsed)

    # ------------------------------------------------------------------
    def _execute(self, instruction: Instruction) -> None:
        mnemonic = instruction.mnemonic
        ops = instruction.operands
        read = self.read_register
        write = self.write_register

        if mnemonic == "ADD":
            write(ops[0], read(ops[1]) + read(ops[2]))
        elif mnemonic == "SUB":
            write(ops[0], read(ops[1]) - read(ops[2]))
        elif mnemonic == "ADDI":
            write(ops[0], read(ops[1]) + ops[2])
        elif mnemonic == "SLT":
            write(
                ops[0],
                int(_to_signed(read(ops[1])) < _to_signed(read(ops[2]))),
            )
        elif mnemonic == "SLTU":
            write(ops[0], int(read(ops[1]) < read(ops[2])))
        elif mnemonic == "SLTI":
            write(ops[0], int(_to_signed(read(ops[1])) < ops[2]))
        elif mnemonic == "SLL":
            write(ops[0], read(ops[1]) << (read(ops[2]) & 31))
        elif mnemonic == "SRL":
            write(ops[0], read(ops[1]) >> (read(ops[2]) & 31))
        elif mnemonic == "SRA":
            write(ops[0], _to_signed(read(ops[1])) >> (read(ops[2]) & 31))
        elif mnemonic == "SLLI":
            write(ops[0], read(ops[1]) << (ops[2] & 31))
        elif mnemonic == "SRLI":
            write(ops[0], read(ops[1]) >> (ops[2] & 31))
        elif mnemonic == "SRAI":
            write(ops[0], _to_signed(read(ops[1])) >> (ops[2] & 31))
        elif mnemonic == "MUL":
            write(ops[0], read(ops[1]) * read(ops[2]))
        elif mnemonic == "MULHU":
            write(ops[0], (read(ops[1]) * read(ops[2])) >> 32)
        elif mnemonic == "AND":
            write(ops[0], read(ops[1]) & read(ops[2]))
        elif mnemonic == "OR":
            write(ops[0], read(ops[1]) | read(ops[2]))
        elif mnemonic == "XOR":
            write(ops[0], read(ops[1]) ^ read(ops[2]))
        elif mnemonic == "ANDI":
            write(ops[0], read(ops[1]) & (ops[2] & _WORD_MASK))
        elif mnemonic == "ORI":
            write(ops[0], read(ops[1]) | (ops[2] & _WORD_MASK))
        elif mnemonic == "XORI":
            write(ops[0], read(ops[1]) ^ (ops[2] & _WORD_MASK))
        elif mnemonic == "LUI":
            write(ops[0], (ops[1] & 0xFFFF) << 16)
        elif mnemonic == "LW":
            address = (read(ops[1]) + ops[2]) & _WORD_MASK
            write(ops[0], self.read_memory(address))
        elif mnemonic == "SW":
            address = (read(ops[1]) + ops[2]) & _WORD_MASK
            self.write_memory(address, read(ops[0]))
        elif mnemonic == "BEQ":
            if read(ops[0]) == read(ops[1]):
                self.pc = ops[2]
        elif mnemonic == "BNE":
            if read(ops[0]) != read(ops[1]):
                self.pc = ops[2]
        elif mnemonic == "BLT":
            if _to_signed(read(ops[0])) < _to_signed(read(ops[1])):
                self.pc = ops[2]
        elif mnemonic == "BGE":
            if _to_signed(read(ops[0])) >= _to_signed(read(ops[1])):
                self.pc = ops[2]
        elif mnemonic == "BLTU":
            if read(ops[0]) < read(ops[1]):
                self.pc = ops[2]
        elif mnemonic == "BGEU":
            if read(ops[0]) >= read(ops[1]):
                self.pc = ops[2]
        elif mnemonic == "JAL":
            write(ops[0], self.pc)
            self.pc = ops[1]
        elif mnemonic == "JALR":
            return_address = self.pc
            self.pc = (read(ops[1]) + ops[2]) & _WORD_MASK
            write(ops[0], return_address)
        elif mnemonic == "HALT":
            self.halted = True
        elif mnemonic == "NOP":
            pass
        else:  # pragma: no cover - spec table is static
            raise MachineError(f"unimplemented mnemonic {mnemonic!r}")
