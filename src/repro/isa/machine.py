"""Interpreter for the profiling ISA with ATOM-style instrumentation.

The :class:`Machine` executes an assembled
:class:`~repro.isa.assembler.Program` and, like ATOM, lets analysis
code attach a per-instruction hook that observes every retired
instruction.  The profiler in :mod:`repro.isa.profiler` is one such
analysis; tests attach their own.

Conventions: 32 registers (r0 hard-wired to zero), 32-bit two's
complement words, word-addressed memory, ``HALT`` stops execution.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import MachineError
from repro.isa.assembler import Program
from repro.isa.instructions import Instruction

__all__ = ["Machine"]

_WORD_MASK = 0xFFFFFFFF
_SIGN_BIT = 0x80000000

#: Hook signature: (pc, instruction) -> None, called as each
#: instruction retires.
InstrumentationHook = Callable[[int, Instruction], None]


def _to_signed(value: int) -> int:
    value &= _WORD_MASK
    return value - 0x100000000 if value & _SIGN_BIT else value


class Machine:
    """Executes a :class:`Program`.

    Parameters
    ----------
    program:
        The assembled program.
    memory_limit_words:
        Upper bound on distinct memory words touched, a guard against
        runaway stores.
    """

    def __init__(self, program: Program, memory_limit_words: int = 1 << 22):
        self.program = program
        self.registers: List[int] = [0] * 32
        self.memory: Dict[int, int] = dict(program.data)
        self.pc = program.entry() if "main" in program.labels else 0
        self.halted = False
        self.instructions_retired = 0
        self.memory_limit_words = memory_limit_words
        self._hooks: List[InstrumentationHook] = []

    # ------------------------------------------------------------------
    # Instrumentation (the ATOM analogue)
    # ------------------------------------------------------------------
    def add_hook(self, hook: InstrumentationHook) -> None:
        """Attach a per-retired-instruction observer."""
        self._hooks.append(hook)

    # ------------------------------------------------------------------
    # Register / memory access
    # ------------------------------------------------------------------
    def read_register(self, index: int) -> int:
        """Unsigned 32-bit register value (r0 reads as 0)."""
        return 0 if index == 0 else self.registers[index] & _WORD_MASK

    def write_register(self, index: int, value: int) -> None:
        """Write a register (writes to r0 are ignored)."""
        if index != 0:
            self.registers[index] = value & _WORD_MASK

    def read_memory(self, address: int) -> int:
        """Read a data word; uninitialized memory reads as zero."""
        if address < 0:
            raise MachineError(f"negative memory address {address}")
        return self.memory.get(address, 0)

    def write_memory(self, address: int, value: int) -> None:
        """Write a data word."""
        if address < 0:
            raise MachineError(f"negative memory address {address}")
        if (
            address not in self.memory
            and len(self.memory) >= self.memory_limit_words
        ):
            raise MachineError(
                f"memory footprint exceeded {self.memory_limit_words} words"
            )
        self.memory[address] = value & _WORD_MASK

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Execute one instruction."""
        if self.halted:
            raise MachineError("machine is halted")
        if not 0 <= self.pc < len(self.program.instructions):
            raise MachineError(f"PC {self.pc} outside program")
        instruction = self.program.instructions[self.pc]
        current_pc = self.pc
        self.pc += 1
        self._execute(instruction)
        self.instructions_retired += 1
        for hook in self._hooks:
            hook(current_pc, instruction)

    def run(self, max_instructions: int = 50_000_000) -> int:
        """Run to ``HALT``; returns instructions retired this call."""
        start = self.instructions_retired
        while not self.halted:
            if self.instructions_retired - start >= max_instructions:
                raise MachineError(
                    f"instruction budget {max_instructions} exhausted "
                    f"(pc={self.pc})"
                )
            self.step()
        return self.instructions_retired - start

    # ------------------------------------------------------------------
    def _execute(self, instruction: Instruction) -> None:
        mnemonic = instruction.mnemonic
        ops = instruction.operands
        read = self.read_register
        write = self.write_register

        if mnemonic == "ADD":
            write(ops[0], read(ops[1]) + read(ops[2]))
        elif mnemonic == "SUB":
            write(ops[0], read(ops[1]) - read(ops[2]))
        elif mnemonic == "ADDI":
            write(ops[0], read(ops[1]) + ops[2])
        elif mnemonic == "SLT":
            write(
                ops[0],
                int(_to_signed(read(ops[1])) < _to_signed(read(ops[2]))),
            )
        elif mnemonic == "SLTU":
            write(ops[0], int(read(ops[1]) < read(ops[2])))
        elif mnemonic == "SLTI":
            write(ops[0], int(_to_signed(read(ops[1])) < ops[2]))
        elif mnemonic == "SLL":
            write(ops[0], read(ops[1]) << (read(ops[2]) & 31))
        elif mnemonic == "SRL":
            write(ops[0], read(ops[1]) >> (read(ops[2]) & 31))
        elif mnemonic == "SRA":
            write(ops[0], _to_signed(read(ops[1])) >> (read(ops[2]) & 31))
        elif mnemonic == "SLLI":
            write(ops[0], read(ops[1]) << (ops[2] & 31))
        elif mnemonic == "SRLI":
            write(ops[0], read(ops[1]) >> (ops[2] & 31))
        elif mnemonic == "SRAI":
            write(ops[0], _to_signed(read(ops[1])) >> (ops[2] & 31))
        elif mnemonic == "MUL":
            write(ops[0], read(ops[1]) * read(ops[2]))
        elif mnemonic == "MULHU":
            write(ops[0], (read(ops[1]) * read(ops[2])) >> 32)
        elif mnemonic == "AND":
            write(ops[0], read(ops[1]) & read(ops[2]))
        elif mnemonic == "OR":
            write(ops[0], read(ops[1]) | read(ops[2]))
        elif mnemonic == "XOR":
            write(ops[0], read(ops[1]) ^ read(ops[2]))
        elif mnemonic == "ANDI":
            write(ops[0], read(ops[1]) & (ops[2] & _WORD_MASK))
        elif mnemonic == "ORI":
            write(ops[0], read(ops[1]) | (ops[2] & 0xFFFF))
        elif mnemonic == "XORI":
            write(ops[0], read(ops[1]) ^ (ops[2] & _WORD_MASK))
        elif mnemonic == "LUI":
            write(ops[0], (ops[1] & 0xFFFF) << 16)
        elif mnemonic == "LW":
            address = (read(ops[1]) + ops[2]) & _WORD_MASK
            write(ops[0], self.read_memory(address))
        elif mnemonic == "SW":
            address = (read(ops[1]) + ops[2]) & _WORD_MASK
            self.write_memory(address, read(ops[0]))
        elif mnemonic == "BEQ":
            if read(ops[0]) == read(ops[1]):
                self.pc = ops[2]
        elif mnemonic == "BNE":
            if read(ops[0]) != read(ops[1]):
                self.pc = ops[2]
        elif mnemonic == "BLT":
            if _to_signed(read(ops[0])) < _to_signed(read(ops[1])):
                self.pc = ops[2]
        elif mnemonic == "BGE":
            if _to_signed(read(ops[0])) >= _to_signed(read(ops[1])):
                self.pc = ops[2]
        elif mnemonic == "BLTU":
            if read(ops[0]) < read(ops[1]):
                self.pc = ops[2]
        elif mnemonic == "BGEU":
            if read(ops[0]) >= read(ops[1]):
                self.pc = ops[2]
        elif mnemonic == "JAL":
            write(ops[0], self.pc)
            self.pc = ops[1]
        elif mnemonic == "JALR":
            return_address = self.pc
            self.pc = (read(ops[1]) + ops[2]) & _WORD_MASK
            write(ops[0], return_address)
        elif mnemonic == "HALT":
            self.halted = True
        elif mnemonic == "NOP":
            pass
        else:  # pragma: no cover - spec table is static
            raise MachineError(f"unimplemented mnemonic {mnemonic!r}")
