"""Power-down gating policies (extension of the paper's bga model).

The paper's ``bga`` assumes the V_T control toggles at every boundary
of a run of uses.  A real controller would apply *hysteresis*: keep a
block powered through short idle gaps, trading extra low-V_T leakage
(more powered cycles) for fewer control toggles (lower bga).  This
module records per-unit use traces during execution and evaluates such
policies, feeding :func:`repro.power.energy.e_soias_gated`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ProfileError
from repro.isa.instructions import FUNCTIONAL_UNITS, Instruction

__all__ = ["GatedUnitStats", "UnitTraceRecorder", "apply_hysteresis"]


@dataclass(frozen=True)
class GatedUnitStats:
    """Activity of one unit under a gating policy.

    Distinguishes the two roles the plain ``fga`` conflates:

    * ``use_fraction`` — cycles the unit actually computes (drives the
      switching term),
    * ``powered_fraction`` — cycles the unit sits at low V_T (drives
      the active-leakage term); >= use_fraction under hysteresis.
    """

    unit: str
    idle_threshold: int
    uses: int
    powered_cycles: int
    toggles: int
    total_cycles: int

    def __post_init__(self) -> None:
        if self.total_cycles < 1:
            raise ProfileError("total_cycles must be >= 1")
        if self.powered_cycles < self.uses:
            raise ProfileError("powered cycles cannot be below uses")

    @property
    def use_fraction(self) -> float:
        """Fraction of cycles the unit computes (the switching fga)."""
        return self.uses / self.total_cycles

    @property
    def powered_fraction(self) -> float:
        """Fraction of cycles at low V_T (the leakage-exposure fga)."""
        return self.powered_cycles / self.total_cycles

    @property
    def bga(self) -> float:
        """Power-up events per cycle under this policy."""
        return self.toggles / self.total_cycles


class UnitTraceRecorder:
    """Machine hook recording run-length-encoded per-unit use traces.

    Attach with ``machine.add_hook(recorder)``; afterwards
    :meth:`trace` yields ``(active, length)`` runs for each unit.
    """

    def __init__(self, units: Tuple[str, ...] = FUNCTIONAL_UNITS):
        self.units = units
        self.total = 0
        # Per unit: list of [active(bool), length(int)] runs.
        self._runs: Dict[str, List[List]] = {unit: [] for unit in units}

    def __call__(self, pc: int, instruction: Instruction) -> None:
        self.total += 1
        used = instruction.units
        for unit in self.units:
            active = unit in used
            runs = self._runs[unit]
            if runs and runs[-1][0] == active:
                runs[-1][1] += 1
            else:
                runs.append([active, 1])

    def trace(self, unit: str) -> List[Tuple[bool, int]]:
        """RLE trace of one unit: list of (active, run_length)."""
        if unit not in self._runs:
            raise ProfileError(
                f"unit {unit!r} not recorded; have {sorted(self._runs)}"
            )
        return [(bool(a), int(n)) for a, n in self._runs[unit]]

    def gated_stats(
        self, unit: str, idle_threshold: int = 0
    ) -> GatedUnitStats:
        """Policy evaluation shortcut (see :func:`apply_hysteresis`)."""
        return apply_hysteresis(
            self.trace(unit), unit, self.total, idle_threshold
        )


def apply_hysteresis(
    trace: List[Tuple[bool, int]],
    unit: str,
    total_cycles: int,
    idle_threshold: int,
) -> GatedUnitStats:
    """Evaluate a keep-alive policy over an RLE use trace.

    The unit powers up on first use and powers down only after more
    than ``idle_threshold`` consecutive idle cycles (the idle gap's
    cycles up to the threshold are spent powered).  ``idle_threshold
    = 0`` reproduces the paper's immediate-gating bga exactly.
    """
    if idle_threshold < 0:
        raise ProfileError("idle_threshold must be >= 0")
    if total_cycles < 1:
        raise ProfileError("empty trace")
    uses = sum(length for active, length in trace if active)
    powered = 0
    toggles = 0
    is_powered = False
    for active, length in trace:
        if active:
            if not is_powered:
                toggles += 1
                is_powered = True
            powered += length
        else:
            if is_powered:
                if length > idle_threshold:
                    # Stays on through the threshold window, then cuts.
                    powered += idle_threshold
                    is_powered = False
                else:
                    powered += length
    return GatedUnitStats(
        unit=unit,
        idle_threshold=idle_threshold,
        uses=uses,
        powered_cycles=powered,
        toggles=toggles,
        total_cycles=total_cycles,
    )
