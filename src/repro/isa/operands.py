"""Operand-trace capture: workload-correlated stimulus for units.

The paper stresses twice that activity is "a strong function of signal
statistics" — yet its flow (and most flows since) simulates functional
units under *random* stimulus.  This module closes that gap: a machine
hook records the actual operand values each functional unit consumed
during workload execution, and converts them into switch-level
stimulus vectors for the unit's gate-level netlist.  Comparing the
resulting alpha against random stimulus quantifies how much the
architecture-level signal statistics matter.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ProfileError
from repro.isa.instructions import Instruction
from repro.isa.machine import Machine

__all__ = ["OperandTraceRecorder"]

#: Units whose operand pairs are recorded, with the operand semantics
#: of the datapath netlists (a, b) / (a, shift amount).
_TRACED_UNITS = ("adder", "shifter", "multiplier")


class OperandTraceRecorder:
    """Machine hook capturing (a, b) operand pairs per functional unit.

    Attach **before** running::

        machine = Machine(program)
        recorder = OperandTraceRecorder(machine)
        machine.run()
        vectors = recorder.stimulus("multiplier", {"a": 8, "b": 8})

    The recorder snapshots source-register values at retirement.  For
    memory and branch instructions the adder sees the address/compare
    operands, mirroring the paper's unit mapping.
    """

    def __init__(self, machine: Machine, limit_per_unit: int = 100_000):
        if limit_per_unit < 1:
            raise ProfileError("limit_per_unit must be >= 1")
        self.machine = machine
        self.limit_per_unit = limit_per_unit
        self.operands: Dict[str, List[Tuple[int, int]]] = {
            unit: [] for unit in _TRACED_UNITS
        }
        machine.add_hook(self)

    # ------------------------------------------------------------------
    def __call__(self, pc: int, instruction: Instruction) -> None:
        for unit in _TRACED_UNITS:
            if unit not in instruction.units:
                continue
            trace = self.operands[unit]
            if len(trace) >= self.limit_per_unit:
                continue
            pair = self._extract_pair(instruction)
            if pair is not None:
                trace.append(pair)

    def _extract_pair(self, instruction: Instruction):
        read = self.machine.read_register
        fmt = instruction.spec.fmt
        ops = instruction.operands
        if fmt == "rrr":
            return read(ops[1]), read(ops[2])
        if fmt == "rri":
            return read(ops[1]), ops[2] & 0xFFFFFFFF
        if fmt == "mem":
            # Address arithmetic: base + offset on the adder.
            return read(ops[1]), ops[2] & 0xFFFFFFFF
        if fmt == "branch":
            # Comparison on the adder.
            return read(ops[0]), read(ops[1])
        return None

    # ------------------------------------------------------------------
    def pair_count(self, unit: str) -> int:
        """Recorded operand pairs for one unit."""
        self._check_unit(unit)
        return len(self.operands[unit])

    def stimulus(
        self,
        unit: str,
        buses: Dict[str, int],
        limit: int = 0,
    ) -> List[Dict[str, int]]:
        """Switch-level vectors from the recorded operand stream.

        Parameters
        ----------
        unit:
            ``"adder"``, ``"shifter"`` or ``"multiplier"``.
        buses:
            ``{prefix: width}`` of the unit netlist's input buses, in
            (first-operand, second-operand) order — e.g.
            ``{"a": 8, "b": 8}`` for the adder/multiplier or
            ``{"a": 8, "s": 3}`` for the shifter.  Operand values are
            truncated to the bus widths (the datapath slice the
            netlist models).
        limit:
            Use only the first N pairs (0 = all).
        """
        self._check_unit(unit)
        if len(buses) != 2:
            raise ProfileError(
                "stimulus needs exactly two buses (operand a, operand b)"
            )
        pairs = self.operands[unit]
        if not pairs:
            raise ProfileError(
                f"no operands recorded for unit {unit!r}; did the "
                "workload use it?"
            )
        if limit:
            pairs = pairs[:limit]
        (prefix_a, width_a), (prefix_b, width_b) = buses.items()
        vectors: List[Dict[str, int]] = []
        for value_a, value_b in pairs:
            vector: Dict[str, int] = {}
            masked_a = value_a & ((1 << width_a) - 1)
            masked_b = value_b & ((1 << width_b) - 1)
            for bit in range(width_a):
                vector[f"{prefix_a}[{bit}]"] = (masked_a >> bit) & 1
            for bit in range(width_b):
                vector[f"{prefix_b}[{bit}]"] = (masked_b >> bit) & 1
            vectors.append(vector)
        return vectors

    def _check_unit(self, unit: str) -> None:
        if unit not in self.operands:
            raise ProfileError(
                f"unit {unit!r} not traced; traced: {_TRACED_UNITS}"
            )
