"""ATOM-style functional-unit profiling (fga / bga extraction).

The paper defines, per functional block:

* ``fga`` — fraction of executed instructions that use the block
  ("the ratio between the total number of uses of the functional block
  to the total number of executed instructions");
* ``bga`` — "the ratio of the number of *blocks* of functional unit
  uses to the total number of executed instructions (so if all the
  uses of a block were sequential, bga would be 1/total)".

A "block of uses" is a maximal run of consecutive retired instructions
that use the unit; we count run onsets.  ``bga`` is the probability the
unit's V_T control (SOIAS back gate / MTCMOS sleep signal) must toggle
in a cycle, so runs — not uses — are what cost back-gate energy.

Two engines produce the same numbers:

* the **reference** engine attaches an :class:`AtomProfiler` hook and
  steps the machine — analysis code interposed per retired
  instruction, the original ATOM picture;
* the **fast** engine (the default) follows ATOM's actual design
  point — the analysis is *compiled into* the instrumented program:
  the machine's decoded dispatch loop tags each slot with a
  functional-unit class id and counts class transitions in a flat
  array (:meth:`~repro.isa.machine.Machine.run_counted`), and
  :func:`profile_from_counts` folds the transition matrix into the
  identical per-unit uses/runs afterwards.  No Python hook runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ProfileError
from repro.isa.assembler import Program
from repro.isa.instructions import FUNCTIONAL_UNITS, Instruction
from repro.isa.machine import Machine, UnitClassCounts

__all__ = [
    "UnitStats",
    "FunctionalUnitProfile",
    "AtomProfiler",
    "profile_from_counts",
    "profile_program",
]


@dataclass(frozen=True)
class UnitStats:
    """Counts for one functional unit over a run."""

    unit: str
    uses: int
    runs: int
    total_instructions: int

    @property
    def fga(self) -> float:
        """Front-gate activity: fraction of cycles the unit is active."""
        return self.uses / self.total_instructions

    @property
    def bga(self) -> float:
        """Back-gate activity: V_T-control toggles per cycle."""
        return self.runs / self.total_instructions

    @property
    def mean_run_length(self) -> float:
        """Average consecutive-use run length (uses per power-up)."""
        return self.uses / self.runs if self.runs else 0.0


@dataclass(frozen=True)
class FunctionalUnitProfile:
    """Profile of one program execution (one paper table)."""

    program_name: str
    total_instructions: int
    units: Dict[str, UnitStats]

    def stats(self, unit: str) -> UnitStats:
        """Stats for one unit."""
        try:
            return self.units[unit]
        except KeyError:
            raise ProfileError(
                f"unknown unit {unit!r}; tracked: {sorted(self.units)}"
            ) from None

    def fga(self, unit: str) -> float:
        """Shortcut for ``stats(unit).fga``."""
        return self.stats(unit).fga

    def bga(self, unit: str) -> float:
        """Shortcut for ``stats(unit).bga``."""
        return self.stats(unit).bga

    def merged_with(
        self, other: "FunctionalUnitProfile"
    ) -> "FunctionalUnitProfile":
        """Concatenate two runs (a "session" profile).

        Uses, runs and totals add; this is how a whole interactive
        session mixing several programs is summarized before the
        Fig. 10 placement.
        """
        names = set(self.units) | set(other.units)
        total = self.total_instructions + other.total_instructions
        units = {}
        for name in names:
            mine = self.units.get(name)
            theirs = other.units.get(name)
            units[name] = UnitStats(
                unit=name,
                uses=(mine.uses if mine else 0)
                + (theirs.uses if theirs else 0),
                runs=(mine.runs if mine else 0)
                + (theirs.runs if theirs else 0),
                total_instructions=total,
            )
        return FunctionalUnitProfile(
            program_name=f"{self.program_name}+{other.program_name}",
            total_instructions=total,
            units=units,
        )

    def scaled_by_duty_cycle(self, duty: float) -> "FunctionalUnitProfile":
        """Profile of the same code in a system active ``duty`` of the time.

        The paper's X-server analysis: the processor is idle (cleanly
        gated) most of the time, so every unit's activities scale by
        the system duty cycle.  Counts are scaled in real-time cycles:
        total cycles grow by ``1/duty`` while uses and runs stay fixed.
        """
        if not 0.0 < duty <= 1.0:
            raise ProfileError(f"duty cycle must be in (0, 1], got {duty}")
        scaled_total = max(int(round(self.total_instructions / duty)), 1)
        units = {
            name: UnitStats(
                unit=name,
                uses=stats.uses,
                runs=stats.runs,
                total_instructions=scaled_total,
            )
            for name, stats in self.units.items()
        }
        return FunctionalUnitProfile(
            program_name=f"{self.program_name}@duty={duty:g}",
            total_instructions=scaled_total,
            units=units,
        )


class AtomProfiler:
    """Instrumentation hook that accumulates per-unit use/run counts.

    Attach to a :class:`Machine` with ``machine.add_hook(profiler)``;
    the object is callable with the hook signature.
    """

    def __init__(self, units: Tuple[str, ...] = FUNCTIONAL_UNITS):
        self.units = units
        self.uses: Dict[str, int] = {unit: 0 for unit in units}
        self.runs: Dict[str, int] = {unit: 0 for unit in units}
        self.total = 0
        self._active_last_cycle: Dict[str, bool] = {
            unit: False for unit in units
        }

    def __call__(self, pc: int, instruction: Instruction) -> None:
        self.total += 1
        used = instruction.units
        for unit in self.units:
            if unit in used:
                self.uses[unit] += 1
                if not self._active_last_cycle[unit]:
                    self.runs[unit] += 1
                self._active_last_cycle[unit] = True
            else:
                self._active_last_cycle[unit] = False

    def profile(self, program_name: str) -> FunctionalUnitProfile:
        """Freeze the counters into a :class:`FunctionalUnitProfile`."""
        if self.total == 0:
            raise ProfileError("no instructions retired; nothing to profile")
        units = {
            unit: UnitStats(
                unit=unit,
                uses=self.uses[unit],
                runs=self.runs[unit],
                total_instructions=self.total,
            )
            for unit in self.units
        }
        return FunctionalUnitProfile(
            program_name=program_name,
            total_instructions=self.total,
            units=units,
        )


def profile_from_counts(
    program_name: str,
    counts: UnitClassCounts,
    units: Tuple[str, ...] = FUNCTIONAL_UNITS,
) -> FunctionalUnitProfile:
    """Fold a counted run's transition matrix into a unit profile.

    Per-unit uses and run onsets are exact functions of the
    class-transition counts: an instruction of class ``c`` uses every
    unit in ``c``, and starts a run of unit ``u`` exactly when ``u`` is
    in ``c`` but not in the predecessor class ``p``.  Summing
    ``transitions[p][c]`` under those predicates therefore reproduces
    the :class:`AtomProfiler` hook's counters without having observed
    any individual instruction.
    """
    if counts.retired == 0:
        raise ProfileError("no instructions retired; nothing to profile")
    uses = {unit: 0 for unit in units}
    runs = {unit: 0 for unit in units}
    classes = counts.classes
    k = len(classes)
    transitions = counts.transitions
    for p in range(k):
        previous_units = classes[p]
        base = p * k
        for c in range(k):
            count = transitions[base + c]
            if not count:
                continue
            for unit in classes[c]:
                uses[unit] += count
                if unit not in previous_units:
                    runs[unit] += count
    return FunctionalUnitProfile(
        program_name=program_name,
        total_instructions=counts.retired,
        units={
            unit: UnitStats(
                unit=unit,
                uses=uses[unit],
                runs=runs[unit],
                total_instructions=counts.retired,
            )
            for unit in units
        },
    )


def profile_program(
    program: Program,
    max_instructions: int = 50_000_000,
    machine: Optional[Machine] = None,
    engine: str = "fast",
) -> FunctionalUnitProfile:
    """Run a program to completion and return its unit profile.

    Parameters
    ----------
    program:
        The assembled workload.
    max_instructions:
        Execution budget guard.
    machine:
        Optionally a pre-configured machine (e.g. with extra hooks);
        a fresh one is created otherwise.
    engine:
        ``"fast"`` (default) profiles through the decoded counter
        path — no per-instruction Python hook; ``"reference"`` attaches
        an :class:`AtomProfiler` hook and steps the reference
        interpreter.  Both produce identical profiles.  A machine with
        hooks already attached always takes the reference path, so
        user instrumentation keeps observing every retired
        instruction.
    """
    if engine not in ("fast", "reference"):
        raise ProfileError(
            f"unknown profiling engine {engine!r}; use 'fast' or "
            "'reference'"
        )
    if machine is None:
        machine = Machine(program)
    if engine == "fast" and not machine._hooks:
        counts = machine.run_counted(max_instructions=max_instructions)
        return profile_from_counts(program.name, counts)
    profiler = AtomProfiler()
    machine.add_hook(profiler)
    machine.run(max_instructions=max_instructions)
    return profiler.profile(program.name)
