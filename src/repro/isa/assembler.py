"""Two-pass assembler for the profiling ISA.

Syntax (case-insensitive mnemonics, ``#`` or ``;`` comments)::

    .data
    table:  .word 3, 5, 0x10
    buffer: .space 8            # 8 zero words
    .text
    main:   LI    r1, 1000
            LA    r2, table
    loop:   LW    r3, 0(r2)
            ADD   r4, r4, r3
            ADDI  r1, r1, -1
            BNE   r1, zero, loop
            HALT

Memory is **word addressed**.  The data segment starts at word address
``DATA_BASE``; text labels resolve to instruction indices (the PC).

Pseudo-instructions (expanded before unit accounting, so profiles see
the real datapath instructions): ``LI``, ``LA``, ``MOV``, ``NOT``,
``SUBI``, ``J``, ``CALL``, ``RET``, ``BGT``, ``BLE``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import AssemblyError
from repro.isa.instructions import Instruction, instruction_set

__all__ = ["DATA_BASE", "Program", "assemble"]

#: Word address where the data segment begins.
DATA_BASE = 0x1000

_REGISTER_ALIASES = {"zero": 0, "ra": 31, "sp": 30}
_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


@dataclass(frozen=True)
class Program:
    """An assembled program: code, initialized data, symbols."""

    name: str
    instructions: Tuple[Instruction, ...]
    labels: Dict[str, int]
    data: Dict[int, int]
    data_base: int = DATA_BASE

    @property
    def size(self) -> int:
        """Instruction count."""
        return len(self.instructions)

    def entry(self, label: str = "main") -> int:
        """PC of a label (defaults to ``main``, else 0 if absent)."""
        if label in self.labels:
            return self.labels[label]
        if label == "main":
            return 0
        raise AssemblyError(f"no label {label!r} in program {self.name!r}")


@dataclass
class _Line:
    number: int
    label: Optional[str]
    mnemonic: Optional[str]
    operands: List[str] = field(default_factory=list)
    directive: Optional[str] = None
    directive_args: List[str] = field(default_factory=list)


def _strip_comment(text: str) -> str:
    for marker in ("#", ";"):
        index = text.find(marker)
        if index >= 0:
            text = text[:index]
    return text.strip()


def _parse_register(token: str, line: int) -> int:
    token = token.strip().lower()
    if token in _REGISTER_ALIASES:
        return _REGISTER_ALIASES[token]
    if token.startswith("r") and token[1:].isdigit():
        index = int(token[1:])
        if 0 <= index <= 31:
            return index
    raise AssemblyError(f"line {line}: bad register {token!r}")


def _parse_int(token: str, line: int) -> int:
    token = token.strip()
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(
            f"line {line}: expected integer, got {token!r}"
        ) from None


def _check_imm(value: int, line: int) -> int:
    if not -32768 <= value <= 65535:
        raise AssemblyError(
            f"line {line}: immediate {value} outside 16-bit range"
        )
    return value


_MEM_RE = re.compile(r"^(-?\w+)\((\w+)\)$")


def _parse_lines(source: str) -> List[_Line]:
    lines: List[_Line] = []
    for number, raw in enumerate(source.splitlines(), start=1):
        text = _strip_comment(raw)
        if not text:
            continue
        label = None
        if ":" in text:
            head, _, rest = text.partition(":")
            head = head.strip()
            if not _LABEL_RE.match(head):
                raise AssemblyError(f"line {number}: bad label {head!r}")
            label = head
            text = rest.strip()
        if not text:
            lines.append(_Line(number=number, label=label, mnemonic=None))
            continue
        parts = text.split(None, 1)
        head = parts[0]
        rest = parts[1] if len(parts) > 1 else ""
        operands = [
            token.strip() for token in rest.split(",") if token.strip()
        ]
        if head.startswith("."):
            lines.append(
                _Line(
                    number=number,
                    label=label,
                    mnemonic=None,
                    directive=head.lower(),
                    directive_args=operands,
                )
            )
        else:
            lines.append(
                _Line(
                    number=number,
                    label=label,
                    mnemonic=head.upper(),
                    operands=operands,
                )
            )
    return lines


def _expansion_size(line: _Line) -> int:
    """How many real instructions a text line assembles to."""
    mnemonic = line.mnemonic
    if mnemonic is None:
        return 0
    if mnemonic == "LI":
        if len(line.operands) != 2:
            raise AssemblyError(
                f"line {line.number}: LI needs rd, imm"
            )
        value = _parse_int(line.operands[1], line.number)
        return 1 if -32768 <= value <= 32767 else 2
    if mnemonic == "LA":
        return 2
    return 1


class _Assembler:
    def __init__(self, source: str, name: str):
        self.name = name
        self.lines = _parse_lines(source)
        self.specs = instruction_set()
        self.labels: Dict[str, int] = {}
        self.data: Dict[int, int] = {}
        self.instructions: List[Instruction] = []

    # -- pass 1: layout ------------------------------------------------
    def layout(self) -> None:
        segment = "text"
        pc = 0
        data_cursor = DATA_BASE
        for line in self.lines:
            if line.directive in (".text", ".data"):
                segment = line.directive[1:]
                if line.label:
                    raise AssemblyError(
                        f"line {line.number}: label on segment directive"
                    )
                continue
            if line.label:
                address = pc if segment == "text" else data_cursor
                if line.label in self.labels:
                    raise AssemblyError(
                        f"line {line.number}: duplicate label "
                        f"{line.label!r}"
                    )
                self.labels[line.label] = address
            if segment == "data":
                data_cursor += self._layout_data(line, data_cursor)
            else:
                pc += _expansion_size(line)

    def _layout_data(self, line: _Line, cursor: int) -> int:
        if line.directive is None:
            if line.mnemonic is not None:
                raise AssemblyError(
                    f"line {line.number}: instruction in .data segment"
                )
            return 0
        if line.directive == ".word":
            for index, token in enumerate(line.directive_args):
                value = _parse_int(token, line.number)
                self.data[cursor + index] = value & 0xFFFFFFFF
            return len(line.directive_args)
        if line.directive == ".space":
            if len(line.directive_args) != 1:
                raise AssemblyError(
                    f"line {line.number}: .space needs one count"
                )
            count = _parse_int(line.directive_args[0], line.number)
            if count < 0:
                raise AssemblyError(
                    f"line {line.number}: negative .space count"
                )
            for index in range(count):
                self.data[cursor + index] = 0
            return count
        raise AssemblyError(
            f"line {line.number}: unknown directive {line.directive!r}"
        )

    # -- pass 2: encode --------------------------------------------------
    def encode(self) -> None:
        segment = "text"
        for line in self.lines:
            if line.directive in (".text", ".data"):
                segment = line.directive[1:]
                continue
            if segment != "text" or line.mnemonic is None:
                continue
            self.instructions.extend(self._encode_line(line))

    def _resolve(self, token: str, line: int) -> int:
        token = token.strip()
        if token in self.labels:
            return self.labels[token]
        return _parse_int(token, line)

    def _encode_line(self, line: _Line) -> List[Instruction]:
        mnemonic = line.mnemonic
        assert mnemonic is not None
        number = line.number
        ops = line.operands

        # ---- pseudo-instructions --------------------------------------
        if mnemonic == "LI":
            rd = _parse_register(ops[0], number)
            value = _parse_int(ops[1], number)
            return self._load_immediate(rd, value, number)
        if mnemonic == "LA":
            if len(ops) != 2:
                raise AssemblyError(f"line {number}: LA needs rd, label")
            rd = _parse_register(ops[0], number)
            if ops[1] not in self.labels:
                raise AssemblyError(
                    f"line {number}: unknown label {ops[1]!r}"
                )
            value = self.labels[ops[1]]
            return self._load_immediate(rd, value, number, force_pair=True)
        if mnemonic == "MOV":
            self._need(ops, 2, number, "MOV rd, rs")
            return [self._make("ADDI", (
                _parse_register(ops[0], number),
                _parse_register(ops[1], number), 0), number)]
        if mnemonic == "NOT":
            self._need(ops, 2, number, "NOT rd, rs")
            return [self._make("XORI", (
                _parse_register(ops[0], number),
                _parse_register(ops[1], number), -1), number)]
        if mnemonic == "SUBI":
            self._need(ops, 3, number, "SUBI rd, rs, imm")
            value = _check_imm(-_parse_int(ops[2], number), number)
            return [self._make("ADDI", (
                _parse_register(ops[0], number),
                _parse_register(ops[1], number), value), number)]
        if mnemonic == "J":
            self._need(ops, 1, number, "J label")
            return [self._make("JAL", (0, self._target(ops[0], number)),
                               number)]
        if mnemonic == "CALL":
            self._need(ops, 1, number, "CALL label")
            return [self._make("JAL", (31, self._target(ops[0], number)),
                               number)]
        if mnemonic == "RET":
            return [self._make("JALR", (0, 31, 0), number)]
        if mnemonic in ("BGT", "BLE"):
            self._need(ops, 3, number, f"{mnemonic} rs1, rs2, label")
            real = "BLT" if mnemonic == "BGT" else "BGE"
            return [self._make(real, (
                _parse_register(ops[1], number),
                _parse_register(ops[0], number),
                self._target(ops[2], number)), number)]

        # ---- real instructions ----------------------------------------
        spec = self.specs.get(mnemonic)
        if spec is None:
            raise AssemblyError(
                f"line {number}: unknown mnemonic {mnemonic!r}"
            )
        if spec.fmt == "rrr":
            self._need(ops, 3, number, f"{mnemonic} rd, rs1, rs2")
            operands = tuple(_parse_register(t, number) for t in ops)
        elif spec.fmt == "rri":
            self._need(ops, 3, number, f"{mnemonic} rd, rs1, imm")
            operands = (
                _parse_register(ops[0], number),
                _parse_register(ops[1], number),
                _check_imm(self._resolve(ops[2], number), number),
            )
        elif spec.fmt == "ri":
            self._need(ops, 2, number, f"{mnemonic} rd, imm")
            operands = (
                _parse_register(ops[0], number),
                _check_imm(self._resolve(ops[1], number), number),
            )
        elif spec.fmt == "mem":
            self._need(ops, 2, number, f"{mnemonic} rd, imm(rs)")
            match = _MEM_RE.match(ops[1].replace(" ", ""))
            if not match:
                raise AssemblyError(
                    f"line {number}: expected imm(rs), got {ops[1]!r}"
                )
            offset_token, base_token = match.groups()
            operands = (
                _parse_register(ops[0], number),
                _parse_register(base_token, number),
                _check_imm(self._resolve(offset_token, number), number),
            )
        elif spec.fmt == "branch":
            self._need(ops, 3, number, f"{mnemonic} rs1, rs2, label")
            operands = (
                _parse_register(ops[0], number),
                _parse_register(ops[1], number),
                self._target(ops[2], number),
            )
        elif spec.fmt == "jump":
            self._need(ops, 2, number, f"{mnemonic} rd, label")
            operands = (
                _parse_register(ops[0], number),
                self._target(ops[1], number),
            )
        elif spec.fmt == "none":
            self._need(ops, 0, number, mnemonic)
            operands = ()
        else:  # pragma: no cover - spec table is static
            raise AssemblyError(f"line {number}: bad format {spec.fmt!r}")
        return [Instruction(spec=spec, operands=operands,
                            source_line=number)]

    def _load_immediate(
        self, rd: int, value: int, line: int, force_pair: bool = False
    ) -> List[Instruction]:
        if not force_pair and -32768 <= value <= 32767:
            return [self._make("ADDI", (rd, 0, value), line)]
        unsigned = value & 0xFFFFFFFF
        high = (unsigned >> 16) & 0xFFFF
        low = unsigned & 0xFFFF
        return [
            self._make("LUI", (rd, high), line),
            self._make("ORI", (rd, rd, low), line),
        ]

    def _make(self, mnemonic: str, operands: Tuple[int, ...],
              line: int) -> Instruction:
        return Instruction(
            spec=self.specs[mnemonic], operands=operands, source_line=line
        )

    def _target(self, token: str, line: int) -> int:
        token = token.strip()
        if token in self.labels:
            return self.labels[token]
        if re.match(r"^-?(0x)?[0-9a-fA-F]+$", token):
            return _parse_int(token, line)
        raise AssemblyError(f"line {line}: unknown label {token!r}")

    @staticmethod
    def _need(ops: List[str], count: int, line: int, usage: str) -> None:
        if len(ops) != count:
            raise AssemblyError(f"line {line}: usage: {usage}")


def assemble(source: str, name: str = "program") -> Program:
    """Assemble source text into a :class:`Program`."""
    assembler = _Assembler(source, name)
    assembler.layout()
    assembler.encode()
    if not assembler.instructions:
        raise AssemblyError(f"program {name!r} has no instructions")
    return Program(
        name=name,
        instructions=tuple(assembler.instructions),
        labels=dict(assembler.labels),
        data=dict(assembler.data),
    )
