"""Instruction-level profiling substrate (the Pixie/ATOM substitute).

The paper extracts its architectural activity parameters (``fga``,
``bga``) by instrumenting binaries with DEC's Pixie/ATOM tools and
mapping instruction classes to functional blocks.  This package
provides the offline equivalent:

* :mod:`~repro.isa.instructions` — a small RISC ISA whose every
  instruction is annotated with the functional units it exercises
  (the paper's assumption: "all add, compare, load, and store
  instructions use the ALU adder").
* :mod:`~repro.isa.assembler` — a two-pass assembler.
* :mod:`~repro.isa.machine` — an interpreter with an ATOM-style
  per-instruction instrumentation hook (the reference path) and a
  pre-decoded closure-dispatch engine (``run_fast`` /
  ``run_counted``) that is bit-identical and much faster.
* :mod:`~repro.isa.profiler` — turns an execution trace into
  per-functional-unit ``fga``/``bga`` numbers (Tables 1-3), by hook
  or — the default — by folding the decoded engine's unit-class
  transition counts.
* :mod:`~repro.isa.workloads` — the three paper workloads (an
  espresso-like minimizer kernel, a li-like list interpreter, the IDEA
  cipher) plus extension workloads.
"""

from repro.isa.instructions import (
    FUNCTIONAL_UNITS,
    Instruction,
    InstructionSpec,
    instruction_set,
)
from repro.isa.assembler import Program, assemble
from repro.isa.machine import Machine, UnitClassCounts
from repro.isa.profiler import (
    FunctionalUnitProfile,
    UnitStats,
    profile_from_counts,
    profile_program,
)
from repro.isa.policy import GatedUnitStats, UnitTraceRecorder, apply_hysteresis
from repro.isa.operands import OperandTraceRecorder
from repro.isa.disasm import disassemble, listing

__all__ = [
    "GatedUnitStats",
    "UnitTraceRecorder",
    "apply_hysteresis",
    "OperandTraceRecorder",
    "disassemble",
    "listing",
    "FUNCTIONAL_UNITS",
    "Instruction",
    "InstructionSpec",
    "instruction_set",
    "Program",
    "assemble",
    "Machine",
    "UnitClassCounts",
    "FunctionalUnitProfile",
    "UnitStats",
    "profile_from_counts",
    "profile_program",
]
