"""IDEA block cipher workload (paper Table 3).

The International Data Encryption Algorithm operates on 64-bit blocks
as four 16-bit words with three group operations: XOR, addition mod
2^16, and multiplication mod 2^16 + 1 (with 0 representing 2^16) — the
last being why the paper's Table 3 shows the multiplier working hard.

This module provides:

* a pure-Python reference (:func:`encrypt_block`, :func:`decrypt_block`
  and both key schedules), used by the tests;
* :func:`source` — assembly for encrypting ``n_blocks`` 64-bit blocks
  on the profiling ISA (subkeys precomputed into the data segment, as
  a real implementation would);
* :func:`read_ciphertext` — pulls the result words back out of a
  finished machine.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.errors import AssemblyError
from repro.isa.assembler import Program, assemble
from repro.isa.machine import Machine

__all__ = [
    "key_schedule",
    "decrypt_key_schedule",
    "mul_mod",
    "add_mod",
    "encrypt_block",
    "decrypt_block",
    "source",
    "build_program",
    "random_blocks",
    "read_ciphertext",
    "DEFAULT_KEY",
]

_MOD_MUL = 0x10001  # 2^16 + 1
_MASK16 = 0xFFFF
ROUNDS = 8

#: 128-bit key used by the canned benchmark (eight 16-bit words).
DEFAULT_KEY: Tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8)


# ----------------------------------------------------------------------
# Reference implementation (group operations)
# ----------------------------------------------------------------------
def mul_mod(a: int, b: int) -> int:
    """IDEA multiplication: mod 2^16+1 with 0 encoding 2^16."""
    a = a or 0x10000
    b = b or 0x10000
    return (a * b % _MOD_MUL) & _MASK16


def add_mod(a: int, b: int) -> int:
    """IDEA addition: mod 2^16."""
    return (a + b) & _MASK16


def _mul_inverse(a: int) -> int:
    """Multiplicative inverse in the IDEA group (0 encodes 2^16)."""
    value = a or 0x10000
    return pow(value, _MOD_MUL - 2, _MOD_MUL) & _MASK16


def key_schedule(key_words: Sequence[int] = DEFAULT_KEY) -> List[int]:
    """Expand a 128-bit key (eight 16-bit words) into 52 subkeys.

    Standard schedule: emit the 8 words, rotate the 128-bit key left
    by 25 bits, repeat.
    """
    if len(key_words) != 8:
        raise AssemblyError("IDEA key must be eight 16-bit words")
    if any(not 0 <= w <= _MASK16 for w in key_words):
        raise AssemblyError("IDEA key words must be 16-bit")
    key = 0
    for word in key_words:
        key = (key << 16) | word
    subkeys: List[int] = []
    while len(subkeys) < 52:
        for i in range(8):
            if len(subkeys) == 52:
                break
            subkeys.append((key >> (112 - 16 * i)) & _MASK16)
        key = ((key << 25) | (key >> 103)) & ((1 << 128) - 1)
    return subkeys


def decrypt_key_schedule(key_words: Sequence[int] = DEFAULT_KEY) -> List[int]:
    """Subkeys that make :func:`encrypt_block` invert itself."""
    enc = key_schedule(key_words)
    dec: List[int] = [0] * 52
    # Output transform of decryption <- inverse of round-1 inputs.
    dec[48] = _mul_inverse(enc[0])
    dec[49] = (-enc[1]) & _MASK16
    dec[50] = (-enc[2]) & _MASK16
    dec[51] = _mul_inverse(enc[3])
    for round_index in range(ROUNDS):
        e = 6 * (ROUNDS - 1 - round_index)
        d = 6 * round_index
        dec[d + 4] = enc[e + 4]
        dec[d + 5] = enc[e + 5]
        swap = round_index > 0
        dec[d + 0] = _mul_inverse(enc[e + 6])
        dec[d + 3] = _mul_inverse(enc[e + 9])
        if swap:
            dec[d + 1] = (-enc[e + 8]) & _MASK16
            dec[d + 2] = (-enc[e + 7]) & _MASK16
        else:
            dec[d + 1] = (-enc[e + 7]) & _MASK16
            dec[d + 2] = (-enc[e + 8]) & _MASK16
    return dec


def _crypt_block(block: Sequence[int], subkeys: Sequence[int]) -> Tuple[int, int, int, int]:
    if len(block) != 4:
        raise AssemblyError("IDEA block must be four 16-bit words")
    if len(subkeys) != 52:
        raise AssemblyError("IDEA needs 52 subkeys")
    x1, x2, x3, x4 = block
    for r in range(ROUNDS):
        k = subkeys[6 * r : 6 * r + 6]
        a = mul_mod(x1, k[0])
        b = add_mod(x2, k[1])
        c = add_mod(x3, k[2])
        d = mul_mod(x4, k[3])
        e = a ^ c
        f = b ^ d
        t0 = mul_mod(e, k[4])
        t1 = mul_mod(add_mod(f, t0), k[5])
        t2 = add_mod(t0, t1)
        # The branch crossover is part of the round, so this IS the
        # post-swap state; the final round undoes the crossover.
        x1 = a ^ t1
        x2 = c ^ t1
        x3 = b ^ t2
        x4 = d ^ t2
        if r == ROUNDS - 1:
            x2, x3 = x3, x2
    k = subkeys[48:52]
    return (
        mul_mod(x1, k[0]),
        add_mod(x2, k[1]),
        add_mod(x3, k[2]),
        mul_mod(x4, k[3]),
    )


def encrypt_block(
    block: Sequence[int], key_words: Sequence[int] = DEFAULT_KEY
) -> Tuple[int, int, int, int]:
    """Encrypt one 64-bit block (four 16-bit words)."""
    return _crypt_block(block, key_schedule(key_words))


def decrypt_block(
    block: Sequence[int], key_words: Sequence[int] = DEFAULT_KEY
) -> Tuple[int, int, int, int]:
    """Decrypt one 64-bit block."""
    return _crypt_block(block, decrypt_key_schedule(key_words))


# ----------------------------------------------------------------------
# Assembly generation
# ----------------------------------------------------------------------
_MULMOD_ROUTINE = """
# mul_mod(r10, r11) -> r12; clobbers r13, r14.  IDEA multiplication:
# mod 2^16+1 with 0 encoding 2^16.
mulmod:
    BEQ   r10, zero, mulmod_a0
    BEQ   r11, zero, mulmod_b0
    MUL   r13, r10, r11       # t = a * b  (< 2^32)
    ANDI  r12, r13, 0xFFFF    # lo
    SRLI  r13, r13, 16        # hi
    BGEU  r12, r13, mulmod_nofix
    ADDI  r12, r12, 1         # lo - hi + 0x10001, done in two adds
mulmod_nofix:
    SUB   r12, r12, r13
    ANDI  r12, r12, 0xFFFF
    RET
mulmod_a0:
    LI    r14, 0x10001
    SUB   r12, r14, r11
    ANDI  r12, r12, 0xFFFF
    RET
mulmod_b0:
    LI    r14, 0x10001
    SUB   r12, r14, r10
    ANDI  r12, r12, 0xFFFF
    RET
"""


def _round_asm(last: bool) -> str:
    """One IDEA round; x1..x4 live in r20..r23, key pointer in r5."""
    swap = """
    MOV   r13, r21            # final round: undo the branch crossover
    MOV   r21, r22
    MOV   r22, r13""" if last else ""
    return f"""
    LW    r10, 0(r5)          # k1
    MOV   r11, r20
    CALL  mulmod
    MOV   r24, r12            # a
    LW    r13, 1(r5)          # k2
    ADD   r25, r21, r13
    ANDI  r25, r25, 0xFFFF    # b
    LW    r13, 2(r5)          # k3
    ADD   r26, r22, r13
    ANDI  r26, r26, 0xFFFF    # c
    LW    r10, 3(r5)          # k4
    MOV   r11, r23
    CALL  mulmod
    MOV   r27, r12            # d
    XOR   r10, r24, r26       # e = a ^ c
    LW    r11, 4(r5)          # k5
    CALL  mulmod
    MOV   r28, r12            # t0
    XOR   r13, r25, r27       # f = b ^ d
    ADD   r10, r13, r28
    ANDI  r10, r10, 0xFFFF    # f + t0
    LW    r11, 5(r5)          # k6
    CALL  mulmod              # t1
    ADD   r29, r28, r12
    ANDI  r29, r29, 0xFFFF    # t2 = t0 + t1
    XOR   r20, r24, r12       # x1 = a ^ t1
    XOR   r21, r26, r12       # x2 = c ^ t1
    XOR   r22, r25, r29       # x3 = b ^ t2
    XOR   r23, r27, r29       # x4 = d ^ t2{swap}
    ADDI  r5, r5, 6           # advance key pointer
"""


def source(
    blocks: Sequence[Sequence[int]],
    key_words: Sequence[int] = DEFAULT_KEY,
) -> str:
    """Assembly encrypting ``blocks`` with the given key.

    The eight rounds are unrolled (key pointer walks the schedule), the
    multiplication group operation is a subroutine, and blocks are
    processed in a loop — the shape of a real software IDEA.
    """
    if not blocks:
        raise AssemblyError("need at least one block")
    subkeys = key_schedule(key_words)
    flat: List[int] = []
    for block in blocks:
        if len(block) != 4:
            raise AssemblyError("each IDEA block is four 16-bit words")
        if any(not 0 <= w <= _MASK16 for w in block):
            raise AssemblyError("block words must be 16-bit")
        flat.extend(block)
    words = ", ".join(str(w) for w in subkeys)
    data = ", ".join(str(w) for w in flat)
    rounds = "".join(
        _round_asm(last=(r == ROUNDS - 1)) for r in range(ROUNDS)
    )
    return f"""
.data
subkeys: .word {words}
input:   .word {data}
output:  .space {len(flat)}
.text
main:
    LA    r1, input
    LA    r2, output
    LI    r4, {len(blocks)}
block_loop:
    LA    r5, subkeys
    LW    r20, 0(r1)
    LW    r21, 1(r1)
    LW    r22, 2(r1)
    LW    r23, 3(r1)
{rounds}
    # Output transform: k49..k52 at r5 (after 48 round keys).
    LW    r10, 0(r5)
    MOV   r11, r20
    CALL  mulmod
    MOV   r20, r12
    LW    r13, 1(r5)
    ADD   r21, r21, r13
    ANDI  r21, r21, 0xFFFF
    LW    r13, 2(r5)
    ADD   r22, r22, r13
    ANDI  r22, r22, 0xFFFF
    LW    r10, 3(r5)
    MOV   r11, r23
    CALL  mulmod
    MOV   r23, r12
    SW    r20, 0(r2)
    SW    r21, 1(r2)
    SW    r22, 2(r2)
    SW    r23, 3(r2)
    ADDI  r1, r1, 4
    ADDI  r2, r2, 4
    ADDI  r4, r4, -1
    BNE   r4, zero, block_loop
    HALT
{_MULMOD_ROUTINE}
"""


def build_program(
    blocks: Sequence[Sequence[int]],
    key_words: Sequence[int] = DEFAULT_KEY,
) -> Program:
    """Assemble the IDEA workload for the given blocks."""
    return assemble(source(blocks, key_words), name="idea")


def random_blocks(count: int, seed: int = 0) -> List[Tuple[int, int, int, int]]:
    """Deterministic pseudo-random 64-bit plaintext blocks."""
    if count < 1:
        raise AssemblyError("count must be >= 1")
    rng = random.Random(seed)
    return [
        tuple(rng.randrange(0x10000) for _ in range(4))
        for _ in range(count)
    ]


def read_ciphertext(machine: Machine, program: Program, n_blocks: int) -> List[Tuple[int, int, int, int]]:
    """Extract the ciphertext blocks from a halted machine."""
    base = program.labels["output"]
    result = []
    for i in range(n_blocks):
        result.append(
            tuple(machine.read_memory(base + 4 * i + j) for j in range(4))
        )
    return result
