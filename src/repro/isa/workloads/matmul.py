"""Integer matrix-multiply workload (extension).

The run-length contrast case for the profiler: where IDEA's multiplies
are isolated (bga = fga for the multiplier — every use pays a V_T
toggle), this kernel unrolls its inner product by four and groups the
phases (loads, then a burst of multiplies, then accumulates), so the
multiplier's ``bga`` sits at roughly ``fga / 4`` and burst-mode
technologies amortize each power-up over a run of useful work — the
software-scheduling effect the paper's Fig. 7 block model rewards.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.errors import AssemblyError
from repro.isa.assembler import Program, assemble
from repro.isa.machine import Machine

__all__ = [
    "random_matrix",
    "reference_matmul",
    "source",
    "build_program",
    "read_result",
]


def random_matrix(n: int, seed: int = 0, bound: int = 100) -> List[int]:
    """A flat row-major n x n matrix of small non-negative ints."""
    if n < 1:
        raise AssemblyError("matrix size must be >= 1")
    rng = random.Random(seed)
    return [rng.randrange(bound) for _ in range(n * n)]


def reference_matmul(
    a: Sequence[int], b: Sequence[int], n: int
) -> List[int]:
    """Row-major C = A * B with 32-bit wraparound."""
    if len(a) != n * n or len(b) != n * n:
        raise AssemblyError("matrices must be n*n flat lists")
    c = [0] * (n * n)
    for i in range(n):
        for j in range(n):
            total = 0
            for k in range(n):
                total += a[i * n + k] * b[k * n + j]
            c[i * n + j] = total & 0xFFFFFFFF
    return c


def source(a: Sequence[int], b: Sequence[int], n: int) -> str:
    """Assembly for the 4-unrolled, phase-grouped triple loop.

    ``n`` must be a multiple of 4 (the unroll factor).  Register plan:
    r1/r2/r3 = A/B/C bases, r4/r5/r6 = i/j/k, r7 = A row pointer,
    r8 = n, r19 = C pointer, r21 = B column pointer, r22 = A element
    pointer, r10..r17 operand/product lanes, r20 = accumulator.
    """
    if n < 4 or n % 4:
        raise AssemblyError("matrix size must be a positive multiple of 4")
    words_a = ", ".join(str(v & 0xFFFFFFFF) for v in a)
    words_b = ", ".join(str(v & 0xFFFFFFFF) for v in b)
    return f"""
.data
mat_a: .word {words_a}
mat_b: .word {words_b}
mat_c: .space {n * n}
.text
main:
    LA    r1, mat_a
    LA    r2, mat_b
    LA    r3, mat_c
    LI    r8, {n}
    LI    r4, 0               # i
    MOV   r7, r1              # &A[i*n]
    MOV   r19, r3             # &C[i*n]
i_loop:
    LI    r5, 0               # j
j_loop:
    LI    r20, 0              # acc
    LI    r6, 0               # k
    ADD   r21, r2, r5         # &B[0*n + j]
    MOV   r22, r7             # &A[i*n]
k_loop:
    # ---- load phase ------------------------------------------------
    LW    r10, 0(r22)
    LW    r12, 1(r22)
    LW    r14, 2(r22)
    LW    r16, 3(r22)
    LW    r11, 0(r21)
    ADD   r21, r21, r8
    LW    r13, 0(r21)
    ADD   r21, r21, r8
    LW    r15, 0(r21)
    ADD   r21, r21, r8
    LW    r17, 0(r21)
    ADD   r21, r21, r8
    # ---- multiply burst (a 4-long multiplier run) -------------------
    MUL   r10, r10, r11
    MUL   r12, r12, r13
    MUL   r14, r14, r15
    MUL   r16, r16, r17
    # ---- accumulate --------------------------------------------------
    ADD   r20, r20, r10
    ADD   r20, r20, r12
    ADD   r20, r20, r14
    ADD   r20, r20, r16
    ADDI  r22, r22, 4
    ADDI  r6, r6, 4
    BLT   r6, r8, k_loop
    SW    r20, 0(r19)
    ADDI  r19, r19, 1
    ADDI  r5, r5, 1
    BLT   r5, r8, j_loop
    ADD   r7, r7, r8
    ADDI  r4, r4, 1
    BLT   r4, r8, i_loop
    HALT
"""


def build_program(n: int = 8, seed: int = 0) -> Program:
    """Assemble the workload over two random n x n matrices."""
    a = random_matrix(n, seed)
    b = random_matrix(n, seed + 1)
    return assemble(source(a, b, n), name="matmul")


def read_result(machine: Machine, program: Program, n: int) -> List[int]:
    """The C matrix from a halted machine."""
    base = program.labels["mat_c"]
    return [machine.read_memory(base + i) for i in range(n * n)]
