"""Bitwise CRC-32 workload (extension: a shifter-saturated program).

Bit-at-a-time CRC is the extreme point of the shifter axis: nearly
every datapath instruction is a shift or an XOR, with the multiplier
never used — useful as the shift-side anchor when sweeping the Fig. 10
plane with real profiles.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.errors import AssemblyError
from repro.isa.assembler import Program, assemble
from repro.isa.machine import Machine

__all__ = [
    "reference_crc",
    "random_message",
    "source",
    "build_program",
    "read_crc",
    "POLYNOMIAL",
]

#: Reflected CRC-32 polynomial (IEEE 802.3).
POLYNOMIAL = 0xEDB88320


def reference_crc(words: Sequence[int]) -> int:
    """Bit-at-a-time CRC-32 over 32-bit words, reflected form."""
    crc = 0xFFFFFFFF
    for word in words:
        crc ^= word & 0xFFFFFFFF
        for _ in range(32):
            if crc & 1:
                crc = (crc >> 1) ^ POLYNOMIAL
            else:
                crc >>= 1
    return crc ^ 0xFFFFFFFF


def random_message(count: int, seed: int = 0) -> List[int]:
    """Deterministic pseudo-random message words."""
    if count < 1:
        raise AssemblyError("count must be >= 1")
    rng = random.Random(seed)
    return [rng.randrange(1 << 32) for _ in range(count)]


def source(words: Sequence[int]) -> str:
    """Assembly for :func:`reference_crc`."""
    if not words:
        raise AssemblyError("need at least one message word")
    data = ", ".join(str(w & 0xFFFFFFFF) for w in words)
    return f"""
.data
message: .word {data}
result:  .space 1
.text
main:
    LA    r1, message
    LI    r2, {len(words)}
    LI    r3, -1              # crc = 0xFFFFFFFF
    LUI   r4, 0xEDB8          # polynomial high half
    ORI   r4, r4, 0x8320
word_loop:
    LW    r5, 0(r1)
    XOR   r3, r3, r5
    LI    r6, 32              # bit counter
bit_loop:
    ANDI  r7, r3, 1
    SRLI  r3, r3, 1
    BEQ   r7, zero, no_xor
    XOR   r3, r3, r4
no_xor:
    ADDI  r6, r6, -1
    BNE   r6, zero, bit_loop
poly_done:
    ADDI  r1, r1, 1
    ADDI  r2, r2, -1
    BNE   r2, zero, word_loop
    NOT   r3, r3
    LA    r8, result
    SW    r3, 0(r8)
    HALT
"""


def build_program(n_words: int = 32, seed: int = 0) -> Program:
    """Assemble the CRC workload over a random message."""
    return assemble(source(random_message(n_words, seed)), name="crc")


def read_crc(machine: Machine, program: Program) -> int:
    """Final CRC value from a halted machine."""
    return machine.read_memory(program.labels["result"])
