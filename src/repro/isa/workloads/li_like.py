"""Li-like list-interpreter kernel (paper Table 2).

SPEC li is a Lisp interpreter; its hot loops chase cons cells, compare
tags, and do pointer arithmetic — adder and memory work with almost no
shifting and no multiplication, which is the Table 2 signature.

The kernel allocates cons cells from a bump heap and runs the classic
interpreter inner loops:

1. build a list of ``n`` integers (cons),
2. destructively reverse it (pointer swaps),
3. sum its elements (car/cdr walk),
4. look up ``n_lookups`` keys in an association list built from the
   values (eq-test walk, the ``assq`` loop).

A cons cell is two consecutive words: (car, cdr); nil is address 0
(the data segment starts above it, so 0 is never a real cell).
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import AssemblyError
from repro.isa.assembler import Program, assemble
from repro.isa.machine import Machine

__all__ = [
    "reference_kernel",
    "source",
    "build_program",
    "read_results",
]


def reference_kernel(n: int, n_lookups: int) -> Tuple[int, int]:
    """Python reference: (sum of list, count of successful lookups).

    The list holds values ``1..n`` (built by consing 1 first, then
    reversed so it reads 1..n again).  The assoc list maps each value
    ``v`` to ``v * 2`` (associations built with ADDs, not MULs, to stay
    faithful to li's integer behaviour); lookups probe keys
    ``1, 3, 5, ...`` wrapping modulo ``n + 1``, counting hits.
    """
    values = list(range(1, n + 1))
    total = sum(values)
    hits = 0
    key = 1
    for _ in range(n_lookups):
        if 1 <= key <= n:
            hits += 1
        key += 2
        if key > n + 1:
            key -= n + 1
    return total, hits


def source(n: int, n_lookups: int) -> str:
    """Assembly implementing :func:`reference_kernel`.

    Register plan: r1 = heap pointer, r2 = list head, r3 = assoc head,
    r4 = loop counter, r5..r9 scratch, r20 = sum, r21 = hit count.
    """
    if n < 1:
        raise AssemblyError("list length must be >= 1")
    if n_lookups < 1:
        raise AssemblyError("need at least one lookup")
    return f"""
.data
heap_base: .space 4           # padding; heap grows from here
results:   .space 2           # [sum, hits]
.text
main:
    LA    r1, heap_base
    ADDI  r1, r1, 8           # leave the labelled words alone
    LI    r2, 0               # list = nil

# ---- build: for v = n..1: list = cons(v, list) ---------------------
    LI    r4, {n}
build_loop:
    SW    r4, 0(r1)           # car = v
    SW    r2, 1(r1)           # cdr = list
    MOV   r2, r1              # list = new cell
    ADDI  r1, r1, 2           # bump heap
    ADDI  r4, r4, -1
    BNE   r4, zero, build_loop

# ---- reverse (destructive) -----------------------------------------
    LI    r5, 0               # prev = nil
rev_loop:
    BEQ   r2, zero, rev_done
    LW    r6, 1(r2)           # next = cdr(cell)
    SW    r5, 1(r2)           # cdr(cell) = prev
    MOV   r5, r2              # prev = cell
    MOV   r2, r6              # cell = next
    J     rev_loop
rev_done:
    MOV   r2, r5              # list = prev (now n..1 -> 1..n order)

# ---- sum the list ----------------------------------------------------
    LI    r20, 0
    MOV   r6, r2
sum_loop:
    BEQ   r6, zero, sum_done
    LW    r7, 0(r6)           # car
    ADD   r20, r20, r7
    LW    r6, 1(r6)           # cdr
    J     sum_loop
sum_done:

# ---- build assoc list: ((v . v+v) ...) -------------------------------
    LI    r3, 0               # assoc = nil
    MOV   r6, r2
assoc_build:
    BEQ   r6, zero, assoc_built
    LW    r7, 0(r6)           # key v
    ADD   r8, r7, r7          # value v + v
    SW    r7, 0(r1)           # pair cell: (key . value)
    SW    r8, 1(r1)
    MOV   r9, r1
    ADDI  r1, r1, 2
    SW    r9, 0(r1)           # assoc cell: car = pair
    SW    r3, 1(r1)           # cdr = assoc
    MOV   r3, r1
    ADDI  r1, r1, 2
    LW    r6, 1(r6)
    J     assoc_build
assoc_built:

# ---- assq loop: probe keys 1, 3, 5, ... wrapping mod (n + 1) ---------
    LI    r21, 0              # hits
    LI    r5, 1               # key
    LI    r4, {n_lookups}
lookup_loop:
    MOV   r6, r3              # walk = assoc
assq_walk:
    BEQ   r6, zero, assq_miss
    LW    r7, 0(r6)           # pair
    LW    r8, 0(r7)           # pair key
    BEQ   r8, r5, assq_hit
    LW    r6, 1(r6)
    J     assq_walk
assq_hit:
    ADDI  r21, r21, 1
assq_miss:
    ADDI  r5, r5, 2           # next key
    LI    r9, {n + 1}
    BLE   r5, r9, key_ok
    SUB   r5, r5, r9
key_ok:
    ADDI  r4, r4, -1
    BNE   r4, zero, lookup_loop

    LA    r9, results
    SW    r20, 0(r9)
    SW    r21, 1(r9)
    HALT
"""


def build_program(n: int = 64, n_lookups: int = 40) -> Program:
    """Assemble the li-like workload."""
    return assemble(source(n, n_lookups), name="li")


def read_results(machine: Machine, program: Program) -> Tuple[int, int]:
    """(sum, hits) from a halted machine."""
    base = program.labels["results"]
    return machine.read_memory(base), machine.read_memory(base + 1)
