"""Espresso-like two-level minimization kernel (paper Table 1).

SPEC espresso spends its time in cube operations on a positional-cube
("bit-pair") encoding: each input variable occupies two bits of a cube
word (01 = complemented literal, 10 = true literal, 11 = don't care).
The dominant loops — containment checks, intersection emptiness tests,
and distance-1 merging — are saturated with bitwise logic and *shifts*
(walking variable pairs), with the adder active mostly for addressing
and loop control and the multiplier idle.  That is exactly the Table 1
signature (shifts-heavy, multiplications ~0).

The kernel here performs, over a synthetic cover of ``n_cubes`` cubes
on ``n_vars`` variables:

1. single-cube containment sweep — delete any cube contained in
   another (``(a & b) == b`` tests), then
2. a distance-1 merge pass — cubes whose OR differs in exactly one
   variable pair merge into their supercube (requires walking pairs
   with shifts), and
3. a literal-count reduction — popcount of care bits via shift loops.

A Python reference of the same algorithm validates the assembly.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.errors import AssemblyError
from repro.isa.assembler import Program, assemble
from repro.isa.machine import Machine

__all__ = [
    "random_cover",
    "reference_kernel",
    "source",
    "build_program",
    "read_results",
]

_DC = 0b11


def random_cover(
    n_cubes: int, n_vars: int, seed: int = 0
) -> List[int]:
    """A synthetic single-output cover in positional-cube encoding."""
    if n_cubes < 2:
        raise AssemblyError("need at least two cubes")
    if not 1 <= n_vars <= 15:
        raise AssemblyError("n_vars must be in [1, 15] (two bits each)")
    rng = random.Random(seed)
    cover = []
    for _ in range(n_cubes):
        cube = 0
        for var in range(n_vars):
            # Bias toward don't-care so containments/merges exist.
            literal = rng.choice((0b01, 0b10, _DC, _DC))
            cube |= literal << (2 * var)
        cover.append(cube)
    return cover


def _contains(a: int, b: int) -> bool:
    """Cube ``a`` contains cube ``b``: every literal of a covers b's."""
    return (a & b) == b


def _distance_one_merge(a: int, b: int, n_vars: int) -> Tuple[bool, int]:
    """Merge cubes differing in exactly one variable pair.

    Returns (merged?, supercube).  Two cubes merge when they agree in
    all variables but one, where the union of literals is don't-care.
    """
    diff = a ^ b
    mismatch_vars = 0
    merged = a | b
    for var in range(n_vars):
        pair = (diff >> (2 * var)) & 0b11
        if pair:
            mismatch_vars += 1
            if mismatch_vars > 1:
                return False, 0
            if ((merged >> (2 * var)) & 0b11) != _DC:
                return False, 0
    if mismatch_vars != 1:
        return False, 0
    return True, merged


def _care_literals(cube: int, n_vars: int) -> int:
    """Number of non-don't-care variables in a cube."""
    count = 0
    for var in range(n_vars):
        if ((cube >> (2 * var)) & 0b11) != _DC:
            count += 1
    return count


def reference_kernel(
    cover: Sequence[int], n_vars: int
) -> Tuple[List[int], int]:
    """Python reference of the kernel: (final cover, literal count).

    Mirrors the assembly exactly: containment deletion (marking with
    zero), one merge pass (merged pairs replace the first cube, delete
    the second), then a literal count over survivors.
    """
    cubes = list(cover)
    n = len(cubes)
    # Pass 1: containment deletion (j contained in i, i != j).
    for i in range(n):
        if cubes[i] == 0:
            continue
        for j in range(n):
            if i == j or cubes[j] == 0 or cubes[i] == 0:
                continue
            if cubes[i] != cubes[j] and _contains(cubes[i], cubes[j]):
                cubes[j] = 0
            elif cubes[i] == cubes[j] and i < j:
                cubes[j] = 0
    # Pass 2: one distance-1 merge sweep.
    for i in range(n):
        if cubes[i] == 0:
            continue
        for j in range(i + 1, n):
            if cubes[j] == 0 or cubes[i] == 0:
                continue
            merged, supercube = _distance_one_merge(
                cubes[i], cubes[j], n_vars
            )
            if merged:
                cubes[i] = supercube
                cubes[j] = 0
    # Pass 3: literal count.
    literals = sum(
        _care_literals(cube, n_vars) for cube in cubes if cube
    )
    return cubes, literals


def source(cover: Sequence[int], n_vars: int) -> str:
    """Assembly implementing :func:`reference_kernel`.

    Register plan: r1 = cover base, r2 = n_cubes, r3 = n_vars,
    r4/r5 = i/j indices, r6/r7 = cube values, r8..r15 scratch,
    r20 = literal-count accumulator.
    """
    if not cover:
        raise AssemblyError("empty cover")
    words = ", ".join(str(c) for c in cover)
    n = len(cover)
    return f"""
.data
cover:    .word {words}
literals: .space 1
.text
main:
    LA    r1, cover
    LI    r2, {n}
    LI    r3, {n_vars}

# ---- pass 1: containment deletion --------------------------------
    LI    r4, 0               # i
cont_i:
    ADD   r8, r1, r4
    LW    r6, 0(r8)           # cubes[i]
    BEQ   r6, zero, cont_i_next
    LI    r5, 0               # j
cont_j:
    BEQ   r4, r5, cont_j_next
    ADD   r9, r1, r5
    LW    r7, 0(r9)           # cubes[j]
    BEQ   r7, zero, cont_j_next
    BEQ   r6, r7, cont_equal
    AND   r10, r6, r7
    BNE   r10, r7, cont_j_next   # (i & j) != j: no containment
    SW    zero, 0(r9)            # delete j
    J     cont_j_next
cont_equal:
    BGE   r4, r5, cont_j_next    # keep the earlier duplicate
    SW    zero, 0(r9)
cont_j_next:
    ADDI  r5, r5, 1
    BLT   r5, r2, cont_j
cont_i_next:
    ADDI  r4, r4, 1
    BLT   r4, r2, cont_i

# ---- pass 2: distance-1 merge -------------------------------------
    LI    r4, 0               # i
merge_i:
    ADD   r8, r1, r4
    LW    r6, 0(r8)
    BEQ   r6, zero, merge_i_next
    ADDI  r5, r4, 1           # j = i + 1
merge_j:
    BGE   r5, r2, merge_i_next
    ADD   r9, r1, r5
    LW    r7, 0(r9)
    BEQ   r7, zero, merge_j_next
    XOR   r10, r6, r7         # diff
    OR    r11, r6, r7         # union
    LI    r12, 0              # mismatch count
    LI    r13, 0              # var index
merge_var:
    SRL   r14, r10, r13       # diff >> 2*var (r13 holds 2*var)
    ANDI  r14, r14, 3
    BEQ   r14, zero, merge_var_next
    ADDI  r12, r12, 1
    LI    r15, 1
    BGT   r12, r15, merge_j_next   # >1 mismatch: no merge
    SRL   r14, r11, r13
    ANDI  r14, r14, 3
    LI    r15, 3
    BNE   r14, r15, merge_j_next   # union not don't-care: no merge
merge_var_next:
    ADDI  r13, r13, 2
    SLLI  r15, r3, 1          # 2 * n_vars
    BLT   r13, r15, merge_var
    LI    r15, 1
    BNE   r12, r15, merge_j_next   # need exactly one mismatch
    SW    r11, 0(r8)          # cubes[i] = supercube
    MOV   r6, r11
    SW    zero, 0(r9)         # delete j
merge_j_next:
    ADDI  r5, r5, 1
    BLT   r5, r2, merge_j
merge_i_next:
    ADDI  r4, r4, 1
    BLT   r4, r2, merge_i

# ---- pass 3: literal count ----------------------------------------
    LI    r20, 0
    LI    r4, 0
lit_i:
    ADD   r8, r1, r4
    LW    r6, 0(r8)
    BEQ   r6, zero, lit_i_next
    LI    r13, 0              # 2*var
lit_var:
    SRL   r14, r6, r13
    ANDI  r14, r14, 3
    LI    r15, 3
    BEQ   r14, r15, lit_var_next
    ADDI  r20, r20, 1
lit_var_next:
    ADDI  r13, r13, 2
    SLLI  r15, r3, 1
    BLT   r13, r15, lit_var
lit_i_next:
    ADDI  r4, r4, 1
    BLT   r4, r2, lit_i

    LA    r9, literals
    SW    r20, 0(r9)
    HALT
"""


def build_program(
    n_cubes: int = 48, n_vars: int = 10, seed: int = 0
) -> Program:
    """Assemble the espresso-like workload on a random cover."""
    cover = random_cover(n_cubes, n_vars, seed)
    return assemble(source(cover, n_vars), name="espresso")


def read_results(machine: Machine, program: Program, n_cubes: int) -> Tuple[List[int], int]:
    """(final cover, literal count) from a halted machine."""
    base = program.labels["cover"]
    cover = [machine.read_memory(base + i) for i in range(n_cubes)]
    literals = machine.read_memory(program.labels["literals"])
    return cover, literals
