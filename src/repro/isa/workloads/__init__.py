"""Profiling workloads: the paper's three programs plus extensions.

* :mod:`~repro.isa.workloads.idea` — the IDEA block cipher (Table 3),
  implemented exactly (verified against a Python reference and an
  encrypt/decrypt round trip).
* :mod:`~repro.isa.workloads.espresso_like` — the dominant inner loops
  of SPEC espresso: bit-paired cube containment / intersection /
  merging over a synthetic PLA cover (Table 1): shift-heavy.
* :mod:`~repro.isa.workloads.li_like` — the dominant inner loops of
  SPEC li: cons-cell list building, reversal, summation and assoc
  lookup (Table 2): add/load-heavy, no multiplies.
* :mod:`~repro.isa.workloads.fir` — extension: multiply-accumulate FIR
  filter, a continuously-multiplying contrast case.
* :mod:`~repro.isa.workloads.crc` — extension: bitwise CRC-32,
  shift/xor saturated.
* :mod:`~repro.isa.workloads.sort` — extension: recursive quicksort,
  exercising the call stack and compare/move-dominated control flow.
* :mod:`~repro.isa.workloads.matmul` — extension: 4-unrolled integer
  matrix multiply whose grouped multiply bursts give the multiplier
  bga ≈ fga/4 (the run-length contrast to IDEA).
"""

from repro.isa.workloads import crc, espresso_like, fir, idea, li_like, matmul, sort

__all__ = ["idea", "espresso_like", "li_like", "fir", "crc", "sort", "matmul"]
