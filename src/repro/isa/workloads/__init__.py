"""Profiling workloads: the paper's three programs plus extensions.

* :mod:`~repro.isa.workloads.idea` — the IDEA block cipher (Table 3),
  implemented exactly (verified against a Python reference and an
  encrypt/decrypt round trip).
* :mod:`~repro.isa.workloads.espresso_like` — the dominant inner loops
  of SPEC espresso: bit-paired cube containment / intersection /
  merging over a synthetic PLA cover (Table 1): shift-heavy.
* :mod:`~repro.isa.workloads.li_like` — the dominant inner loops of
  SPEC li: cons-cell list building, reversal, summation and assoc
  lookup (Table 2): add/load-heavy, no multiplies.
* :mod:`~repro.isa.workloads.fir` — extension: multiply-accumulate FIR
  filter, a continuously-multiplying contrast case.
* :mod:`~repro.isa.workloads.crc` — extension: bitwise CRC-32,
  shift/xor saturated.
* :mod:`~repro.isa.workloads.sort` — extension: recursive quicksort,
  exercising the call stack and compare/move-dominated control flow.
* :mod:`~repro.isa.workloads.matmul` — extension: 4-unrolled integer
  matrix multiply whose grouped multiply bursts give the multiplier
  bga ≈ fga/4 (the run-length contrast to IDEA).
"""

from repro.errors import ReproError
from repro.isa.workloads import crc, espresso_like, fir, idea, li_like, matmul, sort

__all__ = [
    "idea",
    "espresso_like",
    "li_like",
    "fir",
    "crc",
    "sort",
    "matmul",
    "WORKLOAD_NAMES",
    "build",
]

#: CLI/benchmark short names, in paper-table order then extensions.
WORKLOAD_NAMES = ("idea", "espresso", "li", "fir", "crc", "sort", "matmul")


def build(name: str, scale: int = 48):
    """Build a bundled workload by short name at a given scale.

    ``scale`` is a single size knob mapped onto each workload's natural
    parameters (blocks, cubes, list length, ...) with per-workload
    floors so tiny scales still produce runnable programs.
    """
    if name == "idea":
        return idea.build_program(idea.random_blocks(max(scale // 8, 1)))
    if name == "espresso":
        return espresso_like.build_program(n_cubes=max(scale, 8), n_vars=10)
    if name == "li":
        return li_like.build_program(
            n=max(scale, 4), n_lookups=max(scale // 2, 2)
        )
    if name == "fir":
        return fir.build_program(n_samples=max(scale, 8))[0]
    if name == "crc":
        return crc.build_program(n_words=max(scale // 2, 4))
    if name == "sort":
        return sort.build_program(count=max(scale, 8))
    if name == "matmul":
        return matmul.build_program(n=max(4 * (scale // 8), 4))
    raise ReproError(
        f"unknown workload {name!r}; known: {', '.join(WORKLOAD_NAMES)}"
    )
