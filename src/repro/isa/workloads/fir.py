"""FIR filter workload (extension: a continuously multiplying DSP job).

The paper's Section 3 workloads are "continuously operational" DSP
kernels; an FIR filter is the canonical one.  Its profile is the
anti-IDEA control case: the multiplier runs every few instructions
(high fga *and* high bga — short runs), so burst-mode technologies buy
little, matching the paper's conclusion that continuously active
modules should use optimized fixed (V_DD, V_T) instead.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.errors import AssemblyError
from repro.isa.assembler import Program, assemble
from repro.isa.machine import Machine

__all__ = [
    "reference_filter",
    "random_signal",
    "source",
    "build_program",
    "read_outputs",
]


def reference_filter(
    samples: Sequence[int], taps: Sequence[int]
) -> List[int]:
    """Direct-form FIR, 32-bit wraparound arithmetic."""
    outputs = []
    for n in range(len(samples)):
        accumulator = 0
        for k, tap in enumerate(taps):
            if n - k >= 0:
                accumulator += tap * samples[n - k]
        outputs.append(accumulator & 0xFFFFFFFF)
    return outputs


def random_signal(count: int, seed: int = 0, amplitude: int = 255) -> List[int]:
    """Deterministic pseudo-random input samples."""
    if count < 1:
        raise AssemblyError("count must be >= 1")
    rng = random.Random(seed)
    return [rng.randrange(amplitude + 1) for _ in range(count)]


def source(samples: Sequence[int], taps: Sequence[int]) -> str:
    """Assembly for the direct-form FIR.

    Register plan: r1 = samples base, r2 = taps base, r3 = outputs
    base, r4 = n, r5 = k, r6 = accumulator, r7..r10 scratch.
    """
    if not samples or not taps:
        raise AssemblyError("need samples and taps")
    sample_words = ", ".join(str(s & 0xFFFFFFFF) for s in samples)
    tap_words = ", ".join(str(t & 0xFFFFFFFF) for t in taps)
    return f"""
.data
samples: .word {sample_words}
taps:    .word {tap_words}
outputs: .space {len(samples)}
.text
main:
    LA    r1, samples
    LA    r2, taps
    LA    r3, outputs
    LI    r4, 0               # n
outer:
    LI    r6, 0               # acc
    LI    r5, 0               # k
inner:
    SUB   r7, r4, r5          # n - k
    BLT   r7, zero, tap_done
    ADD   r8, r1, r7
    LW    r9, 0(r8)           # x[n-k]
    ADD   r8, r2, r5
    LW    r10, 0(r8)          # h[k]
    MUL   r9, r9, r10
    ADD   r6, r6, r9
tap_done:
    ADDI  r5, r5, 1
    LI    r8, {len(taps)}
    BLT   r5, r8, inner
    ADD   r8, r3, r4
    SW    r6, 0(r8)           # y[n]
    ADDI  r4, r4, 1
    LI    r8, {len(samples)}
    BLT   r4, r8, outer
    HALT
"""


def build_program(
    n_samples: int = 64,
    taps: Sequence[int] = (3, 7, 11, 7, 3),
    seed: int = 0,
) -> Tuple[Program, List[int], List[int]]:
    """Assemble the FIR workload; returns (program, samples, taps)."""
    samples = random_signal(n_samples, seed)
    program = assemble(source(samples, taps), name="fir")
    return program, samples, list(taps)


def read_outputs(machine: Machine, program: Program, count: int) -> List[int]:
    """Filter outputs from a halted machine."""
    base = program.labels["outputs"]
    return [machine.read_memory(base + i) for i in range(count)]
