"""Recursive quicksort workload (extension).

A fourth application class for the profiler: recursive,
compare-and-move dominated code (the shape of much general-purpose
integer software).  Exercises the parts of the ISA the paper workloads
do not — a call stack through ``sp``, deep ``CALL``/``RET`` nesting —
and profiles like li (adder/memory heavy, no shifts or multiplies).

The assembly implements in-place Lomuto-partition quicksort; the
Python reference is ``sorted``.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.errors import AssemblyError
from repro.isa.assembler import Program, assemble
from repro.isa.machine import Machine

__all__ = [
    "random_values",
    "source",
    "build_program",
    "read_sorted",
]

#: Word address where the call stack starts (grows downward).
STACK_TOP = 0x8000


def random_values(count: int, seed: int = 0, bound: int = 10_000) -> List[int]:
    """Deterministic pseudo-random non-negative test data."""
    if count < 1:
        raise AssemblyError("count must be >= 1")
    rng = random.Random(seed)
    return [rng.randrange(bound) for _ in range(count)]


def source(values: Sequence[int]) -> str:
    """Assembly sorting ``values`` in place with recursive quicksort.

    Register plan: r1 = array base (global), r10/r11 = lo/hi
    arguments, r12..r18 partition scratch, sp = call stack.  Each
    recursive frame stores (ra, hi, pivot-index).
    """
    if not values:
        raise AssemblyError("need at least one value")
    if any(v < 0 or v >= 2**31 for v in values):
        raise AssemblyError("values must fit signed 32-bit, non-negative")
    data = ", ".join(str(v) for v in values)
    return f"""
.data
array: .word {data}
.text
main:
    LI    sp, {STACK_TOP}
    LA    r1, array
    LI    r10, 0
    LI    r11, {len(values) - 1}
    CALL  quicksort
    HALT

# quicksort(lo=r10, hi=r11); clobbers r10-r18.
quicksort:
    BGE   r10, r11, qs_return

    # ---- Lomuto partition: pivot = a[hi] -------------------------
    ADD   r12, r1, r11
    LW    r13, 0(r12)         # pivot value
    MOV   r14, r10            # i = lo
    MOV   r15, r10            # j = lo
part_loop:
    BGE   r15, r11, part_done
    ADD   r12, r1, r15
    LW    r16, 0(r12)         # a[j]
    BGE   r16, r13, part_next # keep if a[j] >= pivot
    ADD   r17, r1, r14
    LW    r18, 0(r17)         # swap a[i] <-> a[j]
    SW    r16, 0(r17)
    SW    r18, 0(r12)
    ADDI  r14, r14, 1         # i += 1
part_next:
    ADDI  r15, r15, 1
    J     part_loop
part_done:
    ADD   r17, r1, r14        # swap a[i] <-> a[hi]
    LW    r18, 0(r17)
    ADD   r12, r1, r11
    LW    r16, 0(r12)
    SW    r16, 0(r17)
    SW    r18, 0(r12)

    # ---- recurse on both sides -----------------------------------
    ADDI  sp, sp, -3
    SW    ra, 0(sp)
    SW    r11, 1(sp)          # original hi
    SW    r14, 2(sp)          # pivot index
    ADDI  r11, r14, -1        # right bound = p - 1 (lo unchanged)
    CALL  quicksort
    LW    r14, 2(sp)
    ADDI  r10, r14, 1         # left bound = p + 1
    LW    r11, 1(sp)
    CALL  quicksort
    LW    ra, 0(sp)
    ADDI  sp, sp, 3
qs_return:
    RET
"""


def build_program(count: int = 64, seed: int = 0) -> Program:
    """Assemble the quicksort workload over random data."""
    return assemble(source(random_values(count, seed)), name="sort")


def read_sorted(machine: Machine, program: Program, count: int) -> List[int]:
    """The array contents after a halted run."""
    base = program.labels["array"]
    return [machine.read_memory(base + i) for i in range(count)]
