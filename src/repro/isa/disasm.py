"""Disassembler and program listings.

Turns an assembled :class:`~repro.isa.assembler.Program` back into
assembly text.  Labels are synthesized for branch/jump targets
(``L<pc>``); the output re-assembles to an equivalent program, which
the property tests verify instruction by instruction.
"""

from __future__ import annotations

from typing import Dict, List

from repro.isa.assembler import Program
from repro.isa.instructions import Instruction

__all__ = ["disassemble_instruction", "disassemble", "listing"]


def _reg(index: int) -> str:
    return f"r{index}"


def disassemble_instruction(
    instruction: Instruction,
    labels: Dict[int, str],
) -> str:
    """One instruction back to source syntax."""
    ops = instruction.operands
    fmt = instruction.spec.fmt
    mnemonic = instruction.mnemonic
    if fmt == "rrr":
        return f"{mnemonic} {_reg(ops[0])}, {_reg(ops[1])}, {_reg(ops[2])}"
    if fmt == "rri":
        return f"{mnemonic} {_reg(ops[0])}, {_reg(ops[1])}, {ops[2]}"
    if fmt == "ri":
        return f"{mnemonic} {_reg(ops[0])}, {ops[1]}"
    if fmt == "mem":
        return f"{mnemonic} {_reg(ops[0])}, {ops[2]}({_reg(ops[1])})"
    if fmt == "branch":
        target = labels.get(ops[2], str(ops[2]))
        return f"{mnemonic} {_reg(ops[0])}, {_reg(ops[1])}, {target}"
    if fmt == "jump":
        target = labels.get(ops[1], str(ops[1]))
        return f"{mnemonic} {_reg(ops[0])}, {target}"
    return mnemonic  # "none" format


def _target_labels(program: Program) -> Dict[int, str]:
    """Synthesized labels for every control-flow target PC."""
    targets = set()
    for instruction in program.instructions:
        if instruction.spec.fmt == "branch":
            targets.add(instruction.operands[2])
        elif instruction.spec.fmt == "jump":
            targets.add(instruction.operands[1])
    return {pc: f"L{pc}" for pc in sorted(targets)}


def disassemble(program: Program) -> str:
    """Whole program back to re-assemblable source text.

    The data segment is emitted first (contiguous runs become ``.word``
    directives); original label names are preserved where known, and
    synthetic ``L<pc>`` labels cover the control-flow targets.
    """
    labels = _target_labels(program)
    # Prefer original text labels where they exist.
    for name, address in program.labels.items():
        if address in labels:
            labels[address] = name

    lines: List[str] = []
    if program.data:
        lines.append(".data")
        data_labels = {
            address: name
            for name, address in program.labels.items()
            if address >= program.data_base
        }
        addresses = sorted(program.data)
        run_start = 0
        while run_start < len(addresses):
            run_end = run_start
            while (
                run_end + 1 < len(addresses)
                and addresses[run_end + 1] == addresses[run_end] + 1
                and addresses[run_end + 1] not in data_labels
            ):
                run_end += 1
            base = addresses[run_start]
            values = ", ".join(
                str(program.data[addresses[i]])
                for i in range(run_start, run_end + 1)
            )
            label = data_labels.get(base, f"d{base:#x}")
            lines.append(f"{label}: .word {values}")
            run_start = run_end + 1
        lines.append(".text")

    for pc, instruction in enumerate(program.instructions):
        prefix = f"{labels[pc]}:" if pc in labels else ""
        body = disassemble_instruction(instruction, labels)
        lines.append(f"{prefix}\t{body}")
    return "\n".join(lines) + "\n"


def listing(program: Program) -> str:
    """Numbered listing with functional-unit annotations (debug aid)."""
    labels = _target_labels(program)
    for name, address in program.labels.items():
        if address in labels:
            labels[address] = name
    lines = []
    for pc, instruction in enumerate(program.instructions):
        label = labels.get(pc, "")
        units = ",".join(sorted(instruction.units)) or "-"
        text = disassemble_instruction(instruction, labels)
        lines.append(f"{pc:5d}  {label:<12s} {text:<32s} ; {units}")
    return "\n".join(lines) + "\n"
