"""User-facing scheduler handle: submit / status / wait / cancel.

A :class:`Scheduler` names a queue directory plus drain/lease policy,
and optionally owns a fleet of **local worker subprocesses** it spawns
on first use (``local_workers=N``).  External workers — started by
hand or on other hosts with ``repro sched worker QUEUE_DIR`` — join
the same queue transparently; the client does not know or care who
evaluates a chunk.

:func:`scheduled_map_items` is the drop-in for
:func:`repro.analysis.parallel.map_items`: same deterministic
input-order results, same ``progress``/``chunk_done`` callback
contract, so ``sweep_2d``, ``energy_ratio_surface`` and
``MonteCarloAnalyzer`` thread a ``scheduler=`` handle exactly where
they thread ``workers=`` — including through their
:class:`SweepCheckpoint` resume paths.
"""

from __future__ import annotations

import os
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.errors import SchedulerError
from repro.sched.queue import JobQueue, JobRecord, JobStatus
from repro.sched.scheduler import (
    DEFAULT_PLAN_WORKERS,
    drain,
    plan_chunksize,
)
from repro.sched.worker import DEFAULT_LEASE_S

__all__ = ["Scheduler", "scheduled_map_items"]


def _worker_command(
    root: str, lease_s: float, poll_s: float, max_idle_s: Optional[float]
) -> List[str]:
    command = [
        sys.executable,
        "-m",
        "repro",
        "sched",
        "worker",
        root,
        "--lease-s",
        str(lease_s),
        "--poll-s",
        str(poll_s),
    ]
    if max_idle_s is not None:
        command += ["--max-idle-s", str(max_idle_s)]
    return command


def _worker_environment(extra: Optional[dict]) -> dict:
    """Environment for spawned workers: ensure ``repro`` is importable."""
    env = dict(os.environ)
    if extra:
        env.update(extra)
    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__
    )))
    parts = env.get("PYTHONPATH", "")
    if src_dir not in parts.split(os.pathsep):
        env["PYTHONPATH"] = (
            src_dir + (os.pathsep + parts if parts else "")
        )
    return env


@dataclass
class Scheduler:
    """Handle on one queue directory plus drain and worker policy.

    Parameters
    ----------
    root:
        Queue directory (shared filesystem for multi-host fleets).
    lease_s / poll_s:
        Lease duration granted per claim and the drain loop's poll
        interval.
    local_workers:
        Worker subprocesses this handle spawns lazily on the first
        ``wait``; ``0`` means chunks are drained by external workers
        and/or the in-process rescue path.
    plan_workers / chunksize:
        Chunk planning inputs.  Deterministic — part of the job id —
        so keep them fixed across resumes of the same sweep.
    rescue_after_s:
        Stall window before ``wait`` evaluates chunks in-process
        (``None`` disables; see :func:`repro.sched.scheduler.drain`).
    timeout_s:
        Overall ``wait`` deadline (``None`` = wait forever).
    clock_skew_s:
        Lease-expiry slack passed to :class:`JobQueue`.
    worker_env:
        Extra environment variables for spawned local workers (the
        ``repro`` package's directory is always prepended to
        ``PYTHONPATH``).
    """

    root: str
    lease_s: float = DEFAULT_LEASE_S
    poll_s: float = 0.1
    local_workers: int = 0
    plan_workers: int = DEFAULT_PLAN_WORKERS
    chunksize: Optional[int] = None
    rescue_after_s: Optional[float] = 1.0
    timeout_s: Optional[float] = None
    clock_skew_s: float = 2.0
    worker_max_idle_s: Optional[float] = 30.0
    worker_env: Optional[dict] = None
    _queue: Optional[JobQueue] = field(
        default=None, repr=False, compare=False
    )
    _procs: List["subprocess.Popen"] = field(
        default_factory=list, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.local_workers < 0:
            raise SchedulerError(
                f"local_workers must be >= 0, got {self.local_workers}"
            )

    @property
    def queue(self) -> JobQueue:
        if self._queue is None:
            self._queue = JobQueue(
                self.root, clock_skew_s=self.clock_skew_s
            )
        return self._queue

    # -- worker fleet --------------------------------------------------

    def ensure_local_workers(self) -> int:
        """Spawn the configured local workers (idempotent, lazy)."""
        self._procs = [p for p in self._procs if p.poll() is None]
        missing = self.local_workers - len(self._procs)
        if missing <= 0:
            return len(self._procs)
        command = _worker_command(
            self.queue.root,
            self.lease_s,
            min(self.poll_s, 0.2),
            self.worker_max_idle_s,
        )
        env = _worker_environment(self.worker_env)
        for _ in range(missing):
            self._procs.append(
                subprocess.Popen(
                    command,
                    env=env,
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                )
            )
        return len(self._procs)

    def close(self, timeout_s: float = 5.0) -> None:
        """Terminate local workers (SIGTERM, then SIGKILL laggards)."""
        for proc in self._procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self._procs:
            try:
                proc.wait(timeout=timeout_s)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        self._procs = []

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- job lifecycle -------------------------------------------------

    def submit(
        self, fn: Callable, items: Sequence, note: str = ""
    ) -> JobRecord:
        """Durably enqueue ``fn`` over ``items`` (idempotent/resume)."""
        items = list(items)
        size = plan_chunksize(
            len(items), self.plan_workers, self.chunksize
        )
        return self.queue.submit(fn, items, chunksize=size, note=note)

    def status(self, job_id: Optional[str] = None):
        """One job's :class:`JobStatus`, or all jobs' when id omitted."""
        if job_id is not None:
            return self.queue.status(job_id)
        return [self.queue.status(j) for j in self.queue.list_jobs()]

    def wait(
        self,
        job_id: str,
        progress: Optional[Callable[[int, int], None]] = None,
        chunk_done: Optional[
            Callable[[Sequence[int], Sequence], None]
        ] = None,
    ) -> List:
        """Drain ``job_id`` to completion; returns assembled results."""
        self.ensure_local_workers()
        return drain(
            self.queue,
            job_id,
            poll_s=self.poll_s,
            timeout_s=self.timeout_s,
            progress=progress,
            chunk_done=chunk_done,
            rescue_after_s=self.rescue_after_s,
        )

    def cancel(self, job_id: str) -> None:
        """Mark ``job_id`` cancelled; claims stop, ``wait`` raises."""
        self.queue.cancel(job_id)

    def run(
        self,
        fn: Callable,
        items: Sequence,
        progress: Optional[Callable[[int, int], None]] = None,
        chunk_done: Optional[
            Callable[[Sequence[int], Sequence], None]
        ] = None,
        note: str = "",
    ) -> List:
        """``submit`` + ``wait`` in one call."""
        record = self.submit(fn, items, note=note)
        return self.wait(
            record.job_id, progress=progress, chunk_done=chunk_done
        )


def scheduled_map_items(
    fn: Callable,
    items: Sequence,
    scheduler: Scheduler,
    progress: Optional[Callable[[int, int], None]] = None,
    chunk_done: Optional[Callable[[Sequence[int], Sequence], None]] = None,
    note: str = "",
) -> List:
    """Drop-in for ``map_items(fn, items, ...)`` backed by a queue.

    Results come back in input order, bit-identical to
    ``[fn(x) for x in items]``; ``progress`` and ``chunk_done`` follow
    the ``map_items`` contract.  Re-running after a crash resumes from
    the chunks the previous run committed (same payload → same job id).
    """
    items = list(items)
    if not items:
        return []
    return scheduler.run(
        fn, items, progress=progress, chunk_done=chunk_done, note=note
    )
