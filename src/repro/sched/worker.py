"""The scheduler worker: claim → evaluate → heartbeat → commit.

A worker is a plain process (``repro sched worker QUEUE_DIR``) that
loops over :meth:`JobQueue.claim`, evaluates the leased chunk's items
in input order, heartbeats the lease while it computes, and commits
the values.  Any number of workers may point at the same queue
directory; none of them coordinate beyond the lease files.

Failure behavior:

* **SIGKILL / power loss** — the held lease simply expires; another
  worker (or the client's drain loop) re-dispatches the chunk.  The
  partially computed values die with the process, which is safe
  because nothing was committed.
* **SIGTERM / SIGINT** — :class:`repro.core.GracefulShutdown` converts
  the first signal into a flag checked between items; the worker
  releases its lease (so the chunk is claimable immediately, without
  waiting out the expiry) and exits cleanly.
* **Lost heartbeat** — if the lease was stolen (e.g. this worker
  stalled past its deadline), the worker abandons the chunk without
  committing; the thief's commit wins.

Workers export ``REPRO_WORKERS=0`` (unless the environment already
says otherwise) so workloads that internally call ``map_items`` with
``workers=None`` run serially instead of forking one pool per CPU per
worker on an already saturated host.
"""

from __future__ import annotations

import os
import socket
import time
import uuid
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.core.shutdown import GracefulShutdown
from repro.errors import SchedulerError
from repro.sched.queue import Claim, JobQueue

__all__ = ["Worker", "worker_main", "DEFAULT_LEASE_S", "DEFAULT_POLL_S"]

#: Default lease duration granted per claim.
DEFAULT_LEASE_S = 30.0

#: Default sleep between claim attempts when the queue is empty.
DEFAULT_POLL_S = 0.5


def default_worker_id() -> str:
    """A queue-unique worker name: ``<host>-<pid>-<rand>``."""
    return (
        f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"
    )


class Worker:
    """One claim/evaluate/commit loop bound to a queue.

    Usable in-process (the client's rescue path and the tests drive it
    directly) or as the body of the ``repro sched worker`` process.
    """

    def __init__(
        self,
        queue: JobQueue,
        worker_id: Optional[str] = None,
        lease_s: float = DEFAULT_LEASE_S,
        poll_s: float = DEFAULT_POLL_S,
    ):
        if lease_s <= 0:
            raise SchedulerError(f"lease_s must be > 0, got {lease_s}")
        if poll_s < 0:
            raise SchedulerError(f"poll_s must be >= 0, got {poll_s}")
        self.queue = queue
        self.worker_id = worker_id or default_worker_id()
        self.lease_s = lease_s
        self.poll_s = poll_s
        #: (fn, items) unpickled once per job, reused across its chunks.
        self._payloads: Dict[str, Tuple[Callable, List]] = {}

    def _payload(self, job_id: str) -> Tuple[Callable, List]:
        cached = self._payloads.get(job_id)
        if cached is None:
            cached = self.queue.payload(job_id)
            # Keep at most a handful of decoded payloads around.
            if len(self._payloads) >= 4:
                self._payloads.clear()
            self._payloads[job_id] = cached
        return cached

    def run_chunk(
        self, claim: Claim, shutdown: Optional[GracefulShutdown] = None
    ) -> bool:
        """Evaluate and commit one leased chunk.

        Returns ``True`` if this worker's commit won (or the chunk
        completed), ``False`` if the chunk was abandoned — lease lost,
        shutdown requested, or a duplicate commit.
        """
        record = self.queue.load_job(claim.job_id)
        fn, items = self._payload(claim.job_id)
        start, stop = record.chunk_bounds(claim.chunk_index)
        values: List = []
        last_beat = time.time()
        for item in items[start:stop]:
            if shutdown is not None and shutdown.requested:
                self.queue.release(
                    claim.job_id, claim.chunk_index, self.worker_id
                )
                return False
            values.append(fn(item))
            now = time.time()
            if now - last_beat > self.lease_s / 3.0:
                if not self.queue.heartbeat(
                    claim.job_id,
                    claim.chunk_index,
                    self.worker_id,
                    self.lease_s,
                ):
                    # Lease stolen: the thief recomputes identical
                    # values, so dropping ours loses nothing.
                    return False
                last_beat = now
        return self.queue.commit(
            claim.job_id, claim.chunk_index, values, self.worker_id
        )

    def run(
        self,
        shutdown: Optional[GracefulShutdown] = None,
        job_id: Optional[str] = None,
        once: bool = False,
        max_idle_s: Optional[float] = None,
    ) -> int:
        """Drain the queue; returns the number of chunks committed.

        ``once`` stops after the first claim attempt that yields work
        (or immediately when the queue is empty).  ``max_idle_s`` stops
        after that long with nothing claimable — the natural exit for
        batch workers on shared clusters.
        """
        committed = 0
        idle_since: Optional[float] = None
        while True:
            if shutdown is not None and shutdown.requested:
                break
            claim = self.queue.claim(
                self.worker_id, self.lease_s, job_id=job_id
            )
            if claim is None:
                if once:
                    break
                now = time.time()
                if idle_since is None:
                    idle_since = now
                if (
                    max_idle_s is not None
                    and now - idle_since >= max_idle_s
                ):
                    break
                time.sleep(self.poll_s)
                continue
            idle_since = None
            if self.run_chunk(claim, shutdown):
                committed += 1
            if once:
                break
        return committed


def worker_main(
    root: str,
    lease_s: float = DEFAULT_LEASE_S,
    poll_s: float = DEFAULT_POLL_S,
    max_idle_s: Optional[float] = None,
    once: bool = False,
    job_id: Optional[str] = None,
    worker_id: Optional[str] = None,
    install_signals: bool = True,
) -> int:
    """Entry point behind ``repro sched worker``; returns chunks done."""
    # The guard must only cover this run: the CLI handler calls this
    # in-process, and the caller's environment is not ours to keep.
    had_env = "REPRO_WORKERS" in os.environ
    os.environ.setdefault("REPRO_WORKERS", "0")
    try:
        queue = JobQueue(root)
        worker = Worker(
            queue, worker_id=worker_id, lease_s=lease_s, poll_s=poll_s
        )
        with GracefulShutdown(install=install_signals) as shutdown:
            with obs.span("sched.worker"):
                return worker.run(
                    shutdown=shutdown,
                    job_id=job_id,
                    once=once,
                    max_idle_s=max_idle_s,
                )
    finally:
        if not had_env:
            os.environ.pop("REPRO_WORKERS", None)
