"""``repro.sched`` — durable distributed sweep scheduler.

Generalizes the in-process :func:`repro.analysis.parallel.map_items`
pool into a **submit / claim / complete** work queue that any number of
worker processes — on one host or on several hosts sharing a
filesystem — drain concurrently, with chunk **leases**, heartbeats,
lease-expiry re-dispatch, and input-order result assembly that is
bit-identical to the serial path.

Layering:

* :mod:`repro.sched.queue` — the durable job/chunk/lease records,
  built on the store's atomic-write envelopes
  (:class:`repro.store.DiskBackend`).
* :mod:`repro.sched.worker` — the claim → evaluate → heartbeat →
  commit loop run by ``repro sched worker``.
* :mod:`repro.sched.scheduler` — chunk planning (reusing the pool's
  ``_chunksize``), client-side drain with expiry re-dispatch and
  deterministic assembly.
* :mod:`repro.sched.client` — the user-facing :class:`Scheduler`
  handle (``submit``/``status``/``wait``/``cancel``) and
  :func:`scheduled_map_items`, the drop-in that gives ``sweep_2d``,
  ``energy_ratio_surface`` and ``MonteCarloAnalyzer`` a ``scheduler=``
  path next to ``workers=``.
* :mod:`repro.sched.workloads` — picklable demo workloads for the
  CLI, benchmarks and CI smoke tests.

See ``docs/scheduler.md`` for the queue layout, lease semantics and
the failure matrix.
"""

from repro.sched.client import Scheduler, scheduled_map_items
from repro.sched.queue import Claim, JobQueue, JobRecord, JobStatus
from repro.sched.scheduler import drain, plan_chunksize
from repro.sched.worker import Worker, worker_main

__all__ = [
    "Claim",
    "JobQueue",
    "JobRecord",
    "JobStatus",
    "Scheduler",
    "Worker",
    "drain",
    "plan_chunksize",
    "scheduled_map_items",
    "worker_main",
]
