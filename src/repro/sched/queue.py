"""Durable job/chunk/lease records for the sweep scheduler.

A :class:`JobQueue` lives in one directory (usually on a filesystem
shared by every worker host) and stores each record as one atomic
store entry via :class:`repro.store.DiskBackend`:

.. code-block:: text

    <root>/
      job/<job_id>/meta.json        job record: pickled (fn, items)
                                    payload, chunk plan, format tag
      job/<job_id>/lease/<n>.json   live lease on chunk n (worker id,
                                    deadline); deleted on commit
      job/<job_id>/result/<n>.json  committed values for chunk n
      job/<job_id>/cancel.json      cancellation marker

Protocol invariants (the reason SIGKILL never loses or duplicates a
chunk):

* **Claims are exclusive-create.**  The first lease on a chunk is
  taken with ``O_CREAT | O_EXCL`` (:meth:`DiskBackend.put_new`), so
  exactly one of any number of concurrent claimants wins.  An
  *expired* lease is stolen with a plain atomic replace — the race
  where two workers steal simultaneously is benign (next point).
* **Commits are idempotent.**  Work functions are pure, so a chunk
  evaluated twice produces identical values; the first commit wins and
  later duplicates are dropped (counted as
  ``sched.duplicate_commits``).  A committed chunk is never
  re-leased.
* **Every write is atomic.**  Records land via same-directory temp
  file + ``os.replace`` (or exclusive create); a worker killed at any
  instant leaves either the old record, the new record, or a corrupt
  file that the store drops on read — never a torn record that parses.

``job_id`` is a truncated canonical digest of the pickled payload and
the chunk plan, so re-submitting the same work **resumes** it: chunks
already committed (possibly by a previous, killed run) are simply not
handed out again.
"""

from __future__ import annotations

import base64
import pickle
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import SchedulerError
from repro.store.backend import DiskBackend
from repro.store.hashing import digest

__all__ = ["JOB_FORMAT", "Claim", "JobQueue", "JobRecord", "JobStatus"]

#: Format tag written into every job record.
JOB_FORMAT = "repro-sched-job-v1"

#: Default slack added to lease deadlines before another worker may
#: steal the chunk, absorbing modest clock skew between hosts.
DEFAULT_CLOCK_SKEW_S = 2.0


@dataclass(frozen=True)
class JobRecord:
    """Immutable description of one submitted job."""

    job_id: str
    n_items: int
    chunksize: int
    n_chunks: int
    submitted_unix: float
    note: str = ""

    def chunk_bounds(self, index: int) -> Tuple[int, int]:
        """Input-order ``[start, stop)`` item range of chunk ``index``."""
        if not 0 <= index < self.n_chunks:
            raise SchedulerError(
                f"chunk {index} out of range for job {self.job_id} "
                f"({self.n_chunks} chunks)"
            )
        start = index * self.chunksize
        return start, min(start + self.chunksize, self.n_items)


@dataclass(frozen=True)
class Claim:
    """A successfully leased chunk, ready to evaluate."""

    job_id: str
    chunk_index: int
    worker_id: str
    deadline_unix: float


@dataclass(frozen=True)
class JobStatus:
    """Point-in-time chunk accounting for one job."""

    job_id: str
    n_items: int
    n_chunks: int
    done: int
    leased: int
    queued: int
    cancelled: bool
    note: str = ""

    @property
    def finished(self) -> bool:
        return self.done == self.n_chunks


def _encode_payload(fn: Callable, items: Sequence) -> bytes:
    try:
        return pickle.dumps((fn, list(items)))
    except Exception as exc:
        raise SchedulerError(
            f"job payload is not picklable: {exc}"
        ) from exc


def _json_exact(value) -> bool:
    """True when JSON round-trips ``value`` bit-identically.

    IEEE-754 doubles survive JSON exactly (repr round-trip), but
    tuples come back as lists and arbitrary objects not at all — those
    chunks fall back to a pickled encoding so assembled results stay
    bit-identical to the serial path.
    """
    if value is None or isinstance(value, (bool, int, str, float)):
        return True
    if isinstance(value, list):
        return all(_json_exact(item) for item in value)
    if isinstance(value, dict):
        return all(
            isinstance(key, str) and _json_exact(item)
            for key, item in value.items()
        )
    return False


def _encode_values(values: List) -> Dict[str, object]:
    if _json_exact(values):
        return {"enc": "json", "values": values}
    blob = base64.b64encode(pickle.dumps(values)).decode("ascii")
    return {"enc": "pickle", "values": blob}


def _decode_values(payload, job_id: str, index: int) -> List:
    if (
        not isinstance(payload, dict)
        or payload.get("enc") not in ("json", "pickle")
        or "values" not in payload
    ):
        raise SchedulerError(
            f"corrupt result record for job {job_id} chunk {index}"
        )
    if payload["enc"] == "json":
        return list(payload["values"])
    return list(pickle.loads(base64.b64decode(payload["values"])))


class JobQueue:
    """File-backed work queue: jobs, chunk leases, committed results.

    Parameters
    ----------
    root:
        Queue directory; every cooperating worker/client must see the
        same files (local disk for one host, NFS/shared mount for
        many).
    clock_skew_s:
        Extra slack past a lease's deadline before another worker may
        steal the chunk.  Raise it when worker-host clocks disagree by
        more than a couple of seconds.
    """

    def __init__(
        self,
        root: str,
        clock_skew_s: float = DEFAULT_CLOCK_SKEW_S,
        _now: Callable[[], float] = time.time,
    ):
        if clock_skew_s < 0:
            raise SchedulerError(
                f"clock_skew_s must be >= 0, got {clock_skew_s}"
            )
        # Deliberately a bare DiskBackend: ResultStore's in-memory LRU
        # front would serve stale lease reads across processes.
        self.backend = DiskBackend(root)
        self.root = self.backend.root
        self.clock_skew_s = clock_skew_s
        self._now = _now

    # -- submission ----------------------------------------------------

    def submit(
        self,
        fn: Callable,
        items: Sequence,
        chunksize: int,
        note: str = "",
    ) -> JobRecord:
        """Durably enqueue ``fn`` over ``items``; idempotent.

        The job id is a digest of the pickled payload and the chunk
        plan, so submitting identical work returns the existing job —
        with whatever chunks it already committed — instead of
        re-queueing it.  That is the resume path.
        """
        items = list(items)
        if not items:
            raise SchedulerError("cannot submit an empty job")
        if chunksize < 1:
            raise SchedulerError(f"chunksize must be >= 1, got {chunksize}")
        payload = _encode_payload(fn, items)
        job_id = digest(
            ["sched-job", digest(base64.b64encode(payload).decode("ascii")),
             chunksize]
        )[:16]
        existing = self.load_job(job_id, missing_ok=True)
        if existing is not None:
            return existing
        n_chunks = -(-len(items) // chunksize)
        record = JobRecord(
            job_id=job_id,
            n_items=len(items),
            chunksize=chunksize,
            n_chunks=n_chunks,
            submitted_unix=self._now(),
            note=note,
        )
        self.backend.put(
            f"job/{job_id}/meta",
            {
                "format": JOB_FORMAT,
                "n_items": record.n_items,
                "chunksize": record.chunksize,
                "n_chunks": record.n_chunks,
                "submitted_unix": record.submitted_unix,
                "note": note,
                "payload": base64.b64encode(payload).decode("ascii"),
            },
        )
        if obs.ENABLED:
            obs.incr("sched.jobs")
        return record

    def load_job(
        self, job_id: str, missing_ok: bool = False
    ) -> Optional[JobRecord]:
        """Job record for ``job_id`` (``None``/raise when absent)."""
        meta = self.backend.get(f"job/{job_id}/meta")
        if meta is None:
            if missing_ok:
                return None
            raise SchedulerError(f"no such job: {job_id}")
        if not isinstance(meta, dict) or meta.get("format") != JOB_FORMAT:
            raise SchedulerError(
                f"job {job_id} has unsupported format "
                f"{meta.get('format') if isinstance(meta, dict) else meta!r}"
            )
        return JobRecord(
            job_id=job_id,
            n_items=int(meta["n_items"]),
            chunksize=int(meta["chunksize"]),
            n_chunks=int(meta["n_chunks"]),
            submitted_unix=float(meta["submitted_unix"]),
            note=str(meta.get("note", "")),
        )

    def payload(self, job_id: str) -> Tuple[Callable, List]:
        """Unpickle ``(fn, items)`` for ``job_id``."""
        meta = self.backend.get(f"job/{job_id}/meta")
        if meta is None:
            raise SchedulerError(f"no such job: {job_id}")
        try:
            fn, items = pickle.loads(base64.b64decode(meta["payload"]))
        except Exception as exc:
            raise SchedulerError(
                f"cannot unpickle payload of job {job_id}: {exc}"
            ) from exc
        return fn, items

    def list_jobs(self) -> List[str]:
        """Submitted job ids, oldest first (by submission time)."""
        jobs = []
        for key in self.backend.keys("job/"):
            parts = key.split("/")
            if len(parts) == 3 and parts[2] == "meta":
                record = self.load_job(parts[1], missing_ok=True)
                if record is not None:
                    jobs.append((record.submitted_unix, record.job_id))
        return [job_id for _, job_id in sorted(jobs)]

    # -- cancellation --------------------------------------------------

    def cancel(self, job_id: str) -> None:
        """Mark ``job_id`` cancelled; workers stop claiming its chunks."""
        self.load_job(job_id)
        self.backend.put(f"job/{job_id}/cancel", {"cancelled": True})

    def is_cancelled(self, job_id: str) -> bool:
        return self.backend.get(f"job/{job_id}/cancel") is not None

    # -- leases --------------------------------------------------------

    def _lease_key(self, job_id: str, index: int) -> str:
        return f"job/{job_id}/lease/{index}"

    def _result_key(self, job_id: str, index: int) -> str:
        return f"job/{job_id}/result/{index}"

    def result_indices(self, job_id: str) -> List[int]:
        """Sorted indices of chunks with committed results."""
        prefix = f"job/{job_id}/result/"
        indices = []
        for key in self.backend.keys(prefix):
            tail = key[len(prefix):]
            if tail.isdigit():
                indices.append(int(tail))
        return sorted(indices)

    def _lease_payload(self, worker_id: str, lease_s: float) -> Dict:
        now = self._now()
        return {
            "worker": worker_id,
            "claimed_unix": now,
            "deadline_unix": now + lease_s,
        }

    def _lease_expired(self, lease, now: float) -> bool:
        try:
            deadline = float(lease.get("deadline_unix", 0.0))
        except (TypeError, AttributeError, ValueError):
            return True
        return deadline + self.clock_skew_s < now

    def _try_lease(
        self, job_id: str, index: int, worker_id: str, lease_s: float
    ) -> bool:
        key = self._lease_key(job_id, index)
        payload = self._lease_payload(worker_id, lease_s)
        if self.backend.put_new(key, payload):
            return True
        existing = self.backend.get(key)
        if existing is None:
            # Corrupt (dropped on read) or deleted between our two
            # calls: retry the exclusive create once.
            return self.backend.put_new(key, payload)
        if self._lease_expired(existing, self._now()):
            # Steal with an atomic replace.  Two workers stealing the
            # same expired lease both proceed — double evaluation of a
            # pure function, resolved by first-commit-wins.
            self.backend.put(key, self._lease_payload(worker_id, lease_s))
            if obs.ENABLED:
                obs.incr("sched.leases_expired")
            return True
        return False

    def claim(
        self,
        worker_id: str,
        lease_s: float,
        job_id: Optional[str] = None,
    ) -> Optional[Claim]:
        """Lease one uncommitted chunk, or ``None`` if nothing claimable.

        Scans jobs oldest-first (or only ``job_id``), skipping
        cancelled jobs, committed chunks, and chunks under a live
        lease.
        """
        if lease_s <= 0:
            raise SchedulerError(f"lease_s must be > 0, got {lease_s}")
        job_ids: Iterable[str]
        job_ids = [job_id] if job_id is not None else self.list_jobs()
        for candidate in job_ids:
            record = self.load_job(candidate, missing_ok=True)
            if record is None or self.is_cancelled(candidate):
                continue
            done = set(self.result_indices(candidate))
            if len(done) >= record.n_chunks:
                continue
            for index in range(record.n_chunks):
                if index in done:
                    continue
                if self._try_lease(candidate, index, worker_id, lease_s):
                    if obs.ENABLED:
                        obs.incr("sched.chunks_claimed")
                    return Claim(
                        job_id=candidate,
                        chunk_index=index,
                        worker_id=worker_id,
                        deadline_unix=self._now() + lease_s,
                    )
        return None

    def heartbeat(
        self, job_id: str, index: int, worker_id: str, lease_s: float
    ) -> bool:
        """Extend a held lease; ``False`` when it was lost or stolen.

        A worker whose heartbeat fails must abandon the chunk without
        committing (someone else owns it now); the values it computed
        would have been identical anyway, this only avoids wasted work.
        """
        key = self._lease_key(job_id, index)
        existing = self.backend.get(key)
        if (
            not isinstance(existing, dict)
            or existing.get("worker") != worker_id
        ):
            return False
        self.backend.put(key, self._lease_payload(worker_id, lease_s))
        if obs.ENABLED:
            obs.incr("sched.heartbeats")
        return True

    def release(self, job_id: str, index: int, worker_id: str) -> bool:
        """Voluntarily drop a held lease (clean shutdown mid-claim)."""
        key = self._lease_key(job_id, index)
        existing = self.backend.get(key)
        if (
            not isinstance(existing, dict)
            or existing.get("worker") != worker_id
        ):
            return False
        return self.backend.delete(key)

    def reap_expired(self, job_id: str) -> int:
        """Delete expired leases on ``job_id``; returns how many.

        Purely an accounting convenience for the drain loop — claims
        already steal expired leases on their own — but deleting them
        makes ``status()`` and ``queue_depth()`` reflect reality
        promptly.
        """
        record = self.load_job(job_id)
        now = self._now()
        done = set(self.result_indices(job_id))
        reaped = 0
        for index in range(record.n_chunks):
            key = self._lease_key(job_id, index)
            lease = self.backend.get(key)
            if lease is None:
                continue
            if index in done or self._lease_expired(lease, now):
                if self.backend.delete(key):
                    reaped += 1
                    if index not in done and obs.ENABLED:
                        obs.incr("sched.leases_expired")
        return reaped

    # -- results -------------------------------------------------------

    def commit(
        self, job_id: str, index: int, values: Sequence, worker_id: str = ""
    ) -> bool:
        """Durably record chunk ``index``'s values; first commit wins.

        Returns ``False`` for a duplicate commit (another worker beat
        this one to it) — never an error, because pure work functions
        make duplicates bit-identical.
        """
        key = self._result_key(job_id, index)
        record = self.load_job(job_id)
        start, stop = record.chunk_bounds(index)
        values = list(values)
        if len(values) != stop - start:
            raise SchedulerError(
                f"chunk {index} of job {job_id} expects {stop - start} "
                f"values, got {len(values)}"
            )
        if self.backend.get(key) is not None:
            if obs.ENABLED:
                obs.incr("sched.duplicate_commits")
            self.release(job_id, index, worker_id)
            return False
        self.backend.put(key, _encode_values(values))
        if obs.ENABLED:
            obs.incr("sched.chunks_committed")
        self.release(job_id, index, worker_id)
        return True

    def chunk_values(self, job_id: str, index: int) -> List:
        """Committed values of chunk ``index`` (raises when absent)."""
        payload = self.backend.get(self._result_key(job_id, index))
        if payload is None:
            raise SchedulerError(
                f"chunk {index} of job {job_id} has no committed result"
            )
        return _decode_values(payload, job_id, index)

    def assemble(self, job_id: str) -> List:
        """All results, flattened in input order; raises if incomplete."""
        record = self.load_job(job_id)
        results: List = []
        for index in range(record.n_chunks):
            values = self.chunk_values(job_id, index)
            start, stop = record.chunk_bounds(index)
            if len(values) != stop - start:
                raise SchedulerError(
                    f"chunk {index} of job {job_id} holds {len(values)} "
                    f"values, expected {stop - start}"
                )
            results.extend(values)
        return results

    # -- accounting ----------------------------------------------------

    def status(self, job_id: str) -> JobStatus:
        """Chunk accounting for one job at this instant."""
        record = self.load_job(job_id)
        now = self._now()
        done = set(self.result_indices(job_id))
        leased = 0
        for index in range(record.n_chunks):
            if index in done:
                continue
            lease = self.backend.get(self._lease_key(job_id, index))
            if lease is not None and not self._lease_expired(lease, now):
                leased += 1
        return JobStatus(
            job_id=job_id,
            n_items=record.n_items,
            n_chunks=record.n_chunks,
            done=len(done),
            leased=leased,
            queued=record.n_chunks - len(done) - leased,
            cancelled=self.is_cancelled(job_id),
            note=record.note,
        )

    def queue_depth(self) -> int:
        """Claimable chunks across all non-cancelled jobs."""
        depth = 0
        for job_id in self.list_jobs():
            status = self.status(job_id)
            if not status.cancelled:
                depth += status.queued
        if obs.ENABLED:
            obs.gauge("sched.queue_depth", depth)
        return depth

    def delete_job(self, job_id: str) -> int:
        """Remove every record of ``job_id``; returns entries deleted."""
        removed = 0
        for key in self.backend.keys(f"job/{job_id}/"):
            removed += bool(self.backend.delete(key))
        return removed
