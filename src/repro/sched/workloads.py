"""Picklable demo workloads for scheduler smoke tests and benchmarks.

Scheduler jobs pickle their work function by reference, so anything
submitted from a ``__main__`` script (the benchmark, CI heredocs, the
CLI) must resolve to an importable module on the worker side.  This
module is that place: a representative break-even-contour cell task
with a tunable per-cell cost knob, plus the grid helpers the CLI's
``repro sched submit --kind contour`` uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.contour import _ratio_cell
from repro.errors import SchedulerError
from repro.power.energy import ModuleEnergyParameters

__all__ = [
    "ContourCellTask",
    "contour_grid",
    "contour_pairs",
    "demo_module",
]


def demo_module() -> ModuleEnergyParameters:
    """A representative datapath module (the Fig. 10 operating regime)."""
    return ModuleEnergyParameters(
        name="sched-demo-adder",
        switched_capacitance_f=45e-12,
        leakage_low_vt_a=2.0e-6,
        leakage_high_vt_a=4.0e-9,
        back_gate_capacitance_f=18e-12,
        back_gate_swing_v=2.0,
    )


@dataclass(frozen=True)
class ContourCellTask:
    """``(fga, bga) -> log10 energy ratio``, repeated ``repeat`` times.

    ``repeat`` re-evaluates the same closed-form cell to emulate
    heavier per-cell work (a netlist-level energy model, a refinement
    stack) without changing the answer — the returned value is the
    last evaluation, identical to ``repeat=1``.  This gives benchmarks
    and fault tests a workload whose chunk duration is tunable while
    the result stays bit-comparable to the serial reference.
    """

    module: ModuleEnergyParameters
    vdd: float
    t_cycle_s: float
    repeat: int = 1

    def __call__(self, pair: Tuple[float, float]) -> Optional[float]:
        fga, bga = pair
        value: Optional[float] = None
        for _ in range(max(1, self.repeat)):
            value = _ratio_cell(self.module, self.vdd, self.t_cycle_s,
                                fga, bga)
        return value


def contour_grid(n: int) -> List[float]:
    """``n`` activity values spanning ``(0, 1]`` uniformly."""
    if n < 1:
        raise SchedulerError(f"grid size must be >= 1, got {n}")
    return [index / n for index in range(1, n + 1)]


def contour_pairs(grid: List[float]) -> List[Tuple[float, float]]:
    """Row-major ``(fga, bga)`` pairs over ``grid`` x ``grid``."""
    return [(fga, bga) for fga in grid for bga in grid]
