"""Client-side planning and drain loop for the sweep scheduler.

Two responsibilities:

* :func:`plan_chunksize` — deterministic chunk planning.  It reuses
  the process pool's ``_chunksize`` arithmetic but feeds it a *fixed*
  planned worker count instead of ``os.cpu_count()``: the chunk plan
  is part of the job id, so it must not depend on which machine
  submitted the job.
* :func:`drain` — wait for a job to finish while (a) streaming
  committed chunks to ``progress``/``chunk_done`` callbacks in the
  exact order/shape the in-process ``map_items`` uses (this is what
  lets :class:`SweepCheckpoint` persist scheduler-evaluated sweeps
  unchanged), (b) reaping expired leases so lost chunks re-dispatch
  promptly, and (c) optionally rescuing stalled chunks in-process, so
  a drain with zero live workers still completes (degrading to serial
  evaluation rather than hanging).

Assembly is input-order by construction — chunk ``n`` covers items
``[n*chunksize, (n+1)*chunksize)`` — so the flattened result is
bit-identical to ``[fn(x) for x in items]`` no matter how many workers
evaluated it, in which order, or how many times a chunk was lost and
re-dispatched.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence

from repro import obs
from repro.analysis.parallel import _chunksize
from repro.errors import SchedulerError
from repro.sched.queue import JobQueue
from repro.sched.worker import Worker

__all__ = ["plan_chunksize", "drain"]

#: Planned fan-out used for chunk sizing when the caller does not pin
#: one.  Deliberately NOT cpu_count(): job ids include the chunk plan,
#: and resume must produce the same id on any machine.
DEFAULT_PLAN_WORKERS = 2


def plan_chunksize(
    n_items: int,
    plan_workers: int = DEFAULT_PLAN_WORKERS,
    chunksize: Optional[int] = None,
) -> int:
    """Chunk size for ``n_items``: explicit override or pool arithmetic."""
    if chunksize is not None:
        if chunksize < 1:
            raise SchedulerError(
                f"chunksize must be >= 1, got {chunksize}"
            )
        return chunksize
    if plan_workers < 1:
        raise SchedulerError(
            f"plan_workers must be >= 1, got {plan_workers}"
        )
    return _chunksize(n_items, plan_workers)


def drain(
    queue: JobQueue,
    job_id: str,
    poll_s: float = 0.1,
    timeout_s: Optional[float] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    chunk_done: Optional[Callable[[Sequence[int], Sequence], None]] = None,
    rescue_after_s: Optional[float] = 1.0,
    rescue_worker: Optional[Worker] = None,
) -> List:
    """Wait until ``job_id`` completes and return its assembled results.

    ``chunk_done(item_indices, values)`` fires exactly once per chunk,
    in commit order, with global input-order indices — the same
    contract as ``map_items``.  ``progress(done_items, total_items)``
    fires whenever new chunks land.

    ``rescue_after_s``: when the queue makes no visible progress (no
    new commits, no live leases) for that long, evaluate one chunk
    in-process per poll.  ``None`` disables rescue — then the drain
    relies entirely on external workers (and ``timeout_s`` is the only
    guard against waiting forever on an empty worker fleet).
    """
    record = queue.load_job(job_id)
    if poll_s < 0:
        raise SchedulerError(f"poll_s must be >= 0, got {poll_s}")
    deadline = None if timeout_s is None else time.time() + timeout_s
    if rescue_worker is None and rescue_after_s is not None:
        rescue_worker = Worker(queue, lease_s=max(30.0, 4 * poll_s))
    seen: set = set()
    done_items = 0
    stalled_since: Optional[float] = None
    with obs.span("sched.drain"):
        while True:
            if queue.is_cancelled(job_id):
                raise SchedulerError(f"job {job_id} was cancelled")
            committed = queue.result_indices(job_id)
            fresh = [index for index in committed if index not in seen]
            for index in fresh:
                seen.add(index)
                start, stop = record.chunk_bounds(index)
                done_items += stop - start
                if chunk_done is not None:
                    chunk_done(
                        range(start, stop), queue.chunk_values(job_id, index)
                    )
            if fresh and progress is not None:
                progress(done_items, record.n_items)
            if len(seen) >= record.n_chunks:
                break
            queue.reap_expired(job_id)
            status = queue.status(job_id)
            if obs.ENABLED:
                obs.gauge("sched.queue_depth", status.queued)
            now = time.time()
            if fresh or status.leased:
                stalled_since = None
            elif stalled_since is None:
                stalled_since = now
            if (
                rescue_worker is not None
                and rescue_after_s is not None
                and stalled_since is not None
                and now - stalled_since >= rescue_after_s
            ):
                if obs.ENABLED:
                    obs.incr("sched.rescues")
                rescue_worker.run(job_id=job_id, once=True)
                continue  # pick up the rescued chunk without sleeping
            if deadline is not None and now >= deadline:
                raise SchedulerError(
                    f"job {job_id} did not finish within {timeout_s}s "
                    f"({status.done}/{status.n_chunks} chunks done, "
                    f"{status.leased} leased)"
                )
            time.sleep(poll_s)
    return queue.assemble(job_id)
