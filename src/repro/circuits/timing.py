"""Static timing analysis over characterized cells.

Computes per-net arrival times and the critical path of an acyclic
netlist at a given (V_DD, V_T-shift) corner.  This is how module cycle
times are derived for the energy models: the paper's iso-performance
comparisons hold the *critical-path delay* fixed while varying
technology parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.circuits.netlist import Netlist
from repro.device.technology import Technology
from repro.errors import NetlistError
from repro.tech.characterize import CellCharacterizer

__all__ = ["CriticalPath", "StaticTimingAnalyzer"]


@dataclass(frozen=True)
class CriticalPath:
    """Result of a timing run: worst arrival and the path that sets it."""

    delay_s: float
    path_nets: Tuple[str, ...]
    arrival_times: Dict[str, float]

    @property
    def depth(self) -> int:
        """Number of gates along the critical path."""
        return max(len(self.path_nets) - 1, 0)


class StaticTimingAnalyzer:
    """Topological arrival-time propagation.

    Gate delay is taken from the cell characterizer with the load equal
    to the driven net's extracted capacitance (fanout input caps plus
    wire); the characterizer adds the cell's own output capacitance.
    """

    def __init__(
        self,
        technology: Technology,
        wire_length_per_fanout_um: float = 5.0,
    ):
        self.technology = technology
        self.wire_length_per_fanout_um = wire_length_per_fanout_um
        self._characterizer = CellCharacterizer(technology)

    def analyze(
        self,
        netlist: Netlist,
        vdd: float,
        vt_shift: float = 0.0,
        per_instance_vt_shifts: Optional[Mapping[str, float]] = None,
        per_instance_size_factors: Optional[Mapping[str, float]] = None,
    ) -> CriticalPath:
        """Arrival times and critical path at a corner.

        ``per_instance_vt_shifts`` overrides ``vt_shift`` for named
        instances — how dual-V_T assignments are timed.
        ``per_instance_size_factors`` scales all device widths of a
        named instance (drive, input and output capacitance scale
        together) — how gate-sizing solutions are timed.
        """
        shifts = per_instance_vt_shifts or {}
        sizes = per_instance_size_factors or {}
        for label, mapping in (("V_T shifts", shifts), ("sizes", sizes)):
            unknown = set(mapping) - set(netlist.instances)
            if unknown:
                raise NetlistError(
                    f"{label} for unknown instances: {sorted(unknown)[:5]}"
                )
        if any(k <= 0.0 for k in sizes.values()):
            raise NetlistError("size factors must be positive")
        order = netlist.levelize()
        arrival: Dict[str, float] = {
            net: 0.0 for net in netlist.primary_inputs
        }
        arrival.update({net: 0.0 for net in netlist.constants})
        # Register outputs launch at the clock edge (t = 0).
        arrival.update({net: 0.0 for net in netlist.register_outputs()})
        worst_input: Dict[str, str] = {}

        for instance in order:
            input_arrivals = [
                (arrival[net], net) for net in instance.inputs
            ]
            latest_time, latest_net = max(input_arrivals)
            external_load = self._external_load(
                netlist, instance.output, vdd, sizes
            )
            # A size factor k scales drive and self-load together, so
            # the sized delay equals the unit-size delay with the
            # external load divided by k.
            k = sizes.get(instance.name, 1.0)
            delay = self._characterizer.propagation_delay(
                instance.cell,
                vdd,
                external_load / k,
                shifts.get(instance.name, vt_shift),
            )
            arrival[instance.output] = latest_time + delay
            worst_input[instance.output] = latest_net

        # Timing endpoints: primary outputs plus every register D pin
        # (the paths the clock period must cover in a pipeline).
        endpoints = list(netlist.primary_outputs) + [
            register.data_input
            for register in netlist.registers.values()
        ]
        if not endpoints:
            endpoints = [instance.output for instance in order]
        missing = [net for net in endpoints if net not in arrival]
        if missing:
            raise NetlistError(f"unreached endpoints: {missing[:5]}")
        end_net = max(endpoints, key=lambda net: arrival[net])

        path: List[str] = [end_net]
        while path[-1] in worst_input:
            path.append(worst_input[path[-1]])
        path.reverse()
        return CriticalPath(
            delay_s=arrival[end_net],
            path_nets=tuple(path),
            arrival_times=arrival,
        )

    def min_cycle_time(
        self,
        netlist: Netlist,
        vdd: float,
        vt_shift: float = 0.0,
        sequencing_overhead: float = 0.1,
    ) -> float:
        """Critical path plus register/clocking overhead [s]."""
        if sequencing_overhead < 0.0:
            raise NetlistError("sequencing_overhead must be >= 0")
        critical = self.analyze(netlist, vdd, vt_shift)
        return critical.delay_s * (1.0 + sequencing_overhead)

    def max_frequency(
        self,
        netlist: Netlist,
        vdd: float,
        vt_shift: float = 0.0,
    ) -> float:
        """Highest clock frequency the module supports [Hz]."""
        return 1.0 / self.min_cycle_time(netlist, vdd, vt_shift)

    def slacks(
        self,
        netlist: Netlist,
        vdd: float,
        vt_shift: float = 0.0,
        per_instance_vt_shifts: Optional[Mapping[str, float]] = None,
        required_time_s: Optional[float] = None,
        per_instance_size_factors: Optional[Mapping[str, float]] = None,
    ) -> Dict[str, float]:
        """Per-instance timing slack [s].

        Classic required-time backward pass: endpoints (primary
        outputs and register D pins) are required at
        ``required_time_s`` (default: the critical-path delay, so the
        worst gate has zero slack); each gate's slack is how much it
        could slow without violating any endpoint — the budget a
        dual-V_T assignment or gate-sizing pass spends.
        """
        shifts = per_instance_vt_shifts or {}
        sizes = per_instance_size_factors or {}
        critical = self.analyze(
            netlist, vdd, vt_shift, per_instance_vt_shifts,
            per_instance_size_factors,
        )
        if required_time_s is None:
            required_time_s = critical.delay_s
        order = netlist.levelize()
        delays = {
            instance.name: self._characterizer.propagation_delay(
                instance.cell,
                vdd,
                self._external_load(netlist, instance.output, vdd, sizes)
                / sizes.get(instance.name, 1.0),
                shifts.get(instance.name, vt_shift),
            )
            for instance in order
        }
        endpoints = set(netlist.primary_outputs) | {
            register.data_input
            for register in netlist.registers.values()
        }
        required: Dict[str, float] = {
            net: required_time_s for net in endpoints
        }
        for instance in reversed(order):
            at_output = required.get(instance.output, float("inf"))
            needed_at_inputs = at_output - delays[instance.name]
            for net in instance.inputs:
                required[net] = min(
                    required.get(net, float("inf")), needed_at_inputs
                )
        return {
            instance.name: (
                required.get(instance.output, float("inf"))
                - critical.arrival_times[instance.output]
            )
            for instance in order
        }

    def _external_load(
        self,
        netlist: Netlist,
        net: str,
        vdd: float,
        sizes: Optional[Mapping[str, float]] = None,
    ) -> float:
        sizes = sizes or {}
        loads = netlist.fanout(net)
        capacitance = sum(
            instance.cell.input_capacitance(self.technology, vdd)
            * sizes.get(instance.name, 1.0)
            for instance, _ in loads
        )
        register_loads = netlist.register_fanout(net)
        if register_loads:
            from repro.circuits.netlist import (
                _REGISTER_D_NMOS_UM,
                _REGISTER_D_PMOS_UM,
            )

            length = self.technology.drawn_length_um
            d_pin = self.technology.gate_cap.gate_capacitance(
                _REGISTER_D_NMOS_UM, length, vdd
            ) + self.technology.gate_cap.gate_capacitance(
                _REGISTER_D_PMOS_UM, length, vdd
            )
            capacitance += len(register_loads) * d_pin
        total_fanout = len(loads) + len(register_loads)
        wire = self.technology.wire_cap.wire_capacitance(
            self.wire_length_per_fanout_um * max(total_fanout, 1)
        )
        return capacitance + wire
