"""Gate-level netlist graph.

A :class:`Netlist` is a named graph of cell :class:`Instance`s wired by
string-named nets.  It supports:

* structural queries (drivers, fanout, levelization),
* zero-delay functional evaluation (the reference model the
  event-driven simulator is checked against),
* per-net capacitance extraction against a technology, which is what
  turns switch-level activity counts into switched capacitance.

Cycles are allowed structurally (ring oscillators need them) but
rejected by :meth:`Netlist.levelize` and functional evaluation.

Sequential support: :meth:`Netlist.add_register` places an
edge-triggered register (D -> Q).  For levelization and evaluation a
register's Q output behaves like a primary input and its D input like
a primary output — the classic cut that keeps the combinational core
acyclic even in pipelines with feedback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.device.technology import Technology
from repro.errors import NetlistError
from repro.tech.cells import Cell

__all__ = ["Instance", "Register", "Netlist"]

#: Device widths assumed for a register's D-pin load (one
#: inverter-equivalent gate).
_REGISTER_D_NMOS_UM = 2.0
_REGISTER_D_PMOS_UM = 4.0


@dataclass(frozen=True)
class Register:
    """An edge-triggered register: captures D, drives Q."""

    name: str
    data_input: str
    output: str
    initial: int = 0

    def __post_init__(self) -> None:
        if self.initial not in (0, 1):
            raise NetlistError(
                f"register {self.name}: initial value must be 0/1"
            )
        if self.data_input == self.output:
            raise NetlistError(
                f"register {self.name}: D and Q must be different nets"
            )


@dataclass(frozen=True)
class Instance:
    """One placed cell: a name, the cell template, and its connections."""

    name: str
    cell: Cell
    inputs: Tuple[str, ...]
    output: str

    def __post_init__(self) -> None:
        if len(self.inputs) != self.cell.n_inputs:
            raise NetlistError(
                f"instance {self.name}: cell {self.cell.name} has "
                f"{self.cell.n_inputs} inputs, got {len(self.inputs)} nets"
            )


class Netlist:
    """A combinational (optionally cyclic) gate-level netlist."""

    def __init__(self, name: str):
        self.name = name
        self.primary_inputs: List[str] = []
        self.primary_outputs: List[str] = []
        self.constants: Dict[str, int] = {}
        self.instances: Dict[str, Instance] = {}
        self.registers: Dict[str, Register] = {}
        self._driver_of: Dict[str, str] = {}  # net -> instance name
        self._loads_of: Dict[str, List[Tuple[str, int]]] = {}
        self._register_loads: Dict[str, List[str]] = {}  # net -> reg names
        self._register_output_of: Dict[str, str] = {}  # q net -> reg name
        self._counter = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, net: str) -> str:
        """Declare a primary input net."""
        self._check_new_source(net)
        self.primary_inputs.append(net)
        return net

    def add_inputs(self, prefix: str, width: int) -> List[str]:
        """Declare a bus of primary inputs ``prefix[0..width)``."""
        return [self.add_input(f"{prefix}[{i}]") for i in range(width)]

    def add_constant(self, net: str, value: int) -> str:
        """Declare a net tied to a constant 0 or 1."""
        if value not in (0, 1):
            raise NetlistError(f"constant must be 0/1, got {value}")
        self._check_new_source(net)
        self.constants[net] = value
        return net

    def add_output(self, net: str) -> str:
        """Mark an existing or future net as a primary output."""
        if net in self.primary_outputs:
            raise NetlistError(f"net {net!r} already a primary output")
        self.primary_outputs.append(net)
        return net

    def add_gate(
        self,
        cell: Cell,
        inputs: Sequence[str],
        output: str,
        name: Optional[str] = None,
    ) -> Instance:
        """Place a cell instance driving ``output`` from ``inputs``."""
        if name is None:
            self._counter += 1
            name = f"{cell.name.lower()}_{self._counter}"
        if name in self.instances:
            raise NetlistError(f"duplicate instance name {name!r}")
        self._check_new_source(output)
        instance = Instance(
            name=name, cell=cell, inputs=tuple(inputs), output=output
        )
        self.instances[name] = instance
        self._driver_of[output] = name
        for pin, net in enumerate(instance.inputs):
            self._loads_of.setdefault(net, []).append((name, pin))
        return instance

    def add_register(
        self,
        data_input: str,
        output: str,
        name: Optional[str] = None,
        initial: int = 0,
    ) -> Register:
        """Place an edge-triggered register capturing ``data_input``."""
        if name is None:
            self._counter += 1
            name = f"reg_{self._counter}"
        if name in self.registers or name in self.instances:
            raise NetlistError(f"duplicate element name {name!r}")
        self._check_new_source(output)
        register = Register(
            name=name,
            data_input=data_input,
            output=output,
            initial=initial,
        )
        self.registers[name] = register
        self._register_output_of[output] = name
        self._register_loads.setdefault(data_input, []).append(name)
        return register

    @property
    def is_sequential(self) -> bool:
        """Whether the netlist contains registers."""
        return bool(self.registers)

    def register_outputs(self) -> List[str]:
        """Q nets, in insertion order."""
        return [register.output for register in self.registers.values()]

    def initial_register_state(self) -> Dict[str, int]:
        """Q net -> declared reset value."""
        return {
            register.output: register.initial
            for register in self.registers.values()
        }

    def _check_new_source(self, net: str) -> None:
        if net in self._driver_of:
            raise NetlistError(
                f"net {net!r} already driven by {self._driver_of[net]!r}"
            )
        if net in self._register_output_of:
            raise NetlistError(
                f"net {net!r} already driven by register "
                f"{self._register_output_of[net]!r}"
            )
        if net in self.primary_inputs:
            raise NetlistError(f"net {net!r} already a primary input")
        if net in self.constants:
            raise NetlistError(f"net {net!r} already a constant")

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def nets(self) -> List[str]:
        """All nets, in deterministic order (sources then sinks)."""
        seen: Dict[str, None] = {}
        for net in self.primary_inputs:
            seen.setdefault(net)
        for net in self.constants:
            seen.setdefault(net)
        for register in self.registers.values():
            seen.setdefault(register.output)
        for instance in self.instances.values():
            for net in instance.inputs:
                seen.setdefault(net)
            seen.setdefault(instance.output)
        for register in self.registers.values():
            seen.setdefault(register.data_input)
        return list(seen)

    def driver(self, net: str) -> Optional[Instance]:
        """The instance driving a net, or None for PIs/constants."""
        name = self._driver_of.get(net)
        return self.instances[name] if name is not None else None

    def fanout(self, net: str) -> List[Tuple[Instance, int]]:
        """(instance, pin) pairs loading a net (gates only)."""
        return [
            (self.instances[name], pin)
            for name, pin in self._loads_of.get(net, [])
        ]

    def register_fanout(self, net: str) -> List[Register]:
        """Registers whose D input is this net."""
        return [
            self.registers[name]
            for name in self._register_loads.get(net, [])
        ]

    def validate(self) -> None:
        """Check every instance input has a source.

        Raises
        ------
        NetlistError
            Naming the first floating net found.
        """
        sources = (
            set(self.primary_inputs)
            | set(self.constants)
            | set(self._driver_of)
            | set(self._register_output_of)
        )
        for instance in self.instances.values():
            for net in instance.inputs:
                if net not in sources:
                    raise NetlistError(
                        f"instance {instance.name!r} input net {net!r} "
                        "has no driver"
                    )
        for net in self.primary_outputs:
            if net not in sources:
                raise NetlistError(
                    f"primary output {net!r} has no driver"
                )
        for register in self.registers.values():
            if register.data_input not in sources:
                raise NetlistError(
                    f"register {register.name!r} data net "
                    f"{register.data_input!r} has no driver"
                )

    def levelize(self) -> List[Instance]:
        """Topological order of instances.

        Raises
        ------
        NetlistError
            If the netlist is cyclic (e.g. a ring oscillator).
        """
        self.validate()
        in_degree: Dict[str, int] = {}
        dependents: Dict[str, List[str]] = {}
        external = (
            set(self.primary_inputs)
            | set(self.constants)
            | set(self._register_output_of)
        )
        for instance in self.instances.values():
            internal_inputs = [
                net for net in instance.inputs if net not in external
            ]
            in_degree[instance.name] = len(internal_inputs)
            for net in internal_inputs:
                driver_name = self._driver_of[net]
                dependents.setdefault(driver_name, []).append(instance.name)
        ready = [
            name for name, degree in in_degree.items() if degree == 0
        ]
        order: List[Instance] = []
        while ready:
            name = ready.pop()
            order.append(self.instances[name])
            for dependent in dependents.get(name, []):
                in_degree[dependent] -= 1
                if in_degree[dependent] == 0:
                    ready.append(dependent)
        if len(order) != len(self.instances):
            stuck = sorted(
                name for name, degree in in_degree.items() if degree > 0
            )
            raise NetlistError(
                f"netlist {self.name!r} has a combinational cycle through "
                f"{stuck[:5]}"
            )
        return order

    # ------------------------------------------------------------------
    # Functional evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        input_values: Mapping[str, int],
        register_state: Optional[Mapping[str, int]] = None,
    ) -> Dict[str, int]:
        """Zero-delay evaluation of every net.

        The reference model used to verify the event-driven simulator
        and the arithmetic builders.  For sequential netlists the
        current Q values come from ``register_state`` (Q net -> value;
        defaults to the declared initial state).
        """
        values: Dict[str, int] = dict(self.constants)
        for net in self.primary_inputs:
            if net not in input_values:
                raise NetlistError(f"missing value for primary input {net!r}")
            value = input_values[net]
            if value not in (0, 1):
                raise NetlistError(
                    f"primary input {net!r} must be 0/1, got {value}"
                )
            values[net] = value
        unknown = set(input_values) - set(self.primary_inputs)
        if unknown:
            raise NetlistError(
                f"values supplied for non-input nets: {sorted(unknown)[:5]}"
            )
        if self.registers:
            state = (
                self.initial_register_state()
                if register_state is None
                else dict(register_state)
            )
            for register in self.registers.values():
                if register.output not in state:
                    raise NetlistError(
                        f"missing state for register output "
                        f"{register.output!r}"
                    )
                values[register.output] = state[register.output]
        elif register_state:
            raise NetlistError("register_state given for a purely "
                               "combinational netlist")
        for instance in self.levelize():
            operands = [values[net] for net in instance.inputs]
            values[instance.output] = instance.cell.evaluate(operands)
        return values

    def next_register_state(
        self, values: Mapping[str, int]
    ) -> Dict[str, int]:
        """Q values after a clock edge, given settled net values."""
        return {
            register.output: values[register.data_input]
            for register in self.registers.values()
        }

    def evaluate_sequence(
        self,
        vectors: Sequence[Mapping[str, int]],
        register_state: Optional[Mapping[str, int]] = None,
    ) -> List[Dict[str, int]]:
        """Clock-by-clock zero-delay evaluation of a vector sequence.

        Vector ``k`` is applied in cycle ``k`` with the register state
        left by cycle ``k - 1``; the returned list holds the settled
        values of every cycle.
        """
        state = (
            self.initial_register_state()
            if register_state is None
            else dict(register_state)
        )
        history: List[Dict[str, int]] = []
        for vector in vectors:
            values = self.evaluate(vector, register_state=state)
            history.append(values)
            state = self.next_register_state(values)
        return history

    def evaluate_bus(
        self, input_values: Mapping[str, int], prefix: str, width: int
    ) -> int:
        """Evaluate and pack an output bus ``prefix[i]`` into an integer."""
        values = self.evaluate(input_values)
        result = 0
        for i in range(width):
            net = f"{prefix}[{i}]"
            if net not in values:
                raise NetlistError(f"no net {net!r} in {self.name!r}")
            result |= values[net] << i
        return result

    # ------------------------------------------------------------------
    # Electrical extraction
    # ------------------------------------------------------------------
    def net_capacitance(
        self,
        net: str,
        technology: Technology,
        vdd: float,
        wire_length_per_fanout_um: float = 5.0,
    ) -> float:
        """Total switched capacitance attached to a net [F].

        Sum of the input capacitance of every load pin, the driving
        cell's output (junction) capacitance, and an estimated wire
        length proportional to fanout.  This is the C of Eq. 1 that the
        activity numbers multiply.
        """
        loads = self.fanout(net)
        capacitance = sum(
            instance.cell.input_capacitance(technology, vdd)
            for instance, _ in loads
        )
        register_loads = self.register_fanout(net)
        if register_loads:
            length = technology.drawn_length_um
            d_pin = technology.gate_cap.gate_capacitance(
                _REGISTER_D_NMOS_UM, length, vdd
            ) + technology.gate_cap.gate_capacitance(
                _REGISTER_D_PMOS_UM, length, vdd
            )
            capacitance += len(register_loads) * d_pin
        driver = self.driver(net)
        if driver is not None:
            capacitance += driver.cell.output_capacitance(technology, vdd)
        total_fanout = len(loads) + len(register_loads)
        wire_length = wire_length_per_fanout_um * max(total_fanout, 1)
        capacitance += technology.wire_cap.wire_capacitance(wire_length)
        return capacitance

    def total_capacitance(
        self,
        technology: Technology,
        vdd: float,
        wire_length_per_fanout_um: float = 5.0,
    ) -> float:
        """Sum of :meth:`net_capacitance` over all internal+output nets."""
        return sum(
            self.net_capacitance(
                net, technology, vdd, wire_length_per_fanout_um
            )
            for net in self.nets()
        )

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        sequential = (
            f", {len(self.registers)} registers" if self.registers else ""
        )
        return (
            f"Netlist({self.name!r}, {len(self.instances)} gates"
            f"{sequential}, {len(self.primary_inputs)} PIs, "
            f"{len(self.primary_outputs)} POs)"
        )

    def stats(self) -> Dict[str, int]:
        """Gate-count summary by cell type."""
        counts: Dict[str, int] = {}
        for instance in self.instances.values():
            counts[instance.cell.name] = counts.get(instance.cell.name, 0) + 1
        return counts
