"""Structural netlist (de)serialization — the ``.rnet`` text format.

A minimal structural-Verilog-like exchange format so external tools
(or humans) can bring designs into the flow::

    # 1-bit half adder
    netlist ha1
    input a
    input b
    constant zero 0
    gate XOR2 s_gate a b -> sum
    gate AND2 c_gate a b -> carry
    register ff carry -> carry_q init 0
    output sum
    output carry_q

One statement per line; ``#`` starts a comment; gate input order is
positional against the cell's pin order.  Cells resolve against the
standard catalog (or any catalog you pass).  The writer emits a file
the reader round-trips exactly.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.circuits.netlist import Netlist
from repro.errors import NetlistError
from repro.tech.cells import Cell, standard_cells

__all__ = ["write_netlist", "parse_netlist", "save_netlist", "load_netlist"]


def write_netlist(netlist: Netlist) -> str:
    """Render a netlist to ``.rnet`` text (deterministic order)."""
    lines: List[str] = [f"netlist {netlist.name}"]
    for net in netlist.primary_inputs:
        lines.append(f"input {net}")
    for net, value in netlist.constants.items():
        lines.append(f"constant {net} {value}")
    for instance in netlist.instances.values():
        inputs = " ".join(instance.inputs)
        lines.append(
            f"gate {instance.cell.name} {instance.name} {inputs} "
            f"-> {instance.output}"
        )
    for register in netlist.registers.values():
        lines.append(
            f"register {register.name} {register.data_input} "
            f"-> {register.output} init {register.initial}"
        )
    for net in netlist.primary_outputs:
        lines.append(f"output {net}")
    return "\n".join(lines) + "\n"


def parse_netlist(
    text: str,
    cells: Optional[Dict[str, Cell]] = None,
) -> Netlist:
    """Parse ``.rnet`` text into a :class:`Netlist`.

    Raises
    ------
    NetlistError
        With a line number for any malformed statement, unknown cell,
        or structural violation (multiple drivers etc. surface through
        the netlist builder itself).
    """
    catalog = standard_cells() if cells is None else cells
    netlist: Optional[Netlist] = None
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        keyword = tokens[0]
        if keyword == "netlist":
            if netlist is not None:
                raise NetlistError(
                    f"line {number}: duplicate 'netlist' statement"
                )
            if len(tokens) != 2:
                raise NetlistError(f"line {number}: usage: netlist <name>")
            netlist = Netlist(tokens[1])
            continue
        if netlist is None:
            raise NetlistError(
                f"line {number}: file must start with 'netlist <name>'"
            )
        if keyword == "input":
            if len(tokens) != 2:
                raise NetlistError(f"line {number}: usage: input <net>")
            netlist.add_input(tokens[1])
        elif keyword == "output":
            if len(tokens) != 2:
                raise NetlistError(f"line {number}: usage: output <net>")
            netlist.add_output(tokens[1])
        elif keyword == "constant":
            if len(tokens) != 3 or tokens[2] not in ("0", "1"):
                raise NetlistError(
                    f"line {number}: usage: constant <net> 0|1"
                )
            netlist.add_constant(tokens[1], int(tokens[2]))
        elif keyword == "gate":
            if "->" not in tokens or len(tokens) < 5:
                raise NetlistError(
                    f"line {number}: usage: gate <CELL> <name> "
                    "<in...> -> <out>"
                )
            arrow = tokens.index("->")
            if arrow != len(tokens) - 2:
                raise NetlistError(
                    f"line {number}: exactly one output after '->'"
                )
            cell_name, instance_name = tokens[1], tokens[2]
            if cell_name not in catalog:
                raise NetlistError(
                    f"line {number}: unknown cell {cell_name!r}; "
                    f"catalog has {sorted(catalog)}"
                )
            inputs = tokens[3:arrow]
            try:
                netlist.add_gate(
                    catalog[cell_name], inputs, tokens[-1],
                    name=instance_name,
                )
            except NetlistError as error:
                raise NetlistError(f"line {number}: {error}") from error
        elif keyword == "register":
            if (
                len(tokens) != 7
                or tokens[3] != "->"
                or tokens[5] != "init"
                or tokens[6] not in ("0", "1")
            ):
                raise NetlistError(
                    f"line {number}: usage: register <name> <d> -> <q> "
                    "init 0|1"
                )
            try:
                netlist.add_register(
                    tokens[2], tokens[4], name=tokens[1],
                    initial=int(tokens[6]),
                )
            except NetlistError as error:
                raise NetlistError(f"line {number}: {error}") from error
        else:
            raise NetlistError(
                f"line {number}: unknown keyword {keyword!r}"
            )
    if netlist is None:
        raise NetlistError("empty netlist file")
    netlist.validate()
    return netlist


def save_netlist(netlist: Netlist, path: str) -> None:
    """Write a netlist to a ``.rnet`` file."""
    with open(path, "w") as handle:
        handle.write(write_netlist(netlist))


def load_netlist(
    path: str, cells: Optional[Dict[str, Cell]] = None
) -> Netlist:
    """Read a ``.rnet`` file."""
    with open(path) as handle:
        return parse_netlist(handle.read(), cells=cells)
