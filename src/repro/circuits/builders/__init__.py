"""Netlist builders for the paper's experimental circuits.

Each builder returns a fully wired :class:`~repro.circuits.netlist.Netlist`
over the standard-cell catalog:

* :func:`ripple_carry_adder` / :func:`carry_select_adder` — the adder
  architectures compared in the Figs. 8-9 activity studies and the
  architecture-driven voltage-scaling ablations,
* :func:`barrel_shifter` and :func:`array_multiplier` — the functional
  units profiled in Tables 1-3 and placed on the Fig. 10 plane,
* :func:`ring_oscillator` — the measurement structure behind the
  fixed-delay (V_DD, V_T) experiments of Figs. 3-4,
* :func:`equality_comparator` — a wide-AND control-style circuit,
* :func:`pipelined_adder` — the pipelining lever of
  architecture-driven voltage scaling (registers via
  :meth:`Netlist.add_register`).
"""

from repro.circuits.builders.adder import (
    carry_select_adder,
    ripple_carry_adder,
)
from repro.circuits.builders.comparator import equality_comparator
from repro.circuits.builders.multiplier import array_multiplier
from repro.circuits.builders.pipeline import pipelined_adder
from repro.circuits.builders.ring import ring_oscillator
from repro.circuits.builders.shifter import barrel_shifter

__all__ = [
    "ripple_carry_adder",
    "carry_select_adder",
    "barrel_shifter",
    "array_multiplier",
    "ring_oscillator",
    "equality_comparator",
    "pipelined_adder",
]
