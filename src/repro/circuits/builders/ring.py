"""Ring-oscillator builder.

An odd-length inverter ring over nets ``ro[0] .. ro[stages-1]``.  This
is the measurement structure behind the paper's fixed-delay (V_DD, V_T)
experiments: the free-running period of the ring tracks gate delay, and
the switch-level simulator drives it without any primary inputs.
"""

from __future__ import annotations

from repro.circuits.netlist import Netlist
from repro.errors import NetlistError
from repro.tech.cells import standard_cells

__all__ = ["ring_oscillator"]

CELLS = standard_cells()


def ring_oscillator(stages: int) -> Netlist:
    """Ring of ``stages`` inverters (odd, >= 3); purely feedback, no PIs.

    The closed loop means :meth:`Netlist.levelize` rejects the circuit
    (it is not combinational); only event-driven simulation applies.
    """
    if stages < 3 or stages % 2 == 0:
        raise NetlistError(
            f"ring oscillator needs an odd stage count >= 3, got {stages}"
        )
    netlist = Netlist(f"ring{stages}")
    nets = [f"ro[{i}]" for i in range(stages)]
    for i in range(stages):
        netlist.add_gate(CELLS["INV"], [nets[i]], nets[(i + 1) % stages])
    return netlist
