"""Array multiplier builder.

The multiplier is the paper's poster child for high switched
capacitance: an AND array of partial products reduced by ripple rows.
Gate count grows quadratically with width, which is what puts it at the
power-hungry end of the Fig. 10 module comparison.
"""

from __future__ import annotations

from typing import List, Optional

from repro.circuits.netlist import Netlist
from repro.errors import NetlistError
from repro.tech.cells import standard_cells

__all__ = ["array_multiplier"]

CELLS = standard_cells()


def array_multiplier(width: int) -> Netlist:
    """Width x width unsigned array multiplier; product bus ``p`` is 2*width.

    Row ``j`` of the AND array (``a[i] & b[j]``, significance ``i + j``)
    is accumulated into the running sum with a ripple chain, so the
    structure is ``width - 1`` ripple-adder rows on top of ``width**2``
    AND2 partial products.
    """
    if width < 2:
        raise NetlistError(
            f"array multiplier width must be >= 2, got {width}"
        )
    netlist = Netlist(f"mul{width}")
    a_nets = netlist.add_inputs("a", width)
    b_nets = netlist.add_inputs("b", width)
    out_width = 2 * width
    p_nets = [f"p[{i}]" for i in range(out_width)]

    def partial(i: int, j: int, out: str) -> str:
        netlist.add_gate(CELLS["AND2"], [a_nets[i], b_nets[j]], out)
        return out

    # Row 0 needs no addition: p[0] is the first partial product and the
    # remaining bits seed the running sum ("rest", significance j+1..).
    rest: List[str] = []
    for i in range(width):
        out = p_nets[0] if i == 0 else f"pp0_{i}"
        rest.append(partial(i, 0, out))
    rest = rest[1:]

    for j in range(1, width):
        last_row = j == width - 1
        row = [partial(i, j, f"pp{j}_{i}") for i in range(width)]
        sums: List[str] = []
        carry: Optional[str] = None
        for i in range(width):
            # Product bit of significance j + i.
            if last_row:
                s_net = p_nets[j + i]
            elif i == 0:
                s_net = p_nets[j]
            else:
                s_net = f"s{j}_{i}"
            c_net = f"c{j}_{i}"
            operands = [row[i]]
            if i < len(rest):
                operands.append(rest[i])
            if carry is not None:
                operands.append(carry)
            if len(operands) == 1:
                # Nothing to add at this significance yet.
                sums.append(operands[0])
                if s_net != operands[0]:
                    netlist.add_gate(CELLS["BUF"], [operands[0]], s_net)
                    sums[-1] = s_net
                carry = None
            elif len(operands) == 2:
                netlist.add_gate(CELLS["XOR2"], operands, s_net)
                netlist.add_gate(CELLS["AND2"], operands, c_net)
                sums.append(s_net)
                carry = c_net
            else:
                p = f"hp{j}_{i}"
                g = f"hg{j}_{i}"
                t = f"ht{j}_{i}"
                netlist.add_gate(CELLS["XOR2"], [operands[0], operands[1]], p)
                netlist.add_gate(CELLS["XOR2"], [p, operands[2]], s_net)
                netlist.add_gate(CELLS["AND2"], [operands[0], operands[1]], g)
                netlist.add_gate(CELLS["AND2"], [p, operands[2]], t)
                netlist.add_gate(CELLS["OR2"], [g, t], c_net)
                sums.append(s_net)
                carry = c_net
        if carry is None:
            carry_net = None
        else:
            carry_net = carry
        if last_row:
            # Top carry is the most significant product bit.
            if carry_net is None:
                zero = netlist.add_constant("msb_zero", 0)
                netlist.add_gate(CELLS["BUF"], [zero], p_nets[out_width - 1])
            else:
                netlist.add_gate(CELLS["BUF"], [carry_net], p_nets[out_width - 1])
        else:
            rest = sums[1:] + ([carry_net] if carry_net is not None else [])

    for net in p_nets:
        netlist.add_output(net)
    return netlist
