"""Adder builders: ripple-carry and carry-select.

These are the two adder architectures the paper's activity and
voltage-scaling studies compare: the ripple-carry adder is minimal in
area (and hence switched capacitance per operation) but slow, while the
carry-select adder buys a shorter critical path with duplicated logic —
exactly the area/speed trade that architecture-driven voltage scaling
exploits (run the faster architecture at a lower V_DD for the same
throughput).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.circuits.netlist import Netlist
from repro.errors import NetlistError
from repro.tech.cells import standard_cells

__all__ = ["ripple_carry_adder", "carry_select_adder"]

CELLS = standard_cells()


def _half_adder(
    netlist: Netlist,
    a: str,
    b: str,
    sum_net: str,
    carry_net: str,
) -> None:
    """sum = a ^ b, carry = a & b."""
    netlist.add_gate(CELLS["XOR2"], [a, b], sum_net)
    netlist.add_gate(CELLS["AND2"], [a, b], carry_net)


def _full_adder(
    netlist: Netlist,
    a: str,
    b: str,
    cin: str,
    sum_net: str,
    carry_net: str,
    prefix: str,
) -> None:
    """sum = a ^ b ^ cin, carry = (a & b) | ((a ^ b) & cin)."""
    p = f"{prefix}.p"
    g = f"{prefix}.g"
    t = f"{prefix}.t"
    netlist.add_gate(CELLS["XOR2"], [a, b], p)
    netlist.add_gate(CELLS["XOR2"], [p, cin], sum_net)
    netlist.add_gate(CELLS["AND2"], [a, b], g)
    netlist.add_gate(CELLS["AND2"], [p, cin], t)
    netlist.add_gate(CELLS["OR2"], [g, t], carry_net)


def ripple_chain(
    netlist: Netlist,
    a_nets: Sequence[str],
    b_nets: Sequence[str],
    carry_in: Optional[str],
    sum_nets: Sequence[str],
    carry_out: str,
    prefix: str,
) -> None:
    """Append a ripple-carry chain over existing nets.

    ``carry_in`` may be ``None`` (bit 0 becomes a half adder).  The sum
    and carry-out net names are chosen by the caller so builders can
    route results straight into primary-output or register-input nets.
    Shared by every adder-flavoured builder in this package.
    """
    width = len(a_nets)
    carry: Optional[str] = carry_in
    for i in range(width):
        s_net = sum_nets[i]
        c_net = carry_out if i == width - 1 else f"{prefix}.c{i}"
        if carry is None:
            _half_adder(netlist, a_nets[i], b_nets[i], s_net, c_net)
        else:
            _full_adder(
                netlist,
                a_nets[i],
                b_nets[i],
                carry,
                s_net,
                c_net,
                f"{prefix}.fa{i}",
            )
        carry = c_net


def ripple_carry_adder(width: int, with_carry_in: bool = False) -> Netlist:
    """Width-bit ripple-carry adder over buses ``a`` and ``b``.

    Outputs are ``sum[0] .. sum[width-1]`` and ``cout``.  With
    ``with_carry_in`` a primary input ``cin`` feeds bit 0 (making it a
    full adder instead of a half adder).
    """
    if width < 1:
        raise NetlistError(f"adder width must be >= 1, got {width}")
    netlist = Netlist(f"rca{width}")
    a_nets = netlist.add_inputs("a", width)
    b_nets = netlist.add_inputs("b", width)
    carry_in = netlist.add_input("cin") if with_carry_in else None
    sum_nets = [f"sum[{i}]" for i in range(width)]
    ripple_chain(netlist, a_nets, b_nets, carry_in, sum_nets, "cout", "r")
    for net in sum_nets:
        netlist.add_output(net)
    netlist.add_output("cout")
    return netlist


def carry_select_adder(width: int, block_width: int = 4) -> Netlist:
    """Carry-select adder: per-block dual ripple chains plus selection.

    Block 0 is a plain ripple block.  Every later block computes its
    sums and carry-out twice — once assuming carry-in 0, once assuming
    carry-in 1 — in parallel with the earlier blocks, then MUX2 cells
    select the right copy when the real carry arrives.  The carry then
    crosses each block in a single mux delay, shortening the critical
    path at roughly twice the logic (the Fig. 10 speed-for-area trade).
    """
    if width < 1:
        raise NetlistError(f"adder width must be >= 1, got {width}")
    if block_width < 1:
        raise NetlistError(
            f"block width must be >= 1, got {block_width}"
        )
    netlist = Netlist(f"csa{width}b{block_width}")
    a_nets = netlist.add_inputs("a", width)
    b_nets = netlist.add_inputs("b", width)
    sum_nets = [f"sum[{i}]" for i in range(width)]

    blocks: List[range] = [
        range(lo, min(lo + block_width, width))
        for lo in range(0, width, block_width)
    ]
    carry: Optional[str] = None
    for k, bits in enumerate(blocks):
        last = k == len(blocks) - 1
        a_blk = [a_nets[i] for i in bits]
        b_blk = [b_nets[i] for i in bits]
        if k == 0:
            # First block: carry-in is known (absent), plain ripple.
            ripple_chain(
                netlist,
                a_blk,
                b_blk,
                None,
                [sum_nets[i] for i in bits],
                "cout" if last else "blk0.c",
                "blk0",
            )
            carry = "cout" if last else "blk0.c"
            continue
        # Speculative copies for carry-in = 0 and carry-in = 1.
        copies = {}
        for variant in (0, 1):
            prefix = f"blk{k}v{variant}"
            cin_net = None
            if variant == 1:
                cin_net = netlist.add_constant(f"{prefix}.one", 1)
            v_sums = [f"{prefix}.s{i}" for i in range(len(a_blk))]
            v_cout = f"{prefix}.c"
            ripple_chain(
                netlist, a_blk, b_blk, cin_net, v_sums, v_cout, prefix
            )
            copies[variant] = (v_sums, v_cout)
        # Select with the true carry: out = copy1 if carry else copy0.
        for j, i in enumerate(bits):
            netlist.add_gate(
                CELLS["MUX2"],
                [copies[0][0][j], copies[1][0][j], carry],
                sum_nets[i],
            )
        next_carry = "cout" if last else f"blk{k}.c"
        netlist.add_gate(
            CELLS["MUX2"], [copies[0][1], copies[1][1], carry], next_carry
        )
        carry = next_carry

    for net in sum_nets:
        netlist.add_output(net)
    netlist.add_output("cout")
    return netlist
