"""Logarithmic barrel shifter builder.

A MUX2-based log shifter: stage ``k`` conditionally shifts left by
``2**k`` under control bit ``s[k]``.  Shifters sit at the low-energy end
of the paper's module comparison — all steering, no arithmetic.
"""

from __future__ import annotations

from repro.circuits.netlist import Netlist
from repro.errors import NetlistError
from repro.tech.cells import standard_cells

__all__ = ["barrel_shifter"]

CELLS = standard_cells()


def barrel_shifter(width: int) -> Netlist:
    """Width-bit left barrel shifter: ``y = (a << s) mod 2**width``.

    ``width`` must be a power of two (>= 2) so the ``log2(width)``
    control bits ``s[k]`` cover every shift amount exactly.  Vacated
    low-order positions fill with a constant zero.
    """
    if width < 2 or width & (width - 1) != 0:
        raise NetlistError(
            f"barrel shifter width must be a power of two >= 2, got {width}"
        )
    stages = width.bit_length() - 1
    netlist = Netlist(f"bsh{width}")
    a_nets = netlist.add_inputs("a", width)
    s_nets = netlist.add_inputs("s", stages)
    zero = netlist.add_constant("zero", 0)

    current = list(a_nets)
    for k in range(stages):
        shift = 1 << k
        last = k == stages - 1
        stage_out = []
        for i in range(width):
            out = f"y[{i}]" if last else f"st{k}[{i}]"
            shifted = current[i - shift] if i >= shift else zero
            netlist.add_gate(
                CELLS["MUX2"], [current[i], shifted, s_nets[k]], out
            )
            stage_out.append(out)
        current = stage_out

    for net in current:
        netlist.add_output(net)
    return netlist
