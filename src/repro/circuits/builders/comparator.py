"""Equality comparator builder.

A wide-AND reduction of per-bit XNORs — representative of the
control/datapath comparison logic whose activity the paper's power
profiler weighs against the arithmetic units.
"""

from __future__ import annotations

from repro.circuits.netlist import Netlist
from repro.errors import NetlistError
from repro.tech.cells import standard_cells

__all__ = ["equality_comparator"]

CELLS = standard_cells()


def equality_comparator(width: int) -> Netlist:
    """Width-bit equality comparator: ``eq = all(a[i] == b[i])``.

    Per-bit XNOR2 cells feed a linear AND2 reduction whose final net is
    the primary output ``eq``.
    """
    if width < 1:
        raise NetlistError(f"comparator width must be >= 1, got {width}")
    netlist = Netlist(f"eq{width}")
    a_nets = netlist.add_inputs("a", width)
    b_nets = netlist.add_inputs("b", width)
    bit_eqs = []
    for i in range(width):
        net = "eq" if width == 1 else f"x[{i}]"
        netlist.add_gate(CELLS["XNOR2"], [a_nets[i], b_nets[i]], net)
        bit_eqs.append(net)
    acc = bit_eqs[0]
    for i in range(1, width):
        out = "eq" if i == width - 1 else f"and{i}"
        netlist.add_gate(CELLS["AND2"], [acc, bit_eqs[i]], out)
        acc = out
    netlist.add_output("eq")
    return netlist
