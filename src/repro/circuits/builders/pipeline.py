"""Pipelined ripple-carry adder builder.

Pipelining is the paper's architecture-driven voltage-scaling lever
(Section 3): cutting the critical path into ``stages`` register-bounded
chunks lets the same throughput be met at a lower V_DD, trading latency
and register energy for quadratic supply savings.

Stage ``k`` ripples a contiguous chunk of the bit positions; pipeline
registers carry the inter-chunk carry, the not-yet-consumed high input
bits, and the already-computed low sum bits across each boundary.  The
sum for input pair ``k`` therefore lands ``stages - 1`` cycles later in
:meth:`Netlist.evaluate_sequence` history.
"""

from __future__ import annotations

from typing import List, Optional

from repro.circuits.builders.adder import ripple_chain
from repro.circuits.netlist import Netlist
from repro.errors import NetlistError

__all__ = ["pipelined_adder"]


def pipelined_adder(width: int, stages: int) -> Netlist:
    """Width-bit adder rippled across ``stages`` pipeline stages.

    ``stages`` must satisfy ``1 <= stages <= width`` (each stage needs
    at least one bit of work); ``stages == 1`` degenerates to a purely
    combinational ripple-carry adder.  Outputs are ``sum[i]`` and
    ``cout``; vector ``k``'s result appears at history index
    ``k + stages - 1``.
    """
    if width < 1:
        raise NetlistError(f"adder width must be >= 1, got {width}")
    if not 1 <= stages <= width:
        raise NetlistError(
            f"stage count must be in [1, {width}] for a {width}-bit "
            f"adder, got {stages}"
        )
    netlist = Netlist(f"pra{width}x{stages}")
    a_nets: List[str] = netlist.add_inputs("a", width)
    b_nets: List[str] = netlist.add_inputs("b", width)
    cur_a = list(a_nets)
    cur_b = list(b_nets)

    base, extra = divmod(width, stages)
    chunks: List[range] = []
    start = 0
    for k in range(stages):
        size = base + (1 if k < extra else 0)
        chunks.append(range(start, start + size))
        start += size

    carry: Optional[str] = None
    # Sum nets already produced by earlier stages, keyed by bit index.
    live_sums: dict = {}
    for k, bits in enumerate(chunks):
        last_stage = k == stages - 1
        sum_nets = [
            f"sum[{i}]" if last_stage else f"s{k}[{i}]" for i in bits
        ]
        ripple_chain(
            netlist,
            [cur_a[i] for i in bits],
            [cur_b[i] for i in bits],
            carry,
            sum_nets,
            "cout" if last_stage else f"c{k}",
            f"stg{k}",
        )
        for net, i in zip(sum_nets, bits):
            live_sums[i] = net
        carry = "cout" if last_stage else f"c{k}"
        if last_stage:
            break
        # Pipeline boundary after stage k: register the carry, every
        # sum bit computed so far, and the untouched high input bits.
        final_boundary = k == stages - 2
        carry_q = f"c{k}q"
        netlist.add_register(carry, carry_q, name=f"regc{k}")
        carry = carry_q
        for i in sorted(live_sums):
            q = f"sum[{i}]" if final_boundary else f"sb{k}[{i}]"
            netlist.add_register(live_sums[i], q, name=f"regs{k}_{i}")
            live_sums[i] = q
        for i in range(chunks[k + 1].start, width):
            qa = f"ab{k}[{i}]"
            qb = f"bb{k}[{i}]"
            netlist.add_register(cur_a[i], qa, name=f"rega{k}_{i}")
            netlist.add_register(cur_b[i], qb, name=f"regb{k}_{i}")
            cur_a[i] = qa
            cur_b[i] = qb

    for i in range(width):
        netlist.add_output(f"sum[{i}]")
    netlist.add_output("cout")
    return netlist
