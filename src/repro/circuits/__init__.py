"""Structural gate-level netlists and static timing.

The builders here create the circuits the paper's experiments run on:

* ripple-carry and carry-select adders (Figs. 8-9 activity histograms),
* a logarithmic barrel shifter and an array multiplier (the functional
  units profiled in Tables 1-3 and compared in Fig. 10),
* ring oscillators (the fixed-delay V_DD/V_T experiments, Figs. 3-4).
"""

from repro.circuits.netlist import Instance, Netlist
from repro.circuits.timing import CriticalPath, StaticTimingAnalyzer
from repro.circuits.dc import InverterDcAnalysis, NoiseMargins
from repro.circuits.io import (
    load_netlist,
    parse_netlist,
    save_netlist,
    write_netlist,
)
from repro.circuits.builders import (
    ripple_carry_adder,
    carry_select_adder,
    barrel_shifter,
    array_multiplier,
    ring_oscillator,
    equality_comparator,
    pipelined_adder,
)

__all__ = [
    "Instance",
    "Netlist",
    "CriticalPath",
    "StaticTimingAnalyzer",
    "InverterDcAnalysis",
    "NoiseMargins",
    "write_netlist",
    "parse_netlist",
    "save_netlist",
    "load_netlist",
    "ripple_carry_adder",
    "carry_select_adder",
    "barrel_shifter",
    "array_multiplier",
    "ring_oscillator",
    "equality_comparator",
    "pipelined_adder",
]
