"""Static (DC) inverter analysis: transfer curves and noise margins.

"How low can V_DD go?" is the question under all of Section 3.  The
switching-energy argument wants the supply as low as possible; the
hard floor is *regeneration*: below some V_DD the inverter's voltage
transfer curve no longer has gain > 1 anywhere and logic levels decay.
With subthreshold conduction in the device model, that floor lands at
a few multiples of ``n kT/q`` — the classic result.

:class:`InverterDcAnalysis` solves the VTC by balancing the NMOS and
PMOS currents, extracts the switching threshold, unity-gain points and
noise margins, and searches for the minimum workable supply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.device.mosfet import Mosfet
from repro.device.technology import Technology
from repro.errors import AnalysisError

__all__ = ["NoiseMargins", "InverterDcAnalysis"]

_BISECTION_STEPS = 42
_DERIVATIVE_STEP = 1e-4


@dataclass(frozen=True)
class NoiseMargins:
    """Static noise margins of one inverter at one supply."""

    vdd: float
    vol: float
    voh: float
    vil: float
    vih: float

    @property
    def low(self) -> float:
        """NM_L = V_IL - V_OL."""
        return self.vil - self.vol

    @property
    def high(self) -> float:
        """NM_H = V_OH - V_IH."""
        return self.voh - self.vih

    @property
    def worst(self) -> float:
        """The binding margin."""
        return min(self.low, self.high)

    @property
    def is_regenerative(self) -> bool:
        """Whether the gate still restores logic levels at all."""
        return self.low > 0.0 and self.high > 0.0


class InverterDcAnalysis:
    """DC solver for a static CMOS inverter in a given technology."""

    def __init__(
        self,
        technology: Technology,
        nmos_width_um: float = 2.0,
        pmos_width_um: float = 4.0,
    ):
        if nmos_width_um <= 0.0 or pmos_width_um <= 0.0:
            raise AnalysisError("device widths must be positive")
        self.technology = technology
        self.nmos = Mosfet(technology.transistors.nmos, nmos_width_um)
        self.pmos = Mosfet(technology.transistors.pmos, pmos_width_um)

    # ------------------------------------------------------------------
    # Transfer curve
    # ------------------------------------------------------------------
    def output_voltage(self, vin: float, vdd: float) -> float:
        """V_out where the NMOS and PMOS currents balance.

        The NMOS current rises with V_out while the PMOS current falls
        (its |V_ds| shrinks), so the balance point is unique and
        bisection converges unconditionally.
        """
        if vdd <= 0.0:
            raise AnalysisError("vdd must be positive")
        if not 0.0 <= vin <= vdd:
            raise AnalysisError(f"vin must be in [0, {vdd}], got {vin}")

        def imbalance(vout: float) -> float:
            pull_down = self.nmos.drain_current(vin, vout)
            pull_up = self.pmos.drain_current(vdd - vin, vdd - vout)
            return pull_down - pull_up

        low, high = 0.0, vdd
        for _ in range(_BISECTION_STEPS):
            mid = 0.5 * (low + high)
            if imbalance(mid) < 0.0:
                low = mid
            else:
                high = mid
        return 0.5 * (low + high)

    def transfer_curve(
        self, vdd: float, points: int = 101
    ) -> List[Tuple[float, float]]:
        """(V_in, V_out) samples of the VTC."""
        if points < 3:
            raise AnalysisError("need at least 3 points")
        step = vdd / (points - 1)
        return [
            (i * step, self.output_voltage(i * step, vdd))
            for i in range(points)
        ]

    def gain(self, vin: float, vdd: float) -> float:
        """dV_out/dV_in (negative through the transition)."""
        h = min(_DERIVATIVE_STEP, vin / 2.0 + 1e-9, (vdd - vin) / 2.0 + 1e-9)
        lower = self.output_voltage(max(vin - h, 0.0), vdd)
        upper = self.output_voltage(min(vin + h, vdd), vdd)
        return (upper - lower) / (2.0 * h)

    def switching_threshold(self, vdd: float) -> float:
        """V_M: the input voltage where V_out = V_in."""
        low, high = 0.0, vdd
        for _ in range(_BISECTION_STEPS):
            mid = 0.5 * (low + high)
            if self.output_voltage(mid, vdd) > mid:
                low = mid
            else:
                high = mid
        return 0.5 * (low + high)

    def peak_gain(self, vdd: float, scan_points: int = 21) -> float:
        """Largest |dV_out/dV_in| along the VTC."""
        step = vdd / (scan_points + 1)
        return max(
            abs(self.gain(i * step, vdd))
            for i in range(1, scan_points + 1)
        )

    # ------------------------------------------------------------------
    # Noise margins
    # ------------------------------------------------------------------
    def noise_margins(self, vdd: float) -> NoiseMargins:
        """Unity-gain-point noise margins.

        V_IL / V_IH are where the VTC slope crosses -1 on either side
        of the switching threshold; if the peak gain never reaches 1
        (deep low-voltage collapse) both margins come back negative
        via a degenerate V_IL = V_IH = V_M.
        """
        vol = self.output_voltage(vdd, vdd)
        voh = self.output_voltage(0.0, vdd)
        vm = self.switching_threshold(vdd)
        if self.peak_gain(vdd) <= 1.0:
            return NoiseMargins(vdd=vdd, vol=vol, voh=voh, vil=vm, vih=vm)
        vil = self._unity_gain_point(vdd, 0.0, vm, vm)
        vih = self._unity_gain_point(vdd, vm, vdd, vm)
        return NoiseMargins(vdd=vdd, vol=vol, voh=voh, vil=vil, vih=vih)

    def _unity_gain_point(
        self, vdd: float, low: float, high: float, vm: float
    ) -> float:
        """V_in in (low, high) where |gain| crosses 1.

        On [0, V_M] the gain magnitude rises from ~0 toward the peak;
        on [V_M, V_DD] it falls back — each side has one crossing.
        """
        rising_side = high <= vm + 1e-12

        def above(vin: float) -> bool:
            return abs(self.gain(vin, vdd)) >= 1.0

        a, b = low, high
        for _ in range(_BISECTION_STEPS):
            mid = 0.5 * (a + b)
            crossed = above(mid)
            if rising_side:
                if crossed:
                    b = mid
                else:
                    a = mid
            else:
                if crossed:
                    a = mid
                else:
                    b = mid
        return 0.5 * (a + b)

    # ------------------------------------------------------------------
    # Minimum supply
    # ------------------------------------------------------------------
    def minimum_supply(
        self,
        margin_fraction: float = 0.1,
        vdd_bounds: Tuple[float, float] = (0.02, 1.5),
    ) -> float:
        """Smallest V_DD whose worst noise margin clears the budget.

        ``margin_fraction`` is the required worst margin as a fraction
        of V_DD (10 % is a common planning floor).  The result sits at
        a small multiple of ``n kT/q`` — the fundamental limit the
        paper's aggressive scaling runs toward.
        """
        if not 0.0 < margin_fraction < 0.5:
            raise AnalysisError("margin_fraction must be in (0, 0.5)")
        low, high = vdd_bounds
        if not 0.0 < low < high:
            raise AnalysisError(f"bad vdd bounds {vdd_bounds}")

        def acceptable(vdd: float) -> bool:
            margins = self.noise_margins(vdd)
            return margins.worst >= margin_fraction * vdd

        if not acceptable(high):
            raise AnalysisError(
                f"even V_DD = {high} V fails the margin budget"
            )
        if acceptable(low):
            return low
        for _ in range(22):
            mid = 0.5 * (low + high)
            if acceptable(mid):
                high = mid
            else:
                low = mid
        return high
