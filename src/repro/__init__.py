"""repro — a low-voltage digital system design toolkit.

Reproduction of A. Chandrakasan, I. Yang, C. Vieri, D. Antoniadis,
"Design Considerations and Tools for Low-voltage Digital System
Design", DAC 1996.

The package layers, bottom to top:

* :mod:`repro.device` — MOSFET I-V (subthreshold + alpha-power),
  threshold modulation (body bias, SOIAS back gate), non-linear
  capacitance, named process corners.
* :mod:`repro.tech` — standard-cell templates, characterization
  (delay/energy/leakage), serializable cell libraries.
* :mod:`repro.circuits` — netlists, builders (adders, shifter,
  multiplier, ring oscillator), static timing.
* :mod:`repro.switchsim` — event-driven switch-level simulation and
  transition-activity statistics (alpha, the Figs. 8-9 histograms).
* :mod:`repro.isa` — a small RISC ISA, assembler, interpreter, and
  ATOM-style functional-unit profiling (fga/bga, Tables 1-3), plus the
  paper's workloads (espresso-like, li-like, IDEA).
* :mod:`repro.power` — the Section 2 power components, the Eq. 3/4
  module energy models, and fixed-throughput (V_DD, V_T) optimization
  (Figs. 3-4).
* :mod:`repro.analysis` — sweeps, the Fig. 10 energy-ratio surface and
  break-even contour, technology comparison, table rendering.
* :mod:`repro.core` — the end-to-end design flow and canned scenarios
  (continuous DSP, the 20 %-duty X server).

Quickstart::

    from repro import LowVoltageDesignFlow, standard_datapath
    from repro.isa.workloads import idea

    flow = LowVoltageDesignFlow(vdd=1.0, clock_hz=1e6)
    program = idea.build_program(idea.random_blocks(8))
    result = flow.evaluate(program, standard_datapath(), duty_cycle=0.2)
    print(result.savings_table())
"""

from repro.analysis import (
    ApplicationPoint,
    RatioSurface,
    RefinedSurface,
    TechnologyComparator,
    TechnologyVerdict,
    breakeven_bga,
    energy_ratio_surface,
    format_series,
    format_table,
)
from repro.circuits import (
    InverterDcAnalysis,
    Netlist,
    NoiseMargins,
    StaticTimingAnalyzer,
    array_multiplier,
    barrel_shifter,
    carry_select_adder,
    equality_comparator,
    pipelined_adder,
    ring_oscillator,
    ripple_carry_adder,
)
from repro.core import (
    ApplicationEvaluation,
    DatapathUnit,
    LowVoltageDesignFlow,
    Scenario,
    UnitEvaluation,
    continuous_scenario,
    standard_datapath,
    xserver_scenario,
)
from repro.device import (
    BodyBiasModel,
    Mosfet,
    MosfetParameters,
    SoiasBackGateModel,
    Technology,
    bulk_cmos_06um,
    mtcmos_technology,
    soi_low_vt,
    soias_from_film_stack,
    soias_technology,
)
from repro.errors import ReproError
from repro.isa import (
    Machine,
    Program,
    assemble,
    FunctionalUnitProfile,
    profile_program,
)
from repro.power import (
    FixedThroughputOptimizer,
    ModuleEnergyParameters,
    OperatingPoint,
    PowerBreakdown,
    PowerEstimator,
    RingOscillatorModel,
    e_mtcmos,
    e_soi,
    e_soias,
    e_vtcmos,
    energy_ratio_soias_vs_soi,
    module_parameters_from_activity,
)
from repro.switchsim import (
    ActivityReport,
    SwitchLevelSimulator,
    counting_bus_vectors,
    gray_code_bus_vectors,
    random_bus_vectors,
)
from repro.tech import CellLibrary, register_styles, standard_cells

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # device
    "Mosfet",
    "MosfetParameters",
    "BodyBiasModel",
    "SoiasBackGateModel",
    "soias_from_film_stack",
    "Technology",
    "bulk_cmos_06um",
    "soi_low_vt",
    "soias_technology",
    "mtcmos_technology",
    # tech
    "CellLibrary",
    "standard_cells",
    "register_styles",
    # circuits
    "Netlist",
    "StaticTimingAnalyzer",
    "InverterDcAnalysis",
    "NoiseMargins",
    "ripple_carry_adder",
    "carry_select_adder",
    "barrel_shifter",
    "array_multiplier",
    "ring_oscillator",
    "equality_comparator",
    "pipelined_adder",
    # switchsim
    "SwitchLevelSimulator",
    "ActivityReport",
    "random_bus_vectors",
    "counting_bus_vectors",
    "gray_code_bus_vectors",
    # isa
    "assemble",
    "Program",
    "Machine",
    "FunctionalUnitProfile",
    "profile_program",
    # power
    "PowerBreakdown",
    "PowerEstimator",
    "ModuleEnergyParameters",
    "e_soi",
    "e_soias",
    "e_mtcmos",
    "e_vtcmos",
    "energy_ratio_soias_vs_soi",
    "module_parameters_from_activity",
    "RingOscillatorModel",
    "FixedThroughputOptimizer",
    "OperatingPoint",
    # analysis
    "RatioSurface",
    "RefinedSurface",
    "ApplicationPoint",
    "energy_ratio_surface",
    "breakeven_bga",
    "TechnologyComparator",
    "TechnologyVerdict",
    "format_table",
    "format_series",
    # core
    "LowVoltageDesignFlow",
    "UnitEvaluation",
    "ApplicationEvaluation",
    "DatapathUnit",
    "Scenario",
    "standard_datapath",
    "xserver_scenario",
    "continuous_scenario",
]
