"""Named process technologies used throughout the library.

A :class:`Technology` bundles everything the circuit and power layers
need: transistor parameters for both polarities, capacitance models, a
nominal supply, and (for burst-mode processes) either a SOIAS back-gate
model or an MTCMOS sleep-transistor pair.

Factory functions build the four corners the paper discusses:

* :func:`bulk_cmos_06um` — conventional 3.3 V bulk CMOS baseline.
* :func:`soi_low_vt` — fixed low-V_T SOI (the paper's ``E_SOI``
  reference technology of Eq. 3).
* :func:`soias_technology` — back-gated SOIAS with dynamically variable
  V_T (Eq. 4, Figs. 5-6).
* :func:`mtcmos_technology` — low-V_T logic gated by high-V_T sleep
  devices (the multiple-threshold alternative of Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.device.capacitance import (
    GateCapacitanceModel,
    JunctionCapacitanceModel,
    WireCapacitanceModel,
)
from repro.device.mosfet import Mosfet, MosfetParameters
from repro.device.threshold import SoiasBackGateModel, soias_from_film_stack
from repro.errors import DeviceModelError

__all__ = [
    "TransistorPair",
    "Technology",
    "bulk_cmos_06um",
    "soi_low_vt",
    "soias_technology",
    "mtcmos_technology",
]

#: PMOS drive is reduced by the hole/electron mobility ratio.
_PMOS_DRIVE_RATIO = 0.45


@dataclass(frozen=True)
class TransistorPair:
    """NMOS/PMOS parameter pair of a process."""

    nmos: MosfetParameters
    pmos: MosfetParameters

    def __post_init__(self) -> None:
        if self.nmos.polarity != "nmos":
            raise DeviceModelError("TransistorPair.nmos must be an NMOS")
        if self.pmos.polarity != "pmos":
            raise DeviceModelError("TransistorPair.pmos must be a PMOS")

    def with_vt0(
        self, vt_nmos: float, vt_pmos: Optional[float] = None
    ) -> "TransistorPair":
        """Pair with shifted thresholds (PMOS defaults to the NMOS V_T)."""
        vt_pmos = vt_nmos if vt_pmos is None else vt_pmos
        return TransistorPair(
            nmos=self.nmos.with_vt0(vt_nmos),
            pmos=self.pmos.with_vt0(vt_pmos),
        )


def _matched_pair(
    vt0: float,
    subthreshold_swing: float,
    i_spec: float,
    k_drive: float,
    alpha: float,
    dibl: float,
    temperature_k: float = 300.0,
) -> TransistorPair:
    """Build an N/P pair with mobility-scaled PMOS drive."""
    nmos = MosfetParameters(
        polarity="nmos",
        vt0=vt0,
        subthreshold_swing=subthreshold_swing,
        i_spec=i_spec,
        k_drive=k_drive,
        alpha=alpha,
        dibl=dibl,
        temperature_k=temperature_k,
    )
    pmos = replace(
        nmos,
        polarity="pmos",
        i_spec=i_spec * _PMOS_DRIVE_RATIO,
        k_drive=k_drive * _PMOS_DRIVE_RATIO,
    )
    return TransistorPair(nmos=nmos, pmos=pmos)


@dataclass(frozen=True)
class Technology:
    """A complete process description.

    Parameters
    ----------
    name:
        Human-readable corner name.
    transistors:
        Logic transistor pair.
    gate_cap, junction_cap, wire_cap:
        Capacitance models shared by all cells.
    nominal_vdd:
        Default supply [V].
    min_vdd, max_vdd:
        Supply range the models are calibrated over [V].
    drawn_length_um:
        Channel length used for gate-capacitance area [um].
    drain_extent_um:
        Drain-diffusion extent for junction capacitance [um].
    back_gate:
        SOIAS back-gate model, if the process has one.
    back_gate_cap_f_per_um2:
        Back-gate (buried-oxide) capacitance per um^2 [F/um^2]; only
        meaningful with ``back_gate``.  This is the C_bg of Eq. 4.
    back_gate_swing:
        Voltage swing of the back-gate control lines [V].
    sleep_transistors:
        High-V_T sleep pair, if the process is MTCMOS.
    """

    name: str
    transistors: TransistorPair
    gate_cap: GateCapacitanceModel = field(default_factory=GateCapacitanceModel)
    junction_cap: JunctionCapacitanceModel = field(
        default_factory=JunctionCapacitanceModel
    )
    wire_cap: WireCapacitanceModel = field(default_factory=WireCapacitanceModel)
    nominal_vdd: float = 1.0
    min_vdd: float = 0.3
    max_vdd: float = 3.6
    drawn_length_um: float = 0.6
    drain_extent_um: float = 0.9
    back_gate: Optional[SoiasBackGateModel] = None
    back_gate_cap_f_per_um2: float = 0.0
    back_gate_swing: float = 0.0
    sleep_transistors: Optional[TransistorPair] = None

    def __post_init__(self) -> None:
        if not self.min_vdd < self.max_vdd:
            raise DeviceModelError("min_vdd must be below max_vdd")
        if not self.min_vdd <= self.nominal_vdd <= self.max_vdd:
            raise DeviceModelError(
                f"nominal_vdd {self.nominal_vdd} V outside "
                f"[{self.min_vdd}, {self.max_vdd}] V"
            )
        if self.drawn_length_um <= 0.0 or self.drain_extent_um <= 0.0:
            raise DeviceModelError("geometry parameters must be positive")
        if self.back_gate is not None and self.back_gate_swing <= 0.0:
            raise DeviceModelError(
                "a back-gated technology needs a positive back_gate_swing"
            )

    # ------------------------------------------------------------------
    # Device construction
    # ------------------------------------------------------------------
    def nmos(self, width_um: float = 1.0) -> Mosfet:
        """A sized logic NMOS in this process."""
        return Mosfet(self.transistors.nmos, width_um=width_um)

    def pmos(self, width_um: float = 1.0) -> Mosfet:
        """A sized logic PMOS in this process."""
        return Mosfet(self.transistors.pmos, width_um=width_um)

    def sleep_nmos(self, width_um: float = 1.0) -> Mosfet:
        """A sized high-V_T sleep NMOS (MTCMOS only)."""
        if self.sleep_transistors is None:
            raise DeviceModelError(
                f"technology {self.name!r} has no sleep transistors"
            )
        return Mosfet(self.sleep_transistors.nmos, width_um=width_um)

    @property
    def is_back_gated(self) -> bool:
        """Whether this process can modulate V_T via a back gate."""
        return self.back_gate is not None

    @property
    def is_mtcmos(self) -> bool:
        """Whether this process gates logic with high-V_T switches."""
        return self.sleep_transistors is not None

    # ------------------------------------------------------------------
    # Derived corners
    # ------------------------------------------------------------------
    def with_vt(
        self, vt_nmos: float, vt_pmos: Optional[float] = None
    ) -> "Technology":
        """Same process with shifted logic thresholds."""
        return replace(
            self,
            name=f"{self.name}@VT={vt_nmos:.3f}V",
            transistors=self.transistors.with_vt0(vt_nmos, vt_pmos),
        )

    def with_vdd(self, vdd: float) -> "Technology":
        """Same process with a different nominal supply."""
        return replace(self, nominal_vdd=vdd)

    def active_vt(self, back_gate_bias: Optional[float] = None) -> float:
        """Active-mode logic V_T for a back-gated process.

        With no argument the full available back-gate drive is used,
        which is how the SOIAS comparisons in the paper are run.
        """
        if self.back_gate is None:
            return self.transistors.nmos.vt0
        if back_gate_bias is None:
            back_gate_bias = self.back_gate.max_back_gate_bias
        return self.back_gate.vt_at(back_gate_bias)

    def standby_vt(self) -> float:
        """Standby-mode logic V_T (back gate released / sleep asserted)."""
        if self.back_gate is not None:
            return self.back_gate.vt_standby
        if self.sleep_transistors is not None:
            return self.sleep_transistors.nmos.vt0
        return self.transistors.nmos.vt0


def bulk_cmos_06um() -> Technology:
    """Conventional 0.6 um bulk CMOS: the paper's "current 3 V" baseline."""
    return Technology(
        name="bulk-0.6um",
        transistors=_matched_pair(
            vt0=0.7,
            subthreshold_swing=0.085,
            i_spec=1.0e-7,
            k_drive=1.2e-4,
            alpha=1.6,
            dibl=0.02,
        ),
        gate_cap=GateCapacitanceModel.from_oxide_thickness(
            12.0, depletion_floor=0.45, v_mid=0.95, v_width=0.45
        ),
        nominal_vdd=3.3,
        min_vdd=0.8,
        max_vdd=3.6,
        drawn_length_um=0.6,
        drain_extent_um=0.9,
    )


def soi_low_vt(vt0: float = 0.184, nominal_vdd: float = 1.0) -> Technology:
    """Fixed low-V_T SOI: the ``E_SOI`` reference of paper Eq. 3.

    Default V_T matches the forward-biased corner of the Fig. 6 SOIAS
    device, so SOI-vs-SOIAS comparisons are iso-performance by
    construction.  ``i_spec`` is calibrated to that figure's measured
    curves: the low-V_T off current sits ~4 decades below the
    ~0.2 mA/um on current at 1 V, i.e. ~1e-8 A/um, which with
    S = 66 mV/dec implies a specific current of ~6e-6 A/um at V_gs =
    V_T.  This is the leakage level that makes sub-1-V low-V_T design
    leakage-limited — the premise of the paper's Figs. 4 and 10.
    """
    return Technology(
        name=f"soi-lowvt-{vt0:.3f}V",
        transistors=_matched_pair(
            vt0=vt0,
            subthreshold_swing=0.066,
            i_spec=6.0e-6,
            k_drive=2.7e-4,
            alpha=1.5,
            dibl=0.03,
        ),
        gate_cap=GateCapacitanceModel.from_oxide_thickness(
            9.0, depletion_floor=0.5, v_mid=max(0.25, vt0 + 0.1), v_width=0.3
        ),
        junction_cap=JunctionCapacitanceModel(c_j0_f_per_um2=0.15e-15),
        nominal_vdd=nominal_vdd,
        min_vdd=0.05,
        max_vdd=2.0,
        drawn_length_um=0.44,
        drain_extent_um=0.6,
    )


def soias_technology(
    vt_standby: float = 0.448,
    nominal_vdd: float = 1.0,
    back_gate_bias: float = 3.0,
) -> Technology:
    """Back-gated SOIAS process (paper Figs. 5-6, Eq. 4).

    The logic transistors carry the *standby* threshold; the back-gate
    model supplies the active-mode shift.  The buried-oxide back-gate
    capacitance (t_box = 100 nm) sets the ``C_bg`` overhead of Eq. 4.

    The coupling uses the Fig. 6 *measured* value (0.448 V -> 0.184 V
    over 3 V of drive, i.e. 0.088 V/V) rather than the film-stack
    estimate of ~0.079, so the fully driven device is exactly
    iso-performance with :func:`soi_low_vt`.
    """
    from repro.device.threshold import SoiasBackGateModel

    back_gate = SoiasBackGateModel(
        vt_standby=vt_standby,
        coupling=0.088,
        max_back_gate_bias=max(back_gate_bias, 3.0),
    )
    base = soi_low_vt(vt0=vt_standby, nominal_vdd=nominal_vdd)
    from repro.units import EPSILON_OX, nm  # local to avoid module cycle noise

    c_box_per_um2 = EPSILON_OX / nm(100.0) * 1e-12
    return replace(
        base,
        name="soias",
        back_gate=back_gate,
        back_gate_cap_f_per_um2=c_box_per_um2,
        back_gate_swing=back_gate_bias,
    )


def mtcmos_technology(
    low_vt: float = 0.2,
    high_vt: float = 0.5,
    nominal_vdd: float = 1.0,
) -> Technology:
    """Multiple-threshold process: low-V_T logic, high-V_T sleep gates."""
    if not low_vt < high_vt:
        raise DeviceModelError("MTCMOS requires low_vt < high_vt")
    base = soi_low_vt(vt0=low_vt, nominal_vdd=nominal_vdd)
    sleep = base.transistors.with_vt0(high_vt)
    return replace(base, name="mtcmos", sleep_transistors=sleep)
