"""Gate- and stack-level subthreshold leakage.

The paper's third power component (Section 2) is leakage.  Two facts
matter for the tools it calls for:

* a single off device leaks ``I_off = I_spec * 10^(-V_T / S_th)`` — the
  exponential V_T dependence that creates the optimum of Fig. 4; and
* *series* off devices leak far less than one off device (the "stack
  effect"): the intermediate node floats up, reverse-biasing the upper
  device's V_gs and adding DIBL relief.  This is also why MTCMOS sleep
  devices work.  :func:`stack_leakage_current` solves the series stack
  self-consistently.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.device.mosfet import Mosfet, MosfetParameters
from repro.errors import DeviceModelError

__all__ = [
    "stack_leakage_current",
    "gate_leakage_current",
    "StackLeakageModel",
]

_BISECTION_STEPS = 80


def _vds_for_current(
    device: Mosfet,
    source_voltage: float,
    target_current: float,
    vdd: float,
    vt_shift: float,
) -> float:
    """Smallest V_ds at which an off device carries ``target_current``.

    The device's gate is grounded, its source sits at ``source_voltage``
    (so V_gs = -source_voltage).  Current is monotone increasing in
    V_ds, so bisection applies.  Returns ``vdd`` if the device cannot
    carry the target current even with the full supply across it.
    """
    vgs = -source_voltage

    def current(vds: float) -> float:
        return device.drain_current(vgs, vds, vt_shift)

    if current(vdd) <= target_current:
        return vdd
    low, high = 0.0, vdd
    for _ in range(_BISECTION_STEPS):
        mid = 0.5 * (low + high)
        if current(mid) < target_current:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)


def stack_leakage_current(
    parameters: MosfetParameters,
    widths_um: Sequence[float],
    vdd: float,
    vt_shift: float = 0.0,
) -> float:
    """Leakage through a series stack of all-off devices.

    The stack hangs between V_DD and ground with every gate grounded.
    A single current flows through all devices; each intermediate node
    voltage follows from current continuity.  We bisect on the current
    (log domain): for a trial current, accumulate the V_ds each device
    needs, then compare the total against V_DD.

    Parameters
    ----------
    parameters:
        Transistor flavour of the stack devices.
    widths_um:
        Width of each device, bottom (source-grounded) first.
    vdd:
        Rail-to-rail voltage across the stack [V].
    vt_shift:
        External threshold shift (e.g. SOIAS standby bias) [V].

    Returns
    -------
    float
        Stack leakage current [A].  For a single device this equals
        ``Mosfet.off_current``.
    """
    if not widths_um:
        raise DeviceModelError("stack must contain at least one device")
    if vdd <= 0.0:
        raise DeviceModelError(f"vdd must be positive, got {vdd}")
    devices = [Mosfet(parameters, width_um=w) for w in widths_um]
    if len(devices) == 1:
        return devices[0].off_current(vdd, vt_shift)

    # Bracket the answer: at most the weakest single-device off current,
    # at least that value suppressed by many decades.
    upper = min(d.off_current(vdd, vt_shift) for d in devices)
    if upper <= 0.0:
        return 0.0
    lower = upper * 1e-12

    def total_drop(current: float) -> float:
        source = 0.0
        for device in devices:
            vds = _vds_for_current(device, source, current, vdd, vt_shift)
            source += vds
            if source >= vdd:
                break
        return source

    # total_drop is increasing in current; find current where drop == vdd.
    log_low, log_high = math.log(lower), math.log(upper)
    for _ in range(_BISECTION_STEPS):
        log_mid = 0.5 * (log_low + log_high)
        if total_drop(math.exp(log_mid)) < vdd:
            log_low = log_mid
        else:
            log_high = log_mid
    return math.exp(0.5 * (log_low + log_high))


def gate_leakage_current(
    nmos_parameters: MosfetParameters,
    pmos_parameters: MosfetParameters,
    nmos_widths_um: Sequence[float],
    pmos_widths_um: Sequence[float],
    vdd: float,
    output_high_probability: float = 0.5,
    vt_shift: float = 0.0,
) -> float:
    """State-averaged leakage of a static CMOS gate.

    When the output is high the pull-down (NMOS) network leaks; when it
    is low the pull-up (PMOS) network leaks.  Series networks get the
    stack-effect suppression; parallel devices would each leak alone,
    which is conservative to ignore here because the cell layer models
    the worst single path.

    ``output_high_probability`` lets signal statistics weight the two
    states (the paper's point that activity shapes even leakage).
    """
    if not 0.0 <= output_high_probability <= 1.0:
        raise DeviceModelError("output_high_probability must be in [0, 1]")
    nmos_leak = stack_leakage_current(
        nmos_parameters, nmos_widths_um, vdd, vt_shift
    )
    pmos_leak = stack_leakage_current(
        pmos_parameters, pmos_widths_um, vdd, vt_shift
    )
    p_high = output_high_probability
    return p_high * nmos_leak + (1.0 - p_high) * pmos_leak


class StackLeakageModel:
    """Cached stack-effect evaluator for one transistor flavour.

    Characterization sweeps ask for the same (depth, width, V_DD, shift)
    tuples repeatedly; this memoizes the bisection.
    """

    def __init__(self, parameters: MosfetParameters):
        self.parameters = parameters
        self._cache: dict = {}

    def current(
        self,
        widths_um: Sequence[float],
        vdd: float,
        vt_shift: float = 0.0,
    ) -> float:
        """Stack leakage, memoized on the rounded argument tuple."""
        key = (tuple(round(w, 6) for w in widths_um), round(vdd, 6), round(vt_shift, 6))
        if key not in self._cache:
            self._cache[key] = stack_leakage_current(
                self.parameters, widths_um, vdd, vt_shift
            )
        return self._cache[key]

    def suppression_factor(
        self, depth: int, width_um: float, vdd: float, vt_shift: float = 0.0
    ) -> float:
        """How much a depth-N uniform stack beats a single device.

        Returns ``I_single / I_stack`` (>= 1).  The classic result is
        roughly an order of magnitude for a 2-stack.
        """
        if depth < 1:
            raise DeviceModelError("depth must be >= 1")
        single = self.current([width_um], vdd, vt_shift)
        stacked = self.current([width_um] * depth, vdd, vt_shift)
        if stacked <= 0.0:
            return math.inf
        return single / stacked
