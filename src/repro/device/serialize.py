"""Technology (de)serialization to JSON.

Lets calibrated process corners travel with designs the way PDK decks
do: :func:`save_technology` writes every nested model parameter;
:func:`load_technology` reconstructs a bit-identical
:class:`~repro.device.technology.Technology`.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Optional

from repro.device.capacitance import (
    GateCapacitanceModel,
    JunctionCapacitanceModel,
    WireCapacitanceModel,
)
from repro.device.mosfet import MosfetParameters
from repro.device.technology import Technology, TransistorPair
from repro.device.threshold import SoiasBackGateModel
from repro.errors import DeviceModelError

__all__ = [
    "technology_to_dict",
    "technology_from_dict",
    "save_technology",
    "load_technology",
]

_FORMAT = "repro-technology-v1"


def _pair_to_dict(pair: Optional[TransistorPair]) -> Optional[dict]:
    if pair is None:
        return None
    return {
        "nmos": dataclasses.asdict(pair.nmos),
        "pmos": dataclasses.asdict(pair.pmos),
    }


def _pair_from_dict(payload: Optional[dict]) -> Optional[TransistorPair]:
    if payload is None:
        return None
    return TransistorPair(
        nmos=MosfetParameters(**payload["nmos"]),
        pmos=MosfetParameters(**payload["pmos"]),
    )


def technology_to_dict(technology: Technology) -> dict:
    """Full parameter dump of one technology."""
    return {
        "format": _FORMAT,
        "name": technology.name,
        "transistors": _pair_to_dict(technology.transistors),
        "gate_cap": dataclasses.asdict(technology.gate_cap),
        "junction_cap": dataclasses.asdict(technology.junction_cap),
        "wire_cap": dataclasses.asdict(technology.wire_cap),
        "nominal_vdd": technology.nominal_vdd,
        "min_vdd": technology.min_vdd,
        "max_vdd": technology.max_vdd,
        "drawn_length_um": technology.drawn_length_um,
        "drain_extent_um": technology.drain_extent_um,
        "back_gate": (
            dataclasses.asdict(technology.back_gate)
            if technology.back_gate is not None
            else None
        ),
        "back_gate_cap_f_per_um2": technology.back_gate_cap_f_per_um2,
        "back_gate_swing": technology.back_gate_swing,
        "sleep_transistors": _pair_to_dict(technology.sleep_transistors),
    }


def technology_from_dict(payload: dict) -> Technology:
    """Reconstruct a technology from :func:`technology_to_dict` output."""
    if payload.get("format") != _FORMAT:
        raise DeviceModelError(
            f"unsupported technology format {payload.get('format')!r}"
        )
    back_gate = (
        SoiasBackGateModel(**payload["back_gate"])
        if payload["back_gate"] is not None
        else None
    )
    return Technology(
        name=payload["name"],
        transistors=_pair_from_dict(payload["transistors"]),
        gate_cap=GateCapacitanceModel(**payload["gate_cap"]),
        junction_cap=JunctionCapacitanceModel(**payload["junction_cap"]),
        wire_cap=WireCapacitanceModel(**payload["wire_cap"]),
        nominal_vdd=payload["nominal_vdd"],
        min_vdd=payload["min_vdd"],
        max_vdd=payload["max_vdd"],
        drawn_length_um=payload["drawn_length_um"],
        drain_extent_um=payload["drain_extent_um"],
        back_gate=back_gate,
        back_gate_cap_f_per_um2=payload["back_gate_cap_f_per_um2"],
        back_gate_swing=payload["back_gate_swing"],
        sleep_transistors=_pair_from_dict(payload["sleep_transistors"]),
    )


def save_technology(technology: Technology, path: str) -> None:
    """Write a technology to a JSON file."""
    with open(path, "w") as handle:
        json.dump(technology_to_dict(technology), handle, indent=2)


def load_technology(path: str) -> Technology:
    """Read a technology written by :func:`save_technology`."""
    with open(path) as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise DeviceModelError(
                f"malformed technology JSON in {path!r}: {error}"
            ) from error
    return technology_from_dict(payload)
