"""Technology (de)serialization to JSON.

Lets calibrated process corners travel with designs the way PDK decks
do: :func:`save_technology` writes every nested model parameter;
:func:`load_technology` reconstructs a bit-identical
:class:`~repro.device.technology.Technology`.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Optional

from repro.device.capacitance import (
    GateCapacitanceModel,
    JunctionCapacitanceModel,
    WireCapacitanceModel,
)
from repro.device.mosfet import MosfetParameters
from repro.device.technology import Technology, TransistorPair
from repro.device.threshold import SoiasBackGateModel
from repro.errors import SerializationError

__all__ = [
    "technology_to_dict",
    "technology_from_dict",
    "save_technology",
    "load_technology",
]

_FORMAT = "repro-technology-v1"


def _pair_to_dict(pair: Optional[TransistorPair]) -> Optional[dict]:
    if pair is None:
        return None
    return {
        "nmos": dataclasses.asdict(pair.nmos),
        "pmos": dataclasses.asdict(pair.pmos),
    }


def _pair_from_dict(payload: Optional[dict]) -> Optional[TransistorPair]:
    if payload is None:
        return None
    return TransistorPair(
        nmos=MosfetParameters(**payload["nmos"]),
        pmos=MosfetParameters(**payload["pmos"]),
    )


def technology_to_dict(technology: Technology) -> dict:
    """Full parameter dump of one technology."""
    return {
        "format": _FORMAT,
        "name": technology.name,
        "transistors": _pair_to_dict(technology.transistors),
        "gate_cap": dataclasses.asdict(technology.gate_cap),
        "junction_cap": dataclasses.asdict(technology.junction_cap),
        "wire_cap": dataclasses.asdict(technology.wire_cap),
        "nominal_vdd": technology.nominal_vdd,
        "min_vdd": technology.min_vdd,
        "max_vdd": technology.max_vdd,
        "drawn_length_um": technology.drawn_length_um,
        "drain_extent_um": technology.drain_extent_um,
        "back_gate": (
            dataclasses.asdict(technology.back_gate)
            if technology.back_gate is not None
            else None
        ),
        "back_gate_cap_f_per_um2": technology.back_gate_cap_f_per_um2,
        "back_gate_swing": technology.back_gate_swing,
        "sleep_transistors": _pair_to_dict(technology.sleep_transistors),
    }


def technology_from_dict(
    payload: dict, source: Optional[str] = None
) -> Technology:
    """Reconstruct a technology from :func:`technology_to_dict` output.

    Raises
    ------
    SerializationError
        On a wrong schema version, a missing key, or field values the
        model constructors reject — never a raw :class:`KeyError` /
        :class:`TypeError`.  ``source`` (a file path, when known) is
        included in the message.
    """
    where = f" in {source!r}" if source else ""
    if not isinstance(payload, dict):
        raise SerializationError(
            f"technology payload{where} is not a JSON object "
            f"(got {type(payload).__name__})"
        )
    if payload.get("format") != _FORMAT:
        raise SerializationError(
            f"unsupported technology format {payload.get('format')!r}"
            f"{where} (expected {_FORMAT!r})"
        )
    try:
        back_gate = (
            SoiasBackGateModel(**payload["back_gate"])
            if payload["back_gate"] is not None
            else None
        )
        return Technology(
            name=payload["name"],
            transistors=_pair_from_dict(payload["transistors"]),
            gate_cap=GateCapacitanceModel(**payload["gate_cap"]),
            junction_cap=JunctionCapacitanceModel(**payload["junction_cap"]),
            wire_cap=WireCapacitanceModel(**payload["wire_cap"]),
            nominal_vdd=payload["nominal_vdd"],
            min_vdd=payload["min_vdd"],
            max_vdd=payload["max_vdd"],
            drawn_length_um=payload["drawn_length_um"],
            drain_extent_um=payload["drain_extent_um"],
            back_gate=back_gate,
            back_gate_cap_f_per_um2=payload["back_gate_cap_f_per_um2"],
            back_gate_swing=payload["back_gate_swing"],
            sleep_transistors=_pair_from_dict(payload["sleep_transistors"]),
        )
    except KeyError as error:
        raise SerializationError(
            f"technology payload{where} is missing key {error.args[0]!r}"
        ) from error
    except (TypeError, AttributeError) as error:
        raise SerializationError(
            f"technology payload{where} has a wrong-shaped field: {error}"
        ) from error


def save_technology(technology: Technology, path: str) -> None:
    """Write a technology to a JSON file."""
    with open(path, "w") as handle:
        json.dump(technology_to_dict(technology), handle, indent=2)


def load_technology(path: str) -> Technology:
    """Read a technology written by :func:`save_technology`.

    Every failure mode — unreadable file, malformed JSON, missing
    keys, wrong schema version — surfaces as a
    :class:`~repro.errors.SerializationError` naming ``path``.
    """
    with open(path) as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise SerializationError(
                f"malformed technology JSON in {path!r}: {error}"
            ) from error
    return technology_from_dict(payload, source=path)
