"""Analytical MOSFET drain-current model.

The model blends two regimes:

* **Subthreshold** (paper Eq. 2)::

      I = K * exp((V_gs - V_T) / (n * phi_t)) * (1 - exp(-V_ds / phi_t))

  where ``n`` follows from the subthreshold swing ``S_th`` via
  ``n = S_th / (phi_t * ln 10)``.  The paper quotes S_th between 60 and
  90 mV/decade at room temperature; the SOIAS devices of Fig. 6 show
  ~66 mV/decade (a 264 mV V_T shift moves the off current ~4 decades).

* **Strong inversion**: the Sakurai-Newton alpha-power law,
  ``I_dsat = k_drive * W * (V_gs - V_T)^alpha`` with a velocity-saturated
  linear region below ``V_dsat = vdsat_coeff * (V_gs - V_T)^(alpha/2)``.
  ``alpha = 1.5`` reproduces the paper's "1.8x switching-current increase
  at 1 V operation" for the Fig. 6 V_T pair (0.448 V -> 0.184 V).

The two branches are *summed*: below threshold the subthreshold term
dominates, above threshold it saturates at its V_gs = V_T value and the
alpha-power term takes over.  The sum is continuous and monotone in
``V_gs`` and ``V_ds``, which property-based tests rely on.

All voltages are magnitudes; a PMOS device is described by the same
equations with source-referenced magnitudes (the circuit layer is
responsible for the sign flip).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterable, List, Optional

from repro.errors import CalibrationError, DeviceModelError
from repro.units import LN10, ROOM_TEMPERATURE_K, thermal_voltage

__all__ = [
    "MosfetParameters",
    "Mosfet",
    "fit_i_spec_for_off_current",
    "fit_k_drive_for_on_current",
]

#: Exponent arguments beyond this are clamped to avoid overflow; the
#: corresponding current ratio (e^60 ~ 1e26) is far outside any physical
#: operating range of the model.
_MAX_EXP_ARG = 60.0


def _bounded_exp(x: float) -> float:
    """``exp`` clamped to a huge-but-finite range."""
    return math.exp(max(-_MAX_EXP_ARG, min(_MAX_EXP_ARG, x)))


@dataclass(frozen=True)
class MosfetParameters:
    """Technology parameters of a single transistor flavour.

    Parameters
    ----------
    polarity:
        ``"nmos"`` or ``"pmos"`` (informational; the equations are
        magnitude-based and identical for both).
    vt0:
        Zero-bias threshold-voltage magnitude [V].
    subthreshold_swing:
        ``S_th`` [V/decade].  60 mV/dec is the room-temperature limit;
        the paper quotes 60-90 mV/dec.
    i_spec:
        Subthreshold current at ``V_gs = V_T`` per micrometre of width
        [A/um].
    k_drive:
        Alpha-power-law drive coefficient [A/um/V^alpha].
    alpha:
        Velocity-saturation index (2.0 = long channel, ~1.2-1.5 = short
        channel).
    dibl:
        Drain-induced barrier lowering [V of V_T per V of V_ds].
    vdsat_coeff:
        Saturation-voltage coefficient [V^(1-alpha/2)].
    channel_length_modulation:
        Output-conductance slope ``lambda`` [1/V] in saturation.
    temperature_k:
        Device temperature [K]; sets ``phi_t`` and hence the swing.
    """

    polarity: str = "nmos"
    vt0: float = 0.45
    subthreshold_swing: float = 0.066
    i_spec: float = 1.0e-7
    k_drive: float = 2.7e-4
    alpha: float = 1.5
    dibl: float = 0.03
    vdsat_coeff: float = 0.9
    channel_length_modulation: float = 0.04
    temperature_k: float = ROOM_TEMPERATURE_K

    def __post_init__(self) -> None:
        if self.polarity not in ("nmos", "pmos"):
            raise DeviceModelError(
                f"polarity must be 'nmos' or 'pmos', got {self.polarity!r}"
            )
        if self.subthreshold_swing <= 0.0:
            raise DeviceModelError("subthreshold swing must be positive")
        phi_t = thermal_voltage(self.temperature_k)
        if self.subthreshold_swing < phi_t * LN10 * (1.0 - 1e-9):
            raise DeviceModelError(
                "subthreshold swing cannot beat the kT/q * ln(10) limit "
                f"({phi_t * LN10 * 1e3:.1f} mV/dec at {self.temperature_k} K)"
            )
        for name in ("i_spec", "k_drive", "vdsat_coeff"):
            if getattr(self, name) <= 0.0:
                raise DeviceModelError(f"{name} must be positive")
        for name in ("dibl", "channel_length_modulation"):
            if getattr(self, name) < 0.0:
                raise DeviceModelError(f"{name} must be non-negative")
        if not 1.0 <= self.alpha <= 2.0:
            raise DeviceModelError(
                f"alpha must be in [1, 2], got {self.alpha}"
            )

    @property
    def thermal_voltage(self) -> float:
        """``phi_t = kT/q`` at the device temperature [V]."""
        return thermal_voltage(self.temperature_k)

    @property
    def ideality(self) -> float:
        """Subthreshold ideality ``n = S_th / (phi_t ln 10)``."""
        return self.subthreshold_swing / (self.thermal_voltage * LN10)

    def with_vt0(self, vt0: float) -> "MosfetParameters":
        """Copy of these parameters with a different threshold."""
        return replace(self, vt0=vt0)

    def with_temperature(self, temperature_k: float) -> "MosfetParameters":
        """Copy at a different temperature.

        The swing scales with absolute temperature (``S_th = n kT/q
        ln 10`` with fixed ideality ``n``), which is the dominant
        temperature effect on leakage.
        """
        scale = temperature_k / self.temperature_k
        return replace(
            self,
            temperature_k=temperature_k,
            subthreshold_swing=self.subthreshold_swing * scale,
        )


class Mosfet:
    """A sized transistor: :class:`MosfetParameters` plus a width.

    >>> nmos = Mosfet(MosfetParameters(), width_um=2.0)
    >>> nmos.on_current(vdd=1.5) > nmos.off_current(vdd=1.5)
    True
    """

    def __init__(self, parameters: MosfetParameters, width_um: float = 1.0):
        if width_um <= 0.0:
            raise DeviceModelError(f"width must be positive, got {width_um}")
        self.parameters = parameters
        self.width_um = width_um

    def __repr__(self) -> str:
        p = self.parameters
        return (
            f"Mosfet({p.polarity}, W={self.width_um}um, "
            f"VT0={p.vt0}V, S={p.subthreshold_swing * 1e3:.0f}mV/dec)"
        )

    # ------------------------------------------------------------------
    # Threshold
    # ------------------------------------------------------------------
    def effective_vt(self, vds: float, vt_shift: float = 0.0) -> float:
        """Threshold including DIBL and an external shift.

        ``vt_shift`` is how body-bias / back-gate models (see
        :mod:`repro.device.threshold`) inject their V_T modulation.
        """
        return self.parameters.vt0 + vt_shift - self.parameters.dibl * vds

    # ------------------------------------------------------------------
    # Current branches
    # ------------------------------------------------------------------
    def subthreshold_current(
        self, vgs: float, vds: float, vt_shift: float = 0.0
    ) -> float:
        """Paper Eq. 2, clamped to its V_gs = V_T value above threshold.

        The clamp makes the branch a well-behaved "leakage floor" that
        can simply be added to the strong-inversion branch.
        """
        if vds < 0.0:
            raise DeviceModelError(f"vds must be >= 0, got {vds}")
        p = self.parameters
        phi_t = p.thermal_voltage
        vt = self.effective_vt(vds, vt_shift)
        gate_drive = min(vgs - vt, 0.0)
        exponent = gate_drive / (p.ideality * phi_t)
        drain_factor = 1.0 - _bounded_exp(-vds / phi_t)
        return p.i_spec * self.width_um * _bounded_exp(exponent) * drain_factor

    def strong_inversion_current(
        self, vgs: float, vds: float, vt_shift: float = 0.0
    ) -> float:
        """Sakurai-Newton alpha-power-law current (zero below V_T)."""
        if vds < 0.0:
            raise DeviceModelError(f"vds must be >= 0, got {vds}")
        p = self.parameters
        overdrive = vgs - self.effective_vt(vds, vt_shift)
        if overdrive <= 0.0:
            return 0.0
        i_dsat = p.k_drive * self.width_um * overdrive**p.alpha
        vdsat = p.vdsat_coeff * overdrive ** (p.alpha / 2.0)
        if vds >= vdsat:
            return i_dsat * (1.0 + p.channel_length_modulation * (vds - vdsat))
        ratio = vds / vdsat
        return i_dsat * ratio * (2.0 - ratio)

    def drain_current(
        self, vgs: float, vds: float, vt_shift: float = 0.0
    ) -> float:
        """Total drain current: subthreshold floor + alpha-power drive."""
        return self.subthreshold_current(
            vgs, vds, vt_shift
        ) + self.strong_inversion_current(vgs, vds, vt_shift)

    # ------------------------------------------------------------------
    # Convenience corners
    # ------------------------------------------------------------------
    def off_current(self, vdd: float, vt_shift: float = 0.0) -> float:
        """Leakage with the gate off and the drain at the rail."""
        return self.drain_current(0.0, vdd, vt_shift)

    def on_current(self, vdd: float, vt_shift: float = 0.0) -> float:
        """Drive with gate and drain at the rail (worst-case switching)."""
        return self.drain_current(vdd, vdd, vt_shift)

    def iv_curve(
        self,
        vgs_values: Iterable[float],
        vds: float,
        vt_shift: float = 0.0,
    ) -> List[float]:
        """Drain current at each ``V_gs`` for a fixed ``V_ds``.

        This is the sweep behind the paper's Figs. 2 and 6.
        """
        return [self.drain_current(v, vds, vt_shift) for v in vgs_values]

    def subthreshold_slope_mv_per_decade(
        self, vds: float = 1.0, probe_vgs: Optional[float] = None
    ) -> float:
        """Numerically extracted swing, for model self-checks [mV/dec]."""
        p = self.parameters
        center = p.vt0 / 2.0 if probe_vgs is None else probe_vgs
        delta = 0.01
        low = self.drain_current(center - delta, vds)
        high = self.drain_current(center + delta, vds)
        if low <= 0.0 or high <= low:
            raise DeviceModelError(
                "cannot extract swing: currents not increasing at probe point"
            )
        return 2.0 * delta / math.log10(high / low) * 1e3


def fit_i_spec_for_off_current(
    parameters: MosfetParameters,
    target_off_current_per_um: float,
    vdd: float,
) -> MosfetParameters:
    """Return parameters whose off current per um matches a target.

    Used to pin the model to quoted numbers such as the paper's
    "less than 1 pA for V_T = 0.4 V".
    """
    if target_off_current_per_um <= 0.0:
        raise CalibrationError("target off current must be positive")
    probe = Mosfet(parameters, width_um=1.0)
    baseline = probe.off_current(vdd)
    if baseline <= 0.0:
        raise CalibrationError("model off current is zero; cannot scale")
    scale = target_off_current_per_um / baseline
    return replace(parameters, i_spec=parameters.i_spec * scale)


def fit_k_drive_for_on_current(
    parameters: MosfetParameters,
    target_on_current_per_um: float,
    vdd: float,
) -> MosfetParameters:
    """Return parameters whose on current per um matches a target.

    The subthreshold floor also contributes to the on current, so the
    fit solves for ``k_drive`` exactly rather than just ratio-scaling.
    """
    if target_on_current_per_um <= 0.0:
        raise CalibrationError("target on current must be positive")
    probe = Mosfet(parameters, width_um=1.0)
    floor = probe.subthreshold_current(vdd, vdd)
    if floor >= target_on_current_per_um:
        raise CalibrationError(
            "subthreshold floor alone exceeds the requested on current; "
            "lower i_spec or raise the target"
        )
    strong = probe.strong_inversion_current(vdd, vdd)
    if strong <= 0.0:
        raise CalibrationError(
            f"device does not turn on at V_DD = {vdd} V (V_T too high)"
        )
    scale = (target_on_current_per_um - floor) / strong
    return replace(parameters, k_drive=parameters.k_drive * scale)
