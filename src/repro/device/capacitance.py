"""Capacitance models, including the non-linear gate C(V) of Fig. 1.

The paper's Fig. 1 shows that the *switched* capacitance of register
cells rises with the supply voltage because MOS gate capacitance is
bias-dependent: near and below threshold the series depletion
capacitance reduces the effective gate capacitance, while in strong
inversion it recovers to the full oxide capacitance ``C_ox``.  Power
estimators that use a single constant C therefore misestimate energy
across a V_DD sweep — the paper's first CAD-tool requirement.

Three models live here:

* :class:`GateCapacitanceModel` — smooth depletion-to-inversion C(V)
  plus its charge-equivalent ("switched") capacitance for a 0 -> V_DD
  swing.
* :class:`JunctionCapacitanceModel` — standard junction-grading model,
  whose switched capacitance *falls* with V_DD (reverse bias widens the
  depletion region).
* :class:`WireCapacitanceModel` — constant per-length interconnect
  capacitance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import DeviceModelError
from repro.units import EPSILON_OX, nm

__all__ = [
    "GateCapacitanceModel",
    "JunctionCapacitanceModel",
    "WireCapacitanceModel",
]


@dataclass(frozen=True)
class GateCapacitanceModel:
    """Bias-dependent MOS gate capacitance per unit area.

    Instantaneous capacitance::

        c(V) = c_ox * (floor + (1 - floor) * 0.5 * (1 + tanh((V - v_mid)/v_width)))

    ``floor`` is the depleted-gate fraction (series C_ox / C_dep), and
    the tanh transition is centred a little above the threshold where
    the inversion layer forms.

    Parameters
    ----------
    c_ox_f_per_um2:
        Oxide capacitance per um^2 [F/um^2].
    depletion_floor:
        c(0)/c_ox, typically 0.3-0.6.
    v_mid:
        Transition centre [V] (≈ V_T + a little).
    v_width:
        Transition width [V].
    """

    c_ox_f_per_um2: float = 3.8e-15
    depletion_floor: float = 0.45
    v_mid: float = 0.7
    v_width: float = 0.35

    def __post_init__(self) -> None:
        if self.c_ox_f_per_um2 <= 0.0:
            raise DeviceModelError("c_ox must be positive")
        if not 0.0 < self.depletion_floor < 1.0:
            raise DeviceModelError("depletion_floor must be in (0, 1)")
        if self.v_width <= 0.0:
            raise DeviceModelError("v_width must be positive")

    @classmethod
    def from_oxide_thickness(
        cls,
        t_ox_nm: float,
        depletion_floor: float = 0.45,
        v_mid: float = 0.7,
        v_width: float = 0.35,
    ) -> "GateCapacitanceModel":
        """Build from the physical oxide thickness [nm]."""
        if t_ox_nm <= 0.0:
            raise DeviceModelError("t_ox_nm must be positive")
        # EPSILON_OX is per metre; convert to per-um^2 by (1e-6 m/um)^2 / m.
        c_ox = EPSILON_OX / nm(t_ox_nm) * 1e-12
        return cls(
            c_ox_f_per_um2=c_ox,
            depletion_floor=depletion_floor,
            v_mid=v_mid,
            v_width=v_width,
        )

    def capacitance_at(self, voltage: float) -> float:
        """Instantaneous gate capacitance per um^2 at a bias [F/um^2]."""
        rise = 0.5 * (1.0 + math.tanh((voltage - self.v_mid) / self.v_width))
        fraction = self.depletion_floor + (1.0 - self.depletion_floor) * rise
        return self.c_ox_f_per_um2 * fraction

    def switched_capacitance(self, vdd: float) -> float:
        """Charge-equivalent capacitance of a full 0 -> V_DD swing.

        ``C_sw = Q(V_DD) / V_DD`` with ``Q = \\int_0^{V_DD} c(v) dv``;
        the tanh integrates in closed form via ``ln cosh``.  This is the
        quantity plotted (per cell) in the paper's Fig. 1, and it
        increases monotonically with V_DD.
        """
        if vdd <= 0.0:
            raise DeviceModelError(f"vdd must be positive, got {vdd}")
        floor = self.depletion_floor
        width = self.v_width

        def antiderivative(v: float) -> float:
            # Integral of floor + (1-floor)*0.5*(1 + tanh((v - mid)/width)).
            tail = 0.5 * (
                (v - self.v_mid)
                + width * math.log(math.cosh((v - self.v_mid) / width))
            )
            return floor * v + (1.0 - floor) * tail

        charge_per_cox = antiderivative(vdd) - antiderivative(0.0)
        return self.c_ox_f_per_um2 * charge_per_cox / vdd

    def gate_capacitance(
        self, width_um: float, length_um: float, vdd: float
    ) -> float:
        """Switched gate capacitance of a W x L device at V_DD [F]."""
        if width_um <= 0.0 or length_um <= 0.0:
            raise DeviceModelError("device dimensions must be positive")
        return width_um * length_um * self.switched_capacitance(vdd)


@dataclass(frozen=True)
class JunctionCapacitanceModel:
    """Reverse-biased junction capacitance with grading.

    ``c(V) = c_j0 / (1 + V / built_in)^grading``

    Parameters
    ----------
    c_j0_f_per_um2:
        Zero-bias area capacitance [F/um^2].
    built_in:
        Built-in potential [V].
    grading:
        Grading coefficient (0.5 abrupt, ~0.33 graded).
    """

    c_j0_f_per_um2: float = 1.0e-15
    built_in: float = 0.9
    grading: float = 0.5

    def __post_init__(self) -> None:
        if self.c_j0_f_per_um2 <= 0.0:
            raise DeviceModelError("c_j0 must be positive")
        if self.built_in <= 0.0:
            raise DeviceModelError("built_in must be positive")
        if not 0.0 < self.grading < 1.0:
            raise DeviceModelError("grading must be in (0, 1)")

    def capacitance_at(self, reverse_bias: float) -> float:
        """Instantaneous junction capacitance per um^2 [F/um^2]."""
        if reverse_bias < 0.0:
            raise DeviceModelError("reverse bias must be >= 0")
        return self.c_j0_f_per_um2 / (
            (1.0 + reverse_bias / self.built_in) ** self.grading
        )

    def switched_capacitance(self, vdd: float) -> float:
        """Charge-equivalent capacitance of a 0 -> V_DD drain swing."""
        if vdd <= 0.0:
            raise DeviceModelError(f"vdd must be positive, got {vdd}")
        one_minus_m = 1.0 - self.grading
        charge = (
            self.c_j0_f_per_um2
            * self.built_in
            / one_minus_m
            * ((1.0 + vdd / self.built_in) ** one_minus_m - 1.0)
        )
        return charge / vdd

    def drain_capacitance(
        self, width_um: float, drain_extent_um: float, vdd: float
    ) -> float:
        """Switched drain-junction capacitance of a device [F]."""
        if width_um <= 0.0 or drain_extent_um <= 0.0:
            raise DeviceModelError("device dimensions must be positive")
        return width_um * drain_extent_um * self.switched_capacitance(vdd)


@dataclass(frozen=True)
class WireCapacitanceModel:
    """Constant per-length interconnect capacitance."""

    c_per_um: float = 0.2e-15

    def __post_init__(self) -> None:
        if self.c_per_um <= 0.0:
            raise DeviceModelError("c_per_um must be positive")

    def wire_capacitance(self, length_um: float) -> float:
        """Capacitance of a wire of the given length [F]."""
        if length_um < 0.0:
            raise DeviceModelError("length must be >= 0")
        return self.c_per_um * length_um
