"""Threshold-voltage modulation models.

Section 4 of the paper lists three mechanisms for trading leakage
against speed:

1. **Substrate (body) bias in bulk/triple-well CMOS** — V_T moves with
   the square root of source-to-bulk voltage, so "a large voltage may be
   required to change V_T by a few hundred mV".  Modelled by
   :class:`BodyBiasModel`.
2. **Multiple-threshold processes (MTCMOS)** — a discrete pair of
   thresholds; handled at the technology level
   (:func:`repro.device.technology.mtcmos_technology`), no continuous
   model needed here.
3. **SOIAS back-gated fully depleted SOI** — the front-gate V_T couples
   *linearly* to the back-gate voltage through the buried-oxide /
   silicon-film capacitor divider.  Modelled by
   :class:`SoiasBackGateModel`, with
   :func:`soias_from_film_stack` computing the coupling ratio from the
   film thicknesses of the paper's Fig. 5/6 device (t_fox = 9 nm,
   t_si = 40.5 nm, t_box = 100 nm).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import DeviceModelError
from repro.units import EPSILON_OX, EPSILON_SI, nm

__all__ = [
    "BodyBiasModel",
    "SoiasBackGateModel",
    "soias_from_film_stack",
]


@dataclass(frozen=True)
class BodyBiasModel:
    """Square-root body-effect model for bulk CMOS.

    ``V_T(V_sb) = V_T0 + gamma * (sqrt(2 phi_F + V_sb) - sqrt(2 phi_F))``

    Parameters
    ----------
    vt0:
        Zero-bias threshold [V].
    gamma:
        Body-effect coefficient [V^0.5].
    phi_f:
        Fermi potential ``phi_F`` [V]; the model uses ``2 phi_F``.
    max_reverse_bias:
        Largest reverse V_sb the well/junctions tolerate [V].
    """

    vt0: float
    gamma: float = 0.4
    phi_f: float = 0.35
    max_reverse_bias: float = 5.0

    def __post_init__(self) -> None:
        if self.gamma <= 0.0:
            raise DeviceModelError("gamma must be positive")
        if self.phi_f <= 0.0:
            raise DeviceModelError("phi_f must be positive")
        if self.max_reverse_bias <= 0.0:
            raise DeviceModelError("max_reverse_bias must be positive")

    def vt_at(self, vsb: float) -> float:
        """Threshold at source-to-bulk reverse bias ``vsb`` [V].

        Small forward bias (negative ``vsb``) is allowed down to the
        point where the square-root argument vanishes.
        """
        argument = 2.0 * self.phi_f + vsb
        if argument < 0.0:
            raise DeviceModelError(
                f"forward body bias {vsb} V exceeds 2*phi_F; junctions conduct"
            )
        if vsb > self.max_reverse_bias:
            raise DeviceModelError(
                f"reverse bias {vsb} V exceeds the allowed "
                f"{self.max_reverse_bias} V"
            )
        return self.vt0 + self.gamma * (
            math.sqrt(argument) - math.sqrt(2.0 * self.phi_f)
        )

    def vsb_for_vt(self, vt_target: float) -> float:
        """Reverse bias needed to reach ``vt_target``.

        Raises
        ------
        DeviceModelError
            If the target is unreachable within ``max_reverse_bias`` —
            this is exactly the practical limitation the paper calls
            out for substrate-bias schemes.
        """
        root = (vt_target - self.vt0) / self.gamma + math.sqrt(
            2.0 * self.phi_f
        )
        if root < 0.0:
            raise DeviceModelError(
                f"V_T = {vt_target} V is below the forward-bias limit of "
                "this body-effect model"
            )
        vsb = root * root - 2.0 * self.phi_f
        if vsb > self.max_reverse_bias:
            raise DeviceModelError(
                f"V_T = {vt_target} V needs V_sb = {vsb:.2f} V, beyond the "
                f"allowed {self.max_reverse_bias} V"
            )
        return vsb

    def vt_sensitivity(self, vsb: float) -> float:
        """``dV_T/dV_sb`` at a bias point [V/V].

        Decreases with reverse bias — the square-root weakness.
        """
        argument = 2.0 * self.phi_f + vsb
        if argument <= 0.0:
            raise DeviceModelError("bias point outside model validity")
        return self.gamma / (2.0 * math.sqrt(argument))


@dataclass(frozen=True)
class SoiasBackGateModel:
    """Linear back-gate coupling of a fully depleted SOIAS device.

    ``V_T(V_gb) = vt_standby - coupling * V_gb``

    where ``V_gb`` is the *forward* back-gate drive (the bias polarity
    that lowers the front-gate threshold).  The paper's Fig. 6 device
    moves from V_T = 0.448 V at V_gb = 0 to V_T = 0.184 V at
    V_gb = 3 V forward drive: a coupling of ~0.088 V/V, consistent with
    its film stack (see :func:`soias_from_film_stack`).

    Parameters
    ----------
    vt_standby:
        Front-gate threshold with the back gate unbiased [V].
    coupling:
        ``-dV_T/dV_gb`` [V/V].
    max_back_gate_bias:
        Largest forward back-gate drive available [V].
    """

    vt_standby: float = 0.448
    coupling: float = 0.088
    max_back_gate_bias: float = 4.0

    def __post_init__(self) -> None:
        if not 0.0 < self.coupling < 1.0:
            raise DeviceModelError(
                f"coupling must be in (0, 1), got {self.coupling}"
            )
        if self.max_back_gate_bias <= 0.0:
            raise DeviceModelError("max_back_gate_bias must be positive")

    def vt_at(self, vgb: float) -> float:
        """Front-gate threshold at forward back-gate drive ``vgb`` [V]."""
        self._check_bias(vgb)
        return self.vt_standby - self.coupling * vgb

    def vt_shift_at(self, vgb: float) -> float:
        """Shift relative to the standby threshold (negative = faster)."""
        self._check_bias(vgb)
        return -self.coupling * vgb

    def vgb_for_vt(self, vt_target: float) -> float:
        """Back-gate drive that sets the front threshold to a target."""
        vgb = (self.vt_standby - vt_target) / self.coupling
        self._check_bias(vgb)
        return vgb

    @property
    def vt_active_floor(self) -> float:
        """Lowest reachable active-mode threshold [V]."""
        return self.vt_standby - self.coupling * self.max_back_gate_bias

    def _check_bias(self, vgb: float) -> None:
        if vgb < 0.0:
            raise DeviceModelError(
                "reverse back-gate drive not modelled; vgb must be >= 0"
            )
        if vgb > self.max_back_gate_bias:
            raise DeviceModelError(
                f"back-gate drive {vgb} V exceeds the allowed "
                f"{self.max_back_gate_bias} V"
            )


def soias_from_film_stack(
    t_fox_nm: float = 9.0,
    t_si_nm: float = 40.5,
    t_box_nm: float = 100.0,
    vt_standby: float = 0.448,
    max_back_gate_bias: float = 4.0,
) -> SoiasBackGateModel:
    """Build a :class:`SoiasBackGateModel` from film thicknesses.

    For a fully depleted film the front/back surface potentials couple
    through the series combination of the silicon-film and buried-oxide
    capacitances, giving

    ``coupling = (C_si series C_box) / C_fox``

    With the paper's stack (t_fox = 9 nm, t_si = 40.5 nm,
    t_box = 100 nm) this evaluates to ~0.079-0.09 V/V, matching the
    measured 264 mV shift for 3 V of back-gate drive in Fig. 6.
    """
    for name, value in (
        ("t_fox_nm", t_fox_nm),
        ("t_si_nm", t_si_nm),
        ("t_box_nm", t_box_nm),
    ):
        if value <= 0.0:
            raise DeviceModelError(f"{name} must be positive, got {value}")
    c_fox = EPSILON_OX / nm(t_fox_nm)
    c_si = EPSILON_SI / nm(t_si_nm)
    c_box = EPSILON_OX / nm(t_box_nm)
    c_back = c_si * c_box / (c_si + c_box)
    return SoiasBackGateModel(
        vt_standby=vt_standby,
        coupling=c_back / c_fox,
        max_back_gate_bias=max_back_gate_bias,
    )
