"""Device-level models: MOSFET I-V, thresholds, capacitance, technologies.

This subpackage is the analytical substitute for the paper's fabricated
SOI/SOIAS devices and SPICE decks.  It provides:

* :class:`~repro.device.mosfet.Mosfet` — a blended subthreshold +
  alpha-power-law drain-current model (paper Eq. 2 below threshold).
* :mod:`~repro.device.threshold` — body effect, DIBL and the SOIAS
  back-gate coupling model (paper Figs. 5-6).
* :mod:`~repro.device.capacitance` — voltage-dependent gate capacitance
  and junction/wire capacitance (paper Fig. 1).
* :mod:`~repro.device.technology` — named process corners used across
  the library (bulk CMOS, low-V_T SOI, SOIAS, MTCMOS dual-V_T).
* :mod:`~repro.device.leakage` — gate- and stack-level leakage,
  including the series-stack effect.
"""

from repro.device.mosfet import Mosfet, MosfetParameters, fit_i_spec_for_off_current, fit_k_drive_for_on_current
from repro.device.threshold import (
    BodyBiasModel,
    SoiasBackGateModel,
    soias_from_film_stack,
)
from repro.device.capacitance import (
    GateCapacitanceModel,
    JunctionCapacitanceModel,
    WireCapacitanceModel,
)
from repro.device.technology import (
    Technology,
    TransistorPair,
    bulk_cmos_06um,
    soi_low_vt,
    soias_technology,
    mtcmos_technology,
)
from repro.device.leakage import (
    StackLeakageModel,
    gate_leakage_current,
    stack_leakage_current,
)

__all__ = [
    "Mosfet",
    "MosfetParameters",
    "fit_i_spec_for_off_current",
    "fit_k_drive_for_on_current",
    "BodyBiasModel",
    "SoiasBackGateModel",
    "soias_from_film_stack",
    "GateCapacitanceModel",
    "JunctionCapacitanceModel",
    "WireCapacitanceModel",
    "Technology",
    "TransistorPair",
    "bulk_cmos_06um",
    "soi_low_vt",
    "soias_technology",
    "mtcmos_technology",
    "StackLeakageModel",
    "gate_leakage_current",
    "stack_leakage_current",
]
