"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-use-pep517 --no-build-isolation`` uses this to
perform a legacy editable install; all metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
