"""Unit tests for body-bias and SOIAS back-gate threshold models."""

import pytest

from repro.device.threshold import (
    BodyBiasModel,
    SoiasBackGateModel,
    soias_from_film_stack,
)
from repro.errors import DeviceModelError


class TestBodyBiasModel:
    def test_zero_bias_gives_vt0(self):
        model = BodyBiasModel(vt0=0.45)
        assert model.vt_at(0.0) == pytest.approx(0.45)

    def test_reverse_bias_raises_vt(self):
        model = BodyBiasModel(vt0=0.45)
        assert model.vt_at(2.0) > 0.45

    def test_forward_bias_lowers_vt(self):
        model = BodyBiasModel(vt0=0.45, phi_f=0.35)
        assert model.vt_at(-0.3) < 0.45

    def test_square_root_shape(self):
        # Doubling V_sb must give LESS than double the shift: the
        # square-root weakness the paper calls out.
        model = BodyBiasModel(vt0=0.45)
        shift1 = model.vt_at(1.0) - model.vt_at(0.0)
        shift2 = model.vt_at(2.0) - model.vt_at(0.0)
        assert shift2 < 2.0 * shift1

    def test_vsb_for_vt_round_trips(self):
        model = BodyBiasModel(vt0=0.45)
        target = 0.6
        vsb = model.vsb_for_vt(target)
        assert model.vt_at(vsb) == pytest.approx(target, rel=1e-9)

    def test_unreachable_target_raises(self):
        model = BodyBiasModel(vt0=0.45, gamma=0.2, max_reverse_bias=3.0)
        with pytest.raises(DeviceModelError, match="beyond"):
            model.vsb_for_vt(1.5)

    def test_large_shift_needs_large_voltage(self):
        # A few hundred mV of V_T shift costs volts of body bias.
        model = BodyBiasModel(vt0=0.3, gamma=0.4, phi_f=0.35)
        vsb = model.vsb_for_vt(0.6)
        assert vsb > 1.5

    def test_sensitivity_decreases_with_bias(self):
        model = BodyBiasModel(vt0=0.45)
        assert model.vt_sensitivity(2.0) < model.vt_sensitivity(0.0)

    def test_excess_forward_bias_rejected(self):
        model = BodyBiasModel(vt0=0.45, phi_f=0.35)
        with pytest.raises(DeviceModelError, match="forward"):
            model.vt_at(-1.0)

    def test_excess_reverse_bias_rejected(self):
        model = BodyBiasModel(vt0=0.45, max_reverse_bias=3.0)
        with pytest.raises(DeviceModelError, match="exceeds"):
            model.vt_at(4.0)

    @pytest.mark.parametrize(
        "kwargs", [{"gamma": 0.0}, {"phi_f": -0.1}, {"max_reverse_bias": 0.0}]
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(DeviceModelError):
            BodyBiasModel(vt0=0.45, **kwargs)


class TestSoiasBackGateModel:
    def test_standby_threshold_at_zero_bias(self):
        model = SoiasBackGateModel()
        assert model.vt_at(0.0) == pytest.approx(model.vt_standby)

    def test_linear_coupling(self):
        model = SoiasBackGateModel(vt_standby=0.448, coupling=0.088)
        shift1 = model.vt_at(0.0) - model.vt_at(1.0)
        shift3 = model.vt_at(0.0) - model.vt_at(3.0)
        assert shift3 == pytest.approx(3.0 * shift1, rel=1e-12)

    def test_paper_fig6_operating_points(self):
        # V_T = 0.448 V at V_gb = 0; ~0.184 V at 3 V forward drive.
        model = SoiasBackGateModel(vt_standby=0.448, coupling=0.088)
        assert model.vt_at(3.0) == pytest.approx(0.184, abs=1e-9)

    def test_vgb_for_vt_round_trips(self):
        model = SoiasBackGateModel()
        vgb = model.vgb_for_vt(0.25)
        assert model.vt_at(vgb) == pytest.approx(0.25, rel=1e-9)

    def test_vt_shift_is_negative_for_forward_drive(self):
        model = SoiasBackGateModel()
        assert model.vt_shift_at(2.0) < 0.0

    def test_active_floor(self):
        model = SoiasBackGateModel(
            vt_standby=0.448, coupling=0.088, max_back_gate_bias=4.0
        )
        assert model.vt_active_floor == pytest.approx(0.448 - 0.352)

    def test_reverse_drive_rejected(self):
        with pytest.raises(DeviceModelError, match="reverse"):
            SoiasBackGateModel().vt_at(-0.5)

    def test_excess_drive_rejected(self):
        model = SoiasBackGateModel(max_back_gate_bias=3.0)
        with pytest.raises(DeviceModelError, match="exceeds"):
            model.vt_at(3.5)

    @pytest.mark.parametrize("coupling", [0.0, 1.0, -0.1])
    def test_invalid_coupling_rejected(self, coupling):
        with pytest.raises(DeviceModelError, match="coupling"):
            SoiasBackGateModel(coupling=coupling)


class TestFilmStackDerivation:
    def test_paper_stack_coupling_near_008(self):
        model = soias_from_film_stack(
            t_fox_nm=9.0, t_si_nm=40.5, t_box_nm=100.0
        )
        assert 0.06 < model.coupling < 0.1

    def test_thicker_front_oxide_increases_coupling(self):
        thin = soias_from_film_stack(t_fox_nm=6.0)
        thick = soias_from_film_stack(t_fox_nm=12.0)
        assert thick.coupling > thin.coupling

    def test_thicker_buried_oxide_decreases_coupling(self):
        shallow = soias_from_film_stack(t_box_nm=50.0)
        deep = soias_from_film_stack(t_box_nm=200.0)
        assert deep.coupling < shallow.coupling

    def test_three_volts_of_drive_shifts_roughly_quarter_volt(self):
        # Fig. 6: 3 V of back-gate drive moved V_T by ~264 mV.
        model = soias_from_film_stack()
        shift = model.vt_standby - model.vt_at(3.0)
        assert 0.18 < shift < 0.30

    @pytest.mark.parametrize(
        "kwargs",
        [{"t_fox_nm": 0.0}, {"t_si_nm": -1.0}, {"t_box_nm": 0.0}],
    )
    def test_invalid_thicknesses_rejected(self, kwargs):
        with pytest.raises(DeviceModelError):
            soias_from_film_stack(**kwargs)
