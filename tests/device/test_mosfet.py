"""Unit tests for the blended MOSFET drain-current model."""

import math

import pytest

from repro.device.mosfet import (
    Mosfet,
    MosfetParameters,
    fit_i_spec_for_off_current,
    fit_k_drive_for_on_current,
)
from repro.errors import CalibrationError, DeviceModelError


@pytest.fixture
def nmos():
    return Mosfet(MosfetParameters(), width_um=1.0)


class TestParameterValidation:
    def test_default_parameters_are_valid(self):
        MosfetParameters()

    def test_rejects_unknown_polarity(self):
        with pytest.raises(DeviceModelError, match="polarity"):
            MosfetParameters(polarity="cmos")

    def test_rejects_swing_below_thermal_limit(self):
        # 50 mV/dec < kT/q ln10 ~ 59.5 mV/dec at 300 K.
        with pytest.raises(DeviceModelError, match="swing"):
            MosfetParameters(subthreshold_swing=0.050)

    def test_accepts_swing_at_60mv(self):
        MosfetParameters(subthreshold_swing=0.060)

    @pytest.mark.parametrize("field", ["i_spec", "k_drive", "vdsat_coeff"])
    def test_rejects_nonpositive_scale_parameters(self, field):
        with pytest.raises(DeviceModelError, match=field):
            MosfetParameters(**{field: 0.0})

    @pytest.mark.parametrize("alpha", [0.5, 2.5])
    def test_rejects_alpha_outside_range(self, alpha):
        with pytest.raises(DeviceModelError, match="alpha"):
            MosfetParameters(alpha=alpha)

    def test_rejects_negative_dibl(self):
        with pytest.raises(DeviceModelError):
            MosfetParameters(dibl=-0.1)

    def test_rejects_nonpositive_width(self):
        with pytest.raises(DeviceModelError, match="width"):
            Mosfet(MosfetParameters(), width_um=0.0)

    def test_ideality_matches_swing(self):
        p = MosfetParameters(subthreshold_swing=0.066)
        assert p.ideality == pytest.approx(
            0.066 / (p.thermal_voltage * math.log(10.0))
        )

    def test_with_vt0_changes_only_vt(self):
        p = MosfetParameters()
        q = p.with_vt0(0.2)
        assert q.vt0 == 0.2
        assert q.k_drive == p.k_drive

    def test_with_temperature_scales_swing(self):
        p = MosfetParameters(temperature_k=300.0, subthreshold_swing=0.066)
        hot = p.with_temperature(400.0)
        assert hot.subthreshold_swing == pytest.approx(0.066 * 400.0 / 300.0)
        # Ideality n is temperature-invariant under this scaling.
        assert hot.ideality == pytest.approx(p.ideality)


class TestSubthresholdRegime:
    def test_current_at_threshold_equals_i_spec(self, nmos):
        p = nmos.parameters
        vds = 1.0
        vt = nmos.effective_vt(vds)
        current = nmos.subthreshold_current(vt, vds)
        assert current == pytest.approx(p.i_spec, rel=1e-6)

    def test_slope_matches_swing_parameter(self, nmos):
        extracted = nmos.subthreshold_slope_mv_per_decade(vds=1.0)
        assert extracted == pytest.approx(
            nmos.parameters.subthreshold_swing * 1e3, rel=1e-3
        )

    def test_one_swing_below_threshold_is_one_decade(self, nmos):
        vds = 1.0
        vt = nmos.effective_vt(vds)
        s = nmos.parameters.subthreshold_swing
        ratio = nmos.subthreshold_current(
            vt, vds
        ) / nmos.subthreshold_current(vt - s, vds)
        assert math.log10(ratio) == pytest.approx(1.0, rel=1e-6)

    def test_vds_independence_above_100mv(self, nmos):
        # Paper: for V_ds >~ 0.1 V the leakage no longer depends on V_ds
        # (other than through DIBL, disabled here).
        quiet = Mosfet(MosfetParameters(dibl=0.0))
        low = quiet.subthreshold_current(0.0, 0.15)
        high = quiet.subthreshold_current(0.0, 1.5)
        assert high == pytest.approx(low, rel=5e-3)

    def test_small_vds_suppresses_leakage(self, nmos):
        tiny = nmos.subthreshold_current(0.0, 0.01)
        full = nmos.subthreshold_current(0.0, 1.0)
        assert tiny < 0.5 * full

    def test_clamped_above_threshold(self, nmos):
        vds = 1.0
        at_vt = nmos.subthreshold_current(nmos.effective_vt(vds), vds)
        above = nmos.subthreshold_current(nmos.effective_vt(vds) + 0.5, vds)
        assert above == pytest.approx(at_vt)

    def test_negative_vds_rejected(self, nmos):
        with pytest.raises(DeviceModelError):
            nmos.subthreshold_current(0.5, -0.1)


class TestStrongInversionRegime:
    def test_zero_below_threshold(self, nmos):
        assert nmos.strong_inversion_current(0.1, 1.0) == 0.0

    def test_alpha_power_scaling_in_saturation(self):
        p = MosfetParameters(dibl=0.0, channel_length_modulation=0.0)
        device = Mosfet(p)
        # Deep saturation: large vds.
        i1 = device.strong_inversion_current(p.vt0 + 0.4, 3.0)
        i2 = device.strong_inversion_current(p.vt0 + 0.8, 3.0)
        assert i2 / i1 == pytest.approx(2.0**p.alpha, rel=1e-6)

    def test_linear_region_below_vdsat(self):
        p = MosfetParameters(dibl=0.0, channel_length_modulation=0.0)
        device = Mosfet(p)
        vgs = p.vt0 + 0.6
        overdrive = 0.6
        vdsat = p.vdsat_coeff * overdrive ** (p.alpha / 2.0)
        shallow = device.strong_inversion_current(vgs, vdsat / 4.0)
        deep = device.strong_inversion_current(vgs, vdsat)
        assert shallow < deep

    def test_continuous_at_vdsat(self):
        p = MosfetParameters(dibl=0.0, channel_length_modulation=0.0)
        device = Mosfet(p)
        vgs = p.vt0 + 0.5
        vdsat = p.vdsat_coeff * 0.5 ** (p.alpha / 2.0)
        below = device.strong_inversion_current(vgs, vdsat * 0.9999)
        above = device.strong_inversion_current(vgs, vdsat * 1.0001)
        assert below == pytest.approx(above, rel=1e-3)

    def test_width_scales_current(self):
        p = MosfetParameters()
        narrow = Mosfet(p, width_um=1.0)
        wide = Mosfet(p, width_um=4.0)
        assert wide.on_current(1.5) == pytest.approx(
            4.0 * narrow.on_current(1.5)
        )


class TestTotalCurrent:
    def test_continuity_across_threshold(self, nmos):
        # No jumps: scan V_gs finely around V_T.
        vds = 1.0
        previous = nmos.drain_current(0.0, vds)
        for i in range(1, 200):
            vgs = i * 0.01
            current = nmos.drain_current(vgs, vds)
            assert current >= previous  # monotone
            assert current < previous * 5.0 + 1e-15  # no decade jumps per 10 mV
            previous = current

    def test_on_off_ratio_is_large(self, nmos):
        ratio = nmos.on_current(1.5) / nmos.off_current(1.5)
        assert ratio > 1e4

    def test_dibl_raises_off_current(self):
        flat = Mosfet(MosfetParameters(dibl=0.0))
        droop = Mosfet(MosfetParameters(dibl=0.1))
        assert droop.off_current(1.5) > flat.off_current(1.5)

    def test_vt_shift_moves_off_current_exponentially(self, nmos):
        p = nmos.parameters
        shift = -0.1  # lower V_T by 100 mV
        ratio = nmos.off_current(1.0, vt_shift=shift) / nmos.off_current(1.0)
        expected_decades = 0.1 / p.subthreshold_swing
        assert math.log10(ratio) == pytest.approx(expected_decades, rel=1e-6)

    def test_iv_curve_matches_pointwise(self, nmos):
        sweep = [0.0, 0.25, 0.5, 1.0]
        curve = nmos.iv_curve(sweep, vds=1.0)
        assert curve == [nmos.drain_current(v, 1.0) for v in sweep]

    def test_repr_mentions_key_facts(self, nmos):
        text = repr(nmos)
        assert "nmos" in text and "66" in text


class TestCalibration:
    def test_fit_off_current(self):
        p = MosfetParameters(vt0=0.4)
        fitted = fit_i_spec_for_off_current(p, 1e-12, vdd=1.0)
        device = Mosfet(fitted)
        assert device.off_current(1.0) == pytest.approx(1e-12, rel=1e-9)

    def test_fit_on_current(self):
        p = MosfetParameters(vt0=0.25)
        fitted = fit_k_drive_for_on_current(p, 3.0e-4, vdd=1.0)
        device = Mosfet(fitted)
        assert device.on_current(1.0) == pytest.approx(3.0e-4, rel=1e-9)

    def test_fit_on_current_rejects_target_below_floor(self):
        p = MosfetParameters(vt0=0.05, i_spec=1e-5)
        with pytest.raises(CalibrationError, match="floor"):
            fit_k_drive_for_on_current(p, 1e-9, vdd=1.0)

    def test_fit_on_current_rejects_device_that_never_turns_on(self):
        p = MosfetParameters(vt0=1.8, dibl=0.0)
        with pytest.raises(CalibrationError, match="turn on"):
            fit_k_drive_for_on_current(p, 1e-4, vdd=1.0)

    @pytest.mark.parametrize("bad", [0.0, -1e-12])
    def test_fit_rejects_nonpositive_targets(self, bad):
        with pytest.raises(CalibrationError):
            fit_i_spec_for_off_current(MosfetParameters(), bad, 1.0)
        with pytest.raises(CalibrationError):
            fit_k_drive_for_on_current(MosfetParameters(), bad, 1.0)
