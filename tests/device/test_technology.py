"""Unit tests for the named technology corners."""

import pytest

from repro.device.mosfet import MosfetParameters
from repro.device.technology import (
    Technology,
    TransistorPair,
    bulk_cmos_06um,
    mtcmos_technology,
    soi_low_vt,
    soias_technology,
)
from repro.errors import DeviceModelError


class TestTransistorPair:
    def test_polarity_enforced(self):
        n = MosfetParameters(polarity="nmos")
        with pytest.raises(DeviceModelError):
            TransistorPair(nmos=n, pmos=n)

    def test_with_vt0_defaults_pmos_to_nmos_value(self):
        pair = soi_low_vt().transistors.with_vt0(0.3)
        assert pair.nmos.vt0 == 0.3
        assert pair.pmos.vt0 == 0.3

    def test_with_vt0_separate_pmos(self):
        pair = soi_low_vt().transistors.with_vt0(0.3, 0.35)
        assert pair.pmos.vt0 == 0.35


class TestTechnologyValidation:
    def test_nominal_vdd_must_be_in_range(self):
        with pytest.raises(DeviceModelError, match="nominal_vdd"):
            Technology(
                name="bad",
                transistors=soi_low_vt().transistors,
                nominal_vdd=5.0,
                min_vdd=0.3,
                max_vdd=2.0,
            )

    def test_back_gate_requires_swing(self):
        base = soias_technology()
        with pytest.raises(DeviceModelError, match="swing"):
            Technology(
                name="bad",
                transistors=base.transistors,
                back_gate=base.back_gate,
                back_gate_swing=0.0,
            )


class TestCorners:
    def test_bulk_is_3v_class(self):
        tech = bulk_cmos_06um()
        assert tech.nominal_vdd == pytest.approx(3.3)
        assert tech.transistors.nmos.vt0 > 0.5
        assert not tech.is_back_gated and not tech.is_mtcmos

    def test_soi_low_vt_defaults(self):
        tech = soi_low_vt()
        assert tech.transistors.nmos.vt0 == pytest.approx(0.184)
        assert tech.nominal_vdd == pytest.approx(1.0)

    def test_pmos_is_weaker_than_nmos(self):
        tech = soi_low_vt()
        n = tech.nmos(1.0)
        p = tech.pmos(1.0)
        assert p.on_current(1.0) < n.on_current(1.0)

    def test_soias_has_back_gate(self):
        tech = soias_technology()
        assert tech.is_back_gated
        assert tech.back_gate_cap_f_per_um2 > 0.0
        assert tech.back_gate_swing == pytest.approx(3.0)

    def test_soias_active_vs_standby_vt(self):
        tech = soias_technology()
        assert tech.active_vt(3.0) < tech.standby_vt()
        assert tech.standby_vt() == pytest.approx(0.448)

    def test_soias_active_vt_defaults_to_full_drive(self):
        tech = soias_technology()
        full = tech.back_gate.vt_at(tech.back_gate.max_back_gate_bias)
        assert tech.active_vt() == pytest.approx(full)

    def test_mtcmos_pair(self):
        tech = mtcmos_technology(low_vt=0.2, high_vt=0.5)
        assert tech.is_mtcmos
        assert tech.active_vt() == pytest.approx(0.2)
        assert tech.standby_vt() == pytest.approx(0.5)
        sleep = tech.sleep_nmos(10.0)
        logic = tech.nmos(10.0)
        assert sleep.off_current(1.0) < logic.off_current(1.0)

    def test_mtcmos_requires_ordered_thresholds(self):
        with pytest.raises(DeviceModelError, match="low_vt"):
            mtcmos_technology(low_vt=0.5, high_vt=0.2)

    def test_sleep_nmos_unavailable_on_plain_soi(self):
        with pytest.raises(DeviceModelError, match="sleep"):
            soi_low_vt().sleep_nmos(1.0)

    def test_non_backgated_active_vt_is_vt0(self):
        tech = soi_low_vt()
        assert tech.active_vt() == pytest.approx(0.184)


class TestDerivedCorners:
    def test_with_vt_shifts_thresholds(self):
        tech = soi_low_vt().with_vt(0.3)
        assert tech.transistors.nmos.vt0 == pytest.approx(0.3)
        assert "0.300" in tech.name

    def test_with_vdd(self):
        tech = soi_low_vt().with_vdd(0.8)
        assert tech.nominal_vdd == pytest.approx(0.8)

    def test_with_vdd_out_of_range_rejected(self):
        with pytest.raises(DeviceModelError):
            soi_low_vt().with_vdd(5.0)

    def test_device_factories_use_width(self):
        tech = soi_low_vt()
        assert tech.nmos(3.0).width_um == 3.0
        assert tech.pmos(6.0).width_um == 6.0
