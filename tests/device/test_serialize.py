"""Round-trip tests for technology serialization."""

import json

import pytest

from repro.device.mosfet import Mosfet
from repro.device.serialize import (
    load_technology,
    save_technology,
    technology_from_dict,
    technology_to_dict,
)
from repro.device.technology import (
    bulk_cmos_06um,
    mtcmos_technology,
    soi_low_vt,
    soias_technology,
)
from repro.errors import DeviceModelError, SerializationError

ALL_CORNERS = [bulk_cmos_06um, soi_low_vt, soias_technology, mtcmos_technology]


class TestRoundTrip:
    @pytest.mark.parametrize("factory", ALL_CORNERS)
    def test_dict_round_trip_is_identical(self, factory):
        original = factory()
        recovered = technology_from_dict(technology_to_dict(original))
        assert recovered == original

    @pytest.mark.parametrize("factory", ALL_CORNERS)
    def test_file_round_trip(self, factory, tmp_path):
        original = factory()
        path = tmp_path / "tech.json"
        save_technology(original, str(path))
        assert load_technology(str(path)) == original

    def test_recovered_technology_is_functional(self, tmp_path):
        path = tmp_path / "soias.json"
        save_technology(soias_technology(), str(path))
        recovered = load_technology(str(path))
        assert recovered.is_back_gated
        device = Mosfet(recovered.transistors.nmos)
        assert device.on_current(1.0) > device.off_current(1.0)
        assert recovered.back_gate.vt_at(3.0) == pytest.approx(0.184)

    def test_mtcmos_sleep_pair_preserved(self, tmp_path):
        path = tmp_path / "mt.json"
        save_technology(mtcmos_technology(), str(path))
        recovered = load_technology(str(path))
        assert recovered.is_mtcmos
        assert recovered.sleep_transistors.nmos.vt0 == pytest.approx(0.5)


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(DeviceModelError, match="format"):
            technology_from_dict({"format": "something-else"})

    def test_malformed_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(DeviceModelError, match="malformed"):
            load_technology(str(path))

    def test_serialization_error_is_device_model_error(self):
        # Existing ``except DeviceModelError`` callers keep working.
        assert issubclass(SerializationError, DeviceModelError)

    def test_non_dict_payload_rejected(self):
        with pytest.raises(SerializationError, match="not a JSON object"):
            technology_from_dict([1, 2, 3])

    @pytest.mark.parametrize("key", ["name", "transistors", "gate_cap"])
    def test_missing_top_level_key_named(self, key):
        payload = technology_to_dict(soias_technology())
        del payload[key]
        with pytest.raises(SerializationError, match=repr(key)):
            technology_from_dict(payload)

    def test_wrong_shaped_field_rejected(self):
        payload = technology_to_dict(soias_technology())
        payload["gate_cap"] = 17
        with pytest.raises(SerializationError, match="wrong-shaped field"):
            technology_from_dict(payload)

    def test_errors_from_file_name_the_path(self, tmp_path):
        path = tmp_path / "torn.json"
        payload = technology_to_dict(soias_technology())
        del payload["nominal_vdd"]
        path.write_text(json.dumps(payload))
        with pytest.raises(SerializationError, match="torn.json"):
            load_technology(str(path))

    def test_malformed_json_names_the_path(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError, match="bad.json"):
            load_technology(str(path))

    def test_json_is_human_readable(self, tmp_path):
        path = tmp_path / "tech.json"
        save_technology(soi_low_vt(), str(path))
        payload = json.loads(path.read_text())
        assert payload["transistors"]["nmos"]["subthreshold_swing"] == (
            pytest.approx(0.066)
        )
