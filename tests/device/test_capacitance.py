"""Unit tests for the non-linear capacitance models (paper Fig. 1)."""

import pytest

from repro.device.capacitance import (
    GateCapacitanceModel,
    JunctionCapacitanceModel,
    WireCapacitanceModel,
)
from repro.errors import DeviceModelError


class TestGateCapacitance:
    def test_instantaneous_capacitance_bounded_by_cox(self):
        model = GateCapacitanceModel()
        for v in [0.0, 0.5, 1.0, 2.0, 5.0]:
            c = model.capacitance_at(v)
            assert model.c_ox_f_per_um2 * model.depletion_floor <= c
            assert c <= model.c_ox_f_per_um2

    def test_capacitance_rises_with_voltage(self):
        model = GateCapacitanceModel()
        values = [model.capacitance_at(v * 0.1) for v in range(40)]
        assert values == sorted(values)

    def test_switched_capacitance_rises_with_vdd(self):
        # The Fig. 1 effect: C_sw grows monotonically with V_DD.
        model = GateCapacitanceModel()
        sweep = [model.switched_capacitance(0.5 + 0.25 * i) for i in range(12)]
        assert sweep == sorted(sweep)

    def test_switched_capacitance_bounds(self):
        model = GateCapacitanceModel()
        c_sw = model.switched_capacitance(1.0)
        assert model.c_ox_f_per_um2 * model.depletion_floor < c_sw
        assert c_sw < model.c_ox_f_per_um2

    def test_switched_capacitance_approaches_cox_at_high_vdd(self):
        model = GateCapacitanceModel(v_mid=0.6, v_width=0.2)
        c_sw = model.switched_capacitance(10.0)
        assert c_sw > 0.95 * model.c_ox_f_per_um2

    def test_charge_consistency(self):
        # C_sw * V_DD must equal the integral of c(V): check against a
        # numeric Riemann sum.
        model = GateCapacitanceModel()
        vdd = 1.5
        steps = 20000
        dv = vdd / steps
        charge = sum(
            model.capacitance_at((i + 0.5) * dv) * dv for i in range(steps)
        )
        assert model.switched_capacitance(vdd) == pytest.approx(
            charge / vdd, rel=1e-6
        )

    def test_from_oxide_thickness_magnitude(self):
        # t_ox = 9 nm -> C_ox ~ 3.8 fF/um^2.
        model = GateCapacitanceModel.from_oxide_thickness(9.0)
        assert model.c_ox_f_per_um2 == pytest.approx(3.84e-15, rel=0.02)

    def test_gate_capacitance_scales_with_area(self):
        model = GateCapacitanceModel()
        small = model.gate_capacitance(1.0, 0.5, 1.0)
        big = model.gate_capacitance(2.0, 1.0, 1.0)
        assert big == pytest.approx(4.0 * small)

    def test_rejects_nonpositive_vdd(self):
        with pytest.raises(DeviceModelError):
            GateCapacitanceModel().switched_capacitance(0.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"c_ox_f_per_um2": 0.0},
            {"depletion_floor": 0.0},
            {"depletion_floor": 1.0},
            {"v_width": 0.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(DeviceModelError):
            GateCapacitanceModel(**kwargs)


class TestJunctionCapacitance:
    def test_zero_bias_gives_cj0(self):
        model = JunctionCapacitanceModel()
        assert model.capacitance_at(0.0) == pytest.approx(
            model.c_j0_f_per_um2
        )

    def test_capacitance_falls_with_reverse_bias(self):
        model = JunctionCapacitanceModel()
        values = [model.capacitance_at(v * 0.2) for v in range(15)]
        assert values == sorted(values, reverse=True)

    def test_switched_capacitance_falls_with_vdd(self):
        model = JunctionCapacitanceModel()
        sweep = [model.switched_capacitance(0.5 + 0.25 * i) for i in range(12)]
        assert sweep == sorted(sweep, reverse=True)

    def test_charge_consistency(self):
        model = JunctionCapacitanceModel()
        vdd = 2.0
        steps = 20000
        dv = vdd / steps
        charge = sum(
            model.capacitance_at((i + 0.5) * dv) * dv for i in range(steps)
        )
        assert model.switched_capacitance(vdd) == pytest.approx(
            charge / vdd, rel=1e-6
        )

    def test_drain_capacitance_scales_with_geometry(self):
        model = JunctionCapacitanceModel()
        assert model.drain_capacitance(2.0, 0.6, 1.0) == pytest.approx(
            2.0 * model.drain_capacitance(1.0, 0.6, 1.0)
        )

    def test_negative_bias_rejected(self):
        with pytest.raises(DeviceModelError):
            JunctionCapacitanceModel().capacitance_at(-0.5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"c_j0_f_per_um2": 0.0},
            {"built_in": 0.0},
            {"grading": 0.0},
            {"grading": 1.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(DeviceModelError):
            JunctionCapacitanceModel(**kwargs)


class TestWireCapacitance:
    def test_linear_in_length(self):
        model = WireCapacitanceModel(c_per_um=0.2e-15)
        assert model.wire_capacitance(10.0) == pytest.approx(2.0e-15)

    def test_zero_length_allowed(self):
        assert WireCapacitanceModel().wire_capacitance(0.0) == 0.0

    def test_negative_length_rejected(self):
        with pytest.raises(DeviceModelError):
            WireCapacitanceModel().wire_capacitance(-1.0)

    def test_nonpositive_unit_capacitance_rejected(self):
        with pytest.raises(DeviceModelError):
            WireCapacitanceModel(c_per_um=0.0)
