"""Unit tests for gate/stack leakage and the stack effect."""

import pytest

from repro.device.leakage import (
    StackLeakageModel,
    gate_leakage_current,
    stack_leakage_current,
)
from repro.device.mosfet import Mosfet, MosfetParameters
from repro.device.technology import soi_low_vt
from repro.errors import DeviceModelError


@pytest.fixture
def nmos_params():
    return soi_low_vt().transistors.nmos


@pytest.fixture
def pmos_params():
    return soi_low_vt().transistors.pmos


class TestStackLeakage:
    def test_single_device_matches_off_current(self, nmos_params):
        direct = Mosfet(nmos_params, width_um=2.0).off_current(1.0)
        assert stack_leakage_current(nmos_params, [2.0], 1.0) == pytest.approx(
            direct
        )

    def test_two_stack_leaks_less_than_one_device(self, nmos_params):
        single = stack_leakage_current(nmos_params, [1.0], 1.0)
        double = stack_leakage_current(nmos_params, [1.0, 1.0], 1.0)
        assert double < 0.5 * single

    def test_deeper_stacks_leak_monotonically_less(self, nmos_params):
        currents = [
            stack_leakage_current(nmos_params, [1.0] * depth, 1.0)
            for depth in range(1, 5)
        ]
        assert currents == sorted(currents, reverse=True)

    def test_wider_stack_leaks_proportionally_more(self, nmos_params):
        narrow = stack_leakage_current(nmos_params, [1.0, 1.0], 1.0)
        wide = stack_leakage_current(nmos_params, [4.0, 4.0], 1.0)
        assert wide == pytest.approx(4.0 * narrow, rel=0.02)

    def test_vt_shift_reduces_stack_leakage(self, nmos_params):
        active = stack_leakage_current(nmos_params, [1.0, 1.0], 1.0, 0.0)
        standby = stack_leakage_current(nmos_params, [1.0, 1.0], 1.0, 0.25)
        assert standby < active / 100.0

    def test_empty_stack_rejected(self, nmos_params):
        with pytest.raises(DeviceModelError, match="at least one"):
            stack_leakage_current(nmos_params, [], 1.0)

    def test_nonpositive_vdd_rejected(self, nmos_params):
        with pytest.raises(DeviceModelError, match="vdd"):
            stack_leakage_current(nmos_params, [1.0], 0.0)

    def test_current_bounded_by_weakest_device(self, nmos_params):
        widths = [0.5, 4.0]
        stack = stack_leakage_current(nmos_params, widths, 1.0)
        weakest = Mosfet(nmos_params, width_um=0.5).off_current(1.0)
        assert stack < weakest


class TestGateLeakage:
    def test_averages_both_networks(self, nmos_params, pmos_params):
        leak = gate_leakage_current(
            nmos_params, pmos_params, [1.0], [2.0], vdd=1.0
        )
        n_leak = stack_leakage_current(nmos_params, [1.0], 1.0)
        p_leak = stack_leakage_current(pmos_params, [2.0], 1.0)
        assert leak == pytest.approx(0.5 * (n_leak + p_leak))

    def test_output_probability_weighting(self, nmos_params, pmos_params):
        always_high = gate_leakage_current(
            nmos_params, pmos_params, [1.0], [2.0], 1.0,
            output_high_probability=1.0,
        )
        n_leak = stack_leakage_current(nmos_params, [1.0], 1.0)
        assert always_high == pytest.approx(n_leak)

    def test_invalid_probability_rejected(self, nmos_params, pmos_params):
        with pytest.raises(DeviceModelError, match="probability"):
            gate_leakage_current(
                nmos_params, pmos_params, [1.0], [1.0], 1.0,
                output_high_probability=1.5,
            )

    def test_nand_style_stack_beats_inverter(self, nmos_params, pmos_params):
        inverter = gate_leakage_current(
            nmos_params, pmos_params, [1.0], [2.0], 1.0,
            output_high_probability=1.0,
        )
        nand_pull_down = gate_leakage_current(
            nmos_params, pmos_params, [1.0, 1.0], [2.0], 1.0,
            output_high_probability=1.0,
        )
        assert nand_pull_down < inverter


class TestStackLeakageModel:
    def test_caches_results(self, nmos_params):
        model = StackLeakageModel(nmos_params)
        first = model.current([1.0, 1.0], 1.0)
        second = model.current([1.0, 1.0], 1.0)
        assert first == second
        assert len(model._cache) == 1

    def test_suppression_factor_above_one(self, nmos_params):
        model = StackLeakageModel(nmos_params)
        assert model.suppression_factor(2, 1.0, 1.0) > 1.0

    def test_suppression_factor_depth_one_is_unity(self, nmos_params):
        model = StackLeakageModel(nmos_params)
        assert model.suppression_factor(1, 1.0, 1.0) == pytest.approx(1.0)

    def test_suppression_grows_with_depth(self, nmos_params):
        model = StackLeakageModel(nmos_params)
        factors = [
            model.suppression_factor(d, 1.0, 1.0) for d in range(1, 5)
        ]
        assert factors == sorted(factors)

    def test_invalid_depth_rejected(self, nmos_params):
        with pytest.raises(DeviceModelError, match="depth"):
            StackLeakageModel(nmos_params).suppression_factor(0, 1.0, 1.0)
