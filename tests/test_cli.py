"""Tests for the command-line interface."""

import json
import os
import re

import pytest

from repro.cli import build_parser, main


def _recorded_run_id(captured_out):
    match = re.search(r"Run recorded: (\S+)", captured_out)
    assert match, captured_out
    return match.group(1)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile"])
        assert args.workload == ["idea"]
        assert args.duty == 1.0

    def test_compare_workload_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--workload", "doom"])


class TestProfileCommand:
    def test_prints_unit_rows(self, capsys):
        assert main(["profile", "--workload", "li", "--scale", "16"]) == 0
        output = capsys.readouterr().out
        assert "adder" in output
        assert "fga" in output

    def test_merges_multiple_workloads(self, capsys):
        assert (
            main(
                ["profile", "--workload", "li", "espresso",
                 "--scale", "12"]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "li+espresso" in output

    def test_duty_scaling_applied(self, capsys):
        main(["profile", "--workload", "li", "--scale", "16",
              "--duty", "0.5"])
        output = capsys.readouterr().out
        assert "duty 0.5" in output

    def test_reference_engine_output_identical(self, capsys):
        assert main(["profile", "--workload", "li", "--scale", "16"]) == 0
        fast = capsys.readouterr().out
        assert (
            main(
                ["profile", "--workload", "li", "--scale", "16",
                 "--reference"]
            )
            == 0
        )
        reference = capsys.readouterr().out
        assert fast == reference

    def test_profile_metrics_show_machine_counters(self, capsys):
        assert (
            main(
                ["profile", "--workload", "crc", "--scale", "8",
                 "--metrics"]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "Metrics: profile" in output
        assert "machine.instructions" in output
        assert "machine.run_counted" in output

    def test_reference_metrics_use_reference_timer(self, capsys):
        assert (
            main(
                ["profile", "--workload", "crc", "--scale", "8",
                 "--reference", "--metrics"]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "machine.run " in output
        assert "machine.run_counted" not in output


class TestActivityCommand:
    @pytest.mark.parametrize("stimulus", ["random", "counting"])
    def test_histogram_printed(self, capsys, stimulus):
        code = main(
            [
                "activity", "--circuit", "adder", "--width", "4",
                "--vectors", "40", "--stimulus", stimulus,
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "mean activity" in output
        assert "nodes" in output

    def test_shifter_circuit(self, capsys):
        assert (
            main(
                ["activity", "--circuit", "shifter", "--width", "4",
                 "--vectors", "30"]
            )
            == 0
        )
        assert "shifter" in capsys.readouterr().out

    def test_shifter_width_one_rounds_up(self, capsys):
        # Width 1 used to round to an invalid 1-bit barrel shifter;
        # it now rounds up to the smallest legal width (2).
        assert (
            main(
                ["activity", "--circuit", "shifter", "--width", "1",
                 "--vectors", "20"]
            )
            == 0
        )
        assert "mean activity" in capsys.readouterr().out

    def test_nonpositive_width_rejected(self, capsys):
        assert (
            main(
                ["activity", "--circuit", "shifter", "--width", "0",
                 "--vectors", "20"]
            )
            == 1
        )
        assert "width" in capsys.readouterr().err


class TestOptimizeCommand:
    def test_reports_optimum(self, capsys):
        code = main(
            ["optimize", "--delay-factor", "4", "--stages", "11"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Optimum" in output
        assert "V_T" in output
        assert "Yield" not in output

    def test_yield_mode_reports_percentile_line(self, capsys):
        code = main(
            ["optimize", "--delay-factor", "4", "--stages", "11",
             "--yield-percentile", "99", "--sigma", "0.03",
             "--samples", "24"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Optimum" in output
        assert "p99 delay" in output
        assert "leakage amplification" in output

    def test_yield_mode_raises_supply_over_nominal(self, capsys):
        base = ["optimize", "--delay-factor", "4", "--stages", "11"]
        assert main(base) == 0
        nominal = capsys.readouterr().out
        assert main(
            base + ["--yield-percentile", "99", "--samples", "24"]
        ) == 0
        statistical = capsys.readouterr().out

        def optimum_vdd(output):
            return float(
                re.search(r"V_DD = ([0-9.]+) V", output).group(1)
            )

        assert optimum_vdd(statistical) > optimum_vdd(nominal)

    def test_yield_flags_parse(self):
        args = build_parser().parse_args(
            ["optimize", "--yield-percentile", "95", "--sigma", "0.05",
             "--samples", "64", "--seed", "9"]
        )
        assert args.yield_percentile == 95.0
        assert args.sigma == 0.05
        assert args.samples == 64
        assert args.seed == 9
        # Off by default: nominal bit-identical behavior.
        assert (
            build_parser()
            .parse_args(["optimize"])
            .yield_percentile
            is None
        )

    def test_compare_accepts_yield_flags(self):
        args = build_parser().parse_args(
            ["compare", "--yield-percentile", "99", "--samples", "32"]
        )
        assert args.yield_percentile == 99.0
        assert args.samples == 32

    def test_yield_record_includes_spec(self, tmp_path, capsys):
        root = str(tmp_path / "runs")
        code = main(
            ["optimize", "--delay-factor", "4", "--stages", "11",
             "--yield-percentile", "99", "--samples", "24",
             "--record", "--runs-root", root]
        )
        assert code == 0
        run_id = _recorded_run_id(capsys.readouterr().out)
        assert main(["runs", "show", run_id, "--runs-root", root]) == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["inputs"]["yield"]["percentile"] == 99.0
        assert manifest["inputs"]["yield"]["n_samples"] == 24

    def test_nominal_record_has_no_yield_keys(self, tmp_path, capsys):
        root = str(tmp_path / "runs")
        code = main(
            ["optimize", "--delay-factor", "4", "--stages", "11",
             "--record", "--runs-root", root]
        )
        assert code == 0
        run_id = _recorded_run_id(capsys.readouterr().out)
        assert main(["runs", "show", run_id, "--runs-root", root]) == 0
        manifest = json.loads(capsys.readouterr().out)
        assert "yield" not in manifest["inputs"]


class TestCompareCommand:
    def test_reports_all_technologies(self, capsys):
        code = main(
            [
                "compare", "--workload", "li", "--scale", "12",
                "--width", "4", "--vectors", "20", "--duty", "0.2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        for column in ("SOIAS", "MTCMOS", "VTCMOS"):
            assert column in output


class TestMarginsCommand:
    def test_reports_margins_and_floor(self, capsys):
        code = main(["margins", "--vdd", "1.0", "0.3", "--floor", "0.3"])
        assert code == 0
        output = capsys.readouterr().out
        assert "NM_L" in output
        assert "Minimum supply" in output

    def test_floor_zero_skips_search(self, capsys):
        assert main(["margins", "--vdd", "1.0", "--floor", "0"]) == 0
        assert "Minimum supply" not in capsys.readouterr().out


class TestShutdownCommand:
    def test_reports_all_policies(self, capsys):
        code = main(["shutdown", "--periods", "60"])
        assert code == 0
        output = capsys.readouterr().out
        for policy in ("always-on", "predictive", "oracle"):
            assert policy in output


class TestRecoverCommand:
    def test_reports_both_passes(self, capsys):
        code = main(["recover", "--circuit", "adder", "--width", "6"])
        assert code == 0
        output = capsys.readouterr().out
        assert "downsizing" in output
        assert "dual-V_T" in output


class TestVariationCommand:
    def test_reports_distributions_and_amplification(self, capsys):
        assert main(
            ["variation", "--samples", "16", "--vdd", "0.8"]
        ) == 0
        output = capsys.readouterr().out
        assert "delay" in output
        assert "leakage" in output
        assert "Leakage amplification" in output
        assert "lognormal closed form" in output

    def test_metrics_show_batched_counters(self, capsys):
        assert main(
            ["variation", "--samples", "16", "--vdd", "0.8", "--metrics"]
        ) == 0
        output = capsys.readouterr().out
        assert "variation.plan_builds" in output
        assert "variation.samples_batched" in output

    def test_unknown_cell_rejected(self, capsys):
        assert main(["variation", "--cell", "FLUXCAP"]) == 1
        assert "unknown cell" in capsys.readouterr().err

    def test_workers_match_serial_output(self, capsys):
        # Identical numbers either way; only the header echoes the
        # worker count.
        base = ["variation", "--samples", "16", "--vdd", "0.8"]
        assert main(base) == 0
        serial = capsys.readouterr().out.splitlines()[1:]
        assert main(base + ["--workers", "2"]) == 0
        fanned = capsys.readouterr().out.splitlines()[1:]
        assert serial == fanned


class TestContourRefineCommand:
    def test_refine_rows_printed(self, capsys):
        assert main(
            ["contour", "--width", "4", "--vectors", "20", "--grid", "6",
             "--refine", "2"]
        ) == 0
        output = capsys.readouterr().out
        assert "refined grid" in output
        assert "points evaluated" in output
        assert "cells refined/skipped" in output
        assert "contour cells" in output

    def test_no_refine_rows_by_default(self, capsys):
        assert main(
            ["contour", "--width", "4", "--vectors", "20", "--grid", "4"]
        ) == 0
        assert "refined grid" not in capsys.readouterr().out


class TestSurfaceCommand:
    #: Small/fast surface invocation reused across the tests.
    BASE = [
        "surface", "--grid", "5", "--stages", "11", "--clock", "2e7",
    ]

    def test_prints_optimum_and_locus(self, capsys):
        assert main(self.BASE) == 0
        output = capsys.readouterr().out
        assert "feasible cells" in output
        assert "optimum energy" in output
        assert "locus" in output
        assert "refined grid" not in output

    def test_refine_rows_printed(self, capsys):
        assert main(self.BASE + ["--refine", "1"]) == 0
        output = capsys.readouterr().out
        assert "refined grid" in output
        assert "points evaluated" in output
        assert "cells refined/skipped" in output

    def test_workers_match_serial_output(self, capsys):
        assert main(self.BASE) == 0
        serial = capsys.readouterr().out.splitlines()[1:]
        assert main(self.BASE + ["--workers", "2"]) == 0
        fanned = capsys.readouterr().out.splitlines()[1:]
        assert serial == fanned

    def test_infeasible_surface_reports_error(self, capsys):
        assert main(self.BASE[:-1] + ["1e12"]) == 1
        assert "no feasible" in capsys.readouterr().err

    def test_bad_ranges_rejected(self, capsys):
        assert main(self.BASE + ["--vt-min", "0.6"]) == 1
        assert "--vt-min" in capsys.readouterr().err
        assert main(self.BASE + ["--vdd-min", "0"]) == 1
        assert "--vdd-min" in capsys.readouterr().err

    def test_parser_defaults(self):
        args = build_parser().parse_args(["surface"])
        assert args.technology == "soi"
        assert args.grid == 12
        assert args.refine == 0
        assert args.refine_band == 0.2
        assert args.workers == 0
        assert args.store is None
        assert args.scheduler is None

    def test_metrics_include_surface_spans(self, capsys):
        # The process-wide ring cache may serve a warm run entirely
        # from decoded plans, so only the spans are guaranteed.
        assert main(self.BASE + ["--metrics"]) == 0
        output = capsys.readouterr().out
        assert "flow.energy_surface" in output
        assert "analysis.energy_surface" in output


class TestStoreParserArgs:
    def test_optimize_accepts_store_and_parallel_flags(self):
        args = build_parser().parse_args(
            ["optimize", "--workers", "2", "--progress",
             "--store", ".repro/cache", "--record"]
        )
        assert args.workers == 2
        assert args.progress is True
        assert args.store == ".repro/cache"
        assert args.record is True

    def test_compare_accepts_parallel_and_record_flags(self):
        args = build_parser().parse_args(
            ["compare", "--workers", "3", "--progress", "--record",
             "--runs-root", "/tmp/runs"]
        )
        assert args.workers == 3
        assert args.runs_root == "/tmp/runs"

    def test_contour_accepts_store(self):
        args = build_parser().parse_args(["contour", "--store", "x"])
        assert args.store == "x"

    def test_contour_refine_defaults_off(self):
        args = build_parser().parse_args(["contour"])
        assert args.refine == 0
        assert args.refine_band == 0.15

    def test_contour_refine_flags(self):
        args = build_parser().parse_args(
            ["contour", "--refine", "2", "--refine-band", "0.3"]
        )
        assert args.refine == 2
        assert args.refine_band == 0.3

    def test_variation_defaults(self):
        args = build_parser().parse_args(["variation"])
        assert args.cell == "INV"
        assert args.samples == 300
        assert args.sigma == 0.03
        assert args.vdd == 1.0

    def test_variation_accepts_parallel_and_store_flags(self):
        args = build_parser().parse_args(
            ["variation", "--workers", "2", "--store", "x", "--metrics"]
        )
        assert args.workers == 2
        assert args.store == "x"
        assert args.metrics

    def test_runs_actions_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["runs", "frobnicate"])

    def test_cache_actions_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "frobnicate"])


class TestRunsCommand:
    def _record(self, tmp_path, delay_factor, capsys):
        code = main(
            ["optimize", "--delay-factor", str(delay_factor),
             "--stages", "11", "--record",
             "--runs-root", str(tmp_path / "runs")]
        )
        assert code == 0
        return _recorded_run_id(capsys.readouterr().out)

    def test_list_empty(self, tmp_path, capsys):
        code = main(
            ["runs", "list", "--runs-root", str(tmp_path / "runs")]
        )
        assert code == 0
        assert "No runs recorded" in capsys.readouterr().out

    def test_record_list_show_diff_round_trip(self, tmp_path, capsys):
        first = self._record(tmp_path, 4, capsys)
        second = self._record(tmp_path, 6, capsys)
        assert first != second

        root = str(tmp_path / "runs")
        assert main(["runs", "list", "--runs-root", root]) == 0
        listing = capsys.readouterr().out
        assert first in listing
        assert second in listing

        assert main(["runs", "show", first, "--runs-root", root]) == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["command"] == "optimize"
        assert manifest["inputs"]["delay_factor"] == 4.0

        assert main(
            ["runs", "diff", first, second, "--runs-root", root]
        ) == 0
        diff_out = capsys.readouterr().out
        assert "inputs.delay_factor" in diff_out
        assert "result_digest" in diff_out

    def test_show_unknown_run_fails(self, tmp_path, capsys):
        code = main(
            ["runs", "show", "nosuchrun",
             "--runs-root", str(tmp_path / "runs")]
        )
        assert code == 1
        assert "nosuchrun" in capsys.readouterr().err

    def test_show_requires_exactly_one_id(self, tmp_path, capsys):
        code = main(
            ["runs", "show", "--runs-root", str(tmp_path / "runs")]
        )
        assert code == 1
        assert "exactly one" in capsys.readouterr().err

    def test_diff_requires_exactly_two_ids(self, tmp_path, capsys):
        code = main(
            ["runs", "diff", "only-one",
             "--runs-root", str(tmp_path / "runs")]
        )
        assert code == 1
        assert "exactly two" in capsys.readouterr().err


class TestCacheCommand:
    def _seed_store(self, tmp_path):
        from repro.store import ResultStore

        store = ResultStore.at(str(tmp_path / "cache"))
        for i in range(4):
            store.put(f"seed/k{i}", {"i": i, "pad": "x" * 50})
        return str(tmp_path / "cache")

    def test_stats_reports_entries(self, tmp_path, capsys):
        root = self._seed_store(tmp_path)
        assert main(["cache", "stats", "--store", root]) == 0
        output = capsys.readouterr().out
        assert "backend_entries" in output
        assert "4" in output

    def test_gc_shrinks_store(self, tmp_path, capsys):
        root = self._seed_store(tmp_path)
        assert main(
            ["cache", "gc", "--store", root, "--max-mb", "0"]
        ) == 0
        output = capsys.readouterr().out
        assert "Removed 4 entries" in output
        assert not any(
            name.endswith(".json")
            for _, _, files in os.walk(root)
            for name in files
        )


class TestRecordedStoreRun:
    def test_contour_store_warm_run_restores_cells(self, tmp_path, capsys):
        base = [
            "contour", "--width", "4", "--vectors", "20", "--grid", "4",
            "--store", str(tmp_path / "cache"),
        ]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--metrics"]) == 0
        output = capsys.readouterr().out
        assert re.search(r"store\.sweep_cells_restored\s+16", output)


class TestParallelCliPaths:
    def test_optimize_parallel_matches_serial(self, capsys):
        base = ["optimize", "--delay-factor", "4", "--stages", "11"]
        assert main(base) == 0
        serial = capsys.readouterr().out
        assert main(base + ["--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_optimize_yield_parallel_matches_serial(self, capsys):
        base = [
            "optimize", "--delay-factor", "4", "--stages", "11",
            "--yield-percentile", "95", "--samples", "24",
        ]
        assert main(base) == 0
        serial = capsys.readouterr().out
        assert main(base + ["--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_compare_parallel_matches_serial(self, capsys):
        base = [
            "compare", "--workload", "li", "--scale", "12",
            "--width", "4", "--vectors", "20", "--duty", "0.2",
        ]
        assert main(base) == 0
        serial = capsys.readouterr().out
        assert main(base + ["--workers", "2", "--progress"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial


class TestCharacterizeCommand:
    def test_prints_cells(self, capsys):
        assert main(["characterize", "--vdd", "1.0"]) == 0
        output = capsys.readouterr().out
        assert "NAND2" in output

    def test_writes_library(self, tmp_path, capsys):
        path = tmp_path / "lib.json"
        code = main(
            ["characterize", "--vdd", "0.8", "1.2", "--output", str(path)]
        )
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-liberty-lite-v1"


class TestSchedParserArgs:
    def test_worker_defaults(self):
        args = build_parser().parse_args(["sched", "worker", "q"])
        assert args.queue == "q"
        assert args.lease_s == 30.0
        assert args.poll_s == 0.5
        assert args.max_idle_s is None
        assert args.once is False
        assert args.job is None

    def test_submit_defaults(self):
        args = build_parser().parse_args(["sched", "submit", "q"])
        assert args.kind == "contour"
        assert args.grid == 12
        assert args.plan_workers == 2

    def test_sched_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sched"])

    def test_cancel_requires_job_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sched", "cancel", "q"])

    def test_contour_accepts_scheduler_dir(self):
        args = build_parser().parse_args(["contour", "--scheduler", "d"])
        assert args.scheduler == "d"
        assert build_parser().parse_args(["contour"]).scheduler is None

    def test_variation_accepts_scheduler_dir(self):
        args = build_parser().parse_args(
            ["variation", "--scheduler", "d"]
        )
        assert args.scheduler == "d"


class TestSchedCommand:
    def test_submit_worker_status_cancel_round_trip(
        self, tmp_path, capsys
    ):
        queue = str(tmp_path / "queue")
        assert main(
            ["sched", "submit", queue, "--grid", "4", "--note", "smoke"]
        ) == 0
        submitted = capsys.readouterr().out
        match = re.search(r"Job submitted: (\S+) \((\d+) items", submitted)
        assert match, submitted
        job_id, n_items = match.group(1), int(match.group(2))
        assert n_items == 16

        assert main(["sched", "status", queue]) == 0
        status = capsys.readouterr().out
        assert job_id in status
        assert "running" in status
        assert "smoke" in status
        assert "queue depth:" in status

        assert main(
            ["sched", "worker", queue, "--max-idle-s", "0.2",
             "--poll-s", "0.05"]
        ) == 0
        drained = capsys.readouterr().out
        assert re.search(r"worker drained \d+ chunk\(s\)", drained)

        assert main(["sched", "status", queue, "--job", job_id]) == 0
        finished = capsys.readouterr().out
        assert "finished" in finished
        assert "queue depth: 0" in finished

    def test_submit_is_idempotent_across_invocations(
        self, tmp_path, capsys
    ):
        queue = str(tmp_path / "queue")
        assert main(["sched", "submit", queue, "--grid", "3"]) == 0
        first = capsys.readouterr().out
        assert main(["sched", "submit", queue, "--grid", "3"]) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_cancel_marks_job_cancelled(self, tmp_path, capsys):
        queue = str(tmp_path / "queue")
        assert main(["sched", "submit", queue, "--grid", "3"]) == 0
        job_id = re.search(
            r"Job submitted: (\S+)", capsys.readouterr().out
        ).group(1)
        assert main(["sched", "cancel", queue, job_id]) == 0
        assert f"Job cancelled: {job_id}" in capsys.readouterr().out
        assert main(["sched", "status", queue]) == 0
        assert "cancelled" in capsys.readouterr().out

    def test_empty_queue_status(self, tmp_path, capsys):
        queue = str(tmp_path / "queue")
        assert main(["sched", "status", queue]) == 0
        output = capsys.readouterr().out
        assert "no jobs" in output
        assert "queue depth: 0" in output

    def test_contour_with_scheduler_matches_serial(self, tmp_path, capsys):
        base = ["contour", "--grid", "5", "--vdd", "1.0"]
        assert main(base) == 0
        serial = capsys.readouterr().out
        assert main(
            base + ["--scheduler", str(tmp_path / "queue"), "--workers", "1"]
        ) == 0
        scheduled = capsys.readouterr().out
        # Identical except the title line that names the worker count.
        strip = lambda text: [
            line for line in text.splitlines() if "workers" not in line
        ]
        assert strip(scheduled) == strip(serial)
