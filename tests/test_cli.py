"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile"])
        assert args.workload == ["idea"]
        assert args.duty == 1.0

    def test_compare_workload_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--workload", "doom"])


class TestProfileCommand:
    def test_prints_unit_rows(self, capsys):
        assert main(["profile", "--workload", "li", "--scale", "16"]) == 0
        output = capsys.readouterr().out
        assert "adder" in output
        assert "fga" in output

    def test_merges_multiple_workloads(self, capsys):
        assert (
            main(
                ["profile", "--workload", "li", "espresso",
                 "--scale", "12"]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "li+espresso" in output

    def test_duty_scaling_applied(self, capsys):
        main(["profile", "--workload", "li", "--scale", "16",
              "--duty", "0.5"])
        output = capsys.readouterr().out
        assert "duty 0.5" in output


class TestActivityCommand:
    @pytest.mark.parametrize("stimulus", ["random", "counting"])
    def test_histogram_printed(self, capsys, stimulus):
        code = main(
            [
                "activity", "--circuit", "adder", "--width", "4",
                "--vectors", "40", "--stimulus", stimulus,
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "mean activity" in output
        assert "nodes" in output

    def test_shifter_circuit(self, capsys):
        assert (
            main(
                ["activity", "--circuit", "shifter", "--width", "4",
                 "--vectors", "30"]
            )
            == 0
        )
        assert "shifter" in capsys.readouterr().out

    def test_shifter_width_one_rounds_up(self, capsys):
        # Width 1 used to round to an invalid 1-bit barrel shifter;
        # it now rounds up to the smallest legal width (2).
        assert (
            main(
                ["activity", "--circuit", "shifter", "--width", "1",
                 "--vectors", "20"]
            )
            == 0
        )
        assert "mean activity" in capsys.readouterr().out

    def test_nonpositive_width_rejected(self, capsys):
        assert (
            main(
                ["activity", "--circuit", "shifter", "--width", "0",
                 "--vectors", "20"]
            )
            == 1
        )
        assert "width" in capsys.readouterr().err


class TestOptimizeCommand:
    def test_reports_optimum(self, capsys):
        code = main(
            ["optimize", "--delay-factor", "4", "--stages", "11"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Optimum" in output
        assert "V_T" in output


class TestCompareCommand:
    def test_reports_all_technologies(self, capsys):
        code = main(
            [
                "compare", "--workload", "li", "--scale", "12",
                "--width", "4", "--vectors", "20", "--duty", "0.2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        for column in ("SOIAS", "MTCMOS", "VTCMOS"):
            assert column in output


class TestMarginsCommand:
    def test_reports_margins_and_floor(self, capsys):
        code = main(["margins", "--vdd", "1.0", "0.3", "--floor", "0.3"])
        assert code == 0
        output = capsys.readouterr().out
        assert "NM_L" in output
        assert "Minimum supply" in output

    def test_floor_zero_skips_search(self, capsys):
        assert main(["margins", "--vdd", "1.0", "--floor", "0"]) == 0
        assert "Minimum supply" not in capsys.readouterr().out


class TestShutdownCommand:
    def test_reports_all_policies(self, capsys):
        code = main(["shutdown", "--periods", "60"])
        assert code == 0
        output = capsys.readouterr().out
        for policy in ("always-on", "predictive", "oracle"):
            assert policy in output


class TestRecoverCommand:
    def test_reports_both_passes(self, capsys):
        code = main(["recover", "--circuit", "adder", "--width", "6"])
        assert code == 0
        output = capsys.readouterr().out
        assert "downsizing" in output
        assert "dual-V_T" in output


class TestCharacterizeCommand:
    def test_prints_cells(self, capsys):
        assert main(["characterize", "--vdd", "1.0"]) == 0
        output = capsys.readouterr().out
        assert "NAND2" in output

    def test_writes_library(self, tmp_path, capsys):
        path = tmp_path / "lib.json"
        code = main(
            ["characterize", "--vdd", "0.8", "1.2", "--output", str(path)]
        )
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-liberty-lite-v1"
