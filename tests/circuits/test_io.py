"""Tests for the .rnet structural netlist format."""

import random

import pytest

from repro.circuits.builders import (
    array_multiplier,
    carry_select_adder,
    pipelined_adder,
    ripple_carry_adder,
)
from repro.circuits.io import (
    load_netlist,
    parse_netlist,
    save_netlist,
    write_netlist,
)
from repro.errors import NetlistError


def bus(prefix, width, value):
    return {f"{prefix}[{i}]": (value >> i) & 1 for i in range(width)}


class TestWriter:
    def test_statements_present(self):
        text = write_netlist(ripple_carry_adder(2))
        assert text.startswith("netlist rca2")
        assert "input a[0]" in text
        assert "output cout" in text
        assert "gate XOR2" in text

    def test_registers_serialized(self):
        text = write_netlist(pipelined_adder(4, 2))
        assert "register " in text
        assert "init 0" in text


class TestRoundTrip:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: ripple_carry_adder(6),
            lambda: carry_select_adder(8, 3),
            lambda: array_multiplier(4),
            lambda: pipelined_adder(8, 2),
        ],
        ids=["ripple", "select", "multiplier", "pipeline"],
    )
    def test_structure_preserved(self, builder):
        original = builder()
        recovered = parse_netlist(write_netlist(original))
        assert recovered.name == original.name
        assert recovered.primary_inputs == original.primary_inputs
        assert recovered.primary_outputs == original.primary_outputs
        assert set(recovered.instances) == set(original.instances)
        assert set(recovered.registers) == set(original.registers)
        for name, instance in original.instances.items():
            twin = recovered.instances[name]
            assert twin.cell.name == instance.cell.name
            assert twin.inputs == instance.inputs
            assert twin.output == instance.output

    def test_functional_equivalence(self):
        original = ripple_carry_adder(6)
        recovered = parse_netlist(write_netlist(original))
        rng = random.Random(3)
        for _ in range(20):
            a, b = rng.randrange(64), rng.randrange(64)
            inputs = {**bus("a", 6, a), **bus("b", 6, b)}
            assert recovered.evaluate(inputs) == original.evaluate(inputs)

    def test_sequential_equivalence(self):
        original = pipelined_adder(6, 2)
        recovered = parse_netlist(write_netlist(original))
        rng = random.Random(4)
        vectors = [
            {**bus("a", 6, rng.randrange(64)), **bus("b", 6, rng.randrange(64))}
            for _ in range(6)
        ]
        assert recovered.evaluate_sequence(vectors) == (
            original.evaluate_sequence(vectors)
        )

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "adder.rnet"
        original = ripple_carry_adder(4)
        save_netlist(original, str(path))
        recovered = load_netlist(str(path))
        assert write_netlist(recovered) == write_netlist(original)


class TestParserErrors:
    def test_requires_header(self):
        with pytest.raises(NetlistError, match="netlist <name>"):
            parse_netlist("input a\n")

    def test_duplicate_header(self):
        with pytest.raises(NetlistError, match="duplicate"):
            parse_netlist("netlist a\nnetlist b\n")

    def test_unknown_cell_lists_catalog(self):
        with pytest.raises(NetlistError, match="unknown cell"):
            parse_netlist("netlist x\ninput a\ngate FROB g a -> y\n")

    def test_unknown_keyword(self):
        with pytest.raises(NetlistError, match="keyword"):
            parse_netlist("netlist x\nwire a\n")

    def test_bad_gate_arity_reported_with_line(self):
        with pytest.raises(NetlistError, match="line 3"):
            parse_netlist("netlist x\ninput a\ngate NAND2 g a -> y\n")

    def test_bad_register_syntax(self):
        with pytest.raises(NetlistError, match="register"):
            parse_netlist("netlist x\ninput a\nregister r a -> q init 2\n")

    def test_bad_constant(self):
        with pytest.raises(NetlistError, match="constant"):
            parse_netlist("netlist x\nconstant k 3\n")

    def test_empty_file(self):
        with pytest.raises(NetlistError, match="empty"):
            parse_netlist("# only a comment\n")

    def test_structural_violations_surface(self):
        with pytest.raises(NetlistError, match="already driven"):
            parse_netlist(
                "netlist x\ninput a\ngate INV g1 a -> y\n"
                "gate INV g2 a -> y\n"
            )

    def test_comments_and_blanks_ignored(self):
        netlist = parse_netlist(
            """
            # a tiny design
            netlist tiny

            input a   # the only input
            gate INV g a -> y
            output y
            """
        )
        assert netlist.evaluate({"a": 0})["y"] == 1
