"""Unit tests for the netlist graph."""

import pytest

from repro.circuits.netlist import Netlist
from repro.device.technology import soi_low_vt
from repro.errors import NetlistError
from repro.tech.cells import standard_cells


@pytest.fixture
def cells():
    return standard_cells()


@pytest.fixture
def inverter_chain(cells):
    netlist = Netlist("chain")
    netlist.add_input("in")
    netlist.add_gate(cells["INV"], ["in"], "mid")
    netlist.add_gate(cells["INV"], ["mid"], "out")
    netlist.add_output("out")
    return netlist


class TestConstruction:
    def test_add_inputs_bus(self, cells):
        netlist = Netlist("bus")
        nets = netlist.add_inputs("a", 4)
        assert nets == ["a[0]", "a[1]", "a[2]", "a[3]"]
        assert netlist.primary_inputs == nets

    def test_duplicate_driver_rejected(self, cells):
        netlist = Netlist("dup")
        netlist.add_input("x")
        netlist.add_gate(cells["INV"], ["x"], "y")
        with pytest.raises(NetlistError, match="already driven"):
            netlist.add_gate(cells["INV"], ["x"], "y")

    def test_driving_primary_input_rejected(self, cells):
        netlist = Netlist("bad")
        netlist.add_input("x")
        netlist.add_input("y")
        with pytest.raises(NetlistError, match="primary input"):
            netlist.add_gate(cells["INV"], ["y"], "x")

    def test_duplicate_instance_name_rejected(self, cells):
        netlist = Netlist("dup")
        netlist.add_input("x")
        netlist.add_gate(cells["INV"], ["x"], "y", name="g")
        with pytest.raises(NetlistError, match="duplicate"):
            netlist.add_gate(cells["INV"], ["x"], "z", name="g")

    def test_arity_mismatch_rejected(self, cells):
        netlist = Netlist("bad")
        netlist.add_input("x")
        with pytest.raises(NetlistError, match="2 inputs"):
            netlist.add_gate(cells["NAND2"], ["x"], "y")

    def test_constant_value_checked(self):
        netlist = Netlist("c")
        with pytest.raises(NetlistError, match="0/1"):
            netlist.add_constant("k", 2)

    def test_repr_and_stats(self, inverter_chain):
        assert "2 gates" in repr(inverter_chain)
        assert inverter_chain.stats() == {"INV": 2}


class TestStructure:
    def test_driver_and_fanout(self, inverter_chain):
        driver = inverter_chain.driver("mid")
        assert driver is not None and driver.cell.name == "INV"
        assert inverter_chain.driver("in") is None
        fanout = inverter_chain.fanout("mid")
        assert len(fanout) == 1
        assert fanout[0][0].output == "out"

    def test_nets_deterministic(self, inverter_chain):
        assert inverter_chain.nets() == ["in", "mid", "out"]

    def test_validate_detects_floating_input(self, cells):
        netlist = Netlist("float")
        netlist.add_input("x")
        netlist.add_gate(cells["NAND2"], ["x", "ghost"], "y")
        with pytest.raises(NetlistError, match="ghost"):
            netlist.validate()

    def test_validate_detects_undriven_output(self, cells):
        netlist = Netlist("float")
        netlist.add_output("nowhere")
        with pytest.raises(NetlistError, match="nowhere"):
            netlist.validate()

    def test_levelize_orders_dependencies(self, cells):
        netlist = Netlist("diamond")
        netlist.add_input("x")
        netlist.add_gate(cells["INV"], ["x"], "a", name="ga")
        netlist.add_gate(cells["INV"], ["x"], "b", name="gb")
        netlist.add_gate(cells["NAND2"], ["a", "b"], "y", name="gy")
        order = [i.name for i in netlist.levelize()]
        assert order.index("gy") > order.index("ga")
        assert order.index("gy") > order.index("gb")

    def test_levelize_rejects_cycles(self, cells):
        netlist = Netlist("ring")
        netlist.add_gate(cells["INV"], ["b"], "a")
        netlist.add_gate(cells["INV"], ["a"], "b")
        with pytest.raises(NetlistError, match="cycle"):
            netlist.levelize()


class TestEvaluation:
    def test_inverter_chain(self, inverter_chain):
        assert inverter_chain.evaluate({"in": 0})["out"] == 0
        assert inverter_chain.evaluate({"in": 1})["out"] == 1

    def test_constants_participate(self, cells):
        netlist = Netlist("const")
        netlist.add_input("x")
        netlist.add_constant("one", 1)
        netlist.add_gate(cells["AND2"], ["x", "one"], "y")
        assert netlist.evaluate({"x": 1})["y"] == 1
        assert netlist.evaluate({"x": 0})["y"] == 0

    def test_missing_input_rejected(self, inverter_chain):
        with pytest.raises(NetlistError, match="missing value"):
            inverter_chain.evaluate({})

    def test_non_binary_input_rejected(self, inverter_chain):
        with pytest.raises(NetlistError, match="0/1"):
            inverter_chain.evaluate({"in": 3})

    def test_extra_net_values_rejected(self, inverter_chain):
        with pytest.raises(NetlistError, match="non-input"):
            inverter_chain.evaluate({"in": 1, "mid": 0})

    def test_evaluate_bus_packs_bits(self, cells):
        netlist = Netlist("pack")
        nets = netlist.add_inputs("a", 3)
        for i, net in enumerate(nets):
            netlist.add_gate(cells["BUF"], [net], f"y[{i}]")
            netlist.add_output(f"y[{i}]")
        value = netlist.evaluate_bus(
            {"a[0]": 1, "a[1]": 0, "a[2]": 1}, "y", 3
        )
        assert value == 0b101


class TestCapacitance:
    def test_net_capacitance_positive(self, inverter_chain):
        tech = soi_low_vt()
        for net in inverter_chain.nets():
            assert inverter_chain.net_capacitance(net, tech, 1.0) > 0.0

    def test_fanout_increases_capacitance(self, cells):
        tech = soi_low_vt()
        netlist = Netlist("fan")
        netlist.add_input("x")
        netlist.add_gate(cells["INV"], ["x"], "y")
        single = netlist.net_capacitance("x", tech, 1.0)
        netlist.add_gate(cells["INV"], ["x"], "z")
        double = netlist.net_capacitance("x", tech, 1.0)
        assert double > single

    def test_total_capacitance_sums_nets(self, inverter_chain):
        tech = soi_low_vt()
        total = inverter_chain.total_capacitance(tech, 1.0)
        parts = sum(
            inverter_chain.net_capacitance(net, tech, 1.0)
            for net in inverter_chain.nets()
        )
        assert total == pytest.approx(parts)

    def test_capacitance_grows_with_vdd(self, inverter_chain):
        # The Fig. 1 non-linearity propagates to net extraction.
        tech = soi_low_vt()
        low = inverter_chain.net_capacitance("mid", tech, 0.8)
        high = inverter_chain.net_capacitance("mid", tech, 1.8)
        assert high > low
