"""Unit tests for DC inverter analysis and the minimum-supply floor."""

import pytest

from repro.circuits.dc import InverterDcAnalysis
from repro.device.technology import bulk_cmos_06um, soi_low_vt
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def dc():
    return InverterDcAnalysis(soi_low_vt())


class TestTransferCurve:
    def test_rails_recovered(self, dc):
        # Strong 0 in -> strong 1 out and vice versa.
        assert dc.output_voltage(0.0, 1.0) > 0.95
        assert dc.output_voltage(1.0, 1.0) < 0.05

    def test_monotone_decreasing(self, dc):
        curve = dc.transfer_curve(1.0, points=41)
        outputs = [v for _, v in curve]
        assert all(b <= a + 1e-9 for a, b in zip(outputs, outputs[1:]))

    def test_current_balance_at_solution(self, dc):
        vin, vdd = 0.45, 1.0
        vout = dc.output_voltage(vin, vdd)
        pull_down = dc.nmos.drain_current(vin, vout)
        pull_up = dc.pmos.drain_current(vdd - vin, vdd - vout)
        assert pull_down == pytest.approx(pull_up, rel=1e-6)

    def test_input_range_validated(self, dc):
        with pytest.raises(AnalysisError):
            dc.output_voltage(-0.1, 1.0)
        with pytest.raises(AnalysisError):
            dc.output_voltage(1.5, 1.0)
        with pytest.raises(AnalysisError):
            dc.output_voltage(0.5, 0.0)

    def test_point_count_validated(self, dc):
        with pytest.raises(AnalysisError):
            dc.transfer_curve(1.0, points=2)


class TestSwitchingThreshold:
    def test_fixed_point_property(self, dc):
        vm = dc.switching_threshold(1.0)
        assert dc.output_voltage(vm, 1.0) == pytest.approx(vm, abs=1e-6)

    def test_near_midrail_for_compensated_sizing(self, dc):
        # W_p/W_n = 2 against a 0.45 mobility ratio leaves the
        # threshold slightly below midrail.
        vm = dc.switching_threshold(1.0)
        assert 0.35 < vm < 0.55

    def test_wider_pmos_raises_threshold(self):
        weak = InverterDcAnalysis(soi_low_vt(), 2.0, 2.0)
        strong = InverterDcAnalysis(soi_low_vt(), 2.0, 8.0)
        assert strong.switching_threshold(1.0) > weak.switching_threshold(
            1.0
        )


class TestGainAndMargins:
    def test_peak_gain_exceeds_one_at_nominal(self, dc):
        assert dc.peak_gain(1.0) > 3.0

    def test_gain_negative_through_transition(self, dc):
        vm = dc.switching_threshold(1.0)
        assert dc.gain(vm, 1.0) < -1.0

    def test_margins_positive_and_bounded(self, dc):
        margins = dc.noise_margins(1.0)
        assert margins.is_regenerative
        assert 0.0 < margins.low < 1.0
        assert 0.0 < margins.high < 1.0
        assert margins.vil < margins.vih
        assert margins.worst == min(margins.low, margins.high)

    def test_margins_shrink_with_supply(self, dc):
        big = dc.noise_margins(1.0)
        small = dc.noise_margins(0.2)
        assert small.low < big.low
        assert small.high < big.high

    def test_bulk_inverter_margins_at_3v(self):
        dc = InverterDcAnalysis(bulk_cmos_06um())
        margins = dc.noise_margins(3.3)
        assert margins.is_regenerative
        assert margins.worst > 0.8


class TestMinimumSupply:
    def test_floor_is_sub_200mv(self, dc):
        # The paper's aggressive-scaling premise: logic still works far
        # below 1 V; the regeneration floor is ~100 mV class.
        floor = dc.minimum_supply(margin_fraction=0.3)
        assert 0.03 < floor < 0.2

    def test_stricter_margin_raises_floor(self, dc):
        assert dc.minimum_supply(0.35) > dc.minimum_supply(0.25)

    def test_margin_holds_at_the_floor(self, dc):
        floor = dc.minimum_supply(0.3)
        margins = dc.noise_margins(floor)
        assert margins.worst >= 0.3 * floor * 0.98

    def test_impossible_budget_rejected(self, dc):
        with pytest.raises(AnalysisError, match="fails"):
            dc.minimum_supply(0.49)

    def test_parameters_validated(self, dc):
        with pytest.raises(AnalysisError):
            dc.minimum_supply(0.0)
        with pytest.raises(AnalysisError):
            dc.minimum_supply(0.1, vdd_bounds=(1.0, 0.5))
        with pytest.raises(AnalysisError):
            InverterDcAnalysis(soi_low_vt(), nmos_width_um=0.0)
