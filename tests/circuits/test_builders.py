"""Functional verification of the netlist builders against Python ints."""

import random

import pytest

from repro.circuits.builders import (
    array_multiplier,
    barrel_shifter,
    carry_select_adder,
    equality_comparator,
    ring_oscillator,
    ripple_carry_adder,
)
from repro.errors import NetlistError


def bus_values(prefix, width, value):
    return {f"{prefix}[{i}]": (value >> i) & 1 for i in range(width)}


class TestRippleCarryAdder:
    @pytest.mark.parametrize("width", [1, 4, 8])
    def test_exhaustive_small_or_sampled(self, width):
        netlist = ripple_carry_adder(width)
        rng = random.Random(1)
        pairs = (
            [(a, b) for a in range(2**width) for b in range(2**width)]
            if width <= 4
            else [
                (rng.randrange(2**width), rng.randrange(2**width))
                for _ in range(200)
            ]
        )
        for a, b in pairs:
            inputs = {**bus_values("a", width, a), **bus_values("b", width, b)}
            values = netlist.evaluate(inputs)
            result = sum(values[f"sum[{i}]"] << i for i in range(width))
            result |= values["cout"] << width
            assert result == a + b, f"{a}+{b}"

    def test_carry_in_variant(self):
        netlist = ripple_carry_adder(4, with_carry_in=True)
        inputs = {
            **bus_values("a", 4, 7),
            **bus_values("b", 4, 8),
            "cin": 1,
        }
        values = netlist.evaluate(inputs)
        result = sum(values[f"sum[{i}]"] << i for i in range(4))
        result |= values["cout"] << 4
        assert result == 16

    def test_width_validation(self):
        with pytest.raises(NetlistError):
            ripple_carry_adder(0)

    def test_gate_count_scales_linearly(self):
        small = len(ripple_carry_adder(4).instances)
        large = len(ripple_carry_adder(8).instances)
        assert large == pytest.approx(2 * small, abs=8)


class TestCarrySelectAdder:
    @pytest.mark.parametrize("width,block", [(8, 4), (8, 3), (6, 2)])
    def test_matches_integer_addition(self, width, block):
        netlist = carry_select_adder(width, block)
        rng = random.Random(2)
        for _ in range(150):
            a = rng.randrange(2**width)
            b = rng.randrange(2**width)
            inputs = {**bus_values("a", width, a), **bus_values("b", width, b)}
            values = netlist.evaluate(inputs)
            result = sum(values[f"sum[{i}]"] << i for i in range(width))
            result |= values["cout"] << width
            assert result == a + b, f"{a}+{b}"

    def test_uses_more_gates_than_ripple(self):
        assert len(carry_select_adder(8, 4).instances) > len(
            ripple_carry_adder(8).instances
        )

    def test_validation(self):
        with pytest.raises(NetlistError):
            carry_select_adder(0)
        with pytest.raises(NetlistError):
            carry_select_adder(8, 0)


class TestBarrelShifter:
    @pytest.mark.parametrize("width", [4, 8])
    def test_matches_python_shift(self, width):
        netlist = barrel_shifter(width)
        stages = width.bit_length() - 1
        rng = random.Random(3)
        for _ in range(150):
            a = rng.randrange(2**width)
            shift = rng.randrange(width)
            inputs = {
                **bus_values("a", width, a),
                **bus_values("s", stages, shift),
            }
            result = netlist.evaluate_bus(inputs, "y", width)
            assert result == (a << shift) & (2**width - 1), f"{a}<<{shift}"

    def test_power_of_two_required(self):
        with pytest.raises(NetlistError, match="power of two"):
            barrel_shifter(6)


class TestArrayMultiplier:
    def test_exhaustive_4x4(self):
        netlist = array_multiplier(4)
        for a in range(16):
            for b in range(16):
                inputs = {**bus_values("a", 4, a), **bus_values("b", 4, b)}
                result = netlist.evaluate_bus(inputs, "p", 8)
                assert result == a * b, f"{a}*{b}"

    def test_sampled_8x8(self):
        netlist = array_multiplier(8)
        rng = random.Random(4)
        for _ in range(60):
            a = rng.randrange(256)
            b = rng.randrange(256)
            inputs = {**bus_values("a", 8, a), **bus_values("b", 8, b)}
            assert netlist.evaluate_bus(inputs, "p", 16) == a * b

    def test_multiplier_is_largest_unit(self):
        # Fig. 10 context: the multiplier dwarfs the adder and shifter.
        mult = len(array_multiplier(8).instances)
        add = len(ripple_carry_adder(8).instances)
        shift = len(barrel_shifter(8).instances)
        assert mult > 3 * add
        assert mult > 3 * shift

    def test_width_validation(self):
        with pytest.raises(NetlistError):
            array_multiplier(1)


class TestEqualityComparator:
    @pytest.mark.parametrize("width", [1, 5, 8])
    def test_matches_equality(self, width):
        netlist = equality_comparator(width)
        rng = random.Random(5)
        for _ in range(100):
            a = rng.randrange(2**width)
            b = a if rng.random() < 0.5 else rng.randrange(2**width)
            inputs = {**bus_values("a", width, a), **bus_values("b", width, b)}
            assert netlist.evaluate(inputs)["eq"] == int(a == b)


class TestRingOscillator:
    def test_structure(self):
        ring = ring_oscillator(5)
        assert len(ring.instances) == 5
        assert ring.primary_inputs == []

    def test_cyclic_so_not_levelizable(self):
        with pytest.raises(NetlistError, match="cycle"):
            ring_oscillator(3).levelize()

    @pytest.mark.parametrize("stages", [2, 4, 1])
    def test_even_or_short_rejected(self, stages):
        with pytest.raises(NetlistError):
            ring_oscillator(stages)
