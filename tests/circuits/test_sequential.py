"""Tests for register support: netlist, timing, clocked simulation."""

import random

import pytest

from repro.circuits.builders import pipelined_adder, ripple_carry_adder
from repro.circuits.netlist import Netlist, Register
from repro.circuits.timing import StaticTimingAnalyzer
from repro.device.technology import soi_low_vt
from repro.errors import NetlistError, SimulationError
from repro.switchsim.simulator import SwitchLevelSimulator
from repro.tech.cells import standard_cells


def bus(prefix, width, value):
    return {f"{prefix}[{i}]": (value >> i) & 1 for i in range(width)}


@pytest.fixture
def cells():
    return standard_cells()


@pytest.fixture
def toggler(cells):
    """Classic divide-by-two: Q feeds back through an inverter."""
    netlist = Netlist("toggle")
    netlist.add_input("en")
    netlist.add_register("d", "q", name="ff", initial=0)
    netlist.add_gate(cells["INV"], ["q"], "nq")
    netlist.add_gate(cells["AND2"], ["nq", "en"], "d")
    netlist.add_output("q")
    return netlist


class TestRegisterStructure:
    def test_register_validation(self):
        with pytest.raises(NetlistError, match="initial"):
            Register(name="r", data_input="d", output="q", initial=2)
        with pytest.raises(NetlistError, match="different"):
            Register(name="r", data_input="x", output="x")

    def test_q_net_cannot_be_redriven(self, toggler, cells):
        with pytest.raises(NetlistError, match="register"):
            toggler.add_gate(cells["INV"], ["en"], "q")

    def test_duplicate_register_name_rejected(self, toggler):
        with pytest.raises(NetlistError, match="duplicate"):
            toggler.add_register("en", "q2", name="ff")

    def test_sequential_flag_and_repr(self, toggler):
        assert toggler.is_sequential
        assert "1 registers" in repr(toggler)
        assert not ripple_carry_adder(4).is_sequential

    def test_feedback_through_register_is_acyclic(self, toggler):
        order = [i.name for i in toggler.levelize()]
        assert len(order) == 2  # INV and AND2 levelize fine

    def test_undriven_d_net_caught(self, cells):
        netlist = Netlist("bad")
        netlist.add_register("floating", "q")
        netlist.add_gate(cells["INV"], ["q"], "y")
        with pytest.raises(NetlistError, match="floating"):
            netlist.validate()

    def test_nets_include_register_pins(self, toggler):
        nets = toggler.nets()
        assert "q" in nets and "d" in nets

    def test_register_fanout_tracked(self, toggler):
        assert [r.name for r in toggler.register_fanout("d")] == ["ff"]

    def test_d_pin_adds_capacitance(self, toggler):
        tech = soi_low_vt()
        with_register = toggler.net_capacitance("d", tech, 1.0)
        bare = Netlist("bare")
        bare.add_input("en")
        cells = standard_cells()
        bare.add_gate(cells["INV"], ["en"], "d")
        without = bare.net_capacitance("d", tech, 1.0)
        assert with_register > without


class TestSequentialEvaluation:
    def test_toggler_divides_by_two(self, toggler):
        history = toggler.evaluate_sequence([{"en": 1}] * 6)
        assert [cycle["q"] for cycle in history] == [0, 1, 0, 1, 0, 1]

    def test_enable_freezes_state(self, toggler):
        history = toggler.evaluate_sequence(
            [{"en": 1}, {"en": 1}, {"en": 0}, {"en": 0}, {"en": 1}]
        )
        assert [cycle["q"] for cycle in history] == [0, 1, 0, 0, 0]

    def test_initial_value_respected(self, cells):
        netlist = Netlist("init1")
        netlist.add_input("d_in")
        netlist.add_register("d_in", "q", initial=1)
        netlist.add_output("q")
        values = netlist.evaluate({"d_in": 0})
        assert values["q"] == 1

    def test_missing_state_rejected(self, toggler):
        with pytest.raises(NetlistError, match="missing state"):
            toggler.evaluate({"en": 1}, register_state={})

    def test_state_on_combinational_netlist_rejected(self):
        adder = ripple_carry_adder(2)
        with pytest.raises(NetlistError, match="combinational"):
            adder.evaluate(
                {**bus("a", 2, 0), **bus("b", 2, 0)},
                register_state={"x": 0},
            )


class TestPipelinedAdder:
    @pytest.mark.parametrize("width,stages", [(8, 1), (8, 2), (16, 4), (7, 3)])
    def test_matches_integer_addition_after_latency(self, width, stages):
        netlist = pipelined_adder(width, stages)
        rng = random.Random(width * 31 + stages)
        pairs = [
            (rng.randrange(2**width), rng.randrange(2**width))
            for _ in range(10)
        ]
        vectors = [
            {**bus("a", width, a), **bus("b", width, b)} for a, b in pairs
        ]
        vectors += [vectors[-1]] * (stages - 1)
        history = netlist.evaluate_sequence(vectors)
        latency = stages - 1
        for k, (a, b) in enumerate(pairs):
            values = history[k + latency]
            got = sum(values[f"sum[{i}]"] << i for i in range(width))
            got |= values["cout"] << width
            assert got == a + b, (a, b, k)

    def test_single_stage_is_combinational(self):
        assert not pipelined_adder(8, 1).is_sequential

    def test_deeper_pipelines_cut_the_cycle_time(self):
        analyzer = StaticTimingAnalyzer(soi_low_vt())
        times = [
            analyzer.analyze(pipelined_adder(16, s), 1.0).delay_s
            for s in (1, 2, 4)
        ]
        assert times[0] > 1.7 * times[1] > 1.7 * 1.7 * times[2] / 1.7

    def test_register_count_grows_with_stages(self):
        shallow = pipelined_adder(16, 2)
        deep = pipelined_adder(16, 4)
        assert len(deep.registers) > len(shallow.registers) > 0

    def test_stage_bounds_validated(self):
        with pytest.raises(NetlistError):
            pipelined_adder(8, 0)
        with pytest.raises(NetlistError):
            pipelined_adder(4, 5)


class TestClockedSimulation:
    def test_matches_zero_delay_sequence(self):
        width, stages = 8, 2
        netlist = pipelined_adder(width, stages)
        rng = random.Random(7)
        vectors = [
            {
                **bus("a", width, rng.randrange(2**width)),
                **bus("b", width, rng.randrange(2**width)),
            }
            for _ in range(12)
        ]
        simulator = SwitchLevelSimulator(netlist, soi_low_vt(), 1.0)
        simulator.run_clocked(vectors)
        reference = netlist.evaluate_sequence(vectors)[-1]
        for net, value in reference.items():
            assert simulator.state[net] == value, net

    def test_q_transitions_counted(self, toggler):
        simulator = SwitchLevelSimulator(toggler, soi_low_vt(), 1.0)
        report = simulator.run_clocked([{"en": 1}] * 9)
        # q toggles every cycle after the first.
        assert report.transitions("q") == 8

    def test_clock_cycle_requires_registers(self):
        adder = ripple_carry_adder(4)
        simulator = SwitchLevelSimulator(adder, soi_low_vt(), 1.0)
        simulator.initialize({**bus("a", 4, 0), **bus("b", 4, 0)})
        with pytest.raises(SimulationError, match="no registers"):
            simulator.clock_cycle({})

    def test_clock_cycle_requires_initialization(self, toggler):
        simulator = SwitchLevelSimulator(toggler, soi_low_vt(), 1.0)
        simulator.initialize({"en": 1})  # no register preset: d unknown?
        # After initialize with preset-free registers, q is unknown ->
        # d may be unknown and clocking must complain.
        if simulator.state["d"] is None:
            with pytest.raises(SimulationError, match="unknown"):
                simulator.clock_cycle({"en": 1})
