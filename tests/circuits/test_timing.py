"""Unit tests for static timing analysis."""

import pytest

from repro.circuits.builders import (
    carry_select_adder,
    ring_oscillator,
    ripple_carry_adder,
)
from repro.circuits.timing import StaticTimingAnalyzer
from repro.device.technology import soi_low_vt
from repro.errors import NetlistError


@pytest.fixture(scope="module")
def analyzer():
    return StaticTimingAnalyzer(soi_low_vt())


@pytest.fixture(scope="module")
def adder8():
    return ripple_carry_adder(8)


class TestCriticalPath:
    def test_delay_positive(self, analyzer, adder8):
        result = analyzer.analyze(adder8, vdd=1.0)
        assert result.delay_s > 0.0

    def test_critical_path_ends_at_an_output(self, analyzer, adder8):
        result = analyzer.analyze(adder8, vdd=1.0)
        assert result.path_nets[-1] in adder8.primary_outputs

    def test_critical_path_starts_at_an_input(self, analyzer, adder8):
        result = analyzer.analyze(adder8, vdd=1.0)
        first = result.path_nets[0]
        assert first in adder8.primary_inputs or first in adder8.constants

    def test_ripple_carry_depth_grows_with_width(self, analyzer):
        short = analyzer.analyze(ripple_carry_adder(4), vdd=1.0)
        long = analyzer.analyze(ripple_carry_adder(16), vdd=1.0)
        assert long.delay_s > 2.0 * short.delay_s
        assert long.depth > short.depth

    def test_carry_select_faster_than_ripple(self, analyzer):
        ripple = analyzer.analyze(ripple_carry_adder(16), vdd=1.0)
        select = analyzer.analyze(carry_select_adder(16, 4), vdd=1.0)
        assert select.delay_s < ripple.delay_s

    def test_delay_falls_with_vdd(self, analyzer, adder8):
        slow = analyzer.analyze(adder8, vdd=0.6).delay_s
        fast = analyzer.analyze(adder8, vdd=1.5).delay_s
        assert fast < slow

    def test_delay_falls_with_lower_vt(self, analyzer, adder8):
        high_vt = analyzer.analyze(adder8, vdd=0.8, vt_shift=0.1).delay_s
        low_vt = analyzer.analyze(adder8, vdd=0.8, vt_shift=-0.1).delay_s
        assert low_vt < high_vt

    def test_arrival_times_monotone_along_path(self, analyzer, adder8):
        result = analyzer.analyze(adder8, vdd=1.0)
        arrivals = [result.arrival_times[net] for net in result.path_nets]
        assert arrivals == sorted(arrivals)

    def test_cyclic_netlist_rejected(self, analyzer):
        with pytest.raises(NetlistError, match="cycle"):
            analyzer.analyze(ring_oscillator(3), vdd=1.0)


class TestCycleTime:
    def test_overhead_applied(self, analyzer, adder8):
        bare = analyzer.analyze(adder8, 1.0).delay_s
        cycle = analyzer.min_cycle_time(adder8, 1.0, sequencing_overhead=0.2)
        assert cycle == pytest.approx(1.2 * bare)

    def test_max_frequency_inverse(self, analyzer, adder8):
        cycle = analyzer.min_cycle_time(adder8, 1.0)
        assert analyzer.max_frequency(adder8, 1.0) == pytest.approx(
            1.0 / cycle
        )

    def test_negative_overhead_rejected(self, analyzer, adder8):
        with pytest.raises(NetlistError):
            analyzer.min_cycle_time(adder8, 1.0, sequencing_overhead=-0.1)
