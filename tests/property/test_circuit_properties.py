"""Property-based tests for netlist builders and the simulator."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.builders import (
    array_multiplier,
    barrel_shifter,
    carry_select_adder,
    equality_comparator,
    ripple_carry_adder,
)
from repro.circuits.netlist import Netlist
from repro.device.technology import soi_low_vt
from repro.switchsim.simulator import SwitchLevelSimulator
from repro.tech.cells import standard_cells

_TECH = soi_low_vt()
_CELLS = standard_cells()


def bus(prefix, width, value):
    return {f"{prefix}[{i}]": (value >> i) & 1 for i in range(width)}


def read_bus(values, prefix, width):
    return sum(values[f"{prefix}[{i}]"] << i for i in range(width))


class TestArithmeticBuilders:
    @given(
        st.integers(2, 12),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_ripple_adder_matches_ints(self, width, data):
        a = data.draw(st.integers(0, 2**width - 1))
        b = data.draw(st.integers(0, 2**width - 1))
        netlist = ripple_carry_adder(width)
        values = netlist.evaluate({**bus("a", width, a), **bus("b", width, b)})
        result = read_bus(values, "sum", width) | (values["cout"] << width)
        assert result == a + b

    @given(st.integers(2, 10), st.integers(1, 5), st.data())
    @settings(max_examples=30, deadline=None)
    def test_carry_select_matches_ints(self, width, block, data):
        a = data.draw(st.integers(0, 2**width - 1))
        b = data.draw(st.integers(0, 2**width - 1))
        netlist = carry_select_adder(width, block)
        values = netlist.evaluate({**bus("a", width, a), **bus("b", width, b)})
        result = read_bus(values, "sum", width) | (values["cout"] << width)
        assert result == a + b

    @given(st.sampled_from([2, 4, 8, 16]), st.data())
    @settings(max_examples=30, deadline=None)
    def test_shifter_matches_ints(self, width, data):
        a = data.draw(st.integers(0, 2**width - 1))
        shift = data.draw(st.integers(0, width - 1))
        stages = width.bit_length() - 1
        netlist = barrel_shifter(width)
        inputs = {**bus("a", width, a), **bus("s", stages, shift)}
        assert netlist.evaluate_bus(inputs, "y", width) == (
            (a << shift) & (2**width - 1)
        )

    @given(st.integers(2, 6), st.data())
    @settings(max_examples=30, deadline=None)
    def test_multiplier_matches_ints(self, width, data):
        a = data.draw(st.integers(0, 2**width - 1))
        b = data.draw(st.integers(0, 2**width - 1))
        netlist = array_multiplier(width)
        inputs = {**bus("a", width, a), **bus("b", width, b)}
        assert netlist.evaluate_bus(inputs, "p", 2 * width) == a * b

    @given(st.integers(1, 10), st.data())
    @settings(max_examples=30, deadline=None)
    def test_comparator_matches_equality(self, width, data):
        a = data.draw(st.integers(0, 2**width - 1))
        b = data.draw(st.integers(0, 2**width - 1))
        netlist = equality_comparator(width)
        inputs = {**bus("a", width, a), **bus("b", width, b)}
        assert netlist.evaluate(inputs)["eq"] == int(a == b)


def random_dag_netlist(seed: int, n_inputs: int, n_gates: int) -> Netlist:
    """A random acyclic netlist over the standard-cell catalog."""
    rng = random.Random(seed)
    netlist = Netlist(f"dag{seed}")
    nets = [netlist.add_input(f"in{i}") for i in range(n_inputs)]
    catalog = [c for c in _CELLS.values() if c.n_inputs <= len(nets)]
    for g in range(n_gates):
        cell = rng.choice(catalog)
        inputs = [rng.choice(nets) for _ in range(cell.n_inputs)]
        output = f"n{g}"
        netlist.add_gate(cell, inputs, output)
        nets.append(output)
    netlist.add_output(f"n{n_gates - 1}")
    return netlist


class TestNetlistIoProperties:
    @given(st.integers(0, 10_000), st.integers(2, 5), st.integers(1, 20))
    @settings(max_examples=25, deadline=None)
    def test_rnet_round_trip_on_random_netlists(
        self, seed, n_inputs, n_gates
    ):
        from repro.circuits.io import parse_netlist, write_netlist

        original = random_dag_netlist(seed, n_inputs, n_gates)
        recovered = parse_netlist(write_netlist(original))
        assert write_netlist(recovered) == write_netlist(original)
        # Functional equivalence on one arbitrary vector.
        vector = {f"in{i}": (seed >> i) & 1 for i in range(n_inputs)}
        assert recovered.evaluate(vector) == original.evaluate(vector)


class TestPipelineProperties:
    @given(
        st.integers(2, 10),
        st.integers(1, 4),
        st.data(),
    )
    @settings(max_examples=20, deadline=None)
    def test_pipelined_adder_matches_ints(self, width, stages, data):
        from repro.circuits.builders import pipelined_adder

        stages = min(stages, width)
        netlist = pipelined_adder(width, stages)
        pairs = [
            (
                data.draw(st.integers(0, 2**width - 1), label=f"a{k}"),
                data.draw(st.integers(0, 2**width - 1), label=f"b{k}"),
            )
            for k in range(4)
        ]
        vectors = [
            {**bus("a", width, a), **bus("b", width, b)} for a, b in pairs
        ]
        vectors += [vectors[-1]] * (stages - 1)
        history = netlist.evaluate_sequence(vectors)
        for k, (a, b) in enumerate(pairs):
            values = history[k + stages - 1]
            got = read_bus(values, "sum", width) | (
                values["cout"] << width
            )
            assert got == a + b

    @given(st.integers(4, 10), st.integers(2, 4), st.data())
    @settings(max_examples=10, deadline=None)
    def test_clocked_simulation_matches_zero_delay(
        self, width, stages, data
    ):
        from repro.circuits.builders import pipelined_adder

        stages = min(stages, width)
        netlist = pipelined_adder(width, stages)
        vectors = [
            {
                **bus("a", width, data.draw(st.integers(0, 2**width - 1))),
                **bus("b", width, data.draw(st.integers(0, 2**width - 1))),
            }
            for _ in range(5)
        ]
        simulator = SwitchLevelSimulator(netlist, _TECH, 1.0)
        simulator.run_clocked(vectors)
        reference = netlist.evaluate_sequence(vectors)[-1]
        for net, value in reference.items():
            assert simulator.state[net] == value, net


class TestRandomNetlists:
    @given(
        st.integers(0, 10_000),
        st.integers(2, 6),
        st.integers(1, 25),
        st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_levelization_respects_dependencies(
        self, seed, n_inputs, n_gates, data
    ):
        netlist = random_dag_netlist(seed, n_inputs, n_gates)
        order = {
            instance.name: position
            for position, instance in enumerate(netlist.levelize())
        }
        for instance in netlist.instances.values():
            for net in instance.inputs:
                driver = netlist.driver(net)
                if driver is not None:
                    assert order[driver.name] < order[instance.name]

    @given(
        st.integers(0, 10_000),
        st.integers(2, 5),
        st.integers(1, 20),
        st.data(),
    )
    @settings(max_examples=20, deadline=None)
    def test_simulator_settles_to_functional_values(
        self, seed, n_inputs, n_gates, data
    ):
        netlist = random_dag_netlist(seed, n_inputs, n_gates)
        first = {
            f"in{i}": data.draw(st.integers(0, 1), label=f"v0[{i}]")
            for i in range(n_inputs)
        }
        second = {
            f"in{i}": data.draw(st.integers(0, 1), label=f"v1[{i}]")
            for i in range(n_inputs)
        }
        simulator = SwitchLevelSimulator(netlist, _TECH, vdd=1.0)
        simulator.initialize(first)
        simulator.apply(second)
        reference = netlist.evaluate(second)
        for net, value in reference.items():
            assert simulator.state[net] == value, net

    @given(st.integers(0, 10_000), st.integers(2, 5), st.integers(1, 15))
    @settings(max_examples=15, deadline=None)
    def test_simulation_is_deterministic(self, seed, n_inputs, n_gates):
        netlist = random_dag_netlist(seed, n_inputs, n_gates)
        rng = random.Random(seed + 1)
        vectors = [
            {f"in{i}": rng.randint(0, 1) for i in range(n_inputs)}
            for _ in range(6)
        ]
        first = SwitchLevelSimulator(netlist, _TECH, 1.0).run_vectors(
            vectors
        )
        second = SwitchLevelSimulator(netlist, _TECH, 1.0).run_vectors(
            vectors
        )
        assert first.rising == second.rising
        assert first.falling == second.falling
