"""Property-based tests for the event queue, stimulus and library I/O."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.switchsim.events import EventQueue
from repro.switchsim.stimulus import (
    gray_code_bus_vectors,
    random_bus_vectors,
    vectors_from_values,
)
from repro.tech.library import CellLibrary
from repro.device.technology import soi_low_vt


class TestEventQueueProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 1000), st.sampled_from("abcde"),
                      st.integers(0, 1)),
            min_size=1,
            max_size=40,
        )
    )
    def test_pops_in_nondecreasing_time(self, schedule):
        queue = EventQueue()
        for time_fs, net, value in schedule:
            queue.schedule(time_fs, net, value)
        previous = -1
        popped = []
        while True:
            event = queue.pop()
            if event is None:
                break
            assert event.time_fs >= previous
            previous = event.time_fs
            popped.append(event.net)
        # Superseding: at most one live event per net.
        assert len(popped) == len(set(popped))
        # And the survivor per net is the latest scheduled one.
        latest = {net: value for _, net, value in schedule}
        assert set(popped) == set(latest)

    @given(
        st.lists(
            st.tuples(st.integers(0, 100), st.integers(0, 1)),
            min_size=1,
            max_size=20,
        )
    )
    def test_pending_value_is_last_write(self, writes):
        queue = EventQueue()
        for time_fs, value in writes:
            queue.schedule(time_fs, "x", value)
        assert queue.pending_value("x") == writes[-1][1]


class TestStimulusProperties:
    @given(st.integers(1, 16), st.integers(1, 50), st.integers(0, 2**32 - 1))
    def test_random_vectors_drive_every_bit(self, width, count, seed):
        vectors = random_bus_vectors({"a": width}, count, seed=seed)
        assert len(vectors) == count
        for vector in vectors:
            assert set(vector) == {f"a[{i}]" for i in range(width)}
            assert set(vector.values()) <= {0, 1}

    @given(st.integers(2, 10), st.integers(2, 100))
    def test_gray_code_single_bit_flip_always(self, width, count):
        vectors = gray_code_bus_vectors("a", width, count)
        for previous, current in zip(vectors, vectors[1:]):
            flips = sum(previous[k] != current[k] for k in previous)
            assert flips == 1

    @given(
        st.integers(1, 12),
        st.lists(st.integers(0, 2**12 - 1), min_size=1, max_size=20),
    )
    def test_vectors_from_values_round_trip(self, width, values):
        values = [v % (2**width) for v in values]
        vectors = vectors_from_values(
            {"a": width}, [{"a": v} for v in values]
        )
        unpacked = [
            sum(vector[f"a[{i}]"] << i for i in range(width))
            for vector in vectors
        ]
        assert unpacked == values


class TestLibraryRoundTrip:
    @settings(max_examples=5, deadline=None)
    @given(st.integers(0, 1000))
    def test_json_round_trip_preserves_every_corner(self, seed):
        rng = random.Random(seed)
        vdds = sorted(rng.uniform(0.4, 2.0) for _ in range(3))
        shifts = sorted(rng.uniform(-0.1, 0.25) for _ in range(2))
        library = CellLibrary.characterized(
            soi_low_vt(), vdd_grid=vdds, vt_shift_grid=shifts
        )
        loaded = CellLibrary.from_json(library.to_json())
        for cell_name in ("INV", "NAND2", "XOR2"):
            for vdd in vdds:
                for shift in shifts:
                    original = library.lookup(cell_name, vdd, shift)
                    recovered = loaded.lookup(cell_name, vdd, shift)
                    assert recovered.delay_s == original.delay_s
                    assert (
                        recovered.leakage_current_a
                        == original.leakage_current_a
                    )
