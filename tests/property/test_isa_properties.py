"""Property-based tests for the ISA substrate and workloads."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.isa.machine import Machine
from repro.isa.workloads import crc, espresso_like, fir, idea, sort

WORD = 0xFFFFFFFF

words = st.integers(0, WORD)
halfwords = st.integers(0, 0xFFFF)
key_words = st.tuples(*([halfwords] * 8))
blocks = st.tuples(*([halfwords] * 4))


def run_binary_op(mnemonic: str, a: int, b: int) -> int:
    """Execute one register-register op on the machine."""
    source = f"""
    LUI r1, {(a >> 16) & 0xFFFF}
    ORI r1, r1, {a & 0xFFFF}
    LUI r2, {(b >> 16) & 0xFFFF}
    ORI r2, r2, {b & 0xFFFF}
    {mnemonic} r4, r1, r2
    HALT
    """
    machine = Machine(assemble(source))
    machine.run()
    return machine.read_register(4)


class TestMachineSemantics:
    @given(words, words)
    @settings(max_examples=40, deadline=None)
    def test_add_matches_python(self, a, b):
        assert run_binary_op("ADD", a, b) == (a + b) & WORD

    @given(words, words)
    @settings(max_examples=40, deadline=None)
    def test_sub_matches_python(self, a, b):
        assert run_binary_op("SUB", a, b) == (a - b) & WORD

    @given(words, words)
    @settings(max_examples=40, deadline=None)
    def test_mul_matches_python(self, a, b):
        assert run_binary_op("MUL", a, b) == (a * b) & WORD

    @given(words, words)
    @settings(max_examples=40, deadline=None)
    def test_mulhu_matches_python(self, a, b):
        assert run_binary_op("MULHU", a, b) == ((a * b) >> 32) & WORD

    @given(words, st.integers(0, 63))
    @settings(max_examples=40, deadline=None)
    def test_srl_matches_python(self, a, shift):
        assert run_binary_op("SRL", a, shift) == (a >> (shift & 31)) & WORD

    @given(words, words)
    @settings(max_examples=40, deadline=None)
    def test_xor_matches_python(self, a, b):
        assert run_binary_op("XOR", a, b) == a ^ b

    @given(words, words)
    @settings(max_examples=40, deadline=None)
    def test_sltu_matches_python(self, a, b):
        assert run_binary_op("SLTU", a, b) == int(a < b)


class TestIdeaProperties:
    @given(blocks, key_words)
    @settings(max_examples=25, deadline=None)
    def test_encrypt_decrypt_round_trip(self, block, key):
        assert idea.decrypt_block(idea.encrypt_block(block, key), key) == block

    @given(blocks, blocks, key_words)
    @settings(max_examples=25, deadline=None)
    def test_distinct_blocks_encrypt_distinctly(self, x, y, key):
        if x != y:
            assert idea.encrypt_block(x, key) != idea.encrypt_block(y, key)

    @given(halfwords, halfwords)
    def test_mul_mod_commutes(self, a, b):
        assert idea.mul_mod(a, b) == idea.mul_mod(b, a)

    @given(halfwords, halfwords, halfwords)
    def test_mul_mod_associates(self, a, b, c):
        left = idea.mul_mod(idea.mul_mod(a, b), c)
        right = idea.mul_mod(a, idea.mul_mod(b, c))
        assert left == right

    @given(halfwords)
    def test_mul_mod_identity(self, a):
        assert idea.mul_mod(a, 1) == a

    @given(halfwords, halfwords)
    def test_add_mod_matches_python(self, a, b):
        assert idea.add_mod(a, b) == (a + b) % 65536


def _minterms(cube: int, n_vars: int):
    """Enumerate the minterms a positional cube covers."""
    result = []
    for assignment in range(2**n_vars):
        covered = True
        for var in range(n_vars):
            bit = (assignment >> var) & 1
            literal = (cube >> (2 * var)) & 0b11
            needed = 0b10 if bit else 0b01
            if not literal & needed:
                covered = False
                break
        if covered:
            result.append(assignment)
    return result


class TestEspressoKernelProperties:
    @given(st.integers(0, 10_000), st.integers(2, 5), st.integers(2, 12))
    @settings(max_examples=25, deadline=None)
    def test_kernel_preserves_coverage(self, seed, n_vars, n_cubes):
        # Containment removal and distance-1 merging must cover exactly
        # the same minterm set — the fundamental two-level invariant.
        cover = espresso_like.random_cover(n_cubes, n_vars, seed)
        result, _ = espresso_like.reference_kernel(cover, n_vars)
        before = set()
        for cube in cover:
            before.update(_minterms(cube, n_vars))
        after = set()
        for cube in result:
            if cube:
                after.update(_minterms(cube, n_vars))
        assert after == before

    @given(st.integers(0, 10_000), st.integers(2, 5), st.integers(2, 10))
    @settings(max_examples=25, deadline=None)
    def test_kernel_never_grows_the_cover(self, seed, n_vars, n_cubes):
        cover = espresso_like.random_cover(n_cubes, n_vars, seed)
        result, _ = espresso_like.reference_kernel(cover, n_vars)
        assert sum(1 for c in result if c) <= len(cover)


class TestSortProperties:
    @given(
        st.lists(st.integers(0, 2**20), min_size=1, max_size=40),
    )
    @settings(max_examples=20, deadline=None)
    def test_quicksort_matches_sorted(self, values):
        from repro.isa.assembler import assemble
        from repro.isa.machine import Machine

        program = assemble(sort.source(values), name="sort")
        machine = Machine(program)
        machine.run()
        assert sort.read_sorted(machine, program, len(values)) == sorted(
            values
        )


class TestOtherWorkloadProperties:
    @given(st.lists(words, min_size=1, max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_crc_reference_is_deterministic_and_sensitive(self, message):
        value = crc.reference_crc(message)
        assert value == crc.reference_crc(message)
        flipped = list(message)
        flipped[0] ^= 1
        assert crc.reference_crc(flipped) != value

    @given(
        st.lists(st.integers(0, 255), min_size=1, max_size=12),
        st.lists(st.integers(0, 15), min_size=1, max_size=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_fir_reference_linearity(self, samples, taps):
        # Scaling the input scales the output (mod 2^32 arithmetic is
        # exact here because values stay small).
        base = fir.reference_filter(samples, taps)
        doubled = fir.reference_filter([2 * s for s in samples], taps)
        assert doubled == [(2 * y) & 0xFFFFFFFF for y in base]
