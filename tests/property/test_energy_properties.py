"""Property-based tests for the energy-model algebra (Eqs. 3-4)."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.contour import breakeven_bga
from repro.power.components import PowerBreakdown
from repro.power.energy import (
    ModuleEnergyParameters,
    e_mtcmos,
    e_soi,
    e_soias,
    e_soias_gated,
    energy_ratio_soias_vs_soi,
)

modules = st.builds(
    lambda c, low, ratio, cbg, vbg: ModuleEnergyParameters(
        name="m",
        switched_capacitance_f=c,
        leakage_low_vt_a=low,
        leakage_high_vt_a=low * ratio,
        back_gate_capacitance_f=cbg,
        back_gate_swing_v=vbg,
    ),
    c=st.floats(1e-15, 1e-11),
    low=st.floats(1e-10, 1e-5),
    ratio=st.floats(1e-6, 1.0),
    cbg=st.floats(1e-16, 1e-11),
    vbg=st.floats(0.5, 5.0),
)

fga_bga = st.tuples(
    st.floats(0.001, 1.0), st.floats(0.0, 1.0)
).map(lambda t: (t[0], min(t[1], t[0])))

supplies = st.floats(0.3, 2.0)
cycles = st.floats(1e-9, 1e-5)


class TestEnergyAlgebra:
    @given(modules, fga_bga, supplies, cycles)
    def test_energies_positive(self, module, activities, vdd, t_cycle):
        fga, bga = activities
        assert e_soi(module, fga, vdd, t_cycle) > 0.0
        assert e_soias(module, fga, bga, vdd, t_cycle) > 0.0

    @given(modules, fga_bga, supplies, cycles)
    def test_soias_monotone_in_bga(self, module, activities, vdd, t_cycle):
        fga, bga = activities
        lower = e_soias(module, fga, bga * 0.5, vdd, t_cycle)
        higher = e_soias(module, fga, bga, vdd, t_cycle)
        assert higher >= lower - 1e-30

    @given(modules, fga_bga, supplies, cycles)
    def test_soias_at_zero_bga_beats_or_ties_soi(
        self, module, activities, vdd, t_cycle
    ):
        # With free control, rescuing leakage can only help.
        fga, _ = activities
        soi = e_soi(module, fga, vdd, t_cycle)
        assert e_soias(module, fga, 0.0, vdd, t_cycle) <= soi * (
            1.0 + 1e-12
        )

    @given(modules, fga_bga, supplies, cycles)
    def test_switching_term_is_a_lower_bound(
        self, module, activities, vdd, t_cycle
    ):
        fga, bga = activities
        switching = fga * module.switched_capacitance_f * vdd * vdd
        assert e_soias(module, fga, bga, vdd, t_cycle) >= switching

    @given(modules, fga_bga, supplies, cycles, st.floats(1.5, 10.0))
    def test_leakage_terms_linear_in_cycle_time(
        self, module, activities, vdd, t_cycle, scale
    ):
        fga, _ = activities
        short = e_soi(module, fga, vdd, t_cycle)
        long = e_soi(module, fga, vdd, t_cycle * scale)
        switching = fga * module.switched_capacitance_f * vdd * vdd
        # Subtracting the switching term cancels catastrophically when
        # leakage is tiny relative to it, so allow an absolute slack of
        # a few ulps of the total energy.
        assert math.isclose(
            long - switching,
            scale * (short - switching),
            rel_tol=1e-6,
            abs_tol=1e-9 * long,
        )

    @given(modules, fga_bga, supplies, cycles)
    def test_mtcmos_matches_soias_at_equal_control_cost(
        self, module, activities, vdd, t_cycle
    ):
        fga, bga = activities
        # Force the SOIAS control to charge to V_DD: identical algebra.
        equal = module.with_back_gate_swing(vdd)
        assert math.isclose(
            e_soias(equal, fga, bga, vdd, t_cycle),
            e_mtcmos(module, fga, bga, vdd, t_cycle),
            rel_tol=1e-9,
        )

    @given(modules, fga_bga, supplies, cycles)
    def test_gated_reduces_to_plain(self, module, activities, vdd, t_cycle):
        fga, bga = activities
        assert math.isclose(
            e_soias_gated(module, fga, fga, bga, vdd, t_cycle),
            e_soias(module, fga, bga, vdd, t_cycle),
            rel_tol=1e-12,
        )

    @given(modules, fga_bga, supplies, cycles)
    def test_gated_monotone_in_powered_fraction(
        self, module, activities, vdd, t_cycle
    ):
        fga, bga = activities
        eager = e_soias_gated(module, fga, fga, bga, vdd, t_cycle)
        lazy = e_soias_gated(
            module, fga, min(1.0, fga + 0.3), bga, vdd, t_cycle
        )
        # Keeping the block powered longer can only add (low - high)
        # leakage, which is non-negative by construction (up to float
        # rounding when the two leakage corners coincide).
        assert lazy >= eager * (1.0 - 1e-12)


class TestBreakevenProperties:
    @given(modules, st.floats(0.001, 0.999), supplies, cycles)
    @settings(max_examples=60)
    def test_breakeven_separates_the_plane(
        self, module, fga, vdd, t_cycle
    ):
        bga_star = breakeven_bga(module, fga, vdd, t_cycle)
        assume(bga_star is not None and 1e-9 < bga_star < fga)
        below = energy_ratio_soias_vs_soi(
            module, fga, bga_star * 0.5, vdd, t_cycle
        )
        above = energy_ratio_soias_vs_soi(
            module, fga, min(bga_star * 1.5, fga), vdd, t_cycle
        )
        assert below <= 1.0 + 1e-9
        assert above >= 1.0 - 1e-9

    @given(modules, st.floats(0.001, 0.999), supplies, cycles)
    @settings(max_examples=60)
    def test_ratio_equals_one_at_breakeven(
        self, module, fga, vdd, t_cycle
    ):
        bga_star = breakeven_bga(module, fga, vdd, t_cycle)
        assume(bga_star is not None and 1e-9 < bga_star <= fga)
        ratio = energy_ratio_soias_vs_soi(
            module, fga, bga_star, vdd, t_cycle
        )
        assert math.isclose(ratio, 1.0, rel_tol=1e-6)


class TestPowerBreakdownAlgebra:
    breakdowns = st.builds(
        PowerBreakdown,
        switching_w=st.floats(0.0, 1.0),
        short_circuit_w=st.floats(0.0, 1.0),
        leakage_w=st.floats(0.0, 1.0),
    )

    @given(breakdowns, breakdowns)
    def test_addition_commutes(self, a, b):
        left = a + b
        right = b + a
        assert math.isclose(left.total_w, right.total_w, rel_tol=1e-12)

    @given(breakdowns, st.floats(0.0, 10.0))
    def test_scaling_is_linear(self, breakdown, factor):
        scaled = breakdown.scaled(factor)
        assert math.isclose(
            scaled.total_w, factor * breakdown.total_w,
            rel_tol=1e-12, abs_tol=1e-30,
        )

    @given(breakdowns)
    def test_fractions_sum_to_one(self, breakdown):
        assume(breakdown.total_w > 1e-12)
        total = sum(
            breakdown.fraction(c)
            for c in ("switching", "short_circuit", "leakage")
        )
        assert math.isclose(total, 1.0, rel_tol=1e-9)
