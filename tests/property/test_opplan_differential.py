"""Differential tests: batched operating-plan engine vs the per-point path.

Random (cell, load, V_DD-vector, V_T-shift) corners are evaluated
through both the decoded :class:`OperatingPlan` and the per-point
``propagation_delay``/``fanout_delay``/``leakage_current``/
``energy_per_transition`` chain; the results must be bit-identical —
not approximately equal.  Mirrors
``tests/property/test_variation_differential.py``, which covers the
V_T-variation axis of the same decode/run split.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.technology import bulk_cmos_06um, soi_low_vt
from repro.tech.characterize import CellCharacterizer
from repro.tech.cells import standard_cells

_CELLS = standard_cells()

technologies = st.sampled_from([soi_low_vt, bulk_cmos_06um])
cell_names = st.sampled_from(["INV", "NAND2", "NOR2", "NAND3", "AOI21"])
vdd_vectors = st.lists(
    st.floats(0.3, 2.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=5,
)
loads = st.floats(0.0, 50e-15, allow_nan=False, allow_infinity=False)
shifts = st.floats(-0.1, 0.1, allow_nan=False, allow_infinity=False)
fanouts = st.integers(1, 4)


class TestPlanMatchesPerPointPath:
    @settings(deadline=None, max_examples=20)
    @given(
        make_technology=technologies,
        name=cell_names,
        vdds=vdd_vectors,
        load_f=loads,
        shift=shifts,
    )
    def test_fixed_load_delays_bit_identical(
        self, make_technology, name, vdds, load_f, shift
    ):
        cell = _CELLS[name]
        plan = CellCharacterizer(make_technology()).plan_operating(
            cell, load_f=load_f
        )
        reference = CellCharacterizer(make_technology())
        expected = [
            reference.propagation_delay(cell, vdd, load_f, vt_shift=shift)
            for vdd in vdds
        ]
        assert plan.delays(vdds, shift) == expected

    @settings(deadline=None, max_examples=20)
    @given(
        make_technology=technologies,
        name=cell_names,
        vdds=vdd_vectors,
        fanout=fanouts,
        shift=shifts,
    )
    def test_fanout_delays_bit_identical(
        self, make_technology, name, vdds, fanout, shift
    ):
        cell = _CELLS[name]
        plan = CellCharacterizer(make_technology()).plan_operating(
            cell, fanout=fanout
        )
        reference = CellCharacterizer(make_technology())
        expected = [
            reference.fanout_delay(cell, vdd, fanout=fanout, vt_shift=shift)
            for vdd in vdds
        ]
        assert plan.delays(vdds, shift) == expected

    @settings(deadline=None, max_examples=15)
    @given(
        make_technology=technologies,
        name=cell_names,
        vdds=vdd_vectors,
        shift=shifts,
    )
    def test_leakages_bit_identical(
        self, make_technology, name, vdds, shift
    ):
        cell = _CELLS[name]
        plan = CellCharacterizer(make_technology()).plan_operating(cell)
        reference = CellCharacterizer(make_technology())
        expected = [
            reference.leakage_current(cell, vdd, vt_shift=shift)
            for vdd in vdds
        ]
        assert plan.leakages(vdds, shift) == expected

    @settings(deadline=None, max_examples=15)
    @given(
        make_technology=technologies,
        name=cell_names,
        vdds=vdd_vectors,
        fanout=fanouts,
        shift=shifts,
    )
    def test_energies_bit_identical(
        self, make_technology, name, vdds, fanout, shift
    ):
        # The (E_transition, I_leak) pairs must match the per-point
        # chain the ring oscillator's energy_per_cycle walks: switching
        # energy at a load of `fanout` input capacitances, plus the
        # state-averaged leakage current.
        cell = _CELLS[name]
        plan = CellCharacterizer(make_technology()).plan_operating(
            cell, fanout=fanout
        )
        reference = CellCharacterizer(make_technology())
        expected = []
        for vdd in vdds:
            load = fanout * cell.input_capacitance(
                reference.technology, vdd
            )
            expected.append(
                (
                    reference.energy_per_transition(cell, vdd, load),
                    reference.leakage_current(cell, vdd, vt_shift=shift),
                )
            )
        assert plan.energies(vdds, shift) == expected

    @settings(deadline=None, max_examples=15)
    @given(
        make_technology=technologies,
        name=cell_names,
        vdds=vdd_vectors,
        fanout=fanouts,
        shift=shifts,
    )
    def test_operating_points_fuse_delays_and_energies(
        self, make_technology, name, vdds, fanout, shift
    ):
        # The fused kernel shares one load evaluation per point between
        # the delay numerator and the C*V^2 transition energy; both
        # halves must still be bit-identical to the split kernels.
        cell = _CELLS[name]
        plan = CellCharacterizer(make_technology()).plan_operating(
            cell, fanout=fanout
        )
        expected = list(
            zip(
                plan.delays(vdds, shift),
                *zip(*plan.energies(vdds, shift)),
            )
        )
        assert plan.operating_points(vdds, shift) == expected

    @settings(deadline=None, max_examples=15)
    @given(
        make_technology=technologies,
        name=cell_names,
        vdds=vdd_vectors,
        fanout=fanouts,
        shift=shifts,
    )
    def test_operating_points_budget_gates_energy_work(
        self, make_technology, name, vdds, fanout, shift
    ):
        # With a delay budget, points over budget report (delay, None,
        # None) and the rest are unchanged.  Use the median delay as
        # the budget so both branches are usually exercised.
        cell = _CELLS[name]
        plan = CellCharacterizer(make_technology()).plan_operating(
            cell, fanout=fanout
        )
        delays = plan.delays(vdds, shift)
        budget = sorted(delays)[len(delays) // 2]
        full = plan.operating_points(vdds, shift)
        gated = plan.operating_points(vdds, shift, max_delay_s=budget)
        assert len(gated) == len(full)
        for (delay, transition, leak), reference in zip(gated, full):
            assert delay == reference[0]
            if delay > budget:
                assert transition is None and leak is None
            else:
                assert (delay, transition, leak) == reference

    @settings(deadline=None, max_examples=10)
    @given(name=cell_names, vdds=vdd_vectors, shift=shifts)
    def test_shared_characterizer_interleaving(self, name, vdds, shift):
        # Plan and per-point calls share one characterizer's stack
        # memos; alternating between them must still equal a pure
        # per-point run on a fresh characterizer.
        cell = _CELLS[name]
        shared = CellCharacterizer(soi_low_vt())
        reference = CellCharacterizer(soi_low_vt())
        expected = [
            reference.leakage_current(cell, vdd, vt_shift=shift)
            for vdd in vdds
        ]
        plan = shared.plan_operating(cell)
        mixed = []
        for index, vdd in enumerate(vdds):
            if index % 2:
                mixed.append(
                    shared.leakage_current(cell, vdd, vt_shift=shift)
                )
            else:
                mixed.extend(plan.leakages([vdd], shift))
        assert mixed == expected

    @settings(deadline=None, max_examples=10)
    @given(
        make_technology=technologies,
        name=cell_names,
        vdds=vdd_vectors,
        fanout=fanouts,
        shift=shifts,
    )
    def test_uncached_plan_matches_cached(
        self, make_technology, name, vdds, fanout, shift
    ):
        cell = _CELLS[name]
        cached = CellCharacterizer(make_technology()).plan_operating(
            cell, fanout=fanout
        )
        uncached = CellCharacterizer(
            make_technology(), cache=False
        ).plan_operating(cell, fanout=fanout)
        assert uncached.delays(vdds, shift) == cached.delays(vdds, shift)
        assert uncached.leakages(vdds, shift) == cached.leakages(
            vdds, shift
        )

    @settings(deadline=None, max_examples=10)
    @given(
        make_technology=technologies,
        name=cell_names,
        vdds=vdd_vectors,
        fanout=fanouts,
        shift=shifts,
    )
    def test_planned_fanout_delay_matches_fanout_delay(
        self, make_technology, name, vdds, fanout, shift
    ):
        cell = _CELLS[name]
        planned = CellCharacterizer(make_technology())
        reference = CellCharacterizer(make_technology())
        for vdd in vdds:
            assert planned.planned_fanout_delay(
                cell, vdd, fanout=fanout, vt_shift=shift
            ) == reference.fanout_delay(
                cell, vdd, fanout=fanout, vt_shift=shift
            )
