"""Property-based tests for the device models (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.capacitance import (
    GateCapacitanceModel,
    JunctionCapacitanceModel,
)
from repro.device.leakage import stack_leakage_current
from repro.device.mosfet import Mosfet, MosfetParameters
from repro.device.threshold import BodyBiasModel, SoiasBackGateModel

# Strategy for physically valid MOSFET parameters.
mosfet_parameters = st.builds(
    MosfetParameters,
    vt0=st.floats(0.1, 0.8),
    subthreshold_swing=st.floats(0.060, 0.095),
    i_spec=st.floats(1e-9, 1e-5),
    k_drive=st.floats(1e-5, 1e-3),
    alpha=st.floats(1.0, 2.0),
    dibl=st.floats(0.0, 0.1),
    vdsat_coeff=st.floats(0.3, 1.5),
    channel_length_modulation=st.floats(0.0, 0.1),
)

voltages = st.floats(0.0, 3.0)
supplies = st.floats(0.2, 3.0)


class TestMosfetInvariants:
    @given(mosfet_parameters, supplies)
    def test_current_monotone_in_vgs(self, params, vds):
        device = Mosfet(params)
        previous = -1.0
        for step in range(13):
            vgs = step * 0.25
            current = device.drain_current(vgs, vds)
            assert current >= previous - 1e-30
            previous = current

    @given(mosfet_parameters, st.floats(0.0, 2.0))
    def test_current_monotone_in_vds(self, params, vgs):
        device = Mosfet(params)
        previous = -1.0
        for step in range(13):
            vds = step * 0.25
            current = device.drain_current(vgs, vds)
            assert current >= previous - 1e-30
            previous = current

    @given(mosfet_parameters, supplies)
    def test_current_nonnegative_and_finite(self, params, vdd):
        device = Mosfet(params)
        for vgs in (0.0, params.vt0, vdd):
            current = device.drain_current(vgs, vdd)
            assert current >= 0.0
            assert math.isfinite(current)

    @given(mosfet_parameters, supplies)
    def test_on_current_at_least_off_current(self, params, vdd):
        device = Mosfet(params)
        assert device.on_current(vdd) >= device.off_current(vdd)

    @given(mosfet_parameters, supplies, st.floats(0.01, 0.3))
    def test_raising_vt_never_raises_current(self, params, vdd, shift):
        device = Mosfet(params)
        for vgs in (0.0, 0.5 * vdd, vdd):
            assert device.drain_current(
                vgs, vdd, vt_shift=shift
            ) <= device.drain_current(vgs, vdd) + 1e-30

    @given(mosfet_parameters, st.floats(1.0, 8.0), supplies)
    def test_width_scaling_is_linear(self, params, width, vdd):
        narrow = Mosfet(params, width_um=1.0)
        wide = Mosfet(params, width_um=width)
        expected = width * narrow.on_current(vdd)
        assert math.isclose(wide.on_current(vdd), expected, rel_tol=1e-9)

    @given(mosfet_parameters)
    def test_extracted_swing_matches_parameter(self, params):
        from hypothesis import assume

        # The numeric extraction probes +/-10 mV around a point, so it
        # is only meaningful while that window stays in the
        # subthreshold region (effective V_T comfortably above it).
        effective_vt = params.vt0 - params.dibl * 1.0
        assume(effective_vt > 0.15)
        device = Mosfet(params)
        extracted = device.subthreshold_slope_mv_per_decade(
            vds=1.0, probe_vgs=effective_vt / 2.0
        )
        assert math.isclose(
            extracted, params.subthreshold_swing * 1e3, rel_tol=0.02
        )


class TestStackInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        mosfet_parameters,
        st.lists(st.floats(0.5, 8.0), min_size=1, max_size=4),
        supplies,
    )
    def test_stack_leaks_no_more_than_weakest_device(
        self, params, widths, vdd
    ):
        stack = stack_leakage_current(params, widths, vdd)
        weakest = min(
            Mosfet(params, width_um=w).off_current(vdd) for w in widths
        )
        assert stack <= weakest * (1.0 + 1e-6)

    @settings(max_examples=25, deadline=None)
    @given(mosfet_parameters, st.floats(0.5, 8.0), supplies)
    def test_deeper_stack_leaks_less(self, params, width, vdd):
        shallow = stack_leakage_current(params, [width] * 2, vdd)
        deep = stack_leakage_current(params, [width] * 3, vdd)
        assert deep <= shallow * (1.0 + 1e-6)


class TestCapacitanceInvariants:
    gate_models = st.builds(
        GateCapacitanceModel,
        c_ox_f_per_um2=st.floats(1e-15, 1e-14),
        depletion_floor=st.floats(0.1, 0.9),
        v_mid=st.floats(0.2, 1.5),
        v_width=st.floats(0.1, 1.0),
    )

    @given(gate_models, st.floats(0.1, 5.0))
    def test_switched_capacitance_bounded(self, model, vdd):
        c_sw = model.switched_capacitance(vdd)
        assert model.depletion_floor * model.c_ox_f_per_um2 <= c_sw
        assert c_sw <= model.c_ox_f_per_um2 * (1.0 + 1e-9)

    @given(gate_models)
    def test_switched_capacitance_monotone_in_vdd(self, model):
        values = [
            model.switched_capacitance(0.2 + 0.3 * i) for i in range(10)
        ]
        assert all(b >= a - 1e-30 for a, b in zip(values, values[1:]))

    junction_models = st.builds(
        JunctionCapacitanceModel,
        c_j0_f_per_um2=st.floats(1e-16, 1e-14),
        built_in=st.floats(0.5, 1.2),
        grading=st.floats(0.2, 0.8),
    )

    @given(junction_models)
    def test_junction_switched_capacitance_monotone_down(self, model):
        values = [
            model.switched_capacitance(0.2 + 0.3 * i) for i in range(10)
        ]
        assert all(b <= a + 1e-30 for a, b in zip(values, values[1:]))


class TestThresholdInvariants:
    @given(
        st.floats(0.2, 0.8),
        st.floats(0.1, 0.8),
        st.floats(0.2, 0.5),
        st.floats(0.0, 3.0),
    )
    def test_body_bias_round_trip(self, vt0, gamma, phi_f, vsb):
        model = BodyBiasModel(
            vt0=vt0, gamma=gamma, phi_f=phi_f, max_reverse_bias=5.0
        )
        vt = model.vt_at(vsb)
        assert math.isclose(model.vt_at(model.vsb_for_vt(vt)), vt,
                            rel_tol=1e-9)

    @given(
        st.floats(0.3, 0.6),
        st.floats(0.02, 0.2),
        st.floats(0.0, 3.0),
    )
    def test_soias_linearity(self, vt_standby, coupling, vgb):
        model = SoiasBackGateModel(
            vt_standby=vt_standby,
            coupling=coupling,
            max_back_gate_bias=4.0,
        )
        assert math.isclose(
            model.vt_standby - model.vt_at(vgb),
            coupling * vgb,
            rel_tol=1e-9,
            abs_tol=1e-12,
        )
