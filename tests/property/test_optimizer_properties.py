"""Property-based tests for the recovery optimizers on random netlists."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.technology import soi_low_vt
from repro.power.dualvt import DualVtOptimizer
from repro.power.sizing import GateSizingOptimizer
from tests.property.test_circuit_properties import random_dag_netlist

_TECH = soi_low_vt()


class TestDualVtProperties:
    @given(
        st.integers(0, 5000),
        st.integers(2, 5),
        st.integers(3, 18),
        st.sampled_from([1.0, 1.1]),
    )
    @settings(max_examples=12, deadline=None)
    def test_timing_and_leakage_invariants(
        self, seed, n_inputs, n_gates, budget
    ):
        netlist = random_dag_netlist(seed, n_inputs, n_gates)
        optimizer = DualVtOptimizer(netlist, _TECH, vdd=1.0)
        result = optimizer.optimize(delay_budget=budget)
        # Timing honoured.
        assert result.delay_s <= result.baseline_delay_s * budget * 1.001
        # Leakage never worsens.
        assert result.leakage_a <= result.baseline_leakage_a * (1 + 1e-9)
        # Assignment names are real gates.
        assert result.high_vt_gates <= set(netlist.instances)
        # Reported numbers are reproducible.
        assert abs(
            optimizer.delay(result.high_vt_gates) - result.delay_s
        ) <= 1e-18 + 1e-9 * result.delay_s


class TestSizingProperties:
    @given(
        st.integers(0, 5000),
        st.integers(2, 5),
        st.integers(3, 15),
        st.sampled_from([1.0, 1.15]),
    )
    @settings(max_examples=12, deadline=None)
    def test_timing_and_cost_invariants(
        self, seed, n_inputs, n_gates, budget
    ):
        netlist = random_dag_netlist(seed + 17, n_inputs, n_gates)
        optimizer = GateSizingOptimizer(netlist, _TECH, vdd=1.0)
        result = optimizer.optimize(delay_budget=budget)
        assert result.delay_s <= result.baseline_delay_s * budget * 1.001
        assert result.input_capacitance_f <= (
            result.baseline_input_capacitance_f * (1 + 1e-9)
        )
        assert result.leakage_a <= result.baseline_leakage_a * (1 + 1e-9)
        assert set(result.size_factors) <= set(netlist.instances)
        for factor in result.size_factors.values():
            assert factor in optimizer.allowed_factors
