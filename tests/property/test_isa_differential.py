"""Differential tests: decoded fast engine vs the reference stepper.

Random short programs (every mnemonic reachable, loops bounded) are
executed on both engines; architectural state, retirement counts and
the full functional-unit profile must be bit-identical.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.isa.instructions import FUNCTIONAL_UNITS, instruction_set
from repro.isa.machine import Machine
from repro.isa.profiler import profile_program

# Register conventions for generated programs: r1 is the memory base,
# r14 the loop counter, r15 the link register; bodies write r2..r13.
_BASE, _COUNTER, _LINK = 1, 14, 15
_WRITABLE = list(range(2, 14))
_READABLE = list(range(0, 14))

_RRR_OPS = (
    "ADD", "SUB", "MUL", "MULHU", "AND", "OR", "XOR",
    "SLL", "SRL", "SRA", "SLT", "SLTU",
)
_RRI_OPS = ("ADDI", "ANDI", "ORI", "XORI", "SLTI")
_SHIFT_I_OPS = ("SLLI", "SRLI", "SRAI")
_BRANCH_OPS = ("BEQ", "BNE", "BLT", "BGE", "BLTU", "BGEU")

registers_w = st.sampled_from(_WRITABLE)
registers_r = st.sampled_from(_READABLE)
immediates = st.integers(-32768, 65535)
shifts = st.integers(0, 63)
words = st.integers(0, 0xFFFFFFFF)


@st.composite
def alu_lines(draw):
    """One straight-line ALU instruction."""
    kind = draw(st.sampled_from(("rrr", "rri", "shift", "lui", "nop")))
    if kind == "rrr":
        op = draw(st.sampled_from(_RRR_OPS))
        rd, rs1, rs2 = draw(registers_w), draw(registers_r), draw(registers_r)
        return f"{op} r{rd}, r{rs1}, r{rs2}"
    if kind == "rri":
        op = draw(st.sampled_from(_RRI_OPS))
        rd, rs1, imm = draw(registers_w), draw(registers_r), draw(immediates)
        return f"{op} r{rd}, r{rs1}, {imm}"
    if kind == "shift":
        op = draw(st.sampled_from(_SHIFT_I_OPS))
        rd, rs1, imm = draw(registers_w), draw(registers_r), draw(shifts)
        return f"{op} r{rd}, r{rs1}, {imm}"
    if kind == "lui":
        rd, imm = draw(registers_w), draw(st.integers(0, 0xFFFF))
        return f"LUI r{rd}, {imm}"
    return "NOP"


@st.composite
def segments(draw, index):
    """One program segment; loops and calls are bounded by design."""
    kind = draw(
        st.sampled_from(("alu", "mem", "branch", "loop", "call"))
    )
    lines = []
    subroutine = []
    if kind == "alu":
        for _ in range(draw(st.integers(1, 4))):
            lines.append(draw(alu_lines()))
    elif kind == "mem":
        offset = draw(st.integers(0, 63))
        src = draw(registers_r)
        dst = draw(registers_w)
        lines.append(f"SW r{src}, {offset}(r{_BASE})")
        lines.append(f"LW r{dst}, {offset}(r{_BASE})")
    elif kind == "branch":
        op = draw(st.sampled_from(_BRANCH_OPS))
        rs1, rs2 = draw(registers_r), draw(registers_r)
        skipped = [draw(alu_lines()) for _ in range(draw(st.integers(1, 3)))]
        lines.append(f"{op} r{rs1}, r{rs2}, skip_{index}")
        lines.extend(skipped)
        lines.append(f"skip_{index}:")
    elif kind == "loop":
        count = draw(st.integers(1, 5))
        body = [draw(alu_lines()) for _ in range(draw(st.integers(1, 3)))]
        lines.append(f"ADDI r{_COUNTER}, r0, {count}")
        lines.append(f"loop_{index}:")
        lines.extend(body)
        lines.append(f"ADDI r{_COUNTER}, r{_COUNTER}, -1")
        lines.append(f"BNE r{_COUNTER}, r0, loop_{index}")
    else:  # call — a leaf subroutine placed after HALT
        body = [draw(alu_lines()) for _ in range(draw(st.integers(1, 2)))]
        lines.append(f"JAL r{_LINK}, sub_{index}")
        subroutine.append(f"sub_{index}:")
        subroutine.extend(body)
        subroutine.append(f"JALR r0, r{_LINK}, 0")
    return lines, subroutine


@st.composite
def programs(draw):
    """A random short program covering the whole instruction set."""
    seeds = draw(st.lists(words, min_size=4, max_size=8))
    lines = [f"LUI r{_BASE}, 0", f"ORI r{_BASE}, r{_BASE}, 1024"]
    for i, value in enumerate(seeds):
        reg = _WRITABLE[i % len(_WRITABLE)]
        lines.append(f"LUI r{reg}, {(value >> 16) & 0xFFFF}")
        lines.append(f"ORI r{reg}, r{reg}, {value & 0xFFFF}")
    subroutines = []
    for index in range(draw(st.integers(1, 6))):
        body, sub = draw(segments(index))
        lines.extend(body)
        subroutines.extend(sub)
    lines.append("HALT")
    lines.extend(subroutines)
    return "\n".join(lines)


def _run_both(source):
    """Execute on both engines; return the two machines."""
    reference = Machine(assemble(source, name="diff"))
    reference.run()
    fast = Machine(assemble(source, name="diff"))
    fast.run_fast()
    return reference, fast


def _assert_same_state(reference, fast):
    assert fast.registers == reference.registers
    assert fast.memory == reference.memory
    assert fast.instructions_retired == reference.instructions_retired
    assert fast.pc == reference.pc
    assert fast.halted == reference.halted


def _assert_same_profile(source):
    program = assemble(source, name="diff")
    ref = profile_program(
        assemble(source, name="diff"), engine="reference"
    )
    fast = profile_program(program, engine="fast")
    assert fast.total_instructions == ref.total_instructions
    for unit in FUNCTIONAL_UNITS:
        assert fast.stats(unit).uses == ref.stats(unit).uses, unit
        assert fast.stats(unit).runs == ref.stats(unit).runs, unit
        assert fast.fga(unit) == ref.fga(unit), unit
        assert fast.bga(unit) == ref.bga(unit), unit


class TestDifferentialExecution:
    @given(programs())
    @settings(max_examples=60, deadline=None)
    def test_random_programs_same_state(self, source):
        reference, fast = _run_both(source)
        _assert_same_state(reference, fast)

    @given(programs())
    @settings(max_examples=40, deadline=None)
    def test_random_programs_same_profile(self, source):
        _assert_same_profile(source)

    def test_every_mnemonic_covered_differentially(self):
        # One deterministic program touching all 34 mnemonics, so the
        # decoded compiler can never silently miss an opcode.
        source = """
        LUI r1, 0
        ORI r1, r1, 1024
        LUI r2, 43981
        ORI r2, r2, 17185
        ADDI r3, r2, -5
        ADD r4, r2, r3
        SUB r5, r4, r2
        MUL r6, r2, r3
        MULHU r7, r2, r3
        AND r8, r2, r3
        ANDI r9, r2, -256
        OR r10, r2, r3
        ORI r11, r2, -16
        XOR r12, r2, r3
        XORI r13, r2, 65535
        SLL r4, r2, r3
        SLLI r5, r2, 7
        SRL r6, r2, r3
        SRLI r7, r2, 3
        SRA r8, r2, r3
        SRAI r9, r2, 5
        SLT r10, r3, r2
        SLTI r11, r3, 100
        SLTU r12, r3, r2
        SW r2, 4(r1)
        LW r13, 4(r1)
        NOP
        BEQ r2, r2, t1
        NOP
        t1: BNE r2, r3, t2
        NOP
        t2: BLT r3, r2, t3
        NOP
        t3: BGE r2, r3, t4
        NOP
        t4: BLTU r3, r2, t5
        NOP
        t5: BGEU r2, r3, t6
        NOP
        t6: JAL r15, sub
        ADDI r14, r0, 2
        again: ADDI r14, r14, -1
        BNE r14, r0, again
        HALT
        sub: ADDI r12, r12, 1
        JALR r0, r15, 0
        """
        mnemonics = {
            line.split(":")[-1].split()[0]
            for line in source.splitlines()
            if line.strip()
        }
        assert mnemonics >= set(instruction_set())
        reference, fast = _run_both(source)
        _assert_same_state(reference, fast)
        _assert_same_profile(source)

    @given(st.integers(-32768, 65535), words)
    @settings(max_examples=40, deadline=None)
    def test_ori_immediate_masking_matches(self, imm, value):
        # Satellite regression: ORI must mask its immediate to the full
        # 32-bit word in both paths (negative immediates included).
        source = f"""
        LUI r2, {(value >> 16) & 0xFFFF}
        ORI r2, r2, {value & 0xFFFF}
        ORI r3, r2, {imm}
        HALT
        """
        reference, fast = _run_both(source)
        _assert_same_state(reference, fast)
        assert reference.read_register(3) == value | (imm & 0xFFFFFFFF)
