"""Differential tests: batched variation engine vs the per-sample path.

Random (cell, V_DD, load, shift-vector) corners are evaluated through
both the decoded :class:`VariationPlan` and the per-sample
``propagation_delay``/``leakage_current`` chain; the results must be
bit-identical — not approximately equal.  A second suite checks that
adaptive contour refinement evaluates exactly the same values a
uniform finest-resolution grid would, and resolves the same
zero-crossing cells.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.contour import (
    energy_ratio_surface,
    zero_crossing_cells,
)
from repro.device.technology import bulk_cmos_06um, soi_low_vt
from repro.power.energy import ModuleEnergyParameters
from repro.tech.characterize import CellCharacterizer
from repro.tech.cells import standard_cells

_CELLS = standard_cells()

technologies = st.sampled_from([soi_low_vt, bulk_cmos_06um])
cell_names = st.sampled_from(["INV", "NAND2", "NOR2", "NAND3", "AOI21"])
vdds = st.floats(0.3, 2.0, allow_nan=False, allow_infinity=False)
loads = st.floats(0.0, 50e-15, allow_nan=False, allow_infinity=False)
shift_vectors = st.lists(
    st.floats(-0.1, 0.1, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=5,
)


class TestPlanMatchesPerSamplePath:
    @settings(deadline=None, max_examples=20)
    @given(
        make_technology=technologies,
        name=cell_names,
        vdd=vdds,
        load_f=loads,
        shifts=shift_vectors,
    )
    def test_delays_bit_identical(
        self, make_technology, name, vdd, load_f, shifts
    ):
        cell = _CELLS[name]
        plan = CellCharacterizer(make_technology()).plan_variation(
            cell, vdd, load_f
        )
        reference = CellCharacterizer(make_technology())
        expected = [
            reference.propagation_delay(cell, vdd, load_f, vt_shift=s)
            for s in shifts
        ]
        assert plan.delays(shifts) == expected

    @settings(deadline=None, max_examples=15)
    @given(
        make_technology=technologies,
        name=cell_names,
        vdd=vdds,
        shifts=shift_vectors,
    )
    def test_leakages_bit_identical(
        self, make_technology, name, vdd, shifts
    ):
        cell = _CELLS[name]
        plan = CellCharacterizer(make_technology()).plan_variation(
            cell, vdd
        )
        reference = CellCharacterizer(make_technology())
        expected = [
            reference.leakage_current(cell, vdd, vt_shift=s)
            for s in shifts
        ]
        assert plan.leakages(shifts) == expected

    @settings(deadline=None, max_examples=10)
    @given(name=cell_names, vdd=vdds, shifts=shift_vectors)
    def test_shared_characterizer_interleaving(self, name, vdd, shifts):
        # Plan and per-sample calls share one characterizer's memos;
        # alternating between them must still equal a pure per-sample
        # run on a fresh characterizer.
        cell = _CELLS[name]
        shared = CellCharacterizer(soi_low_vt())
        reference = CellCharacterizer(soi_low_vt())
        expected = [
            reference.leakage_current(cell, vdd, vt_shift=s)
            for s in shifts
        ]
        plan = shared.plan_variation(cell, vdd)
        mixed = []
        for index, shift in enumerate(shifts):
            if index % 2:
                mixed.append(
                    shared.leakage_current(cell, vdd, vt_shift=shift)
                )
            else:
                mixed.extend(plan.leakages([shift]))
        assert mixed == expected


def _surface_module() -> ModuleEnergyParameters:
    return ModuleEnergyParameters(
        name="prop-adder",
        switched_capacitance_f=45e-12,
        leakage_low_vt_a=2.0e-6,
        leakage_high_vt_a=4.0e-9,
        back_gate_capacitance_f=18e-12,
        back_gate_swing_v=2.0,
    )


class TestAdaptiveSurfaceMatchesUniformGrid:
    @settings(deadline=None, max_examples=20)
    @given(
        base_n=st.integers(3, 6),
        levels=st.integers(1, 3),
        band=st.floats(0.02, 0.5, allow_nan=False, allow_infinity=False),
        t_cycle_s=st.sampled_from([1e-6, 1e-5, 1e-4]),
    )
    def test_refined_points_and_contour_match(
        self, base_n, levels, band, t_cycle_s
    ):
        module = _surface_module()
        grid = [i / base_n for i in range(1, base_n + 1)]
        surface = energy_ratio_surface(
            module, 1.0, t_cycle_s, grid, grid,
            refine_levels=levels, refine_band=band,
        )
        refined = surface.refined
        uniform = energy_ratio_surface(
            module, 1.0, t_cycle_s, refined.xs, refined.ys
        )
        # Every point the adaptive pass evaluated is bit-identical to
        # the same lattice point of the full uniform grid...
        for (i, j), value in refined.known().items():
            assert uniform.grid.zs[i][j] == value
        # ...and the cells it resolves as zero crossings are exactly
        # the uniform grid's (refinement may only miss cells whose
        # corners it never evaluated, and those must not straddle).
        assert refined.zero_cells() == zero_crossing_cells(
            uniform.grid.zs
        )

    @settings(deadline=None, max_examples=10)
    @given(
        base_n=st.integers(3, 6),
        levels=st.integers(1, 3),
    )
    def test_base_grid_unchanged_by_refinement(self, base_n, levels):
        module = _surface_module()
        grid = [i / base_n for i in range(1, base_n + 1)]
        plain = energy_ratio_surface(module, 1.0, 1e-5, grid, grid)
        refined = energy_ratio_surface(
            module, 1.0, 1e-5, grid, grid, refine_levels=levels
        )
        assert refined.grid.zs == plain.grid.zs
