"""Documentation accuracy tests: examples in docs must actually work."""

import pathlib
import re

import pytest

DOCS = pathlib.Path(__file__).parent.parent / "docs"
README = pathlib.Path(__file__).parent.parent / "README.md"


def fenced_blocks(path):
    text = path.read_text()
    return re.findall(r"```(?:\w*)\n(.*?)```", text, flags=re.DOTALL)


class TestNetlistFormatDoc:
    @pytest.fixture(scope="class")
    def example(self):
        blocks = fenced_blocks(DOCS / "netlist-format.md")
        candidates = [b for b in blocks if b.lstrip().startswith("#")]
        assert candidates, "example block missing from the doc"
        return candidates[0]

    def test_example_parses_and_accumulates(self, example):
        from repro.circuits.io import parse_netlist

        netlist = parse_netlist(example)
        # The documented circuit is a 2-bit accumulator: q += a.
        history = netlist.evaluate_sequence(
            [{"a[0]": 1, "a[1]": 0}] * 4
        )
        counts = [
            history[k]["q[0]"] + 2 * history[k]["q[1]"] for k in range(4)
        ]
        assert counts == [0, 1, 2, 3]

    def test_grammar_block_lists_every_keyword(self):
        text = (DOCS / "netlist-format.md").read_text()
        for keyword in ("netlist", "input", "constant", "gate",
                        "register", "output"):
            assert keyword in text

    def test_documented_catalog_matches_code(self):
        from repro.tech.cells import standard_cells

        text = (DOCS / "netlist-format.md").read_text()
        for cell_name in standard_cells():
            assert f"`{cell_name}`" in text, cell_name


class TestIsaDoc:
    def test_documented_mnemonics_exist(self):
        from repro.isa.instructions import instruction_set

        text = (DOCS / "isa.md").read_text()
        for mnemonic in instruction_set():
            assert mnemonic in text, mnemonic

    def test_documented_data_base_matches_code(self):
        from repro.isa.assembler import DATA_BASE

        text = (DOCS / "isa.md").read_text()
        assert hex(DATA_BASE) in text

    def test_doc_example_assembles_and_runs(self):
        from repro.isa.assembler import assemble
        from repro.isa.machine import Machine

        blocks = fenced_blocks(DOCS / "isa.md")
        sources = [b for b in blocks if ".text" in b and "HALT" in b]
        assert sources, "assembly example missing from the ISA doc"
        machine = Machine(assemble(sources[0]))
        machine.run()
        assert machine.halted
        assert machine.instructions_retired > 0


class TestReadme:
    def test_quickstart_snippet_runs(self):
        blocks = fenced_blocks(README)
        snippets = [
            b for b in blocks if "LowVoltageDesignFlow" in b and "import" in b
        ]
        assert snippets, "quickstart snippet missing"
        # Shrink the workload so the doc test stays fast.
        code = snippets[0].replace("random_blocks(8)", "random_blocks(1)")
        code = code.replace("standard_datapath()",
                            "standard_datapath(width=4, stimulus_vectors=8)")
        namespace = {}
        exec(compile(code, "<readme>", "exec"), namespace)  # noqa: S102

    def test_example_scripts_listed_exist(self):
        text = README.read_text()
        root = README.parent
        for match in re.findall(r"python (examples/\w+\.py)", text):
            assert (root / match).exists(), match

    def test_cli_commands_listed_parse(self):
        from repro.cli import build_parser

        parser = build_parser()
        text = README.read_text()
        for line in re.findall(r"python -m repro ([^\n]+)", text):
            tokens = line.split("#")[0].split()
            # Replace file outputs with a throwaway path.
            tokens = [
                t if t != "soias.lib.json" else "/tmp/x.json"
                for t in tokens
            ]
            parser.parse_args(tokens)  # must not SystemExit
