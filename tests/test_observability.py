"""Tests for the repro.obs instrumentation subsystem and its wiring."""

import json

import pytest

from repro import obs
from repro.device.technology import soi_low_vt
from repro.errors import OptimizationError
from repro.power.optimizer import FixedThroughputOptimizer, RingOscillatorModel
from repro.tech.cells import standard_cells
from repro.tech.characterize import CellCharacterizer


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    obs.disable()
    yield
    obs.reset()
    obs.disable()


class TestObsCore:
    def test_disabled_by_default_and_noop(self):
        assert not obs.is_enabled()
        obs.incr("x")
        obs.gauge("g", 1.0)
        obs.observe_seconds("t", 0.5)
        snap = obs.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["timers"] == {}

    def test_enable_records_and_disable_stops(self):
        obs.enable()
        obs.incr("x")
        obs.incr("x", 4)
        obs.gauge("g", 2.5)
        obs.observe_seconds("t", 0.25)
        obs.observe_seconds("t", 0.75)
        obs.disable()
        obs.incr("x")  # ignored
        assert obs.counter_value("x") == 5
        snap = obs.snapshot()
        assert snap["gauges"]["g"] == 2.5
        assert snap["timers"]["t"]["count"] == 2
        assert snap["timers"]["t"]["total_s"] == pytest.approx(1.0)

    def test_span_times_block_when_enabled(self):
        obs.enable()
        with obs.span("work"):
            pass
        count, total = obs.timer_value("work")
        assert count == 1
        assert total >= 0.0

    def test_span_is_shared_noop_when_disabled(self):
        assert obs.span("a") is obs.span("b")
        with obs.span("a"):
            pass
        assert obs.timer_value("a") == (0, 0.0)

    def test_enabled_scope_restores_and_isolates(self):
        obs.enable()
        obs.incr("outer")
        with obs.enabled_scope(fresh=True):
            assert obs.counter_value("outer") == 0
            obs.incr("inner")
        assert obs.is_enabled()  # previous state restored
        obs.disable()
        with obs.enabled_scope():
            assert obs.is_enabled()
        assert not obs.is_enabled()

    def test_reset_clears_everything(self):
        obs.enable()
        obs.incr("x")
        obs.gauge("g", 1.0)
        obs.observe_seconds("t", 1.0)
        obs.reset()
        snap = obs.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["timers"] == {}

    def test_format_summary(self):
        assert "no metrics" in obs.format_summary()
        obs.enable()
        obs.incr("hits", 3)
        obs.gauge("rate", 0.5)
        text = obs.format_summary(title="T")
        assert "T" in text
        assert "hits" in text
        assert "rate" in text

    def test_dump_json(self, tmp_path):
        obs.enable()
        obs.incr("x", 2)
        path = tmp_path / "metrics.json"
        obs.dump_json(str(path), extra={"command": "test"})
        payload = json.loads(path.read_text())
        assert payload["counters"]["x"] == 2
        assert payload["command"] == "test"

    def test_cache_info_hit_rate(self):
        info = obs.CacheInfo(hits=3, misses=1, currsize=4)
        assert info.hit_rate == pytest.approx(0.75)
        assert obs.CacheInfo(0, 0, 0).hit_rate == 0.0


class TestCharacterizerCacheInfo:
    def test_hits_and_misses_counted(self):
        characterizer = CellCharacterizer(soi_low_vt())
        inverter = standard_cells()["INV"]
        assert characterizer.cache_info().hits == 0
        first = characterizer.propagation_delay(inverter, 1.0, 10e-15)
        after_miss = characterizer.cache_info()
        assert after_miss.misses > 0
        assert after_miss.currsize > 0
        second = characterizer.propagation_delay(inverter, 1.0, 10e-15)
        assert second == first
        assert characterizer.cache_info().hits > after_miss.hits

    def test_family_sizes_tracks_memo_families(self):
        characterizer = CellCharacterizer(soi_low_vt())
        inverter = standard_cells()["INV"]
        characterizer.propagation_delay(inverter, 1.0, 10e-15)
        characterizer.leakage_current(inverter, 1.0)
        families = characterizer.family_sizes()
        assert families.get("delay", 0) >= 1
        assert families.get("leak", 0) >= 1
        assert sum(families.values()) == characterizer.cache_info().currsize

    def test_clear_cache_zeroes_statistics(self):
        characterizer = CellCharacterizer(soi_low_vt())
        inverter = standard_cells()["INV"]
        characterizer.propagation_delay(inverter, 1.0, 10e-15)
        characterizer.clear_cache()
        info = characterizer.cache_info()
        assert (info.hits, info.misses, info.currsize) == (0, 0, 0)

    def test_per_family_obs_counters(self):
        with obs.enabled_scope():
            characterizer = CellCharacterizer(soi_low_vt())
            inverter = standard_cells()["INV"]
            characterizer.propagation_delay(inverter, 1.0, 10e-15)
            characterizer.propagation_delay(inverter, 1.0, 10e-15)
            counters = obs.snapshot()["counters"]
        assert counters["characterizer.misses.delay"] >= 1
        assert counters["characterizer.hits.delay"] >= 1


class TestRingCornerCacheBound:
    def test_corner_lru_respects_bound(self):
        ring = RingOscillatorModel(soi_low_vt(), stages=11, max_corners=4)
        for i in range(10):
            ring.stage_delay(1.0, 0.05 + 0.02 * i)
        info = ring.cache_info()
        assert info.currsize <= 4
        assert info.maxsize == 4
        assert info.misses == 10

    def test_eviction_is_least_recently_used(self):
        ring = RingOscillatorModel(soi_low_vt(), stages=11, max_corners=2)
        ring.stage_delay(1.0, 0.1)  # miss: {0.1}
        ring.stage_delay(1.0, 0.2)  # miss: {0.1, 0.2}
        ring.stage_delay(1.0, 0.1)  # hit, 0.1 becomes most recent
        ring.stage_delay(1.0, 0.3)  # miss, evicts 0.2
        assert 0.1 in ring._corners
        assert 0.3 in ring._corners
        assert 0.2 not in ring._corners

    def test_bounded_cache_is_bit_identical_to_fresh_model(self):
        # Cache-bound regression: evictions must never change results.
        bounded = RingOscillatorModel(soi_low_vt(), stages=11, max_corners=2)
        fresh = RingOscillatorModel(soi_low_vt(), stages=11)
        vts = [0.05, 0.15, 0.25, 0.05, 0.15, 0.25]
        bounded_delays = [bounded.stage_delay(0.8, vt) for vt in vts]
        fresh_delays = [fresh.stage_delay(0.8, vt) for vt in vts]
        assert bounded_delays == fresh_delays
        assert bounded.cache_info().currsize <= 2

    def test_clear_corners(self):
        ring = RingOscillatorModel(soi_low_vt(), stages=11)
        ring.stage_delay(1.0, 0.2)
        ring.clear_corners()
        info = ring.cache_info()
        assert (info.hits, info.misses, info.currsize) == (0, 0, 0)

    def test_bad_max_corners_rejected(self):
        with pytest.raises(OptimizationError):
            RingOscillatorModel(soi_low_vt(), max_corners=0)

    def test_eviction_counter(self):
        with obs.enabled_scope():
            ring = RingOscillatorModel(
                soi_low_vt(), stages=11, max_corners=2
            )
            for i in range(5):
                ring.stage_delay(1.0, 0.05 + 0.05 * i)
            counters = obs.snapshot()["counters"]
        assert counters["ring.corner_evictions"] == 3
        assert counters["ring.corner_misses"] == 5


class TestOptimizerInstrumentation:
    def test_sweep_and_optimum_record_probes(self):
        ring = RingOscillatorModel(soi_low_vt(), stages=11)
        optimizer = FixedThroughputOptimizer(ring, cycle_stages=22)
        target = 4.0 * ring.stage_delay(1.0, 0.2)
        with obs.enabled_scope():
            optimizer.sweep([0.1, 0.2, 0.3], target)
            optimizer.optimum(target, vt_bounds=(0.05, 0.45))
            snap = obs.snapshot()
        counters = snap["counters"]
        assert counters["optimizer.vdd_solves"] >= 3
        assert counters["optimizer.delay_probes"] > 0
        assert counters["optimizer.golden_probes"] > 0
        assert snap["timers"]["optimizer.sweep"]["count"] == 1
        assert snap["timers"]["optimizer.optimum"]["count"] == 1

    def test_low_bound_clamp_counted(self):
        ring = RingOscillatorModel(soi_low_vt(), stages=11)
        with obs.enabled_scope():
            vdd = ring.solve_vdd_for_delay(1.0, vt=0.05)
            counters = obs.snapshot()["counters"]
        assert vdd == pytest.approx(soi_low_vt().min_vdd)
        assert counters["optimizer.low_bound_clamps"] == 1

    def test_delay_probes_match_characterizer_queries(self):
        # Regression: probes used to be counted inside the solve's
        # batched accounting, so energy_per_cycle / locus_point stage
        # delays escaped the count.  Counting at the query site makes
        # the invariant exact: every stage_delay is exactly one
        # "fanout"-family memo access on the characterizer.
        ring = RingOscillatorModel(soi_low_vt(), stages=11)
        optimizer = FixedThroughputOptimizer(ring, cycle_stages=22)
        target = 4.0 * ring.stage_delay(1.0, 0.2)
        with obs.enabled_scope():
            optimizer.sweep([0.1, 0.2, 0.3], target)
            optimizer.optimum(target, vt_bounds=(0.05, 0.45))
            counters = obs.snapshot()["counters"]
        fanout_queries = counters.get(
            "characterizer.hits.fanout", 0
        ) + counters.get("characterizer.misses.fanout", 0)
        assert counters["optimizer.delay_probes"] == fanout_queries

    def test_yield_solve_counters(self):
        from repro.power.optimizer import VariationSpec

        ring = RingOscillatorModel(soi_low_vt(), stages=11)
        optimizer = FixedThroughputOptimizer(
            ring, cycle_stages=22,
            variation=VariationSpec(n_samples=20),
        )
        target = 4.0 * ring.stage_delay(1.0, 0.2)
        with obs.enabled_scope():
            optimizer.locus_point(0.2, target)
            snap = obs.snapshot()
        counters = snap["counters"]
        assert counters["optimizer.yield_solves"] == 1
        # Bracket checks + bisection + the energy point's percentile.
        assert counters["optimizer.mc_probes"] > 2
        assert snap["gauges"]["optimizer.leakage_amplification"] > 1.0
        assert (
            snap["gauges"]["optimizer.leakage_amplification_lognormal"]
            > 1.0
        )

    def test_nominal_solve_records_no_yield_counters(self):
        ring = RingOscillatorModel(soi_low_vt(), stages=11)
        optimizer = FixedThroughputOptimizer(ring, cycle_stages=22)
        target = 4.0 * ring.stage_delay(1.0, 0.2)
        with obs.enabled_scope():
            optimizer.locus_point(0.2, target)
            counters = obs.snapshot()["counters"]
        assert "optimizer.yield_solves" not in counters
        assert "optimizer.mc_probes" not in counters


class TestMachineInstrumentation:
    SOURCE = "LI r1, 5\nloop: ADDI r1, r1, -1\nBNE r1, zero, loop\nHALT"

    def _machine(self):
        from repro.isa.assembler import assemble
        from repro.isa.machine import Machine

        return Machine(assemble(self.SOURCE))

    def test_run_records_instruction_counter_and_timer(self):
        with obs.enabled_scope(fresh=True):
            retired = self._machine().run()
            snap = obs.snapshot()
        assert snap["counters"]["machine.instructions"] == retired
        assert snap["timers"]["machine.run"]["count"] == 1
        assert snap["gauges"]["machine.instructions_per_s"] > 0

    def test_run_fast_records_decode_span_and_rate(self):
        with obs.enabled_scope(fresh=True):
            retired = self._machine().run_fast()
            snap = obs.snapshot()
        assert snap["counters"]["machine.instructions"] == retired
        assert snap["timers"]["machine.decode"]["count"] == 1
        assert snap["timers"]["machine.run_fast"]["count"] == 1
        assert snap["gauges"]["machine.instructions_per_s"] > 0

    def test_run_counted_records_its_own_timer(self):
        with obs.enabled_scope(fresh=True):
            counts = self._machine().run_counted()
            snap = obs.snapshot()
        assert snap["counters"]["machine.instructions"] == counts.retired
        assert snap["timers"]["machine.run_counted"]["count"] == 1

    def test_decode_span_recorded_once(self):
        machine = self._machine()
        with obs.enabled_scope(fresh=True):
            machine.run_fast()
            machine.decode()  # second call is a no-op
            snap = obs.snapshot()
        assert snap["timers"]["machine.decode"]["count"] == 1

    def test_disabled_obs_records_nothing(self):
        assert not obs.is_enabled()
        self._machine().run_fast()
        assert obs.snapshot()["counters"] == {}


class TestCliMetrics:
    def test_optimize_metrics_prints_summary(self, capsys):
        from repro.cli import main

        code = main(["optimize", "--stages", "11", "--metrics"])
        output = capsys.readouterr().out
        assert code == 0
        assert "Metrics: optimize" in output
        assert "characterizer.hit_rate" in output
        assert "optimizer.golden_probes" in output
        # The flag must not leave instrumentation globally enabled.
        assert not obs.is_enabled()

    def test_metrics_json_written(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "metrics.json"
        code = main(
            ["optimize", "--stages", "11", "--metrics-json", str(path)]
        )
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["command"] == "optimize"
        assert payload["counters"]  # non-empty
        assert "optimizer.sweep" in payload["timers"]

    def test_contour_metrics_and_progress(self, capsys):
        from repro.cli import main

        code = main(
            [
                "contour", "--grid", "4", "--vectors", "10",
                "--width", "4", "--progress", "--metrics",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "Metrics: contour" in captured.out
        assert "flow.ratio_surface" in captured.out
        assert "16/16 cells" in captured.err
