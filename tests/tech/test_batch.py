"""Tests for the decoded batch-evaluation plan (VariationPlan)."""

import pytest

from repro import obs
from repro.device.technology import bulk_cmos_06um, soi_low_vt
from repro.errors import CharacterizationError
from repro.tech.batch import VariationPlan
from repro.tech.characterize import CellCharacterizer
from repro.tech.cells import standard_cells

SHIFTS = [0.0, 0.02, -0.03, 0.051, -0.0149, 0.1, -0.08]


@pytest.fixture(scope="module")
def cells():
    return standard_cells()


@pytest.fixture
def characterizer():
    return CellCharacterizer(soi_low_vt())


class TestBitIdentity:
    @pytest.mark.parametrize("name", ["INV", "NAND2", "NOR3", "AOI21"])
    @pytest.mark.parametrize("vdd", [0.4, 0.8, 1.5])
    def test_delays_match_per_sample_path(
        self, characterizer, cells, name, vdd
    ):
        cell = cells[name]
        plan = characterizer.plan_variation(cell, vdd, 10e-15)
        reference = CellCharacterizer(soi_low_vt())
        expected = [
            reference.propagation_delay(cell, vdd, 10e-15, vt_shift=s)
            for s in SHIFTS
        ]
        assert plan.delays(SHIFTS) == expected

    @pytest.mark.parametrize("name", ["INV", "NAND2", "NOR3", "AOI21"])
    @pytest.mark.parametrize("vdd", [0.4, 0.8, 1.5])
    def test_leakages_match_per_sample_path(
        self, characterizer, cells, name, vdd
    ):
        cell = cells[name]
        plan = characterizer.plan_variation(cell, vdd)
        reference = CellCharacterizer(soi_low_vt())
        expected = [
            reference.leakage_current(cell, vdd, vt_shift=s)
            for s in SHIFTS
        ]
        assert plan.leakages(SHIFTS) == expected

    def test_output_high_probability_weighting(self, characterizer, cells):
        cell = cells["NAND2"]
        plan = characterizer.plan_variation(
            cell, 0.9, output_high_probability=0.8
        )
        reference = CellCharacterizer(soi_low_vt())
        expected = [
            reference.leakage_current(
                cell, 0.9, vt_shift=s, output_high_probability=0.8
            )
            for s in SHIFTS
        ]
        assert plan.leakages(SHIFTS) == expected

    def test_other_technology(self, cells):
        characterizer = CellCharacterizer(bulk_cmos_06um())
        plan = characterizer.plan_variation(cells["NOR2"], 1.2, 5e-15)
        reference = CellCharacterizer(bulk_cmos_06um())
        assert plan.delays(SHIFTS) == [
            reference.propagation_delay(
                cells["NOR2"], 1.2, 5e-15, vt_shift=s
            )
            for s in SHIFTS
        ]
        assert plan.leakages(SHIFTS) == [
            reference.leakage_current(cells["NOR2"], 1.2, vt_shift=s)
            for s in SHIFTS
        ]

    def test_scalar_conveniences_match_vector_loop(
        self, characterizer, cells
    ):
        plan = characterizer.plan_variation(cells["INV"], 0.7, 10e-15)
        assert plan.delay(0.02) == plan.delays([0.02])[0]
        assert plan.leakage(0.02) == plan.leakages([0.02])[0]

    def test_interleaving_with_per_sample_calls_on_one_characterizer(
        self, characterizer, cells
    ):
        # The plan shares its characterizer's stack-leakage memos, so
        # mixing plan and per-sample calls in any order must agree
        # with a pure per-sample run.
        cell = cells["NAND3"]
        reference = CellCharacterizer(soi_low_vt())
        expected = [
            reference.leakage_current(cell, 0.6, vt_shift=s)
            for s in SHIFTS
        ]
        plan = characterizer.plan_variation(cell, 0.6)
        first = plan.leakages(SHIFTS[:3])
        middle = [
            characterizer.leakage_current(cell, 0.6, vt_shift=s)
            for s in SHIFTS[3:5]
        ]
        last = plan.leakages(SHIFTS[5:])
        assert first + middle + last == expected


class TestPlanMemo:
    def test_same_corner_returns_same_plan(self, characterizer, cells):
        first = characterizer.plan_variation(cells["INV"], 0.8, 10e-15)
        again = characterizer.plan_variation(cells["INV"], 0.8, 10e-15)
        assert first is again

    def test_distinct_corners_get_distinct_plans(
        self, characterizer, cells
    ):
        a = characterizer.plan_variation(cells["INV"], 0.8, 10e-15)
        b = characterizer.plan_variation(cells["INV"], 0.9, 10e-15)
        c = characterizer.plan_variation(cells["NAND2"], 0.8, 10e-15)
        assert a is not b and a is not c

    def test_clear_cache_invalidates_plans(self, characterizer, cells):
        first = characterizer.plan_variation(cells["INV"], 0.8, 10e-15)
        characterizer.clear_cache()
        again = characterizer.plan_variation(cells["INV"], 0.8, 10e-15)
        assert first is not again
        assert again.delays(SHIFTS) == first.delays(SHIFTS)

    def test_uncached_characterizer_builds_fresh_plans(self, cells):
        characterizer = CellCharacterizer(soi_low_vt(), cache=False)
        first = characterizer.plan_variation(cells["INV"], 0.8)
        again = characterizer.plan_variation(cells["INV"], 0.8)
        assert first is not again


class TestValidation:
    def test_bad_vdd_rejected(self, characterizer, cells):
        with pytest.raises(CharacterizationError):
            characterizer.plan_variation(cells["INV"], 0.0)

    def test_negative_load_rejected(self, characterizer, cells):
        with pytest.raises(CharacterizationError, match="load"):
            characterizer.plan_variation(cells["INV"], 1.0, -1e-15)

    def test_bad_probability_rejected(self, characterizer, cells):
        with pytest.raises(
            CharacterizationError, match="output_high_probability"
        ):
            characterizer.plan_variation(
                cells["INV"], 1.0, output_high_probability=1.5
            )


class TestObservability:
    def test_plan_builds_counted_on_miss_only(self, cells):
        with obs.enabled_scope():
            characterizer = CellCharacterizer(soi_low_vt())
            characterizer.plan_variation(cells["INV"], 0.8)
            characterizer.plan_variation(cells["INV"], 0.8)
            characterizer.plan_variation(cells["INV"], 0.9)
            assert obs.counter_value("variation.plan_builds") == 2

    def test_samples_batched_counts_evaluations(self, cells):
        with obs.enabled_scope():
            characterizer = CellCharacterizer(soi_low_vt())
            plan = characterizer.plan_variation(cells["INV"], 0.8, 1e-15)
            plan.delays(SHIFTS)
            plan.leakages(SHIFTS[:4])
            assert obs.counter_value("variation.samples_batched") == (
                len(SHIFTS) + 4
            )


class TestDirectBuild:
    def test_classmethod_matches_characterizer_entry_point(
        self, characterizer, cells
    ):
        plan = VariationPlan.build(
            characterizer, cells["NAND2"], 0.7, 10e-15
        )
        via_api = characterizer.plan_variation(cells["NAND2"], 0.7, 10e-15)
        assert plan.delays(SHIFTS) == via_api.delays(SHIFTS)
        assert plan.leakages(SHIFTS) == via_api.leakages(SHIFTS)
