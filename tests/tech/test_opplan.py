"""Unit tests for the decoded operating-plan engine.

Bit-identity against the per-point chain is covered by
``tests/property/test_opplan_differential.py``; this module pins the
plumbing — plan memoization in the characterizer, cache invalidation,
input validation, error parity on bad corners, and the
``optimizer.plan_builds`` counter.
"""

import pytest

from repro import obs
from repro.device.technology import soi_low_vt
from repro.errors import CharacterizationError, DeviceModelError
from repro.tech.characterize import CellCharacterizer
from repro.tech.cells import standard_cells

_CELLS = standard_cells()


@pytest.fixture(autouse=True)
def _reset_obs():
    obs.reset()
    yield
    obs.reset()


class TestPlanMemoization:
    def test_same_corner_returns_same_plan(self):
        characterizer = CellCharacterizer(soi_low_vt())
        inv = _CELLS["INV"]
        first = characterizer.plan_operating(inv, fanout=1)
        second = characterizer.plan_operating(inv, fanout=1)
        assert first is second

    def test_distinct_loads_get_distinct_plans(self):
        characterizer = CellCharacterizer(soi_low_vt())
        inv = _CELLS["INV"]
        fanout_plan = characterizer.plan_operating(inv, fanout=2)
        load_plan = characterizer.plan_operating(inv, load_f=10e-15)
        assert fanout_plan is not load_plan
        assert fanout_plan.fanout == 2
        assert load_plan.load_f == 10e-15

    def test_clear_cache_drops_plans(self):
        characterizer = CellCharacterizer(soi_low_vt())
        inv = _CELLS["INV"]
        stale = characterizer.plan_operating(inv, fanout=1)
        characterizer.clear_cache()
        assert characterizer.plan_operating(inv, fanout=1) is not stale

    def test_uncached_characterizer_builds_fresh_plans(self):
        characterizer = CellCharacterizer(soi_low_vt(), cache=False)
        inv = _CELLS["INV"]
        first = characterizer.plan_operating(inv, fanout=1)
        second = characterizer.plan_operating(inv, fanout=1)
        assert first is not second

    def test_plan_builds_counter(self):
        inv = _CELLS["INV"]
        nand = _CELLS["NAND2"]
        with obs.enabled_scope():
            characterizer = CellCharacterizer(soi_low_vt())
            characterizer.plan_operating(inv, fanout=1)
            characterizer.plan_operating(inv, fanout=1)  # memo hit
            characterizer.plan_operating(nand, fanout=1)
            counters = obs.snapshot()["counters"]
        assert counters["optimizer.plan_builds"] == 2

    def test_plan_builds_counter_uncached(self):
        inv = _CELLS["INV"]
        with obs.enabled_scope():
            characterizer = CellCharacterizer(soi_low_vt(), cache=False)
            characterizer.plan_operating(inv, fanout=1)
            characterizer.plan_operating(inv, fanout=1)
            counters = obs.snapshot()["counters"]
        assert counters["optimizer.plan_builds"] == 2


class TestValidation:
    def test_negative_load_rejected(self):
        characterizer = CellCharacterizer(soi_low_vt())
        with pytest.raises(CharacterizationError, match="load"):
            characterizer.plan_operating(_CELLS["INV"], load_f=-1e-15)

    def test_bad_fanout_rejected(self):
        characterizer = CellCharacterizer(soi_low_vt())
        with pytest.raises(CharacterizationError, match="fanout"):
            characterizer.plan_operating(_CELLS["INV"], fanout=0)

    def test_bad_probability_rejected(self):
        characterizer = CellCharacterizer(soi_low_vt())
        with pytest.raises(
            CharacterizationError, match="output_high_probability"
        ):
            characterizer.plan_operating(
                _CELLS["INV"], output_high_probability=1.5
            )

    def test_planned_fanout_delay_validates_fanout(self):
        characterizer = CellCharacterizer(soi_low_vt())
        with pytest.raises(CharacterizationError, match="fanout"):
            characterizer.planned_fanout_delay(
                _CELLS["INV"], 1.0, fanout=0
            )


class TestErrorParity:
    """Bad V_DD corners raise the same types as the per-point chain."""

    def test_fanout_mode_nonpositive_vdd(self):
        plan = CellCharacterizer(soi_low_vt()).plan_operating(
            _CELLS["INV"], fanout=1
        )
        with pytest.raises(DeviceModelError, match="vdd must be positive"):
            plan.delays([1.0, 0.0])

    def test_fixed_load_mode_nonpositive_vdd(self):
        plan = CellCharacterizer(soi_low_vt()).plan_operating(
            _CELLS["INV"], load_f=10e-15
        )
        with pytest.raises(
            CharacterizationError, match="vdd must be positive"
        ):
            plan.delays([-0.5])

    def test_leakages_nonpositive_vdd(self):
        plan = CellCharacterizer(soi_low_vt()).plan_operating(
            _CELLS["INV"]
        )
        with pytest.raises(
            CharacterizationError, match="vdd must be positive"
        ):
            plan.leakages([0.0])
